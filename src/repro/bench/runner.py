"""Timing primitives for the benchmark harness.

Keeps the experiment code declarative: build an index with a wall-clock
budget (reproducing the paper's "-" for builds that do not finish), then
push a query workload through it and normalize to per-query cost.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.baselines.base import IndexBudgetExceeded

__all__ = [
    "BuildOutcome",
    "QueryTiming",
    "timed",
    "build_index",
    "median_of",
    "time_queries",
    "time_batch_queries",
]


@dataclass(frozen=True)
class BuildOutcome:
    """Result of constructing one index.

    ``index`` is None when construction failed (budget exceeded) — the
    harness renders those entries as the paper's "-".
    """

    name: str
    seconds: float | None
    storage_bytes: int | None
    index: object | None
    failure: str | None = None

    @property
    def ok(self) -> bool:
        """Whether the index was built successfully."""
        return self.index is not None


@dataclass(frozen=True)
class QueryTiming:
    """Aggregate timing of a query batch."""

    seconds: float
    count: int
    positives: int

    @property
    def us_per_query(self) -> float:
        """Mean microseconds per query."""
        return 1e6 * self.seconds / max(1, self.count)

    def scaled_ms(self, to_count: int) -> float:
        """Total milliseconds extrapolated to ``to_count`` queries (the
        paper reports totals over 1M)."""
        return 1e3 * self.seconds * to_count / max(1, self.count)


def timed(fn: Callable[[], object]) -> tuple[object, float]:
    """Run ``fn`` once, returning (result, elapsed_seconds)."""
    start = time.perf_counter()
    result = fn()
    return result, time.perf_counter() - start


def build_index(name: str, factory: Callable[[], object]) -> BuildOutcome:
    """Construct an index, catching declared budget failures."""
    try:
        index, seconds = timed(factory)
    except IndexBudgetExceeded as exc:
        return BuildOutcome(name, None, None, None, failure=str(exc))
    storage = index.storage_bytes() if hasattr(index, "storage_bytes") else None
    return BuildOutcome(name, seconds, storage, index)


def median_of(repeat: int, run: Callable[[], "QueryTiming"]) -> QueryTiming:
    """Run a timing closure ``repeat`` times; keep the median-``seconds`` run.

    ``--repeat N`` support for the bench tables: BENCH_*.json
    trajectories are compared across PRs, and a single run's number can
    swing with scheduler noise.  The median run's ``QueryTiming`` is
    returned whole (count/positives ride along); ``repeat <= 1`` runs
    once, preserving the default cost.
    """
    if repeat <= 1:
        return run()
    timings = sorted((run() for _ in range(repeat)), key=lambda t: t.seconds)
    return timings[(len(timings) - 1) // 2]


def time_queries(
    query: Callable[[int, int], bool], pairs: np.ndarray, *, repeat: int = 1
) -> QueryTiming:
    """Time a batch of boolean point queries.

    The pairs are pre-converted to Python ints so the measured loop pays
    only the query cost, mirroring the paper's methodology of timing the
    query phase alone.  A short untimed warm-up prefix runs first so
    lazily built lookup structures (adjacency lists, probe dicts) are
    charged to neither the build nor the per-query numbers — the scalar
    counterpart of calling ``prepare_batch()`` before
    :func:`time_batch_queries`.  The prefix spans several pairs because
    different Algorithm-2 cases build different structures; a random
    workload's first few pairs cover them.
    """
    plain = [(int(s), int(t)) for s, t in pairs]
    for s, t in plain[:32]:
        query(s, t)

    def run() -> QueryTiming:
        positives = 0
        start = time.perf_counter()
        for s, t in plain:
            if query(s, t):
                positives += 1
        seconds = time.perf_counter() - start
        return QueryTiming(seconds=seconds, count=len(plain), positives=positives)

    return median_of(repeat, run)


def time_batch_queries(
    query_batch: Callable[[np.ndarray], np.ndarray],
    pairs: np.ndarray,
    *,
    repeat: int = 1,
) -> QueryTiming:
    """Time one bulk call of a batch query engine.

    The counterpart of :func:`time_queries` for the vectorized path:
    ``query_batch`` takes the whole ``(m, 2)`` pair array and returns an
    ``(m,)`` bool array.  Array preparation happens outside the clock,
    mirroring the scalar harness's pre-conversion of pairs.  ``repeat``
    reports the median-of-N call (see :func:`median_of`).
    """
    arr = np.ascontiguousarray(np.asarray(pairs, dtype=np.int64))

    def run() -> QueryTiming:
        start = time.perf_counter()
        answers = np.asarray(query_batch(arr))
        seconds = time.perf_counter() - start
        return QueryTiming(
            seconds=seconds,
            count=len(arr),
            positives=int(np.count_nonzero(answers)),
        )

    return median_of(repeat, run)
