"""Benchmark harness: experiment runners and table rendering."""

from repro.bench.experiments import ALL_EXPERIMENTS, SuiteConfig
from repro.bench.report import Table
from repro.bench.runner import BuildOutcome, QueryTiming, build_index, time_queries, timed

__all__ = [
    "ALL_EXPERIMENTS",
    "SuiteConfig",
    "Table",
    "BuildOutcome",
    "QueryTiming",
    "build_index",
    "time_queries",
    "timed",
]
