"""Plain-text table rendering for the benchmark harness.

Every experiment in :mod:`repro.bench.experiments` returns a
:class:`Table`; the CLI renders it as aligned ASCII (and optionally
markdown for EXPERIMENTS.md).  Values may be numbers, strings, or ``None``
(rendered as the paper's "-").
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table", "fmt_ms", "fmt_mb", "fmt_us", "fmt_pct", "fmt_ratio"]


def fmt_ms(value: float | None) -> str:
    """Milliseconds with adaptive precision."""
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}"
    if value >= 1:
        return f"{value:.2f}"
    return f"{value:.3f}"


def fmt_us(value: float | None) -> str:
    """Microseconds with adaptive precision."""
    return fmt_ms(value)


def fmt_mb(num_bytes: int | None) -> str:
    """Bytes rendered as MB (two decimals)."""
    if num_bytes is None:
        return "-"
    return f"{num_bytes / 1e6:.2f}"


def fmt_pct(fraction: float | None) -> str:
    """A [0,1] fraction rendered as a percentage."""
    if fraction is None:
        return "-"
    return f"{100 * fraction:.2f}"


def fmt_ratio(value: float | None) -> str:
    """A multiplicative ratio (e.g. speedups)."""
    if value is None:
        return "-"
    if value >= 100:
        return f"{value:.0f}x"
    return f"{value:.1f}x"


@dataclass
class Table:
    """An ordered collection of rows with aligned text rendering.

    >>> t = Table("demo", ["name", "value"])
    >>> t.add_row({"name": "a", "value": 1})
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    demo
    name | value
    -----+------
    a    | 1
    """

    title: str
    columns: list[str]
    caption: str | None = None
    rows: list[dict[str, object]] = field(default_factory=list)

    def add_row(self, row: dict[str, object]) -> None:
        """Append a row; missing columns render as '-'."""
        self.rows.append(row)

    def _cell(self, row: dict[str, object], col: str) -> str:
        value = row.get(col)
        if value is None:
            return "-"
        if isinstance(value, float):
            return fmt_ms(value)
        return str(value)

    def render(self) -> str:
        """Aligned ASCII rendering."""
        grid = [[self._cell(r, c) for c in self.columns] for r in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(row[i]) for row in grid))
            if grid
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [self.title]
        lines.append(
            " | ".join(c.ljust(w) for c, w in zip(self.columns, widths)).rstrip()
        )
        lines.append("-+-".join("-" * w for w in widths))
        for row in grid:
            lines.append(
                " | ".join(cell.ljust(w) for cell, w in zip(row, widths)).rstrip()
            )
        if self.caption:
            lines.append(f"\n{self.caption}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavored markdown rendering."""
        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append(
                "| " + " | ".join(self._cell(row, c) for c in self.columns) + " |"
            )
        if self.caption:
            lines.extend(["", self.caption])
        return "\n".join(lines)

    def column_values(self, col: str) -> list[object]:
        """All values of one column (None for missing)."""
        return [row.get(col) for row in self.rows]

    def to_dict(self) -> dict:
        """JSON-friendly dict: title, columns, caption, and plain rows.

        Cell values are coerced to JSON-native types (numpy scalars via
        ``.item()``, everything else through ``str``) so the CLI's
        ``--json`` output round-trips without a custom encoder.
        """

        def plain(value: object) -> object:
            if value is None or isinstance(value, (bool, int, float, str)):
                return value
            if hasattr(value, "item"):  # numpy scalar
                return value.item()
            return str(value)

        return {
            "title": self.title,
            "columns": list(self.columns),
            "caption": self.caption,
            "rows": [
                {col: plain(row.get(col)) for col in self.columns}
                for row in self.rows
            ],
        }
