"""The paper's experiments (Tables 2–9) plus our ablations.

Every function takes the dataset list, a ``scale`` (1.0 = paper-sized
graphs), a query count, and a seed, and returns one or more
:class:`~repro.bench.report.Table` objects with measured *and* published
values side by side where the paper reports numbers.

The paper's absolute timings (C++ on a 2008 Xeon) are not comparable to
pure Python; what the harness is built to check is the paper's *shape*
claims: who builds faster, who answers faster and by roughly what factor,
where the "-" failures occur, how flat k-reach's query time is in k, and
how the (h,k) tradeoff moves sizes and latencies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines import (
    BfsIndex,
    BidirectionalBfsIndex,
    ChainCoverIndex,
    GrailIndex,
    PathTreeIndex,
    PrunedLandmarkIndex,
    PwahIndex,
)
from repro.bench.report import Table, fmt_mb, fmt_pct, fmt_us
from repro.bench.runner import (
    BuildOutcome,
    build_index,
    time_batch_queries,
    time_queries,
    timed,
)
from repro.core import (
    CoverDistanceOracle,
    DynamicKReachIndex,
    ExactKFamily,
    GeometricKReachFamily,
    HKReachIndex,
    KReachIndex,
    build_kreach_parallel,
    greedy_vertex_cover,
    hhop_vertex_cover,
    vertex_cover_2approx,
)
from repro.datasets import DATASET_NAMES, paper_tables, spec
from repro.graph.digraph import DiGraph
from repro.graph.generators import celebrity_crossfire_digraph
from repro.graph.stats import shortest_path_stats, summarize
from repro.workloads import (
    case_distribution,
    celebrity_pairs,
    churn_trace,
    random_pairs,
)

__all__ = [
    "SuiteConfig",
    "run_build",
    "run_table2",
    "run_table3_4_5",
    "run_table6",
    "run_table7",
    "run_table8",
    "run_table9",
    "run_throughput",
    "run_dynamic",
    "run_serve",
    "run_shard",
    "run_native",
    "run_ingest",
    "run_size",
    "run_ablation_covers",
    "run_ablation_general_k",
    "run_ablation_case_cost",
    "run_ablation_online_search",
    "run_ablation_compression",
    "ALL_EXPERIMENTS",
]

#: Label budget for the chain-cover (3-hop) build, mirroring the paper's
#: observation that 3-hop fails on most of these datasets.  Expressed per
#: DAG vertex so it scales with the graph.
_CHAIN_COVER_BUDGET_PER_VERTEX = 64


@dataclass
class SuiteConfig:
    """Common experiment parameters."""

    datasets: tuple[str, ...] = DATASET_NAMES
    scale: float = 0.2
    queries: int = 20_000
    bfs_queries: int = 1_000  # µ-BFS is orders slower; subsample and scale
    seed: int = 7
    workers: int = 1  # >1 routes k-reach construction through the pool
    engine: str = "auto"  # query engine for the k-reach batch columns
    serve_workers: tuple[int, ...] = (1, 2, 4, 8)  # pool sizes for 'serve'
    repeat: int = 1  # timings report the median of this many runs
    condense: bool = False  # 'ingest': also SCC-condense + build an index
    ingest_mb: int = 32  # 'ingest': streamed sort budget (KREACH_INGEST_MB)
    ingest_edges: int = 200_000  # 'ingest': synthetic edge-file size
    _cache: dict = field(default_factory=dict, repr=False)

    def graph(self, name: str):
        """Build (and cache) a dataset stand-in."""
        key = ("graph", name)
        if key not in self._cache:
            self._cache[key] = spec(name).build(scale=self.scale)
        return self._cache[key]

    def pairs(self, name: str) -> np.ndarray:
        """The random query workload for a dataset (cached)."""
        key = ("pairs", name)
        if key not in self._cache:
            g = self.graph(name)
            rng = np.random.default_rng(self.seed)
            self._cache[key] = random_pairs(g.n, self.queries, rng=rng)
        return self._cache[key]

    def mu(self, name: str) -> int:
        """Measured median shortest-path length of the stand-in (cached)."""
        key = ("mu", name)
        if key not in self._cache:
            g = self.graph(name)
            sample = min(g.n, 400)
            rng = np.random.default_rng(self.seed)
            _, mu = shortest_path_stats(g, sample_size=sample, rng=rng)
            self._cache[key] = max(2, mu)
        return self._cache[key]

    def reachability_builds(self, name: str) -> dict[str, BuildOutcome]:
        """Build the Table 3/4/5 index field for a dataset (cached)."""
        key = ("builds", name)
        if key not in self._cache:
            g = self.graph(name)
            chain_budget = _CHAIN_COVER_BUDGET_PER_VERTEX * g.n
            factories = {
                "n-reach": (
                    (lambda: build_kreach_parallel(g, None, workers=self.workers))
                    if self.workers > 1
                    else (lambda: KReachIndex(g, None))
                ),
                "PTree": lambda: PathTreeIndex(g),
                "3-hop": lambda: ChainCoverIndex(g, max_label_entries=chain_budget),
                "GRAIL": lambda: GrailIndex(g, num_labels=3, seed=self.seed),
                "PWAH": lambda: PwahIndex(g),
            }
            self._cache[key] = {
                label: build_index(label, factory)
                for label, factory in factories.items()
            }
        return self._cache[key]


_REACH_INDEXES = ("n-reach", "PTree", "3-hop", "GRAIL", "PWAH")


def run_table2(config: SuiteConfig) -> Table:
    """Table 2: dataset statistics, generated vs published."""
    table = Table(
        f"Table 2 — dataset statistics (scale={config.scale}; "
        "'/' separates measured vs paper-at-scale)",
        ["dataset", "|V|", "|E|", "|V_DAG|", "|E_DAG|", "Degmax", "d", "mu"],
        caption=(
            "Published values are scaled by the same factor as the stand-in "
            "for |V|/|E|/Degmax (d and µ are scale-invariant targets)."
        ),
    )
    for name in config.datasets:
        g = config.graph(name)
        s = spec(name)
        sample = min(g.n, 600)
        summ = summarize(g, sample_size=sample, rng=np.random.default_rng(config.seed))
        f = config.scale

        def pair(measured: int | float, published: float) -> str:
            return f"{measured} / {published:.0f}"

        table.add_row(
            {
                "dataset": name,
                "|V|": pair(summ.n, s.n * f),
                "|E|": pair(summ.m, s.m * f),
                "|V_DAG|": pair(summ.n_dag, s.n_dag * f),
                "|E_DAG|": pair(summ.m_dag, s.m_dag * f),
                "Degmax": pair(summ.deg_max, s.deg_max * f),
                "d": pair(summ.diameter, s.diameter),
                "mu": pair(summ.mu, s.mu),
            }
        )
    return table


def run_table3_4_5(config: SuiteConfig) -> tuple[Table, Table, Table]:
    """Tables 3 (construction ms), 4 (size MB), 5 (query µs/query)."""
    t3 = Table(
        f"Table 3 — index construction time, ms (scale={config.scale})",
        ["dataset", *_REACH_INDEXES],
        caption="'-' = construction exceeded its budget (paper: time/memory).",
    )
    t4 = Table(
        f"Table 4 — index size, MB (scale={config.scale})",
        ["dataset", *_REACH_INDEXES],
    )
    t5 = Table(
        f"Table 5 — reachability query cost, µs/query over "
        f"{config.queries} random queries (scale={config.scale}; "
        "batch query engine)",
        ["dataset", *_REACH_INDEXES],
        caption=(
            "All columns run the bulk batch API: n-reach through its "
            "vectorized engine, comparators through the generic "
            "scalar-loop fallback — so cells measure each index's cost "
            "to serve the whole workload, not loop-for-loop parity with "
            "the paper's per-query methodology."
        ),
    )
    for name in config.datasets:
        builds = config.reachability_builds(name)
        pairs = config.pairs(name)
        row3: dict[str, object] = {"dataset": name}
        row4: dict[str, object] = {"dataset": name}
        row5: dict[str, object] = {"dataset": name}
        for label in _REACH_INDEXES:
            outcome = builds[label]
            if not outcome.ok:
                row3[label] = None
                row4[label] = None
                row5[label] = None
                continue
            row3[label] = 1e3 * (outcome.seconds or 0.0)
            row4[label] = fmt_mb(outcome.storage_bytes)
            if label != "n-reach":
                query_batch = outcome.index.reaches_batch
            else:
                idx = outcome.index.prepare_batch()
                query_batch = lambda p, _i=idx: _i.query_batch(
                    p, engine=config.engine
                )
            timing = time_batch_queries(query_batch, pairs)
            row5[label] = fmt_us(timing.us_per_query)
        t3.add_row(row3)
        t4.add_row(row4)
        t5.add_row(row5)
    return t3, t4, t5


def run_table6(config: SuiteConfig) -> Table:
    """Table 6: average performance rank per index (1 = best)."""
    ranks: dict[str, dict[str, list[int]]] = {
        metric: {label: [] for label in _REACH_INDEXES}
        for metric in ("indexing_time", "index_size", "query_time")
    }
    for name in config.datasets:
        builds = config.reachability_builds(name)
        pairs = config.pairs(name)
        metric_values: dict[str, dict[str, float]] = {
            "indexing_time": {},
            "index_size": {},
            "query_time": {},
        }
        for label in _REACH_INDEXES:
            outcome = builds[label]
            if not outcome.ok:
                continue
            metric_values["indexing_time"][label] = outcome.seconds or 0.0
            metric_values["index_size"][label] = float(outcome.storage_bytes or 0)
            if label != "n-reach":
                query_batch = outcome.index.reaches_batch
            else:
                idx = outcome.index.prepare_batch()
                query_batch = lambda p, _i=idx: _i.query_batch(
                    p, engine=config.engine
                )
            metric_values["query_time"][label] = time_batch_queries(
                query_batch, pairs
            ).us_per_query
        for metric, values in metric_values.items():
            ordered = sorted(values, key=values.get)  # type: ignore[arg-type]
            for position, label in enumerate(ordered, start=1):
                ranks[metric][label].append(position)
            # Failed builds rank last.
            for label in _REACH_INDEXES:
                if label not in values:
                    ranks[metric][label].append(len(_REACH_INDEXES))

    table = Table(
        f"Table 6 — mean performance rank, 1 = best (scale={config.scale}; "
        "'ours/paper')",
        ["metric", *_REACH_INDEXES],
        caption="Paper ranks from Table 6 of the paper.",
    )
    for metric, paper_key in (
        ("indexing_time", "indexing_time"),
        ("index_size", "index_size"),
        ("query_time", "query_time"),
    ):
        row: dict[str, object] = {"metric": metric}
        for label in _REACH_INDEXES:
            ours = np.mean(ranks[metric][label]) if ranks[metric][label] else None
            paper = paper_tables.RANKINGS[paper_key][label]
            row[label] = f"{ours:.1f} / {paper}" if ours is not None else f"- / {paper}"
        table.add_row(row)
    return table


def run_table7(config: SuiteConfig) -> Table:
    """Table 7: k-reach for k = 2, 4, 6, µ, n vs µ-BFS and µ-dist."""
    table = Table(
        f"Table 7 — k-hop query cost, µs/query (scale={config.scale}, "
        f"{config.queries} queries; µ-BFS/µ-dist over {config.bfs_queries})",
        ["dataset", "2-reach", "4-reach", "6-reach", "mu-reach", "n-reach",
         "mu-BFS", "mu-dist"],
        caption="µ = measured median shortest-path length of the stand-in.",
    )
    for name in config.datasets:
        g = config.graph(name)
        pairs = config.pairs(name)
        sub_pairs = pairs[: config.bfs_queries]
        mu = config.mu(name)
        row: dict[str, object] = {"dataset": name}
        cover = vertex_cover_2approx(g)
        for k, label in ((2, "2-reach"), (4, "4-reach"), (6, "6-reach"),
                         (mu, "mu-reach"), (None, "n-reach")):
            idx = KReachIndex(g, k, cover=cover).prepare_batch()
            row[label] = fmt_us(
                time_batch_queries(
                    lambda p, _i=idx: _i.query_batch(p, engine=config.engine),
                    pairs,
                ).us_per_query
            )
        bfs = BfsIndex(g)
        row["mu-BFS"] = fmt_us(
            time_batch_queries(
                lambda p: bfs.reaches_within_batch(p, mu), sub_pairs
            ).us_per_query
        )
        dist = PrunedLandmarkIndex(g)
        row["mu-dist"] = fmt_us(
            time_batch_queries(
                lambda p: dist.reaches_within_batch(p, mu), sub_pairs
            ).us_per_query
        )
        table.add_row(row)
    return table


def run_table8(config: SuiteConfig) -> Table:
    """Table 8: % of random queries falling into each Algorithm-2 case."""
    table = Table(
        f"Table 8 — query case mix, % (scale={config.scale}; 'ours/paper')",
        ["dataset", "Case 1", "Case 2", "Case 3", "Case 4"],
    )
    for name in config.datasets:
        g = config.graph(name)
        pairs = config.pairs(name)
        idx = KReachIndex(g, 2)  # the case split depends only on the cover
        dist = case_distribution(idx, pairs)
        paper = paper_tables.CASE_PERCENTAGES.get(name)
        row: dict[str, object] = {"dataset": name}
        for case in (1, 2, 3, 4):
            ours = fmt_pct(dist[case])
            published = f"{paper[case - 1]:.2f}" if paper else "-"
            row[f"Case {case}"] = f"{ours} / {published}"
        table.add_row(row)
    return table


#: Datasets the paper reports in Table 9 (those with >20% 2-hop-VC savings).
_TABLE9_DATASETS = ("AgroCyc", "aMaze", "Anthra", "Ecoo", "Kegg", "Mtbrv",
                    "Nasa", "Vchocyc")


def run_table9(config: SuiteConfig) -> Table:
    """Table 9: vertex cover vs 2-hop cover sizes; µ-reach vs (2,µ)-reach."""
    table = Table(
        f"Table 9 — cover sizes and query cost (scale={config.scale})",
        ["dataset", "|VC|", "|2hop-VC|", "shrink %",
         "mu-reach µs", "(2,mu)-reach µs", "paper |VC|", "paper |2hop-VC|"],
        caption="shrink % = 1 - |2hop-VC| / |VC| (paper keeps rows above 20%).",
    )
    for name in config.datasets:
        if name not in _TABLE9_DATASETS:
            continue
        g = config.graph(name)
        pairs = config.pairs(name)
        mu = config.mu(name)
        vc = vertex_cover_2approx(g)
        vc2 = hhop_vertex_cover(g, 2)
        kreach = KReachIndex(g, mu, cover=vc)
        hkreach = HKReachIndex(g, 2, mu, cover=vc2, strict=False)
        paper = paper_tables.COVER_SIZES.get(name)
        table.add_row(
            {
                "dataset": name,
                "|VC|": len(vc),
                "|2hop-VC|": len(vc2),
                "shrink %": fmt_pct(1 - len(vc2) / max(1, len(vc))),
                "mu-reach µs": fmt_us(time_queries(kreach.query, pairs).us_per_query),
                "(2,mu)-reach µs": fmt_us(
                    time_queries(hkreach.query, pairs).us_per_query
                ),
                "paper |VC|": paper[0] if paper else None,
                "paper |2hop-VC|": paper[1] if paper else None,
            }
        )
    return table


def run_build(config: SuiteConfig) -> Table:
    """Construction throughput: blocked MS-BFS vs the per-source build.

    Not a paper table — this serves the ROADMAP's build-time goal.  Every
    cell constructs the same ``(graph, k, cover)`` index three ways: the
    pre-refactor per-source serial sweep (``builder='serial'``), the
    bit-parallel blocked multi-source BFS (``builder='blocked'``, the
    default), and the process-parallel blocked build.  "agree" asserts
    the three :class:`~repro.core.index_graph.IndexGraph` contents are
    bit-identical, so the benchmark doubles as a live differential check;
    "speedup" is serial/blocked, the number the CI smoke job gates on.
    """
    workers = config.workers if config.workers > 1 else 2
    table = Table(
        f"Build — construction throughput (scale={config.scale}, "
        f"parallel workers={workers})",
        ["dataset", "k", "|S|", "|E_I|", "serial ms", "blocked ms",
         "parallel ms", "speedup", "agree"],
        caption=(
            "serial = per-source BFS (pre-refactor Algorithm 1); blocked = "
            "64-source bit-parallel MS-BFS; speedup = serial/blocked. "
            "agree = all three builders produce identical IndexGraphs."
        ),
    )
    total_serial = 0.0
    total_blocked = 0.0
    total_parallel = 0.0
    all_agree = True
    for name in config.datasets:
        g = config.graph(name)
        cover = vertex_cover_2approx(g)
        for k in (2, 6, None):
            serial, serial_s = timed_build(g, k, cover, "serial")
            blocked, blocked_s = timed_build(g, k, cover, "blocked")
            parallel, parallel_s = timed(
                lambda: build_kreach_parallel(g, k, cover=cover, workers=workers)
            )
            agree = (
                serial.index_graph == blocked.index_graph
                and blocked.index_graph == parallel.index_graph
            )
            all_agree &= agree
            total_serial += serial_s
            total_blocked += blocked_s
            total_parallel += parallel_s
            table.add_row(
                {
                    "dataset": name,
                    "k": "n" if k is None else k,
                    "|S|": len(cover),
                    "|E_I|": blocked.edge_count,
                    "serial ms": 1e3 * serial_s,
                    "blocked ms": 1e3 * blocked_s,
                    "parallel ms": 1e3 * parallel_s,
                    "speedup": f"{serial_s / max(blocked_s, 1e-9):.1f}x",
                    "agree": "yes" if agree else "NO",
                }
            )
    table.add_row(
        {
            "dataset": "TOTAL",
            "serial ms": 1e3 * total_serial,
            "blocked ms": 1e3 * total_blocked,
            "parallel ms": 1e3 * total_parallel,
            "speedup": f"{total_serial / max(total_blocked, 1e-9):.1f}x",
            "agree": "yes" if all_agree else "NO",
        }
    )
    return table


def timed_build(g, k, cover, builder: str):
    """Build one index with the named builder, returning (index, seconds)."""
    return timed(lambda: KReachIndex(g, k, cover=cover, builder=builder))


def run_throughput(config: SuiteConfig) -> Table:
    """Bulk-query throughput: scalar loop vs PR-2 batch path vs bitset join.

    Not a paper table — this serves the ROADMAP's serving goal.  Every
    row pushes one workload through three engines that must agree bit for
    bit: the per-pair scalar loop, the previous batch path ("prev":
    chunked cross products with the hub spill for k-reach, the memoized
    Algorithm-3 walk for (h,k)-reach), and the bitset-join engine.  The
    per-case columns time the bitset engine on each Algorithm-2/3 case
    subset, exposing where the join pays off (Case 4, and Cases 2–4 for
    (h,k)-reach).  The HubStress rows run the §1 celebrity×celebrity
    workload on :func:`~repro.graph.generators.celebrity_crossfire_digraph`,
    where every pair is an uncovered hub×hub Case 4 — the scenario that
    used to route through the scalar spill.  The TOTAL row aggregates
    wall-clock across rows; CI gates ``bitset >= scalar`` on it exactly
    like the build experiment gates blocked vs serial.
    """
    table = Table(
        f"Throughput — query engines (scale={config.scale}, "
        f"{config.queries} pairs per row, {config.bfs_queries} for HubStress)",
        ["dataset", "index", "k", "scalar µs/q", "prev µs/q", "bitset µs/q",
         "native µs/q", "c1 µs", "c2 µs", "c3 µs", "c4 µs", "speedup",
         "agree"],
        caption=(
            "scalar = per-pair Python loop; prev = the pre-bitset batch "
            "engine (chunked cross products + hub spill for k-reach, "
            "memoized scalar walk for (h,k)-reach); bitset = the "
            "bitset-join engine (auto memory gate); native = the same "
            "case split preferring the compiled kernel tier (engine="
            "'native'; equals bitset when numba is absent); cN = bitset "
            "µs/q on the Case-N subset ('-' when the workload has <10 "
            "such pairs); speedup = scalar/bitset; agree = all engines "
            "report the same positive count.  The TOTAL row holds total "
            "milliseconds per engine across all rows."
        ),
    )
    totals = {"scalar": 0.0, "prev": 0.0, "bitset": 0.0, "native": 0.0}
    all_agree = True
    repeat = config.repeat

    def add_row(dataset, index_label, k, idx, pairs, prev_engine) -> None:
        nonlocal all_agree
        scalar = time_queries(idx.query, pairs, repeat=repeat)
        prev = time_batch_queries(
            lambda p: idx.query_batch(p, engine=prev_engine), pairs,
            repeat=repeat,
        )
        bitset = time_batch_queries(
            lambda p: idx.query_batch(p, engine="auto"), pairs, repeat=repeat
        )
        idx.query_batch(pairs[:64], engine="native")  # untimed JIT warm-up
        native_t = time_batch_queries(
            lambda p: idx.query_batch(p, engine="native"), pairs,
            repeat=repeat,
        )
        agree = (
            scalar.positives == prev.positives == bitset.positives
            == native_t.positives
        )
        all_agree &= agree
        totals["scalar"] += scalar.seconds
        totals["prev"] += prev.seconds
        totals["bitset"] += bitset.seconds
        totals["native"] += native_t.seconds
        row: dict[str, object] = {
            "dataset": dataset,
            "index": index_label,
            "k": "n" if k is None else k,
            "scalar µs/q": fmt_us(scalar.us_per_query),
            "prev µs/q": fmt_us(prev.us_per_query),
            "bitset µs/q": fmt_us(bitset.us_per_query),
            "native µs/q": fmt_us(native_t.us_per_query),
            "speedup": (
                f"{scalar.us_per_query / max(bitset.us_per_query, 1e-9):.1f}x"
            ),
            "agree": "yes" if agree else "NO",
        }
        cases = idx.query_case_batch(pairs)
        for case in (1, 2, 3, 4):
            sub = pairs[cases == case]
            row[f"c{case} µs"] = (
                fmt_us(
                    time_batch_queries(
                        lambda p: idx.query_batch(p, engine="auto"), sub
                    ).us_per_query
                )
                if len(sub) >= 10
                else None
            )
        table.add_row(row)

    for name in config.datasets:
        g = config.graph(name)
        pairs = config.pairs(name)
        cover = vertex_cover_2approx(g)
        for k in (2, 6, None):
            idx = KReachIndex(g, k, cover=cover).prepare_batch()
            add_row(name, "k-reach", k, idx, pairs, "chunked")
        cover2 = hhop_vertex_cover(g, 2, prune=False)
        for k in (6, None):
            hidx = HKReachIndex(g, 2, k, cover=cover2).prepare_batch()
            add_row(name, "(2,k)-reach", k, hidx, pairs, "scalar")

    # The §1 hub×hub stress: brokers form the cover, celebrities stay
    # uncovered, every pair is a Case-4 celebrity×celebrity query.
    brokers = max(64, int(3000 * config.scale))
    celebs = max(8, int(300 * config.scale))
    degree = max(8, brokers // 2)
    hub = celebrity_crossfire_digraph(
        brokers, celebs, degree, seed=config.seed
    )
    hub_cover = frozenset(range(brokers))
    rng = np.random.default_rng(config.seed)
    hub_pairs = rng.integers(
        brokers, hub.n, size=(config.bfs_queries, 2), dtype=np.int64
    )
    for k in (2, 6, None):
        idx = KReachIndex(hub, k, cover=hub_cover).prepare_batch()
        add_row("HubStress", "k-reach", k, idx, hub_pairs, "chunked")

    table.add_row(
        {
            "dataset": "TOTAL",
            "scalar µs/q": 1e3 * totals["scalar"],
            "prev µs/q": 1e3 * totals["prev"],
            "bitset µs/q": 1e3 * totals["bitset"],
            "native µs/q": 1e3 * totals["native"],
            "speedup": (
                f"{totals['scalar'] / max(totals['bitset'], 1e-9):.1f}x"
            ),
            "agree": "yes" if all_agree else "NO",
        }
    )
    return table


def run_dynamic(config: SuiteConfig) -> Table:
    """Dynamic serving under churn: the snapshot+overlay engine measured.

    Not a paper table — this serves the ROADMAP's read-heavy-while-
    writing goal.  Each row replays one seeded :func:`churn_trace`
    (interleaved inserts, deletes, and query batches) three ways:

    * **overlay** — one :class:`DynamicKReachIndex`; updates maintain the
      delta overlay, query batches run the four-case bulk engine against
      the patched base snapshot (``engine='auto'``).
    * **scalar** — the same index at the same trace points answering
      through the per-pair scalar loop (``engine='scalar'``, the
      pre-overlay dynamic behavior).  CI gates overlay ≥ scalar on the
      TOTAL row.
    * **rebuild** — the no-index-maintenance baseline: an edge set is
      kept current and a fresh static :class:`KReachIndex` is built from
      scratch at every query batch (graph snapshot construction is left
      untimed, favoring the baseline).

    All three must agree on the positive count at every batch — the
    benchmark doubles as a live differential check, like ``build`` and
    ``throughput``.  "speedup" is rebuild/overlay on combined
    update+query wall-clock; the acceptance target is >= 5x on TOTAL.
    """
    batch = max(1, config.queries // 8)
    events = 48
    table = Table(
        f"Dynamic — snapshot+overlay serving under churn "
        f"(scale={config.scale}, {events} events/row, "
        f"query batches of {batch})",
        ["dataset", "k", "writes", "queries", "update ms", "overlay µs/q",
         "scalar µs/q", "overlay ms", "rebuild ms", "compactions",
         "speedup", "agree"],
        caption=(
            "overlay = DynamicKReachIndex batch engine (auto); scalar = "
            "same index, per-pair loop; rebuild = fresh static build per "
            "query batch; overlay ms = updates + overlay queries; "
            "speedup = rebuild/overlay total wall-clock; agree = all "
            "three report the same positive count.  The TOTAL row holds "
            "total milliseconds per column."
        ),
    )
    totals = {"update": 0.0, "overlay": 0.0, "scalar": 0.0, "rebuild": 0.0}
    all_agree = True
    for name in config.datasets:
        g = config.graph(name)
        for k in (2, 6):
            rng = np.random.default_rng(config.seed)
            # Read-heavy with bursty ingestion, per the ROADMAP serving
            # story: ~5 query batches per write burst, each burst 8
            # consecutive writes (the shape the overlay's deferred
            # write settling absorbs into one relax/repair pass).
            trace = churn_trace(
                g,
                events,
                read_fraction=5 / 6,
                batch_size=batch,
                write_burst=8,
                rng=rng,
            )
            dyn = DynamicKReachIndex(g, k).prepare_batch()
            update_s = overlay_s = scalar_s = 0.0
            writes = queries = 0
            overlay_pos = scalar_pos = 0
            settled = True
            for op in trace:
                if op[0] == "query":
                    if not settled:
                        # Settling a write burst — deferred deletion
                        # repairs, possible compaction, view warmup — is
                        # maintenance; charge it to the update phase so
                        # the query columns compare steady-state reads.
                        _, seconds = timed(dyn.prepare_batch)
                        update_s += seconds
                        settled = True
                    pairs = op[1]
                    t_overlay = time_batch_queries(
                        lambda p: dyn.query_batch(p, engine="auto"), pairs
                    )
                    t_scalar = time_batch_queries(
                        lambda p: dyn.query_batch(p, engine="scalar"), pairs
                    )
                    overlay_s += t_overlay.seconds
                    scalar_s += t_scalar.seconds
                    overlay_pos += t_overlay.positives
                    scalar_pos += t_scalar.positives
                    queries += len(pairs)
                else:
                    apply = (
                        dyn.insert_edge if op[0] == "insert" else dyn.delete_edge
                    )
                    _, seconds = timed(lambda a=apply, u=op[1], v=op[2]: a(u, v))
                    update_s += seconds
                    writes += 1
                    settled = False
            # Rebuild-per-batch baseline: adjacency upkeep is free, the
            # index is reconstructed from scratch at every read point.
            edges = {(int(u), int(v)) for u, v in g.edges()}
            rebuild_s = 0.0
            rebuild_pos = 0
            for op in trace:
                if op[0] == "insert":
                    edges.add((op[1], op[2]))
                elif op[0] == "delete":
                    edges.discard((op[1], op[2]))
                else:
                    snapshot = DiGraph(g.n, edges)
                    idx, build_s = timed(
                        lambda s=snapshot: KReachIndex(s, k).prepare_batch()
                    )
                    t = time_batch_queries(idx.query_batch, op[1])
                    rebuild_s += build_s + t.seconds
                    rebuild_pos += t.positives
            agree = overlay_pos == scalar_pos == rebuild_pos
            all_agree &= agree
            overlay_total = update_s + overlay_s
            totals["update"] += update_s
            totals["overlay"] += overlay_s
            totals["scalar"] += scalar_s
            totals["rebuild"] += rebuild_s
            table.add_row(
                {
                    "dataset": name,
                    "k": k,
                    "writes": writes,
                    "queries": queries,
                    "update ms": 1e3 * update_s,
                    "overlay µs/q": fmt_us(1e6 * overlay_s / max(1, queries)),
                    "scalar µs/q": fmt_us(1e6 * scalar_s / max(1, queries)),
                    "overlay ms": 1e3 * overlay_total,
                    "rebuild ms": 1e3 * rebuild_s,
                    "compactions": dyn.compactions,
                    "speedup": f"{rebuild_s / max(overlay_total, 1e-9):.1f}x",
                    "agree": "yes" if agree else "NO",
                }
            )
    overlay_total = totals["update"] + totals["overlay"]
    table.add_row(
        {
            "dataset": "TOTAL",
            "update ms": 1e3 * totals["update"],
            "overlay µs/q": 1e3 * totals["overlay"],
            "scalar µs/q": 1e3 * totals["scalar"],
            "overlay ms": 1e3 * overlay_total,
            "rebuild ms": 1e3 * totals["rebuild"],
            "speedup": f"{totals['rebuild'] / max(overlay_total, 1e-9):.1f}x",
            "agree": "yes" if all_agree else "NO",
        }
    )
    return table


def run_serve(config: SuiteConfig) -> tuple[Table, Table]:
    """The serving tier measured: v4 mmap open time + multi-core throughput.

    Not a paper table — this serves the ROADMAP's "fast as the hardware
    allows" goal.  Two tables per run:

    * **Open time** — every dataset's 6-reach index is written both as a
      v2 compressed npz and a v4 memory-mapped file; the table compares
      eager :func:`~repro.core.serialize.load_kreach` (decompress +
      materialize + validate every array) against
      :func:`~repro.core.serialize.load_mmap` (parse a header, map the
      file, install zero-copy views).  CI gates v4 < v2 on the TOTAL
      row; the acceptance target is ≥ 20x.
    * **Throughput** — one big random batch per dataset pushed through
      the in-process engine and through :class:`~repro.core.serve.QueryServer`
      pools of ``config.serve_workers`` sizes sharing the same v4 file,
      plus a pipelined ``submit``/``collect`` run at the target pool
      size.  Every served result is checked bit-for-bit against the
      in-process engine ("agree"), so the benchmark doubles as a live
      differential test.  CI gates 2-worker ≥ 1-worker throughput on
      the TOTAL row; scaling beyond that is hardware-bound (a 1-core
      runner cannot show a 4-worker speedup, a 4-core one can).
    """
    import tempfile
    from pathlib import Path

    from repro.core.serialize import load_kreach, load_mmap, save_kreach, save_mmap
    from repro.core.serve import QueryServer, ThreadQueryServer

    counts = tuple(config.serve_workers)
    k = 6
    target = 4 if 4 in counts else counts[-1]
    n_pairs = 8 * config.queries
    reps = max(2, config.repeat)
    open_table = Table(
        f"Serve — index open time, v4 mmap vs v2 eager npz "
        f"(scale={config.scale}, k={k})",
        ["dataset", "|E_I|", "v2 MB", "v4 MB", "v2 load ms", "v4 open ms",
         "open speedup"],
        caption=(
            "v2 = load_kreach (decompress + materialize + validate); v4 = "
            "load_mmap (header parse + zero-copy views; O(header), not "
            "O(index)).  The TOTAL row holds summed milliseconds; CI "
            "gates v4 < v2 on it."
        ),
    )
    serve_cols = [f"serve@{w} ms" for w in counts]
    tput = Table(
        f"Serve — served batch-query throughput (scale={config.scale}, "
        f"k={k}, {n_pairs} pairs per row, workers={counts})",
        ["dataset", "pairs", "inproc ms", *serve_cols, f"thread@{target} ms",
         f"pipe@{target} ms", "speedup", "agree"],
        caption=(
            "inproc = one in-process query_batch call; serve@W = the same "
            "batch through a W-worker QueryServer sharing the v4 file "
            f"(shared-memory dispatch); thread@{target} = the same batch "
            f"through a {target}-thread ThreadQueryServer (one address "
            f"space, zero IPC); pipe@{target} = pipelined submit/collect "
            "of slot-sized shards; speedup = inproc / "
            f"serve@{target}; agree = every served result bit-identical "
            "to in-process.  TOTAL sums milliseconds per column."
        ),
    )
    open_totals = {"v2": 0.0, "v4": 0.0}
    totals: dict[object, float] = {"inproc": 0.0, "thread": 0.0, "pipe": 0.0}
    totals.update({w: 0.0 for w in counts})
    all_agree = True
    rng = np.random.default_rng(config.seed)
    with tempfile.TemporaryDirectory() as tmp:
        for name in config.datasets:
            g = config.graph(name)
            idx = KReachIndex(g, k).prepare_batch()
            v2_path = Path(tmp) / f"{name}.npz"
            v4_path = Path(tmp) / f"{name}.kr4"
            save_kreach(idx, v2_path)
            save_mmap(idx, v4_path)
            _, v2_s = timed(lambda: load_kreach(v2_path))
            _, v4_s = timed(lambda: load_mmap(v4_path))
            open_totals["v2"] += v2_s
            open_totals["v4"] += v4_s
            open_table.add_row(
                {
                    "dataset": name,
                    "|E_I|": idx.edge_count,
                    "v2 MB": fmt_mb(v2_path.stat().st_size),
                    "v4 MB": fmt_mb(v4_path.stat().st_size),
                    "v2 load ms": 1e3 * v2_s,
                    "v4 open ms": 1e3 * v4_s,
                    "open speedup": f"{v2_s / max(v4_s, 1e-9):.0f}x",
                }
            )

            pairs = random_pairs(g.n, n_pairs, rng=rng)

            # Best of `reps` runs everywhere below (>= 2; --repeat raises
            # it): these are near-equal wall-clock quantities on
            # possibly-noisy hosts, and the CI gate compares them
            # directly.
            def best_of(fn):
                result, first_s = timed(fn)
                best = min(
                    [first_s] + [timed(fn)[1] for _ in range(reps - 1)]
                )
                return result, best

            reference, inproc_s = best_of(lambda: idx.query_batch(pairs))
            totals["inproc"] += inproc_s
            row: dict[str, object] = {
                "dataset": name,
                "pairs": len(pairs),
                "inproc ms": 1e3 * inproc_s,
            }
            agree = True
            for w in counts:
                with QueryServer(v4_path, workers=w) as server:
                    server.query_batch(pairs[:1024])  # warm the pool
                    served, served_s = best_of(
                        lambda: server.query_batch(pairs)
                    )
                    agree &= bool(np.array_equal(served, reference))
                    totals[w] += served_s
                    row[f"serve@{w} ms"] = 1e3 * served_s
                    if w == target:
                        row["speedup"] = (
                            f"{inproc_s / max(served_s, 1e-9):.1f}x"
                        )
                        shards = [
                            sh
                            for sh in np.array_split(pairs, max(2 * w, 2))
                            if len(sh)
                        ]

                        def pipeline(_srv=server, _shards=shards):
                            tickets = [_srv.submit(sh) for sh in _shards]
                            return [_srv.collect(t) for t in tickets]

                        parts, pipe_s = timed(pipeline)
                        agree &= bool(
                            np.array_equal(np.concatenate(parts), reference)
                        )
                        totals["pipe"] += pipe_s
                        row[f"pipe@{target} ms"] = 1e3 * pipe_s
            with ThreadQueryServer(v4_path, workers=target) as tserver:
                tserver.query_batch(pairs[:1024])  # warm the pool
                served, thread_s = best_of(
                    lambda: tserver.query_batch(pairs)
                )
                agree &= bool(np.array_equal(served, reference))
                totals["thread"] += thread_s
                row[f"thread@{target} ms"] = 1e3 * thread_s
            all_agree &= agree
            row["agree"] = "yes" if agree else "NO"
            tput.add_row(row)
    open_table.add_row(
        {
            "dataset": "TOTAL",
            "v2 load ms": 1e3 * open_totals["v2"],
            "v4 open ms": 1e3 * open_totals["v4"],
            "open speedup": (
                f"{open_totals['v2'] / max(open_totals['v4'], 1e-9):.0f}x"
            ),
        }
    )
    total_row: dict[str, object] = {
        "dataset": "TOTAL",
        "inproc ms": 1e3 * totals["inproc"],
        f"thread@{target} ms": 1e3 * totals["thread"],
        f"pipe@{target} ms": 1e3 * totals["pipe"],
        "speedup": (
            f"{totals['inproc'] / max(totals[target], 1e-9):.1f}x"
        ),
        "agree": "yes" if all_agree else "NO",
    }
    for w in counts:
        total_row[f"serve@{w} ms"] = 1e3 * totals[w]
    tput.add_row(total_row)
    return open_table, tput


def run_native(config: SuiteConfig) -> tuple[Table, Table]:
    """The native kernel tier measured: per-kernel microbenches + thread serving.

    Not a paper table — this serves ROADMAP item 3 (compiled kernels +
    GIL-free thread scaling).  Two tables:

    * **Kernels** — every dispatched kernel timed on a synthetic hot-path
      workload under the numpy tier (``KREACH_NATIVE=numpy`` semantics)
      and under the active tier (``auto``: compiled when numba is
      present, numpy otherwise), with a bit-identical "agree" check.  On
      a numba-equipped host the CI ``native-smoke`` job gates native ≥
      numpy on the TOTAL row (and ≥5× on at least one kernel); without
      numba the two columns measure the same code and the table is a
      dispatch-overhead check.
    * **Thread serve** — one big batch per dataset through the
      in-process engine vs :class:`~repro.core.serve.ThreadQueryServer`
      at 1 and 2 workers, bit-checked against in-process.  CI gates
      thread@2 against in-process with the same tolerance the serve
      smoke uses.
    """
    import tempfile
    from pathlib import Path

    from repro import native
    from repro.bitsets import ops
    from repro.core.serialize import save_mmap
    from repro.core.serve import ThreadQueryServer
    from repro.graph.traversal import bfs_distances_blocked

    reps = max(2, config.repeat)
    m = max(4096, config.queries)
    words = 8
    nbits = words * 64
    rng = np.random.default_rng(config.seed)

    kernels = Table(
        f"Native — kernel tier microbenches ({m} elements/row, {words} "
        f"words/bitrow, best of {reps}; active tier: {native.describe()['active']})",
        ["kernel", "numpy ms", "native ms", "speedup", "agree"],
        caption=(
            "numpy = the vectorized baseline tier; native = the active "
            "tier (compiled via numba when installed, otherwise the same "
            "numpy path — speedup ≈ 1.0 then); agree = bit-identical "
            "results.  TOTAL sums milliseconds per column."
        ),
    )

    # Shared synthetic operands: a plausible cover-bitset shape (sparse
    # rows over a multi-word universe) and a hot gather stream.
    matrix = np.zeros((2048, words), dtype=np.uint64)
    ops.set_bits(
        matrix,
        rng.integers(0, 2048, size=8 * 2048),
        rng.integers(0, nbits, size=8 * 2048),
    )
    a = matrix[rng.integers(0, 2048, size=m)].copy()
    b = matrix[rng.integers(0, 2048, size=m)].copy()
    rows_m = rng.integers(0, 2048, size=m)
    cols_m = rng.integers(0, nbits, size=m)
    owner = np.sort(rng.integers(0, 512, size=m))
    s_idx = rng.integers(0, 2048, size=m)
    t_idx = rng.integers(0, 2048, size=m)
    keys = np.unique(rng.integers(0, 1 << 40, size=m))
    weights = rng.integers(1, 100, size=len(keys))
    probe_u = rng.integers(0, 1 << 20, size=m)
    probe_v = rng.integers(0, 1 << 20, size=m)
    g = config.graph(config.datasets[0])
    bfs_sources = np.arange(min(g.n, 192), dtype=np.int64)

    from repro.core.batch import MISSING_WEIGHT, KeyedRowStore

    store = KeyedRowStore(keys, weights, 1 << 20)
    workloads = [
        ("and_any", lambda: ops.and_any(a, b)),
        (
            "gather_and_any",
            lambda: native.kernel("gather_and_any")(
                matrix, matrix, s_idx, t_idx
            ),
        ),
        (
            "or_rows_segmented",
            lambda: ops.or_rows_segmented(matrix, rows_m, owner, 512),
        ),
        (
            "bit_matrix/set_bits",
            lambda: ops.bit_matrix(rows_m, cols_m, 2048, nbits),
        ),
        ("probe_bits", lambda: ops.probe_bits(matrix, rows_m, cols_m)),
        ("keyed_lookup", lambda: store.lookup(probe_u, probe_v)),
        (
            f"ms-bfs ({config.datasets[0]}, k=6)",
            lambda: bfs_distances_blocked(g, bfs_sources, k=6),
        ),
    ]

    def matches(x, y) -> bool:
        if isinstance(x, tuple):
            return all(matches(xi, yi) for xi, yi in zip(x, y))
        return bool(np.array_equal(x, y))

    totals = {"numpy": 0.0, "native": 0.0}
    all_agree = True
    for label, fn in workloads:
        with native.use("numpy"):
            base = fn()
            base_s = min(timed(fn)[1] for _ in range(reps))
        with native.use("auto"):
            got = fn()  # untimed: triggers the one-time JIT compile
            nat_s = min(timed(fn)[1] for _ in range(reps))
        agree = matches(base, got)
        all_agree &= agree
        totals["numpy"] += base_s
        totals["native"] += nat_s
        kernels.add_row(
            {
                "kernel": label,
                "numpy ms": 1e3 * base_s,
                "native ms": 1e3 * nat_s,
                "speedup": f"{base_s / max(nat_s, 1e-9):.1f}x",
                "agree": "yes" if agree else "NO",
            }
        )
    kernels.add_row(
        {
            "kernel": "TOTAL",
            "numpy ms": 1e3 * totals["numpy"],
            "native ms": 1e3 * totals["native"],
            "speedup": (
                f"{totals['numpy'] / max(totals['native'], 1e-9):.1f}x"
            ),
            "agree": "yes" if all_agree else "NO",
        }
    )

    k = 6
    n_pairs = 4 * config.queries
    serve = Table(
        f"Native — thread-pool serving (scale={config.scale}, k={k}, "
        f"{n_pairs} pairs per row, best of {reps})",
        ["dataset", "pairs", "inproc ms", "thread@1 ms", "thread@2 ms",
         "speedup", "agree"],
        caption=(
            "inproc = one in-process query_batch call; thread@W = the "
            "same batch through a W-thread ThreadQueryServer sharing the "
            "mmap'd index (zero IPC); speedup = inproc/thread@2; agree = "
            "bit-identical to in-process.  TOTAL sums milliseconds."
        ),
    )
    stotals = {"inproc": 0.0, 1: 0.0, 2: 0.0}
    serve_agree = True
    with tempfile.TemporaryDirectory() as tmp:
        for name in config.datasets:
            gg = config.graph(name)
            idx = KReachIndex(gg, k).prepare_batch()
            path = Path(tmp) / f"{name}.kr4"
            save_mmap(idx, path)
            pairs = random_pairs(gg.n, n_pairs, rng=rng)

            def best_of(fn):
                result, first_s = timed(fn)
                best = min(
                    [first_s] + [timed(fn)[1] for _ in range(reps - 1)]
                )
                return result, best

            reference, inproc_s = best_of(lambda: idx.query_batch(pairs))
            stotals["inproc"] += inproc_s
            row: dict[str, object] = {
                "dataset": name,
                "pairs": len(pairs),
                "inproc ms": 1e3 * inproc_s,
            }
            agree = True
            for w in (1, 2):
                with ThreadQueryServer(path, workers=w) as server:
                    server.query_batch(pairs[:1024])  # warm the pool
                    served, served_s = best_of(
                        lambda: server.query_batch(pairs)
                    )
                    agree &= bool(np.array_equal(served, reference))
                    stotals[w] += served_s
                    row[f"thread@{w} ms"] = 1e3 * served_s
            row["speedup"] = (
                f"{inproc_s / max(row['thread@2 ms'] / 1e3, 1e-9):.1f}x"
            )
            serve_agree &= agree
            row["agree"] = "yes" if agree else "NO"
            serve.add_row(row)
    serve.add_row(
        {
            "dataset": "TOTAL",
            "inproc ms": 1e3 * stotals["inproc"],
            "thread@1 ms": 1e3 * stotals[1],
            "thread@2 ms": 1e3 * stotals[2],
            "speedup": (
                f"{stotals['inproc'] / max(stotals[2], 1e-9):.1f}x"
            ),
            "agree": "yes" if serve_agree else "NO",
        }
    )
    return kernels, serve


# ----------------------------------------------------------------------
# Ablations (ours; motivated by §4.3, §4.4 and §6.3.2)
# ----------------------------------------------------------------------

def run_ablation_covers(config: SuiteConfig) -> Table:
    """Cover-strategy ablation: §4.3's degree-first pick vs alternatives."""
    table = Table(
        f"Ablation — vertex-cover strategy (scale={config.scale})",
        ["dataset", "degree |S|", "random |S|", "greedy |S|",
         "degree µs", "random µs", "greedy µs"],
        caption=(
            "Cover size and n-reach query cost per strategy; §4.3 argues the "
            "degree-first pick shrinks the cover and speeds up hub queries."
        ),
    )
    rng = np.random.default_rng(config.seed)
    for name in config.datasets:
        g = config.graph(name)
        pairs = config.pairs(name)
        covers = {
            "degree": vertex_cover_2approx(g, order="degree"),
            "random": vertex_cover_2approx(g, order="random", rng=rng),
            "greedy": greedy_vertex_cover(g),
        }
        row: dict[str, object] = {"dataset": name}
        for label, cover in covers.items():
            idx = KReachIndex(g, None, cover=cover)
            row[f"{label} |S|"] = len(cover)
            row[f"{label} µs"] = fmt_us(time_queries(idx.query, pairs).us_per_query)
        table.add_row(row)
    return table


def run_ablation_general_k(config: SuiteConfig) -> Table:
    """General-k ablation: §4.4's three designs on storage and exactness."""
    table = Table(
        f"Ablation — general-k support (scale={config.scale})",
        ["dataset", "d", "geometric MB", "exact-family MB", "oracle MB",
         "geometric exact %", "geometric levels"],
        caption=(
            "Geometric = lg d indexes with banded answers; exact family = one "
            "index per k; oracle = exact cover distances (§4.4)."
        ),
    )
    rng = np.random.default_rng(config.seed)
    for name in config.datasets:
        g = config.graph(name)
        diameter, _ = shortest_path_stats(
            g, sample_size=min(g.n, 400), rng=rng
        )
        diameter = max(2, diameter)
        geo = GeometricKReachFamily(g, max_k=diameter, max_k_covers_diameter=True)
        fam = ExactKFamily(g, diameter=diameter)
        oracle = CoverDistanceOracle(g)
        pairs = config.pairs(name)[:2000]
        ks = rng.integers(1, diameter + 1, size=len(pairs))
        exact = sum(
            geo.query(int(s), int(t), int(k)).exact
            for (s, t), k in zip(pairs, ks)
        )
        table.add_row(
            {
                "dataset": name,
                "d": diameter,
                "geometric MB": fmt_mb(geo.storage_bytes()),
                "exact-family MB": fmt_mb(fam.storage_bytes()),
                "oracle MB": fmt_mb(oracle.storage_bytes()),
                "geometric exact %": fmt_pct(exact / max(1, len(pairs))),
                "geometric levels": geo.num_levels,
            }
        )
    return table


def run_ablation_case_cost(config: SuiteConfig) -> Table:
    """Per-case query cost (§6.3.2: Case 4 ≈ 12× Case 1)."""
    table = Table(
        f"Ablation — per-case n-reach query cost, µs (scale={config.scale})",
        ["dataset", "Case 1", "Case 2", "Case 3", "Case 4", "Case4/Case1"],
    )
    for name in config.datasets:
        g = config.graph(name)
        idx = KReachIndex(g, None)
        pairs = config.pairs(name)
        buckets: dict[int, list[tuple[int, int]]] = {1: [], 2: [], 3: [], 4: []}
        for s, t in pairs:
            buckets[idx.query_case(int(s), int(t))].append((int(s), int(t)))
        row: dict[str, object] = {"dataset": name}
        per_case: dict[int, float] = {}
        for case, bucket in buckets.items():
            if len(bucket) < 10:
                row[f"Case {case}"] = None
                continue
            timing = time_queries(idx.query, np.asarray(bucket))
            per_case[case] = timing.us_per_query
            row[f"Case {case}"] = fmt_us(timing.us_per_query)
        if 1 in per_case and 4 in per_case and per_case[1] > 0:
            row["Case4/Case1"] = f"{per_case[4] / per_case[1]:.1f}x"
        table.add_row(row)
    return table


def run_ablation_online_search(config: SuiteConfig) -> Table:
    """Index-free search ablation: BFS vs bidirectional BFS vs k-reach,
    on uniform and celebrity-biased workloads (the §1 'Lady Gaga' story)."""
    table = Table(
        f"Ablation — online search vs index, µs/query (scale={config.scale}, "
        f"k=6, {config.bfs_queries} queries per cell)",
        ["dataset", "BFS uniform", "BiBFS uniform", "k-reach uniform",
         "BFS celebrity", "BiBFS celebrity", "k-reach celebrity"],
    )
    rng = np.random.default_rng(config.seed)
    k = 6
    for name in config.datasets:
        g = config.graph(name)
        uniform = config.pairs(name)[: config.bfs_queries]
        celebrity = celebrity_pairs(g, config.bfs_queries, rng=rng)
        bfs = BfsIndex(g)
        bibfs = BidirectionalBfsIndex(g)
        idx = KReachIndex(g, k)
        row: dict[str, object] = {"dataset": name}
        for wl_name, wl in (("uniform", uniform), ("celebrity", celebrity)):
            row[f"BFS {wl_name}"] = fmt_us(
                time_queries(lambda s, t: bfs.reaches_within(s, t, k), wl).us_per_query
            )
            row[f"BiBFS {wl_name}"] = fmt_us(
                time_queries(lambda s, t: bibfs.reaches_within(s, t, k), wl).us_per_query
            )
            row[f"k-reach {wl_name}"] = fmt_us(
                time_queries(idx.query, wl).us_per_query
            )
        table.add_row(row)
    return table


def run_ablation_compression(config: SuiteConfig) -> Table:
    """Row-compression ablation (§4.3's compact hub rows).

    Compares plain dict rows against WAH-compressed high-degree rows on
    index size and query cost for the 6-reach index.
    """
    table = Table(
        f"Ablation — §4.3 compressed hub rows, 6-reach (scale={config.scale})",
        ["dataset", "plain MB", "compressed MB", "size ratio",
         "plain µs", "compressed µs"],
        caption=(
            "Rows with ≥ 32 index edges become per-weight-level WAH bitmaps; "
            "queries probe bits instead of scanning neighbor lists."
        ),
    )
    for name in config.datasets:
        g = config.graph(name)
        pairs = config.pairs(name)
        plain = KReachIndex(g, 6)
        packed = KReachIndex(g, 6, cover=plain.cover, compress_rows_at=32)
        plain_b = plain.storage_bytes()
        packed_b = packed.storage_bytes()
        table.add_row(
            {
                "dataset": name,
                "plain MB": fmt_mb(plain_b),
                "compressed MB": fmt_mb(packed_b),
                "size ratio": f"{plain_b / max(1, packed_b):.1f}x",
                "plain µs": fmt_us(time_queries(plain.query, pairs).us_per_query),
                "compressed µs": fmt_us(
                    time_queries(packed.query, pairs).us_per_query
                ),
            }
        )
    return table


def run_ingest(config: SuiteConfig) -> Table:
    """Streamed external-sort ingest vs the eager reader.

    Generates one synthetic ``config.ingest_edges``-edge file (plus a
    gzip twin), loads it through :func:`~repro.graph.io.read_edge_list`
    (whole file + parse arrays resident) and through
    :func:`~repro.graph.ingest.ingest_edge_list` (chunked parse +
    spill-to-disk merge sort under ``config.ingest_mb``), and reports
    wall time and tracemalloc peak for both, the streamed buffer peak
    against its budget, the spill-run count, and whether the two CSR
    graphs are bit-identical.  A third row reruns the stream under a
    deliberately tight budget to force a multi-run external merge.

    CI gates every row: identical must hold, the stream peak must stay
    below the eager peak, and the sort buffer must stay within budget.
    With ``--condense`` the ingested graph also flows through the SCC
    condensation into a :class:`~repro.core.CondensedKReach` build.
    """
    import gzip
    import tempfile
    import time
    import tracemalloc
    from pathlib import Path

    from repro.graph.ingest import IngestStats, ingest_edge_list
    from repro.graph.io import read_edge_list

    def measure(fn):
        tracemalloc.start()
        t0 = time.perf_counter()
        out = fn()
        seconds = time.perf_counter() - t0
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return out, seconds, peak

    n_edges = config.ingest_edges
    n = max(64, n_edges // 8)
    rng = np.random.default_rng(config.seed)
    mb = float(1 << 20)
    # Budget that forces a real external merge: >= ~4 sorted runs even
    # after self-loop/duplicate drop (8 bytes per fused edge key).
    tight_mb = max(1, (8 * n_edges) // (2 * (1 << 20)))
    columns = [
        "input", "edges", "budget MB", "eager s", "eager peak MB",
        "stream s", "stream peak MB", "buf peak MB", "runs", "identical",
    ]
    if config.condense:
        columns += ["SCCs", "condense+build s"]
    table = Table(
        f"Ingest — streamed external-sort CSR build vs eager reader "
        f"({n_edges} generated edges, seed={config.seed})",
        columns,
        caption=(
            "eager = read_edge_list (whole file in memory); stream = "
            "ingest_edge_list under the given sort budget; buf peak = "
            "largest resident run buffer (must stay within budget); "
            "runs = spilled sorted runs merged; identical = both CSR "
            "graphs bit-for-bit equal.  Peaks are tracemalloc-traced "
            "allocations, so the file cache is excluded for both paths."
        ),
    )
    with tempfile.TemporaryDirectory(prefix="kreach-bench-ingest-") as tmp:
        u = rng.integers(0, n, size=n_edges)
        v = rng.integers(0, n, size=n_edges)
        body = "\n".join(f"{a} {b}" for a, b in zip(u.tolist(), v.tolist()))
        payload = (f"# synthetic gnm n={n} m={n_edges}\n" + body + "\n").encode()
        del u, v, body
        plain = Path(tmp) / "edges.txt"
        plain.write_bytes(payload)
        gz = Path(tmp) / "edges.txt.gz"
        with gzip.open(gz, "wb", compresslevel=1) as fh:
            fh.write(payload)
        del payload
        for label, path, budget in (
            ("plain", plain, config.ingest_mb),
            ("gzip", gz, config.ingest_mb),
            ("plain/tight", plain, tight_mb),
        ):
            eager, eager_s, eager_peak = measure(lambda: read_edge_list(path))
            stats = IngestStats()
            streamed, stream_s, stream_peak = measure(
                lambda: ingest_edge_list(path, memory_mb=budget, stats=stats)
            )
            identical = (
                eager.n == streamed.n
                and np.array_equal(eager.out_indptr, streamed.out_indptr)
                and np.array_equal(eager.out_indices, streamed.out_indices)
                and np.array_equal(eager.in_indptr, streamed.in_indptr)
                and np.array_equal(eager.in_indices, streamed.in_indices)
            )
            row: dict[str, object] = {
                "input": label,
                "edges": int(streamed.out_indices.size),
                "budget MB": budget,
                "eager s": eager_s,
                "eager peak MB": eager_peak / mb,
                "stream s": stream_s,
                "stream peak MB": stream_peak / mb,
                "buf peak MB": stats.max_buffered_bytes / mb,
                "runs": stats.spill_runs,
                "identical": "yes" if identical else "NO",
            }
            if config.condense:
                from repro.core import CondensedKReach

                (cond, _), cond_s, _ = measure(
                    lambda: (
                        (c := CondensedKReach(streamed, None)),
                        c.prepare_batch(),
                    )
                )
                row["SCCs"] = cond.num_components
                row["condense+build s"] = cond_s
            table.add_row(row)
    return table


def run_size(config: SuiteConfig) -> Table:
    """Table-4-style storage shootout: dense rows vs WAH rows vs PWAH.

    Builds each dataset's n-reach index twice over the same vertex
    cover — once with the default dense key/weight row store, once with
    ``storage='wah'`` (per-level compressed bitmaps, decompressed on
    touch) — plus the PWAH-8 baseline, and reports bytes per graph edge
    and µs/query over the shared random workload.  ``agree`` checks all
    three verdict vectors bit-for-bit (n-reach == plain reachability,
    so PWAH must agree too).  CI gates the TOTAL row: agree must hold
    everywhere and the aggregate WAH bytes/edge must come in under
    dense — per-dataset, near-empty indexes can invert the ratio (a WAH
    level costs 16 fixed bytes, so a 1-edge row is cheaper dense), which
    the per-row ratio column surfaces without failing the gate.
    """
    table = Table(
        f"Size — row-store bytes/edge and query cost, n-reach "
        f"(scale={config.scale}, {config.queries} random queries)",
        ["dataset", "m", "dense B/e", "wah B/e", "ratio", "pwah B/e",
         "dense µs", "wah µs", "pwah µs", "agree"],
        caption=(
            "B/e = index storage bytes per graph edge; dense/wah share "
            "one vertex cover so the stores hold identical rows; ratio "
            "= dense/wah.  wah decompresses rows on touch into a small "
            "hot FIFO, so its µs column buys the size ratio.  CI gates "
            "the TOTAL row: agree everywhere, aggregate wah < dense."
        ),
    )
    tot_m = tot_dense = tot_wah = tot_pwah = 0
    all_agree = True
    for name in config.datasets:
        g = config.graph(name)
        pairs = config.pairs(name)
        m = max(1, int(g.out_indices.size))
        dense = KReachIndex(g, None).prepare_batch()
        wah = KReachIndex(
            g, None, cover=dense.cover, storage="wah"
        ).prepare_batch()
        pwah = PwahIndex(g)
        ref = dense.query_batch(pairs, engine=config.engine)
        wah_out = wah.query_batch(pairs, engine=config.engine)
        pwah_out = pwah.reaches_batch(pairs)
        agree = bool(
            np.array_equal(ref, wah_out) and np.array_equal(ref, pwah_out)
        )
        dense_b = dense.storage_bytes()
        wah_b = wah.storage_bytes()
        table.add_row(
            {
                "dataset": name,
                "m": m,
                "dense B/e": dense_b / m,
                "wah B/e": wah_b / m,
                "ratio": f"{dense_b / max(1, wah_b):.1f}x",
                "pwah B/e": pwah.storage_bytes() / m,
                "dense µs": fmt_us(
                    time_batch_queries(
                        lambda p: dense.query_batch(p, engine=config.engine),
                        pairs,
                    ).us_per_query
                ),
                "wah µs": fmt_us(
                    time_batch_queries(
                        lambda p: wah.query_batch(p, engine=config.engine),
                        pairs,
                    ).us_per_query
                ),
                "pwah µs": fmt_us(
                    time_batch_queries(pwah.reaches_batch, pairs).us_per_query
                ),
                "agree": "yes" if agree else "NO",
            }
        )
        tot_m += m
        tot_dense += dense_b
        tot_wah += wah_b
        tot_pwah += pwah.storage_bytes()
        all_agree &= agree
    table.add_row(
        {
            "dataset": "TOTAL",
            "m": tot_m,
            "dense B/e": tot_dense / max(1, tot_m),
            "wah B/e": tot_wah / max(1, tot_m),
            "ratio": f"{tot_dense / max(1, tot_wah):.1f}x",
            "pwah B/e": tot_pwah / max(1, tot_m),
            "agree": "yes" if all_agree else "NO",
        }
    )
    return table


#: CLI name -> callable; each returns a Table or tuple of Tables.
def run_shard(config: SuiteConfig) -> Table:
    """The sharded serving tier: scatter-gather throughput vs one pool.

    Serves the ROADMAP's "sharded scatter-gather" milestone.  Every
    dataset's 6-reach index is hub-aware partitioned
    (:func:`~repro.core.partition.partition_kreach`) into 1- and
    2-shard manifests; one big random batch then runs through the
    in-process engine and through
    :class:`~repro.core.sharded.ShardedQueryServer` at both shard
    counts (process pools, one worker per shard — total parallelism =
    the shard count).  Every served verdict is checked bit-for-bit
    against the in-process reference ("agree"), so the benchmark
    doubles as a live differential test.  CI gates the TOTAL row:
    agree must hold and 2-shard throughput must be no worse than
    1-shard beyond scheduler-noise tolerance (a 1-core runner cannot
    show a 2-shard speedup; a multi-core one can — the acceptance
    target there is ≥ 1.5x).
    """
    import tempfile
    from pathlib import Path

    from repro.core.partition import partition_kreach
    from repro.core.serialize import save_sharded
    from repro.core.sharded import ShardedQueryServer

    k = 6
    shard_counts = (1, 2)
    n_pairs = 4 * config.queries
    reps = max(2, config.repeat)
    shard_cols = [f"shard@{c} ms" for c in shard_counts]
    table = Table(
        f"Shard — scatter-gather serving throughput (scale={config.scale}, "
        f"k={k}, {n_pairs} pairs per row, 1 worker per shard)",
        ["dataset", "pairs", "|B|", "cross", "part ms", "mani MB",
         "inproc ms", *shard_cols, "speedup", "agree"],
        caption=(
            "|B| = replicated boundary (hub) vertices; cross = pairs "
            "stitched through the boundary portal tables instead of a "
            "single shard; part ms = partition + manifest save; "
            "shard@N = the batch through a ShardedQueryServer over an "
            "N-shard manifest (process pool per shard); speedup = "
            "shard@1 / shard@2; agree = every served verdict "
            "bit-identical to the in-process global index.  TOTAL sums "
            "milliseconds; CI gates agree and shard@2 <= 1.25x shard@1 "
            "on it."
        ),
    )
    totals: dict[object, float] = {"inproc": 0.0}
    totals.update({c: 0.0 for c in shard_counts})
    all_agree = True
    rng = np.random.default_rng(config.seed)
    with tempfile.TemporaryDirectory() as tmp:
        for name in config.datasets:
            g = config.graph(name)
            idx = KReachIndex(g, k).prepare_batch()
            pairs = random_pairs(g.n, n_pairs, rng=rng)

            def best_of(fn):
                result, first_s = timed(fn)
                best = min(
                    [first_s] + [timed(fn)[1] for _ in range(reps - 1)]
                )
                return result, best

            reference, inproc_s = best_of(lambda: idx.query_batch(pairs))
            totals["inproc"] += inproc_s
            row: dict[str, object] = {
                "dataset": name,
                "pairs": len(pairs),
                "inproc ms": 1e3 * inproc_s,
            }
            agree = True
            part_s = 0.0
            shard_times: dict[int, float] = {}
            for count in shard_counts:
                directory = Path(tmp) / f"{name}-{count}"
                sharded, one_part_s = timed(
                    lambda: save_sharded(
                        partition_kreach(g, k, count), directory
                    )
                )
                part_s += one_part_s
                if count == max(shard_counts):
                    sk = partition_kreach(g, k, count)
                    s64 = pairs[:, 0].astype(np.int64)
                    t64 = pairs[:, 1].astype(np.int64)
                    row["|B|"] = len(sk.boundary)
                    row["cross"] = int((sk.route(s64, t64) < 0).sum())
                    row["mani MB"] = fmt_mb(
                        sum(f.stat().st_size for f in directory.iterdir())
                    )
                with ShardedQueryServer(
                    directory, workers=1, backend="process"
                ) as server:
                    server.query_batch(pairs[:1024])  # warm the pools
                    served, served_s = best_of(
                        lambda: server.query_batch(pairs)
                    )
                    agree &= bool(np.array_equal(served, reference))
                    shard_times[count] = served_s
                    totals[count] += served_s
                    row[f"shard@{count} ms"] = 1e3 * served_s
            row["part ms"] = 1e3 * part_s
            row["speedup"] = (
                f"{shard_times[shard_counts[0]] / max(shard_times[shard_counts[-1]], 1e-9):.2f}x"
            )
            all_agree &= agree
            row["agree"] = "yes" if agree else "NO"
            table.add_row(row)
    total_row: dict[str, object] = {
        "dataset": "TOTAL",
        "inproc ms": 1e3 * totals["inproc"],
        "speedup": (
            f"{totals[shard_counts[0]] / max(totals[shard_counts[-1]], 1e-9):.2f}x"
        ),
        "agree": "yes" if all_agree else "NO",
    }
    for count in shard_counts:
        total_row[f"shard@{count} ms"] = 1e3 * totals[count]
    table.add_row(total_row)
    return table


ALL_EXPERIMENTS = {
    "build": run_build,
    "table2": run_table2,
    "table3-4-5": run_table3_4_5,
    "table6": run_table6,
    "table7": run_table7,
    "table8": run_table8,
    "table9": run_table9,
    "throughput": run_throughput,
    "dynamic": run_dynamic,
    "serve": run_serve,
    "shard": run_shard,
    "native": run_native,
    "ingest": run_ingest,
    "size": run_size,
    "ablation-covers": run_ablation_covers,
    "ablation-general-k": run_ablation_general_k,
    "ablation-case-cost": run_ablation_case_cost,
    "ablation-online-search": run_ablation_online_search,
    "ablation-compression": run_ablation_compression,
}
