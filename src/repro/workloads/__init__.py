"""Query workload generators (random, celebrity-biased, positive-biased)."""

from repro.workloads.queries import (
    case_distribution,
    celebrity_pairs,
    churn_trace,
    positive_pairs,
    random_pairs,
)

__all__ = [
    "random_pairs",
    "celebrity_pairs",
    "positive_pairs",
    "churn_trace",
    "case_distribution",
]
