"""Query workload generators (random, celebrity-biased, positive-biased)."""

from repro.workloads.queries import (
    case_distribution,
    celebrity_pairs,
    positive_pairs,
    random_pairs,
)

__all__ = ["random_pairs", "celebrity_pairs", "positive_pairs", "case_distribution"]
