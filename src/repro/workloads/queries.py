"""Query workload generators.

The paper evaluates every index on **1 million uniformly random vertex
pairs** (§6.2.2, with Table 8 showing the induced Case-1..4 mix).  This
module generates that workload plus two structured variants used by the
examples and ablations:

* :func:`random_pairs` — the paper's workload;
* :func:`celebrity_pairs` — pairs whose source or target is a high-degree
  vertex (the §4.3 "Lady Gaga" scenario);
* :func:`positive_pairs` — pairs guaranteed reachable within a hop budget
  (for workloads needing a controlled positive rate);
* :func:`churn_trace` — an interleaved insert/delete/query-batch
  operation stream for the dynamic (snapshot + overlay) engine's
  benchmark and tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_distances_scalar

__all__ = [
    "random_pairs",
    "celebrity_pairs",
    "positive_pairs",
    "churn_trace",
    "case_distribution",
]


def random_pairs(
    n: int, count: int, *, rng: np.random.Generator | None = None
) -> np.ndarray:
    """``count`` uniform (s, t) pairs over ``[0, n)`` as an (count, 2) array."""
    if n < 1:
        raise ValueError(f"need at least one vertex, got n={n}")
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    rng = rng or np.random.default_rng(0)
    return rng.integers(0, n, size=(count, 2), dtype=np.int64)


def celebrity_pairs(
    g: DiGraph,
    count: int,
    *,
    top_fraction: float = 0.001,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Pairs with one endpoint drawn from the highest-degree vertices.

    Models the paper's observation that "high-degree vertices may indeed
    have a higher probability to be picked as query vertices".  Each pair
    has its celebrity on a random side.
    """
    if g.n < 1:
        raise ValueError("graph has no vertices")
    rng = rng or np.random.default_rng(0)
    top_k = max(1, int(g.n * top_fraction))
    celebrities = np.argsort(-g.degrees(), kind="stable")[:top_k]
    celeb = rng.choice(celebrities, size=count)
    other = rng.integers(0, g.n, size=count)
    side = rng.random(count) < 0.5
    pairs = np.empty((count, 2), dtype=np.int64)
    pairs[:, 0] = np.where(side, celeb, other)
    pairs[:, 1] = np.where(side, other, celeb)
    return pairs


def positive_pairs(
    g: DiGraph,
    count: int,
    *,
    k: int | None = None,
    rng: np.random.Generator | None = None,
    max_attempts_factor: int = 50,
) -> np.ndarray:
    """Pairs with ``s →k t`` guaranteed (``k=None``: plain reachability).

    Sampled by picking random sources and random members of their
    (k-bounded) forward BFS ball.  Raises if the graph is so disconnected
    that positives cannot be found within the attempt budget.
    """
    if g.n < 1:
        raise ValueError("graph has no vertices")
    rng = rng or np.random.default_rng(0)
    out: list[tuple[int, int]] = []
    attempts = 0
    max_attempts = max_attempts_factor * max(1, count)
    # Sources whose (k-bounded) ball is empty, memoized so rejection
    # sampling never re-BFSes the same dead vertex: on sparse graphs the
    # same sink-like sources are redrawn over and over, and without the
    # memo each redraw pays a BFS until the attempt budget blows up.
    dead: set[int] = set()
    while len(out) < count:
        if len(dead) == g.n:
            raise RuntimeError(
                f"could not sample {count} positive pairs: every source has "
                f"an empty {'reachability' if k is None else f'{k}-hop'} ball"
            )
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not sample {count} positive pairs in {max_attempts} attempts"
            )
        s = int(rng.integers(0, g.n))
        if s in dead:
            continue
        ball = [v for v in bfs_distances_scalar(g, s, k=k) if v != s]
        if not ball:
            dead.add(s)
            continue
        t = ball[int(rng.integers(0, len(ball)))]
        out.append((s, t))
    return np.asarray(out, dtype=np.int64)


def churn_trace(
    g: DiGraph,
    events: int,
    *,
    read_fraction: float = 0.5,
    insert_fraction: float = 0.5,
    batch_size: int = 256,
    write_burst: int = 1,
    rng: np.random.Generator | None = None,
) -> list[tuple]:
    """A seeded interleaved insert/delete/query operation stream.

    The mixed read/write workload the dynamic engine serves: each event
    is, with probability ``read_fraction``, a ``('query', pairs)`` batch
    of ``batch_size`` uniform (s, t) pairs, and otherwise a burst of
    ``write_burst`` consecutive writes — each an ``('insert', u, v)`` of
    an edge absent from the current graph (with probability
    ``insert_fraction``) or a ``('delete', u, v)`` of a currently live
    edge.  Bursts model batched ingestion, the shape write-absorbing
    engines (and the overlay's deferred deletion repair) are built for;
    ``write_burst=1`` degrades to a fully interleaved stream.  Writes
    track graph state starting from ``g``'s edges, so deletes always
    name live edges and inserts always add; a delete with nothing live
    degrades to an insert (and vice versa on a saturated or too-small
    graph, where an impossible write is dropped).

    Deterministic given ``rng``; consumers replay the returned list
    against whatever engine they measure.
    """
    if g.n < 1:
        raise ValueError("graph has no vertices")
    if events < 0:
        raise ValueError(f"events must be non-negative, got {events}")
    if not 0.0 <= read_fraction <= 1.0:
        raise ValueError(f"read_fraction must be in [0, 1], got {read_fraction}")
    if not 0.0 <= insert_fraction <= 1.0:
        raise ValueError(
            f"insert_fraction must be in [0, 1], got {insert_fraction}"
        )
    if batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if write_burst < 1:
        raise ValueError(f"write_burst must be >= 1, got {write_burst}")
    rng = rng or np.random.default_rng(0)
    live_list: list[tuple[int, int]] = [(int(u), int(v)) for u, v in g.edges()]
    live = set(live_list)
    # Fixed event mix, shuffled: exactly round(events * read_fraction)
    # reads regardless of seed, so two traces with the same parameters
    # have comparable volume and only differ in ordering and edge choice.
    reads = np.zeros(events, dtype=bool)
    reads[: round(events * read_fraction)] = True
    rng.shuffle(reads)
    ops: list[tuple] = []
    for is_read in reads.tolist():
        if is_read:
            ops.append(("query", random_pairs(g.n, batch_size, rng=rng)))
            continue
        for _write in range(write_burst):
            do_insert = rng.random() < insert_fraction
            if not do_insert and not live_list:
                do_insert = True
            if do_insert:
                edge = None
                for _attempt in range(64):
                    u = int(rng.integers(0, g.n))
                    v = int(rng.integers(0, g.n))
                    if u != v and (u, v) not in live:
                        edge = (u, v)
                        break
                if edge is None:  # saturated (or single-vertex) graph
                    if not live_list:
                        continue
                    do_insert = False
                else:
                    live.add(edge)
                    live_list.append(edge)
                    ops.append(("insert", *edge))
            if not do_insert:
                i = int(rng.integers(0, len(live_list)))
                edge = live_list[i]
                live_list[i] = live_list[-1]
                live_list.pop()
                live.discard(edge)
                ops.append(("delete", *edge))
    return ops


def case_distribution(index, pairs: np.ndarray) -> dict[int, float]:
    """Fraction of ``pairs`` per Algorithm-2/3 case (the paper's Table 8).

    Routed through the index's vectorized ``query_case_batch`` when it has
    one (both :class:`~repro.core.kreach.KReachIndex` and
    :class:`~repro.core.hkreach.HKReachIndex` do); otherwise falls back to
    the scalar ``query_case(s, t) -> int`` loop.
    """
    query_case_batch = getattr(index, "query_case_batch", None)
    if query_case_batch is not None:
        cases = np.asarray(query_case_batch(pairs))
        tallies = np.bincount(cases, minlength=5)
        counts = {case: int(tallies[case]) for case in (1, 2, 3, 4)}
    else:
        counts = {1: 0, 2: 0, 3: 0, 4: 0}
        for s, t in pairs:
            counts[index.query_case(int(s), int(t))] += 1
    total = max(1, len(pairs))
    return {case: counts[case] / total for case in counts}
