"""Packed small-integer arrays.

§4.3 of the paper observes that a k-reach edge weight takes one of only
three values — ``k-2``, ``k-1``, ``k`` — so 2 bits per edge suffice, and the
(h,k)-reach generalization needs ``ceil(log2(2h+1))`` bits.  This module
provides the fixed-width packed array the index's storage model is built on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PackedIntArray", "bits_needed"]


def bits_needed(num_values: int) -> int:
    """Bits per entry to distinguish ``num_values`` distinct values (>= 1)."""
    if num_values < 1:
        raise ValueError(f"num_values must be >= 1, got {num_values}")
    return max(1, int(num_values - 1).bit_length())


class PackedIntArray:
    """A fixed-length array of ``bits``-wide unsigned integers.

    Entries are packed little-endian into a uint64 word array; random access
    is O(1).  Values must fit in ``bits`` bits.

    >>> a = PackedIntArray(5, bits=2)
    >>> a[0] = 3; a[4] = 1
    >>> a[0], a[1], a[4]
    (3, 0, 1)
    >>> a.storage_bytes()  # 5 entries x 2 bits -> 2 bytes
    2
    """

    __slots__ = ("length", "bits", "_words", "_mask")

    _WORD_BITS = 64

    @classmethod
    def _words_needed(cls, length: int, bits: int) -> int:
        """Backing words for ``length`` entries, validating the parameters.

        Includes the spare word that lets a straddling entry read two
        words unconditionally — the one formula both the allocating
        constructor and the zero-copy install path must agree on.
        """
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        return (length * bits + cls._WORD_BITS - 1) // cls._WORD_BITS + 1

    def __init__(self, length: int, *, bits: int) -> None:
        nwords = self._words_needed(length, bits)
        self.length = length
        self.bits = bits
        self._words = np.zeros(nwords, dtype=np.uint64)
        self._mask = (1 << bits) - 1

    @classmethod
    def from_values(cls, values: "list[int] | np.ndarray", *, bits: int) -> "PackedIntArray":
        """Pack an existing sequence (vectorized; see :meth:`from_numpy`)."""
        return cls.from_numpy(np.asarray(values, dtype=np.int64), bits=bits)

    @classmethod
    def from_numpy(cls, values: np.ndarray, *, bits: int) -> "PackedIntArray":
        """Pack a numpy integer array without a Python-level loop.

        The little-endian bit stream is assembled with ``np.packbits``, so
        packing |E_I|-sized weight arrays during index construction costs
        a handful of vectorized passes instead of one ``__setitem__`` per
        entry.

        >>> PackedIntArray.from_numpy(np.array([3, 0, 1]), bits=2).to_list()
        [3, 0, 1]
        """
        values = np.asarray(values, dtype=np.int64)
        arr = cls(len(values), bits=bits)
        if len(values) == 0:
            return arr
        if int(values.min()) < 0 or int(values.max()) > arr._mask:
            raise ValueError(f"values do not fit in {bits} bits")
        stream = (
            (values[:, None] >> np.arange(bits, dtype=np.int64)) & 1
        ).astype(np.uint8)
        packed = np.packbits(stream.reshape(-1), bitorder="little")
        buf = np.zeros(arr._words.nbytes, dtype=np.uint8)
        buf[: len(packed)] = packed
        arr._words = buf.view(np.uint64)
        return arr

    @classmethod
    def from_words(
        cls, words: np.ndarray, length: int, *, bits: int, copy: bool = True
    ) -> "PackedIntArray":
        """Rebuild from a raw word array (the on-disk form; see :attr:`words`).

        With ``copy=False`` the word array is installed **as the backing
        store** — no allocation and no pass over the payload, which is what
        lets the memory-mapped loader open a packed weight array in O(1).
        The zero-copy path requires the array to carry the exact padded
        word count (``nwords + 1``, the spare straddle word included), and
        the result must be treated as frozen: writes through
        ``__setitem__`` would write through to the caller's buffer (and
        fault on a read-only mmap).
        """
        words = np.asarray(words, dtype=np.uint64)
        if not copy:
            arr = object.__new__(cls)
            needed = cls._words_needed(length, bits)
            if len(words) != needed:
                raise ValueError(
                    f"zero-copy install needs exactly {needed} words "
                    f"(spare included) for {length} {bits}-bit entries, "
                    f"got {len(words)}"
                )
            arr.length = length
            arr.bits = bits
            arr._words = words
            arr._mask = (1 << bits) - 1
            return arr
        arr = cls(length, bits=bits)
        if len(words) > len(arr._words):
            raise ValueError(
                f"{len(words)} words exceed the {len(arr._words)} needed "
                f"for {length} {bits}-bit entries"
            )
        arr._words[: len(words)] = words
        return arr

    @property
    def words(self) -> np.ndarray:
        """The backing uint64 word array (including the spare padding word)."""
        return self._words

    def as_numpy(self) -> np.ndarray:
        """Unpack every entry into an int64 array (vectorized).

        The inverse of :meth:`from_numpy`; one ``np.unpackbits`` pass plus
        a matmul against the bit weights, no Python loop.
        """
        if self.length == 0:
            return np.empty(0, dtype=np.int64)
        stream = np.unpackbits(
            self._words.view(np.uint8),
            count=self.length * self.bits,
            bitorder="little",
        )
        bit_matrix = stream.reshape(self.length, self.bits).astype(np.int64)
        return bit_matrix @ (np.int64(1) << np.arange(self.bits, dtype=np.int64))

    def leq_mask(self, value: int) -> np.ndarray:
        """Vectorized ``entry <= value`` over all entries (a bool array).

        The bitset-join engines build their per-budget link matrices from
        exactly this predicate (weights quantized at the §4.3 bit width
        compared against a query budget), so it short-circuits the
        saturating cases: a negative ``value`` matches nothing and
        ``value >= 2**bits - 1`` matches everything without unpacking.
        """
        if value < 0:
            return np.zeros(self.length, dtype=bool)
        if value >= self._mask:
            return np.ones(self.length, dtype=bool)
        return self.as_numpy() <= value

    def _locate(self, i: int) -> tuple[int, int]:
        if not 0 <= i < self.length:
            raise IndexError(f"index {i} out of range [0, {self.length})")
        bit = i * self.bits
        return bit // self._WORD_BITS, bit % self._WORD_BITS

    def __getitem__(self, i: int) -> int:
        word, offset = self._locate(i)
        lo = int(self._words[word]) >> offset
        if offset + self.bits > self._WORD_BITS:
            hi = int(self._words[word + 1]) << (self._WORD_BITS - offset)
            lo |= hi
        return lo & self._mask

    def __setitem__(self, i: int, value: int) -> None:
        if not 0 <= value <= self._mask:
            raise ValueError(f"value {value} does not fit in {self.bits} bits")
        word, offset = self._locate(i)
        current = int(self._words[word])
        current &= ~(self._mask << offset) & 0xFFFFFFFFFFFFFFFF
        current |= (value << offset) & 0xFFFFFFFFFFFFFFFF
        self._words[word] = np.uint64(current)
        if offset + self.bits > self._WORD_BITS:
            spill = self.bits - (self._WORD_BITS - offset)
            nxt = int(self._words[word + 1])
            nxt &= ~((1 << spill) - 1)
            nxt |= value >> (self.bits - spill)
            self._words[word + 1] = np.uint64(nxt)

    def __len__(self) -> int:
        return self.length

    def to_list(self) -> list[int]:
        """Unpack to a plain Python list."""
        return [self[i] for i in range(self.length)]

    def storage_bytes(self) -> int:
        """Bytes actually needed: ``ceil(length * bits / 8)`` (the disk model,
        excluding the spare padding word)."""
        return (self.length * self.bits + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedIntArray(length={self.length}, bits={self.bits})"
