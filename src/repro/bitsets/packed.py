"""Packed small-integer arrays.

§4.3 of the paper observes that a k-reach edge weight takes one of only
three values — ``k-2``, ``k-1``, ``k`` — so 2 bits per edge suffice, and the
(h,k)-reach generalization needs ``ceil(log2(2h+1))`` bits.  This module
provides the fixed-width packed array the index's storage model is built on.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PackedIntArray", "bits_needed"]


def bits_needed(num_values: int) -> int:
    """Bits per entry to distinguish ``num_values`` distinct values (>= 1)."""
    if num_values < 1:
        raise ValueError(f"num_values must be >= 1, got {num_values}")
    return max(1, int(num_values - 1).bit_length())


class PackedIntArray:
    """A fixed-length array of ``bits``-wide unsigned integers.

    Entries are packed little-endian into a uint64 word array; random access
    is O(1).  Values must fit in ``bits`` bits.

    >>> a = PackedIntArray(5, bits=2)
    >>> a[0] = 3; a[4] = 1
    >>> a[0], a[1], a[4]
    (3, 0, 1)
    >>> a.storage_bytes()  # 5 entries x 2 bits -> 2 bytes
    2
    """

    __slots__ = ("length", "bits", "_words", "_mask")

    _WORD_BITS = 64

    def __init__(self, length: int, *, bits: int) -> None:
        if length < 0:
            raise ValueError(f"length must be non-negative, got {length}")
        if not 1 <= bits <= 32:
            raise ValueError(f"bits must be in [1, 32], got {bits}")
        self.length = length
        self.bits = bits
        total_bits = length * bits
        nwords = (total_bits + self._WORD_BITS - 1) // self._WORD_BITS
        # One spare word lets a straddling entry read two words unconditionally.
        self._words = np.zeros(nwords + 1, dtype=np.uint64)
        self._mask = (1 << bits) - 1

    @classmethod
    def from_values(cls, values: "list[int] | np.ndarray", *, bits: int) -> "PackedIntArray":
        """Pack an existing sequence."""
        arr = cls(len(values), bits=bits)
        for i, v in enumerate(values):
            arr[i] = int(v)
        return arr

    def _locate(self, i: int) -> tuple[int, int]:
        if not 0 <= i < self.length:
            raise IndexError(f"index {i} out of range [0, {self.length})")
        bit = i * self.bits
        return bit // self._WORD_BITS, bit % self._WORD_BITS

    def __getitem__(self, i: int) -> int:
        word, offset = self._locate(i)
        lo = int(self._words[word]) >> offset
        if offset + self.bits > self._WORD_BITS:
            hi = int(self._words[word + 1]) << (self._WORD_BITS - offset)
            lo |= hi
        return lo & self._mask

    def __setitem__(self, i: int, value: int) -> None:
        if not 0 <= value <= self._mask:
            raise ValueError(f"value {value} does not fit in {self.bits} bits")
        word, offset = self._locate(i)
        current = int(self._words[word])
        current &= ~(self._mask << offset) & 0xFFFFFFFFFFFFFFFF
        current |= (value << offset) & 0xFFFFFFFFFFFFFFFF
        self._words[word] = np.uint64(current)
        if offset + self.bits > self._WORD_BITS:
            spill = self.bits - (self._WORD_BITS - offset)
            nxt = int(self._words[word + 1])
            nxt &= ~((1 << spill) - 1)
            nxt |= value >> (self.bits - spill)
            self._words[word + 1] = np.uint64(nxt)

    def __len__(self) -> int:
        return self.length

    def to_list(self) -> list[int]:
        """Unpack to a plain Python list."""
        return [self[i] for i in range(self.length)]

    def storage_bytes(self) -> int:
        """Bytes actually needed: ``ceil(length * bits / 8)`` (the disk model,
        excluding the spare padding word)."""
        return (self.length * self.bits + 7) // 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PackedIntArray(length={self.length}, bits={self.bits})"
