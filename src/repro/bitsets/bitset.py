"""Fixed-size bitsets over numpy uint64 words.

Transitive-closure rows (the PWAH baseline and the exact-TC oracle) are
unions of many successor sets; a word-wise bitset makes that a handful of
vectorized ORs.  The layout is little-endian within the word: bit ``i``
lives in word ``i // 64`` at position ``i % 64``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

__all__ = ["Bitset"]

_WORD_BITS = 64


class Bitset:
    """A mutable fixed-universe bitset.

    Parameters
    ----------
    size:
        Universe size; valid bit positions are ``0 .. size-1``.

    Examples
    --------
    >>> b = Bitset(100)
    >>> b.set(3); b.set(64)
    >>> b.test(3), b.test(4)
    (True, False)
    >>> sorted(b)
    [3, 64]
    """

    __slots__ = ("size", "words")

    def __init__(self, size: int, words: np.ndarray | None = None) -> None:
        if size < 0:
            raise ValueError(f"size must be non-negative, got {size}")
        self.size = size
        nwords = (size + _WORD_BITS - 1) // _WORD_BITS
        if words is None:
            self.words = np.zeros(nwords, dtype=np.uint64)
        else:
            if len(words) != nwords:
                raise ValueError(f"expected {nwords} words, got {len(words)}")
            self.words = words.astype(np.uint64, copy=True)

    @classmethod
    def from_indices(cls, size: int, indices: Iterable[int]) -> "Bitset":
        """Bitset with exactly the given positions set."""
        b = cls(size)
        idx = np.asarray(list(indices), dtype=np.int64)
        if len(idx):
            if idx.min() < 0 or idx.max() >= size:
                raise IndexError("bit position out of range")
            np.bitwise_or.at(
                b.words, idx // _WORD_BITS, np.uint64(1) << (idx % _WORD_BITS).astype(np.uint64)
            )
        return b

    def _check(self, i: int) -> None:
        if not 0 <= i < self.size:
            raise IndexError(f"bit {i} out of range [0, {self.size})")

    def set(self, i: int) -> None:
        """Set bit ``i``."""
        self._check(i)
        self.words[i // _WORD_BITS] |= np.uint64(1) << np.uint64(i % _WORD_BITS)

    def clear(self, i: int) -> None:
        """Clear bit ``i``."""
        self._check(i)
        self.words[i // _WORD_BITS] &= ~(np.uint64(1) << np.uint64(i % _WORD_BITS))

    def test(self, i: int) -> bool:
        """Whether bit ``i`` is set."""
        self._check(i)
        return bool(
            (self.words[i // _WORD_BITS] >> np.uint64(i % _WORD_BITS)) & np.uint64(1)
        )

    def union_update(self, other: "Bitset") -> None:
        """In-place union (``self |= other``)."""
        if other.size != self.size:
            raise ValueError("bitset sizes differ")
        np.bitwise_or(self.words, other.words, out=self.words)

    def intersects(self, other: "Bitset") -> bool:
        """Whether the two sets share any member."""
        if other.size != self.size:
            raise ValueError("bitset sizes differ")
        return bool(np.any(self.words & other.words))

    def count(self) -> int:
        """Number of set bits."""
        return int(np.sum(np.unpackbits(self.words.view(np.uint8))))

    def indices(self) -> np.ndarray:
        """Sorted array of set positions."""
        bits = np.unpackbits(self.words.view(np.uint8), bitorder="little")
        return np.flatnonzero(bits[: self.size])

    def copy(self) -> "Bitset":
        """A deep copy."""
        out = Bitset(self.size)
        out.words[:] = self.words
        return out

    def storage_bytes(self) -> int:
        """Bytes of the word array."""
        return int(self.words.nbytes)

    def __iter__(self) -> Iterator[int]:
        return iter(int(i) for i in self.indices())

    def __len__(self) -> int:
        return self.count()

    def __contains__(self, i: int) -> bool:
        return 0 <= i < self.size and self.test(i)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Bitset):
            return NotImplemented
        return self.size == other.size and bool(np.array_equal(self.words, other.words))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Bitset(size={self.size}, count={self.count()})"
