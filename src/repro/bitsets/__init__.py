"""Bitset substrate: plain bitsets, WAH compression, packed small integers."""

from repro.bitsets.bitset import Bitset
from repro.bitsets.packed import PackedIntArray, bits_needed
from repro.bitsets.wah import WahBitVector

__all__ = ["Bitset", "PackedIntArray", "bits_needed", "WahBitVector"]
