"""Bitset substrate: plain bitsets, WAH compression, packed small integers,
and the packed-uint64 join kernels the batch query engines run on."""

from repro.bitsets.bitset import Bitset
from repro.bitsets.ops import (
    DEFAULT_MATRIX_BYTES,
    and_any,
    bit_matrix,
    matrix_bytes,
    or_rows_segmented,
    probe_bits,
    words_for,
)
from repro.bitsets.packed import PackedIntArray, bits_needed
from repro.bitsets.wah import WahBitVector

__all__ = [
    "Bitset",
    "PackedIntArray",
    "bits_needed",
    "WahBitVector",
    "DEFAULT_MATRIX_BYTES",
    "and_any",
    "bit_matrix",
    "matrix_bytes",
    "or_rows_segmented",
    "probe_bits",
    "words_for",
]
