"""Packed-uint64 bitset-join kernels for the batch query engines.

The query side of every index in this package ultimately asks set
questions — "does some out-neighbor of ``s`` link to some in-neighbor of
``t`` within budget?" — and the scalar escape hatches (hub×hub cross
products, per-pair Algorithm-3 walks) all stem from answering them one
element at a time.  This module provides the word-parallel primitives the
bitset engines are built on: sets of *cover positions* packed 64 per
uint64 word, so a membership join is a handful of vectorized ``AND`` /
``OR`` passes instead of a Python loop.

Layout convention: a "bit row" over a universe of ``nbits`` positions is
a ``words_for(nbits)``-long uint64 array, little-endian within the word
(position ``p`` lives in word ``p >> 6`` at bit ``p & 63``) — the same
layout as :class:`~repro.bitsets.bitset.Bitset` and the MS-BFS frontier
masks in :mod:`repro.graph.traversal`.

All kernels are allocation-bounded: the fan-out helpers chunk their
temporaries to at most ``max_words`` uint64 words, so a celebrity vertex
with a graph-sized neighbor list cannot blow up transient memory the way
the materialized cross products could.

Each kernel exists in two tiers (see :mod:`repro.native`): the vectorized
numpy implementation below — always available, the differential baseline —
and a loop-level body in :mod:`repro.native_kernels` that numba compiles
to a GIL-releasing machine loop with no temporaries at all.  The public
functions dispatch per call; semantics are byte-identical across tiers.
"""

from __future__ import annotations

import numpy as np

from repro import native
from repro import native_kernels as _nk

__all__ = [
    "DEFAULT_MATRIX_BYTES",
    "words_for",
    "matrix_bytes",
    "bit_matrix",
    "set_bits",
    "or_rows_segmented",
    "and_any",
    "probe_bits",
]

#: Default ceiling on the bytes a cover-local link matrix (or the stack of
#: per-budget matrices for (h,k)-reach) may occupy before the batch
#: engines fall back to their chunked/scalar paths.  64 MiB admits covers
#: up to ~23k vertices per matrix — far beyond the paper's datasets.
DEFAULT_MATRIX_BYTES = 64 << 20

_WORD_BITS = 64


def words_for(nbits: int) -> int:
    """uint64 words needed to hold ``nbits`` bit positions."""
    return (int(nbits) + _WORD_BITS - 1) >> 6


def matrix_bytes(rows: int, nbits: int) -> int:
    """Bytes of a ``(rows, words_for(nbits))`` uint64 bit matrix."""
    return int(rows) * words_for(nbits) * 8


def _group_bounds(keys: np.ndarray) -> np.ndarray:
    """Start offsets of each run of equal values in a sorted key array."""
    new_group = np.empty(len(keys), dtype=bool)
    new_group[0] = True
    np.not_equal(keys[1:], keys[:-1], out=new_group[1:])
    return np.flatnonzero(new_group)


def bit_matrix(
    rows: np.ndarray, cols: np.ndarray, num_rows: int, nbits: int
) -> np.ndarray:
    """A ``(num_rows, words)`` uint64 matrix with bit ``cols[i]`` set in
    row ``rows[i]``.

    Duplicate ``(row, col)`` entries are OR-merged.  On the numpy tier,
    sorted ``(row, col)`` input (the natural order of CSR-derived
    streams) takes a pure reduceat path and unsorted input pays one
    argsort; the native tier scatters bits directly and never sorts.
    """
    words = words_for(nbits)
    out = np.zeros((num_rows, words), dtype=np.uint64)
    if len(rows) == 0 or words == 0:
        return out
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    fn, tier = native.resolve("set_bits")
    if tier != "numpy":
        return fn(out, rows, cols)
    keys = rows * words + (cols >> 6)
    values = np.uint64(1) << (cols & 63).astype(np.uint64)
    if len(keys) > 1 and np.any(keys[:-1] > keys[1:]):
        order = np.argsort(keys, kind="stable")
        keys = keys[order]
        values = values[order]
    bounds = _group_bounds(keys)
    flat = out.reshape(-1)
    flat[keys[bounds]] = np.bitwise_or.reduceat(values, bounds)
    return out


def _set_bits_numpy(matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Numpy twin of :func:`repro.native_kernels.set_bits_into`."""
    np.bitwise_or.at(
        matrix,
        (rows, cols >> 6),
        np.uint64(1) << (cols & 63).astype(np.uint64),
    )
    return matrix


def set_bits(matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """In-place scatter: set bit ``cols[i]`` of ``matrix[rows[i]]``.

    The patch half of an overlay rebuild: unlike a fancy-index ``|=``
    (which silently drops duplicate ``(row, word)`` targets), the
    unbuffered ``bitwise_or.at`` accumulates every entry, so callers may
    pass arbitrary duplicated scatter streams.  Returns ``matrix``.
    """
    if len(rows) == 0:
        return matrix
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    return native.kernel("set_bits")(matrix, rows, cols)


def _or_rows_into_numpy(
    matrix: np.ndarray, rows: np.ndarray, owner: np.ndarray, out: np.ndarray
) -> np.ndarray:
    """Numpy twin of :func:`repro.native_kernels.or_rows_into`.

    Unbuffered accumulate handles duplicate owners regardless of order;
    this is the unchunked reference the compile-time smoke check runs —
    the chunked ``max_words`` production path lives in
    :func:`or_rows_segmented` itself.
    """
    np.bitwise_or.at(out, owner, matrix[rows])
    return out


def or_rows_segmented(
    matrix: np.ndarray,
    rows: np.ndarray,
    owner: np.ndarray,
    num_segments: int,
    *,
    out: np.ndarray | None = None,
    max_words: int = 1 << 23,
) -> np.ndarray:
    """Per-segment OR of matrix rows: ``out[owner[i]] |= matrix[rows[i]]``.

    This is the fan-out half of a bitset join — e.g. "OR together the
    index rows of every out-neighbor of ``s``".  ``owner`` must be sorted
    ascending (the order :func:`~repro.core.batch.gather_segments`
    produces); on the numpy tier the row gather is chunked so the
    transient ``(chunk, words)`` block never exceeds ``max_words`` words.
    The native tier runs one pass over the stream with no temporaries,
    so ``max_words`` does not apply there.
    """
    words = matrix.shape[1] if matrix.ndim == 2 else 0
    if out is None:
        out = np.zeros((num_segments, words), dtype=np.uint64)
    if len(rows) == 0 or words == 0:
        return out
    fn, tier = native.resolve("or_rows")
    if tier != "numpy":
        return fn(
            matrix,
            np.asarray(rows, dtype=np.int64),
            np.asarray(owner, dtype=np.int64),
            out,
        )
    step = max(1, max_words // max(1, words))
    for start in range(0, len(rows), step):
        sel_rows = rows[start : start + step]
        sel_owner = owner[start : start + step]
        bounds = _group_bounds(sel_owner)
        ored = np.bitwise_or.reduceat(matrix[sel_rows], bounds, axis=0)
        # Owners are unique within the chunk's bounds, so the fancy-index
        # OR-assign is safe; a segment split across chunks merges here.
        targets = sel_owner[bounds]
        out[targets] |= ored
    return out


def _and_any_numpy(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Numpy twin of :func:`repro.native_kernels.and_any`."""
    if a.shape[0] == 0 or a.shape[1] == 0:
        return np.zeros(a.shape[0], dtype=bool)
    return np.any(a & b, axis=1)


def and_any(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise non-empty-intersection test: ``any(a[i] & b[i])``."""
    return native.kernel("and_any")(a, b)


def _probe_bits_numpy(
    matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray
) -> np.ndarray:
    """Numpy twin of :func:`repro.native_kernels.probe_bits`."""
    word = matrix[rows, cols >> 6]
    return ((word >> (cols & 63).astype(np.uint64)) & np.uint64(1)).astype(bool)


def probe_bits(matrix: np.ndarray, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Per-element membership probe: is bit ``cols[i]`` set in
    ``matrix[rows[i]]``?  One word gather + shift per element."""
    if len(rows) == 0:
        return np.zeros(0, dtype=bool)
    rows = np.asarray(rows, dtype=np.int64)
    cols = np.asarray(cols, dtype=np.int64)
    return native.kernel("probe_bits")(matrix, rows, cols)


# ----------------------------------------------------------------------
# Native-tier registration.  Samples cover multi-word rows, duplicate
# scatter targets, and cross-word bit positions; each call returns fresh
# arrays because the in-place kernels mutate their inputs.
# ----------------------------------------------------------------------

def _sample_matrix() -> np.ndarray:
    m = np.zeros((4, 2), dtype=np.uint64)
    m[0, 0] = np.uint64(0b1011)
    m[1, 1] = np.uint64(1) << np.uint64(5)
    m[2, 0] = np.uint64(1) << np.uint64(63)
    m[3, 1] = np.uint64(0xF0)
    return m


def _and_any_sample():
    a = _sample_matrix()
    b = np.zeros_like(a)
    b[0, 0] = np.uint64(0b0010)   # hit in word 0
    b[1, 1] = np.uint64(1) << np.uint64(5)   # hit in word 1
    b[2, 0] = np.uint64(1)        # miss
    return a, b


def _set_bits_sample():
    rows = np.array([0, 2, 2, 0, 3], dtype=np.int64)
    cols = np.array([1, 64, 65, 1, 127], dtype=np.int64)  # dups + both words
    return np.zeros((4, 2), dtype=np.uint64), rows, cols


def _or_rows_sample():
    rows = np.array([0, 2, 3, 1], dtype=np.int64)
    owner = np.array([0, 0, 1, 2], dtype=np.int64)  # duplicate owner 0
    return _sample_matrix(), rows, owner, np.zeros((3, 2), dtype=np.uint64)


def _probe_bits_sample():
    rows = np.array([0, 0, 1, 2, 3], dtype=np.int64)
    cols = np.array([0, 2, 69, 63, 127], dtype=np.int64)
    return _sample_matrix(), rows, cols


native.register(
    "and_any",
    numpy_impl=_and_any_numpy,
    python_impl=_nk.and_any,
    parallel=True,
    sample=_and_any_sample,
)
native.register(
    "set_bits",
    numpy_impl=_set_bits_numpy,
    python_impl=_nk.set_bits_into,
    sample=_set_bits_sample,
)
native.register(
    "or_rows",
    numpy_impl=_or_rows_into_numpy,
    python_impl=_nk.or_rows_into,
    sample=_or_rows_sample,
)
native.register(
    "probe_bits",
    numpy_impl=_probe_bits_numpy,
    python_impl=_nk.probe_bits,
    parallel=True,
    sample=_probe_bits_sample,
)
