"""Word-Aligned Hybrid (WAH) bitmap compression.

The PWAH baseline of the paper (van Schaik & de Moor, SIGMOD 2011 — [28])
stores each transitive-closure row as a compressed bitmap.  This module
implements the classic 32-bit WAH codec that family of indexes is built on:

* the bit stream is cut into 31-bit *groups*;
* a group that is not all-0s/all-1s becomes a **literal word**
  (MSB = 0, 31 payload bits);
* a maximal run of identical all-0/all-1 groups becomes a **fill word**
  (MSB = 1, next bit = fill value, low 30 bits = run length in groups).

Membership tests (:meth:`WahBitVector.test`) walk the compressed words and
never materialize the bitmap — exactly how the PWAH index probes a
transitive-closure entry at query time.
"""

from __future__ import annotations

import numpy as np

__all__ = ["WahBitVector"]

GROUP_BITS = 31
_FILL_FLAG = 1 << 31
_FILL_VALUE = 1 << 30
_RUN_MASK = _FILL_VALUE - 1
_LITERAL_MASK = (1 << GROUP_BITS) - 1
_ALL_ONES_GROUP = _LITERAL_MASK


class WahBitVector:
    """An immutable WAH-compressed bit vector.

    Build with :meth:`compress`; probe with :meth:`test`; recover the
    original bits with :meth:`decompress`.

    >>> bits = np.zeros(200, dtype=bool); bits[::50] = True
    >>> w = WahBitVector.compress(bits)
    >>> w.test(50), w.test(51)
    (True, False)
    >>> bool(np.array_equal(w.decompress(), bits))
    True
    """

    __slots__ = ("words", "size")

    def __init__(self, words: list[int], size: int) -> None:
        self.words = words
        self.size = size

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @classmethod
    def compress(cls, bits: np.ndarray) -> "WahBitVector":
        """Compress a boolean array."""
        bits = np.asarray(bits, dtype=bool)
        size = len(bits)
        ngroups = (size + GROUP_BITS - 1) // GROUP_BITS
        if ngroups == 0:
            return cls([], size)
        padded = np.zeros(ngroups * GROUP_BITS, dtype=bool)
        padded[:size] = bits
        groups = padded.reshape(ngroups, GROUP_BITS)
        # Little-endian within the group: bit j of the group is stream
        # position g*31 + j.
        weights = (1 << np.arange(GROUP_BITS, dtype=np.int64))
        values = groups @ weights  # int64 group payloads

        words: list[int] = []
        run_value = -1  # payload of the current fill run (0 or ALL_ONES)
        run_length = 0

        def flush_run() -> None:
            nonlocal run_length, run_value
            while run_length > 0:
                chunk = min(run_length, _RUN_MASK)
                fill_bit = _FILL_VALUE if run_value == _ALL_ONES_GROUP else 0
                words.append(_FILL_FLAG | fill_bit | chunk)
                run_length -= chunk
            run_value = -1

        for value in values:
            value = int(value)
            if value == 0 or value == _ALL_ONES_GROUP:
                if value == run_value:
                    run_length += 1
                else:
                    flush_run()
                    run_value = value
                    run_length = 1
            else:
                flush_run()
                words.append(value)
        flush_run()
        return cls(words, size)

    @classmethod
    def from_indices(cls, size: int, indices: "np.ndarray | list[int]") -> "WahBitVector":
        """Compress the bitmap with exactly ``indices`` set."""
        bits = np.zeros(size, dtype=bool)
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx):
            bits[idx] = True
        return cls.compress(bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def test(self, i: int) -> bool:
        """Whether stream bit ``i`` is set, by scanning compressed words."""
        if not 0 <= i < self.size:
            raise IndexError(f"bit {i} out of range [0, {self.size})")
        target_group, offset = divmod(i, GROUP_BITS)
        group = 0
        for word in self.words:
            if word & _FILL_FLAG:
                run = word & _RUN_MASK
                if target_group < group + run:
                    return bool(word & _FILL_VALUE)
                group += run
            else:
                if target_group == group:
                    return bool((word >> offset) & 1)
                group += 1
        return False

    def decompress(self) -> np.ndarray:
        """The original boolean array."""
        ngroups = (self.size + GROUP_BITS - 1) // GROUP_BITS
        values = np.zeros(ngroups, dtype=np.int64)
        group = 0
        for word in self.words:
            if word & _FILL_FLAG:
                run = word & _RUN_MASK
                if word & _FILL_VALUE:
                    values[group : group + run] = _ALL_ONES_GROUP
                group += run
            else:
                values[group] = word & _LITERAL_MASK
                group += 1
        if group != ngroups:
            raise ValueError("corrupt WAH stream: group count mismatch")
        shifts = np.arange(GROUP_BITS, dtype=np.int64)
        bits = ((values[:, None] >> shifts) & 1).astype(bool).reshape(-1)
        return bits[: self.size]

    def count(self) -> int:
        """Number of set bits (without materializing the bitmap)."""
        total = 0
        group = 0
        tail_group = (self.size - 1) // GROUP_BITS if self.size else -1
        tail_bits = self.size - tail_group * GROUP_BITS
        for word in self.words:
            if word & _FILL_FLAG:
                run = word & _RUN_MASK
                if word & _FILL_VALUE:
                    full = run
                    # Clamp the final partial group.
                    if group + run - 1 == tail_group and tail_bits < GROUP_BITS:
                        total += (full - 1) * GROUP_BITS + tail_bits
                    else:
                        total += full * GROUP_BITS
                group += run
            else:
                payload = word & _LITERAL_MASK
                if group == tail_group and tail_bits < GROUP_BITS:
                    payload &= (1 << tail_bits) - 1
                total += int(payload).bit_count()
                group += 1
        return total

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """4 bytes per compressed word (the on-disk model)."""
        return 4 * len(self.words)

    def compression_ratio(self) -> float:
        """Uncompressed bytes / compressed bytes (>= 1 is a win)."""
        raw = (self.size + 7) // 8
        compressed = self.storage_bytes()
        return raw / compressed if compressed else float("inf")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitVector):
            return NotImplemented
        return self.size == other.size and self.words == other.words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WahBitVector(size={self.size}, words={len(self.words)})"
