"""Word-Aligned Hybrid (WAH) bitmap compression.

The PWAH baseline of the paper (van Schaik & de Moor, SIGMOD 2011 — [28])
stores each transitive-closure row as a compressed bitmap.  This module
implements the classic 32-bit WAH codec that family of indexes is built on:

* the bit stream is cut into 31-bit *groups*;
* a group that is not all-0s/all-1s becomes a **literal word**
  (MSB = 0, 31 payload bits);
* a maximal run of identical all-0/all-1 groups becomes a **fill word**
  (MSB = 1, next bit = fill value, low 30 bits = run length in groups).

Membership tests (:meth:`WahBitVector.test`) walk the compressed words and
never materialize the bitmap — exactly how the PWAH index probes a
transitive-closure entry at query time.
"""

from __future__ import annotations

import collections

import numpy as np

__all__ = [
    "WahBitVector",
    "WahBitMatrix",
    "encode_bits",
    "decode_bits",
    "decode_indices",
]

GROUP_BITS = 31
_FILL_FLAG = 1 << 31
_FILL_VALUE = 1 << 30
_RUN_MASK = _FILL_VALUE - 1
_LITERAL_MASK = (1 << GROUP_BITS) - 1
_ALL_ONES_GROUP = _LITERAL_MASK

_SHIFTS = np.arange(GROUP_BITS, dtype=np.int64)
_WEIGHTS = np.int64(1) << _SHIFTS


def _group_values(bits: np.ndarray) -> np.ndarray:
    """31-bit group payloads of a boolean array (zero-padded tail)."""
    size = len(bits)
    ngroups = (size + GROUP_BITS - 1) // GROUP_BITS
    if ngroups == 0:
        return np.empty(0, dtype=np.int64)
    padded = np.zeros(ngroups * GROUP_BITS, dtype=bool)
    padded[:size] = bits
    return padded.reshape(ngroups, GROUP_BITS) @ _WEIGHTS


def encode_bits(bits: np.ndarray) -> np.ndarray:
    """WAH-encode a boolean array into a ``uint32`` word array.

    Word-for-word identical to :meth:`WahBitVector.compress` (which
    delegates here), but fully vectorized: run boundaries, fill-run
    splitting at :data:`_RUN_MASK`, and literal emission all happen as
    array ops — this is what makes compressing millions of index rows
    (:class:`repro.core.rowstore.WahRowStore`) tractable.
    """
    values = _group_values(np.asarray(bits, dtype=bool))
    ngroups = values.size
    if ngroups == 0:
        return np.empty(0, dtype=np.uint32)
    is_lit = (values != 0) & (values != _ALL_ONES_GROUP)
    # A run starts where the payload changes or a literal is adjacent
    # (every literal group is its own single-word "run").
    starts = np.empty(ngroups, dtype=bool)
    starts[0] = True
    np.logical_or(values[1:] != values[:-1], is_lit[1:], out=starts[1:])
    np.logical_or(starts[1:], is_lit[:-1], out=starts[1:])
    start_idx = np.flatnonzero(starts)
    run_len = np.diff(np.append(start_idx, ngroups))
    run_val = values[start_idx]
    run_lit = is_lit[start_idx]

    # Fill runs longer than the 30-bit run field split into several
    # words: full _RUN_MASK chunks then the remainder (1.._RUN_MASK).
    nwords = np.where(run_lit, 1, (run_len + _RUN_MASK - 1) // _RUN_MASK)
    run_of_word = np.repeat(np.arange(run_len.size), nwords)
    first_word = np.cumsum(nwords) - nwords
    pos = np.arange(run_of_word.size, dtype=np.int64) - first_word[run_of_word]
    last = pos == (nwords[run_of_word] - 1)
    chunk = np.where(
        last, run_len[run_of_word] - pos * _RUN_MASK, _RUN_MASK
    )
    fill_bit = np.where(run_val[run_of_word] == _ALL_ONES_GROUP, _FILL_VALUE, 0)
    words = np.where(
        run_lit[run_of_word],
        run_val[run_of_word],
        _FILL_FLAG | fill_bit | chunk,
    )
    return words.astype(np.uint32)


def _decode_values(words: np.ndarray, ngroups: int) -> np.ndarray:
    """Expand a WAH word array back into 31-bit group payloads."""
    words = np.asarray(words, dtype=np.uint32).astype(np.int64)
    if words.size == 0:
        if ngroups:
            raise ValueError("corrupt WAH stream: group count mismatch")
        return np.empty(0, dtype=np.int64)
    is_fill = (words & _FILL_FLAG) != 0
    runs = np.where(is_fill, words & _RUN_MASK, 1)
    if int(runs.sum()) != ngroups:
        raise ValueError("corrupt WAH stream: group count mismatch")
    payload = np.where(
        is_fill,
        np.where((words & _FILL_VALUE) != 0, _ALL_ONES_GROUP, 0),
        words & _LITERAL_MASK,
    )
    return np.repeat(payload, runs)


def decode_bits(words: np.ndarray, size: int) -> np.ndarray:
    """Decode a WAH word array into its boolean array of length ``size``."""
    ngroups = (size + GROUP_BITS - 1) // GROUP_BITS
    values = _decode_values(words, ngroups)
    bits = ((values[:, None] >> _SHIFTS) & 1).astype(bool).reshape(-1)
    return bits[:size]


def decode_indices(words: np.ndarray, size: int) -> np.ndarray:
    """Positions of the set bits in a WAH word array (sorted int64)."""
    return np.flatnonzero(decode_bits(words, size)).astype(np.int64)


class WahBitVector:
    """An immutable WAH-compressed bit vector.

    Build with :meth:`compress`; probe with :meth:`test`; recover the
    original bits with :meth:`decompress`.

    >>> bits = np.zeros(200, dtype=bool); bits[::50] = True
    >>> w = WahBitVector.compress(bits)
    >>> w.test(50), w.test(51)
    (True, False)
    >>> bool(np.array_equal(w.decompress(), bits))
    True
    """

    __slots__ = ("words", "size")

    def __init__(self, words: list[int], size: int) -> None:
        self.words = words
        self.size = size

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @classmethod
    def compress(cls, bits: np.ndarray) -> "WahBitVector":
        """Compress a boolean array (vectorized via :func:`encode_bits`)."""
        bits = np.asarray(bits, dtype=bool)
        return cls([int(w) for w in encode_bits(bits)], len(bits))

    @classmethod
    def compress_reference(cls, bits: np.ndarray) -> "WahBitVector":
        """The original word-at-a-time encoder.

        Kept as the executable specification :func:`encode_bits` is
        differential-tested against — the two must agree word for word
        on every input.
        """
        bits = np.asarray(bits, dtype=bool)
        size = len(bits)
        values = _group_values(bits)

        words: list[int] = []
        run_value = -1  # payload of the current fill run (0 or ALL_ONES)
        run_length = 0

        def flush_run() -> None:
            nonlocal run_length, run_value
            while run_length > 0:
                chunk = min(run_length, _RUN_MASK)
                fill_bit = _FILL_VALUE if run_value == _ALL_ONES_GROUP else 0
                words.append(_FILL_FLAG | fill_bit | chunk)
                run_length -= chunk
            run_value = -1

        for value in values:
            value = int(value)
            if value == 0 or value == _ALL_ONES_GROUP:
                if value == run_value:
                    run_length += 1
                else:
                    flush_run()
                    run_value = value
                    run_length = 1
            else:
                flush_run()
                words.append(value)
        flush_run()
        return cls(words, size)

    @classmethod
    def from_indices(cls, size: int, indices: "np.ndarray | list[int]") -> "WahBitVector":
        """Compress the bitmap with exactly ``indices`` set."""
        bits = np.zeros(size, dtype=bool)
        idx = np.asarray(indices, dtype=np.int64)
        if len(idx):
            bits[idx] = True
        return cls.compress(bits)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def test(self, i: int) -> bool:
        """Whether stream bit ``i`` is set, by scanning compressed words."""
        if not 0 <= i < self.size:
            raise IndexError(f"bit {i} out of range [0, {self.size})")
        target_group, offset = divmod(i, GROUP_BITS)
        group = 0
        for word in self.words:
            if word & _FILL_FLAG:
                run = word & _RUN_MASK
                if target_group < group + run:
                    return bool(word & _FILL_VALUE)
                group += run
            else:
                if target_group == group:
                    return bool((word >> offset) & 1)
                group += 1
        return False

    def decompress(self) -> np.ndarray:
        """The original boolean array."""
        ngroups = (self.size + GROUP_BITS - 1) // GROUP_BITS
        values = np.zeros(ngroups, dtype=np.int64)
        group = 0
        for word in self.words:
            if word & _FILL_FLAG:
                run = word & _RUN_MASK
                if word & _FILL_VALUE:
                    values[group : group + run] = _ALL_ONES_GROUP
                group += run
            else:
                values[group] = word & _LITERAL_MASK
                group += 1
        if group != ngroups:
            raise ValueError("corrupt WAH stream: group count mismatch")
        shifts = np.arange(GROUP_BITS, dtype=np.int64)
        bits = ((values[:, None] >> shifts) & 1).astype(bool).reshape(-1)
        return bits[: self.size]

    def count(self) -> int:
        """Number of set bits (without materializing the bitmap)."""
        total = 0
        group = 0
        tail_group = (self.size - 1) // GROUP_BITS if self.size else -1
        tail_bits = self.size - tail_group * GROUP_BITS
        for word in self.words:
            if word & _FILL_FLAG:
                run = word & _RUN_MASK
                if word & _FILL_VALUE:
                    full = run
                    # Clamp the final partial group.
                    if group + run - 1 == tail_group and tail_bits < GROUP_BITS:
                        total += (full - 1) * GROUP_BITS + tail_bits
                    else:
                        total += full * GROUP_BITS
                group += run
            else:
                payload = word & _LITERAL_MASK
                if group == tail_group and tail_bits < GROUP_BITS:
                    payload &= (1 << tail_bits) - 1
                total += int(payload).bit_count()
                group += 1
        return total

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """4 bytes per compressed word (the on-disk model)."""
        return 4 * len(self.words)

    def compression_ratio(self) -> float:
        """Uncompressed bytes / compressed bytes (>= 1 is a win)."""
        raw = (self.size + 7) // 8
        compressed = self.storage_bytes()
        return raw / compressed if compressed else float("inf")

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WahBitVector):
            return NotImplemented
        return self.size == other.size and self.words == other.words

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"WahBitVector(size={self.size}, words={len(self.words)})"


class WahBitMatrix:
    """WAH-compressed rows of a packed-uint64 bit matrix.

    The dense cover-local link matrices
    (:meth:`repro.core.index_graph.IndexGraph.link_matrix`) cost
    ``ceil(cols/64) * 8`` bytes per row regardless of density.  This
    wrapper stores each row WAH-compressed and decompresses **on touch**:
    :meth:`take` returns a dense uint64 block for the requested rows,
    serving repeats from a small FIFO of hot uncompressed rows — the
    batch Case-4 join then runs the exact same packed-word kernels on
    the block.

    ``shape`` mimics the dense matrix (``(rows, ceil(cols/64))`` uint64
    words) so size accounting and kernel chunking stay unchanged.
    """

    __slots__ = ("ncols", "nwords", "_indptr", "_words", "_hot", "_hot_cap")

    def __init__(
        self,
        indptr: np.ndarray,
        words: np.ndarray,
        ncols: int,
        *,
        hot_rows: int = 64,
    ) -> None:
        self._indptr = np.asarray(indptr, dtype=np.int64)
        self._words = np.asarray(words, dtype=np.uint32)
        self.ncols = int(ncols)
        self.nwords = (self.ncols + 63) // 64
        self._hot: "collections.OrderedDict[int, np.ndarray]" = (
            collections.OrderedDict()
        )
        self._hot_cap = max(1, int(hot_rows))

    @classmethod
    def from_dense(
        cls, dense: np.ndarray, ncols: int, *, hot_rows: int = 64
    ) -> "WahBitMatrix":
        """Compress a ``(rows, ceil(ncols/64))`` uint64 bit matrix."""
        dense = np.ascontiguousarray(dense, dtype=np.uint64)
        rows = dense.shape[0]
        parts: list[np.ndarray] = []
        indptr = np.zeros(rows + 1, dtype=np.int64)
        for r in range(rows):
            bits = np.unpackbits(
                dense[r].view(np.uint8), count=ncols, bitorder="little"
            ).astype(bool)
            part = encode_bits(bits)
            parts.append(part)
            indptr[r + 1] = indptr[r] + part.size
        words = (
            np.concatenate(parts) if parts else np.empty(0, dtype=np.uint32)
        )
        return cls(indptr, words, ncols, hot_rows=hot_rows)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self._indptr) - 1, self.nwords)

    @property
    def ndim(self) -> int:
        return 2

    def __len__(self) -> int:
        return len(self._indptr) - 1

    def _decode_row(self, r: int) -> np.ndarray:
        cached = self._hot.get(r)
        if cached is not None:
            self._hot.move_to_end(r)
            return cached
        bits = decode_bits(
            self._words[self._indptr[r] : self._indptr[r + 1]], self.ncols
        )
        packed = np.packbits(bits, bitorder="little")
        row = np.zeros(self.nwords * 8, dtype=np.uint8)
        row[: packed.size] = packed
        row = row.view(np.uint64)
        self._hot[r] = row
        if len(self._hot) > self._hot_cap:
            self._hot.popitem(last=False)
        return row

    def take(self, rows: np.ndarray) -> np.ndarray:
        """Dense uint64 block for ``rows`` (decompress-on-touch)."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((rows.size, self.nwords), dtype=np.uint64)
        for i, r in enumerate(rows):
            out[i] = self._decode_row(int(r))
        return out

    def storage_bytes(self) -> int:
        """Compressed payload + offsets (the hot cache is transient)."""
        return int(self._words.nbytes + self._indptr.nbytes)

    def dense_bytes(self) -> int:
        """What the equivalent dense matrix would occupy."""
        return (len(self._indptr) - 1) * self.nwords * 8

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        rows, nw = self.shape
        return (
            f"WahBitMatrix(rows={rows}, cols={self.ncols}, "
            f"words={self._words.size}, dense_words={rows * nw})"
        )
