"""Command-line entry point regenerating the paper's tables.

Usage::

    python -m repro.cli table2 --scale 0.2
    python -m repro.cli table3-4-5 --scale 1.0 --queries 100000 --workers 4
    python -m repro.cli throughput --scale 0.2 --queries 100000
    python -m repro.cli dynamic --scale 0.2 --json BENCH_dynamic.json
    python -m repro.cli serve --scale 0.2 --json BENCH_serve.json
    python -m repro.cli build --scale 0.2 --json build.json
    python -m repro.cli all --scale 0.2 --output results.txt
    kreach-bench table8            # installed console script
    kreach-bench verify index.kr4 base.npz updates.krlog  # checksum audit

Query-timing experiments (Tables 5/7 and ``throughput``) run through the
vectorized batch engine — ``--engine`` picks which one for the k-reach
columns (``auto`` / ``bitset`` / ``chunked`` / ``scalar``).
``throughput`` always compares all engines per row (with per-case
timings and the scalar-vs-bitset speedup CI gates on), ``dynamic``
replays churn traces through the snapshot+overlay dynamic engine, the
scalar dynamic path, and a rebuild-per-batch baseline (CI gates
overlay >= scalar on the TOTAL row), and ``build`` compares the blocked
MS-BFS construction path against the per-source serial build.

``serve`` measures the memory-mapped serving tier: v4
:func:`~repro.core.serialize.load_mmap` open time against the v2 eager
load, and batch throughput through 1/2/4/8-worker
:class:`~repro.core.serve.QueryServer` pools sharing one index file
(CI gates v4 < v2 open and 2-worker ≥ 1-worker throughput).  ``native``
benchmarks the compiled kernel tier (:mod:`repro.native`) against the
numpy baseline per dispatched kernel and times
:class:`~repro.core.serve.ThreadQueryServer` against the in-process
engine; every invocation prints the active tier line and ``--json``
provenance records ``native.describe()`` so BENCH artifacts say which
tier produced them.  ``--repeat N`` reports median-of-N timings.

``ingest`` races the streamed external-sort ingester
(:func:`~repro.graph.ingest.ingest_edge_list`, budget ``--ingest-mb``,
file size ``--ingest-edges``) against the eager
:func:`~repro.graph.io.read_edge_list` on a generated edge file —
plain, gzip, and a tight-budget multi-run merge — gating bit-identical
CSR output, streamed peak < eager peak, and sort buffer within budget;
``--condense`` extends the pipeline through the SCC condensation into a
:class:`~repro.core.CondensedKReach` build.  ``size`` compares the
dense row store against ``storage='wah'`` compressed rows and the
PWAH-8 baseline on bytes/edge and µs/query (CI gates wah < dense with
bit-identical verdicts).

Every experiment accepts ``--scale`` (1.0 = paper-sized graphs),
``--queries``, ``--datasets`` (comma-separated subset), ``--seed``, and
``--workers`` (process pool for construction).  ``--json PATH``
additionally writes the results as machine-readable JSON so perf
trajectories (the CI-uploaded ``BENCH_throughput.json`` /
``BENCH_build.json`` / ``BENCH_serve.json`` artifacts) can be tracked
across PRs; the payload embeds run provenance — git sha, numpy version,
platform, timestamp, CPU count, and the full experiment parameters — so
artifacts from different PRs are comparable.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS, SuiteConfig
from repro.bench.report import Table
from repro.datasets import DATASET_NAMES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="kreach-bench",
        description="Regenerate the K-Reach paper's tables on synthetic stand-ins.",
    )
    parser.add_argument(
        "experiment",
        choices=[*ALL_EXPERIMENTS, "all"],
        help="which table/ablation to run ('all' runs everything)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="dataset scale factor; 1.0 = paper-sized graphs (default 0.2)",
    )
    parser.add_argument(
        "--queries",
        type=int,
        default=20_000,
        help="random queries per dataset (paper used 1M; default 20000)",
    )
    parser.add_argument(
        "--bfs-queries",
        type=int,
        default=1_000,
        help="query count for the slow online baselines (default 1000)",
    )
    parser.add_argument(
        "--datasets",
        type=str,
        default=None,
        help=f"comma-separated subset of {', '.join(DATASET_NAMES)}",
    )
    parser.add_argument("--seed", type=int, default=7, help="workload seed")
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool size for index construction; >1 routes k-reach "
            "builds (Table 3 and the 'build' experiment's parallel column) "
            "through build_kreach_parallel (default 1 = in-process)"
        ),
    )
    parser.add_argument(
        "--serve-workers",
        type=str,
        default="1,2,4,8",
        metavar="N,N,...",
        help=(
            "comma-separated QueryServer pool sizes the 'serve' experiment "
            "measures (default 1,2,4,8)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=["auto", "native", "bitset", "chunked", "scalar"],
        default="auto",
        help=(
            "query engine for the k-reach batch columns (Tables 5/6/7): "
            "'auto' picks the bitset join when its cover-local link matrix "
            "fits the memory gate and falls back to the chunked cross "
            "products otherwise; 'native' is the same split preferring the "
            "compiled kernel tier (numpy fallback when numba is absent); "
            "'bitset'/'chunked' force one path; 'scalar' loops per pair "
            "(the differential reference).  The 'throughput' experiment "
            "always compares all engines"
        ),
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        metavar="N",
        help=(
            "repeat each timing N times and report the median run "
            "(default 1); smooths scheduler noise in BENCH_*.json "
            "trajectories"
        ),
    )
    parser.add_argument(
        "--condense",
        action="store_true",
        help=(
            "'ingest': also run the streamed graph through the SCC "
            "condensation into a CondensedKReach build (index on the "
            "condensation DAG, queries mapped through component ids)"
        ),
    )
    parser.add_argument(
        "--ingest-mb",
        type=int,
        default=32,
        metavar="MB",
        help=(
            "'ingest': memory budget for the streamed external-sort "
            "ingester (also honored via the KREACH_INGEST_MB env var "
            "when unset; default 32)"
        ),
    )
    parser.add_argument(
        "--ingest-edges",
        type=int,
        default=200_000,
        metavar="N",
        help=(
            "'ingest': size of the generated synthetic edge file "
            "(default 200000; CI runs 2000000)"
        ),
    )
    parser.add_argument(
        "--markdown", action="store_true", help="emit markdown instead of ASCII"
    )
    parser.add_argument(
        "--output", type=str, default=None, help="append output to this file"
    )
    parser.add_argument(
        "--json",
        type=str,
        default=None,
        metavar="PATH",
        help=(
            "also write results as machine-readable JSON (experiment name, "
            "config, tables, elapsed seconds) — for perf-trajectory tracking"
        ),
    )
    return parser


def _run_metadata() -> dict:
    """Provenance embedded in every ``--json`` payload.

    ``BENCH_*.json`` artifacts are compared across PRs; without the git
    sha / library versions / host facts a regression cannot be told
    apart from a runner change.  Everything here degrades to ``None``
    rather than failing the bench run.
    """
    import datetime
    import os
    import platform
    import subprocess

    import numpy as np

    try:
        # The sha is trustworthy only when this file is *tracked* by the
        # repository that contains it (the dev-checkout layout).  A bare
        # ancestor/cwd check is not enough: a venv installed inside some
        # unrelated checkout puts site-packages under that repo too, and
        # stamping its HEAD would misattribute every artifact.
        pkg_dir = os.path.dirname(os.path.abspath(__file__))
        tracked = subprocess.run(
            ["git", "ls-files", "--error-unmatch", "cli.py"],
            capture_output=True,
            text=True,
            timeout=5,
            cwd=pkg_dir,
        )
        sha = None
        if tracked.returncode == 0:
            proc = subprocess.run(
                ["git", "rev-parse", "HEAD"],
                capture_output=True,
                text=True,
                timeout=5,
                cwd=pkg_dir,
            )
            sha = (proc.stdout.strip() or None) if proc.returncode == 0 else None
    except (OSError, subprocess.SubprocessError):
        sha = None
    from repro import native

    return {
        "git_sha": sha,
        "numpy_version": np.__version__,
        "native": native.describe(),
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(),
    }


def _emit(text: str, output: str | None) -> None:
    print(text)
    if output:
        with open(output, "a", encoding="utf-8") as fh:
            fh.write(text + "\n\n")


def _render(result: "Table | tuple[Table, ...]", markdown: bool) -> str:
    tables = result if isinstance(result, tuple) else (result,)
    rendered = [t.to_markdown() if markdown else t.render() for t in tables]
    return "\n\n".join(rendered)


def _verify_main(argv: list[str]) -> int:
    """``kreach-bench verify <file>...`` — audit on-disk checksums.

    Prints one line per section with its stored/computed CRC32 status
    and exits 0 iff every file is clean (``no-crc`` legacy sections and
    a recoverable op-log ``torn-tail`` count as clean; ``mismatch`` /
    ``truncated`` / ``malformed`` do not).
    """
    parser = argparse.ArgumentParser(
        prog="kreach-bench verify",
        description=(
            "Audit the integrity of k-reach on-disk artifacts: v5/v4 "
            "mmap indexes (header + per-section CRC32), v2/v3 npz dumps "
            "(zip member CRCs), and framed op logs (record frames)."
        ),
    )
    parser.add_argument("files", nargs="+", metavar="FILE")
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit the raw verify_file() reports as JSON instead of text",
    )
    args = parser.parse_args(argv)
    from repro.core.serialize import verify_file

    reports = [verify_file(path) for path in args.files]
    if args.json:
        print(json.dumps(reports, indent=2))
    else:
        for report in reports:
            verdict = "OK" if report["ok"] else "CORRUPT"
            fmt = report["format"] or "unrecognized"
            print(f"{report['path']}: {fmt} — {verdict}")
            if report["detail"]:
                print(f"  ! {report['detail']}")
            for row in report["sections"]:
                size = f"{row['bytes']} B" if "bytes" in row else "?"
                crc = ""
                if "stored" in row:
                    crc = (
                        f" crc32 stored={row['stored']:#010x} "
                        f"computed={row['computed']:#010x}"
                    )
                print(f"  {row['status']:>9}  {row['name']:<16} {size}{crc}")
    return 0 if all(r["ok"] for r in reports) else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    # `verify` is a utility subcommand, not an experiment: intercept it
    # before the experiment parser (whose positional has a choices= set).
    if argv and argv[0] == "verify":
        return _verify_main(list(argv[1:]))
    args = build_parser().parse_args(argv)
    datasets = DATASET_NAMES
    if args.datasets:
        datasets = tuple(name.strip() for name in args.datasets.split(",") if name.strip())
    try:
        serve_workers = tuple(
            int(part) for part in args.serve_workers.split(",") if part.strip()
        ) or (1, 2, 4, 8)
    except ValueError:
        raise SystemExit(
            f"--serve-workers must be comma-separated ints, got "
            f"{args.serve_workers!r}"
        )
    config = SuiteConfig(
        datasets=datasets,
        scale=args.scale,
        queries=args.queries,
        bfs_queries=args.bfs_queries,
        seed=args.seed,
        workers=args.workers,
        engine=args.engine,
        serve_workers=serve_workers,
        repeat=max(1, args.repeat),
        condense=args.condense,
        ingest_mb=max(1, args.ingest_mb),
        ingest_edges=max(1000, args.ingest_edges),
    )
    from repro import native

    print(native.describe_line())
    names = list(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    records: list[dict] = []
    for name in names:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name](config)
        elapsed = time.perf_counter() - start
        _emit(_render(result, args.markdown), args.output)
        _emit(f"[{name} finished in {elapsed:.1f}s]", args.output)
        if args.json:
            tables = result if isinstance(result, tuple) else (result,)
            records.append(
                {
                    "experiment": name,
                    "elapsed_s": round(elapsed, 3),
                    "tables": [t.to_dict() for t in tables],
                }
            )
    if args.json:
        payload = {
            "meta": _run_metadata(),
            "config": {
                "datasets": list(datasets),
                "scale": args.scale,
                "queries": args.queries,
                "bfs_queries": args.bfs_queries,
                "seed": args.seed,
                "workers": args.workers,
                "engine": args.engine,
                "serve_workers": list(serve_workers),
                "repeat": max(1, args.repeat),
                "condense": args.condense,
                "ingest_mb": max(1, args.ingest_mb),
                "ingest_edges": max(1000, args.ingest_edges),
            },
            "experiments": records,
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
            fh.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
