"""repro — a reproduction of "K-Reach: Who is in Your Small World" (VLDB 2012).

Public API highlights:

* :class:`repro.DiGraph` — the CSR graph substrate.
* :class:`repro.KReachIndex` — the paper's k-hop reachability index.
* :class:`repro.HKReachIndex` — the h-hop-cover space-saving variant.
* :class:`repro.GeometricKReachFamily` / :class:`repro.ExactKFamily` /
  :class:`repro.CoverDistanceOracle` — general-k support (§4.4).
* :mod:`repro.baselines` — re-implementations of the comparator indexes
  (GRAIL, PWAH, tree cover, chain cover, PLL, BFS).
* :mod:`repro.datasets` — calibrated synthetic stand-ins for the paper's
  15 real datasets.
* :mod:`repro.bench` — the harness regenerating the paper's Tables 2–9.
"""

from repro.core import (
    CoverDistanceOracle,
    DynamicKReachIndex,
    ExactKFamily,
    GeometricKReachFamily,
    HKReachIndex,
    KHopAnswer,
    KReachIndex,
)
from repro.graph import DiGraph, GraphBuilder

__version__ = "1.0.0"

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "KReachIndex",
    "HKReachIndex",
    "DynamicKReachIndex",
    "CoverDistanceOracle",
    "GeometricKReachFamily",
    "ExactKFamily",
    "KHopAnswer",
    "__version__",
]
