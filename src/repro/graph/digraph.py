"""Compressed sparse row (CSR) directed graph.

This module provides :class:`DiGraph`, the graph substrate every index in
this package is built on.  The representation keeps **both** adjacency
directions in CSR form:

* ``out_indptr`` / ``out_indices`` — out-neighbors, sorted per vertex;
* ``in_indptr`` / ``in_indices``  — in-neighbors, sorted per vertex.

Vertices are dense integers ``0 .. n-1``.  Arbitrary vertex labels are
supported through an optional label table (see :meth:`DiGraph.from_labeled`);
internally everything runs on the dense ids, which is what makes pure-Python
query processing tolerable and lets traversals use vectorized numpy kernels.

The structure is immutable after construction: every index in
:mod:`repro.core` and :mod:`repro.baselines` assumes the graph does not
change underneath it.  Use :class:`repro.graph.builder.GraphBuilder` for
incremental edge accumulation.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["DiGraph", "validate_csr"]

# Dtype used for all vertex ids and offsets.  int32 is enough for graphs of
# up to ~2.1 billion vertices/edges, far beyond the paper's datasets, while
# halving memory versus int64.
_ID_DTYPE = np.int32


def _build_csr(
    n: int, heads: np.ndarray, tails: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build a CSR (indptr, indices) pair from parallel edge arrays.

    ``heads[i] -> tails[i]`` is edge ``i``.  The returned ``indices`` are
    sorted within each vertex's slice so that membership tests can use
    binary search.
    """
    counts = np.bincount(heads, minlength=n).astype(_ID_DTYPE)
    indptr = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    order = np.lexsort((tails, heads))
    indices = tails[order].astype(_ID_DTYPE, copy=True)
    return indptr, indices


def validate_csr(name: str, n: int, indptr: np.ndarray, indices: np.ndarray) -> None:
    """Structural CSR invariants: monotone offsets, in-range sorted rows.

    ``n`` is the *index universe* (valid ``indices`` values are
    ``[0, n)``); the row count is whatever ``len(indptr) - 1`` implies,
    so the same check serves both adjacency CSRs and the index graph's
    cover-row CSR.  Raises :class:`ValueError` naming ``name`` on the
    first broken invariant.
    """
    if indptr[0] != 0 or indptr[-1] != len(indices):
        raise ValueError(
            f"{name}_indptr must start at 0 and end at {len(indices)}"
        )
    if np.any(np.diff(indptr) < 0):
        raise ValueError(f"{name}_indptr must be non-decreasing")
    if len(indices):
        if int(indices.min()) < 0 or int(indices.max()) >= n:
            raise ValueError(f"{name}_indices out of range [0, {n})")
        # Strictly ascending within each row: a decrease is only legal at
        # a row boundary (and duplicates are never legal).
        decreasing = indices[1:] <= indices[:-1]
        if np.any(decreasing):
            boundary = np.zeros(len(indices) - 1, dtype=bool)
            starts = indptr[1:-1]
            starts = starts[(starts > 0) & (starts < len(indices))]
            boundary[starts - 1] = True
            if np.any(decreasing & ~boundary):
                raise ValueError(
                    f"{name}_indices must be strictly ascending within each row"
                )


class DiGraph:
    """An immutable directed graph in dual-CSR form.

    Parameters
    ----------
    n:
        Number of vertices; vertex ids are ``0 .. n-1``.
    edges:
        Iterable of ``(u, v)`` pairs.  Duplicate edges are collapsed;
        self-loops are kept only when ``allow_self_loops`` is true (the
        paper's graphs are simple, so the default drops them).
    allow_self_loops:
        Keep ``(u, u)`` edges when true.

    Examples
    --------
    >>> g = DiGraph(3, [(0, 1), (1, 2), (0, 1)])
    >>> g.n, g.m
    (3, 2)
    >>> [int(v) for v in g.out_neighbors(0)]
    [1]
    >>> g.has_edge(0, 1), g.has_edge(1, 0)
    (True, False)
    """

    __slots__ = (
        "n",
        "m",
        "out_indptr",
        "out_indices",
        "in_indptr",
        "in_indices",
        "_labels",
        "_label_to_id",
        "_out_lists",
        "_in_lists",
    )

    def __init__(
        self,
        n: int,
        edges: Iterable[tuple[int, int]] = (),
        *,
        allow_self_loops: bool = False,
    ) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        edge_list = list(edges)
        if edge_list:
            arr = np.asarray(edge_list, dtype=np.int64)
            if arr.ndim != 2 or arr.shape[1] != 2:
                raise ValueError("edges must be (u, v) pairs")
            if arr.min() < 0 or arr.max() >= n:
                raise ValueError(
                    f"edge endpoint out of range [0, {n}): "
                    f"min={arr.min()}, max={arr.max()}"
                )
            if not allow_self_loops:
                arr = arr[arr[:, 0] != arr[:, 1]]
            # Deduplicate.
            if len(arr):
                arr = np.unique(arr, axis=0)
        else:
            arr = np.empty((0, 2), dtype=np.int64)

        self.n: int = n
        self.m: int = int(len(arr))
        self.out_indptr, self.out_indices = _build_csr(n, arr[:, 0], arr[:, 1])
        self.in_indptr, self.in_indices = _build_csr(n, arr[:, 1], arr[:, 0])
        self._labels: list | None = None
        self._label_to_id: dict | None = None
        self._out_lists: list[list[int]] | None = None
        self._in_lists: list[list[int]] | None = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_labeled(
        cls, edges: Iterable[tuple[object, object]], *, allow_self_loops: bool = False
    ) -> "DiGraph":
        """Build a graph from edges over arbitrary hashable labels.

        Labels are assigned dense ids in first-seen order; use
        :meth:`vertex_id` / :meth:`vertex_label` to translate.

        >>> g = DiGraph.from_labeled([("a", "b"), ("b", "c")])
        >>> g.vertex_id("b")
        1
        >>> g.vertex_label(2)
        'c'
        """
        label_to_id: dict = {}
        labels: list = []
        dense: list[tuple[int, int]] = []
        for u, v in edges:
            for x in (u, v):
                if x not in label_to_id:
                    label_to_id[x] = len(labels)
                    labels.append(x)
            dense.append((label_to_id[u], label_to_id[v]))
        g = cls(len(labels), dense, allow_self_loops=allow_self_loops)
        g._labels = labels
        g._label_to_id = label_to_id
        return g

    @classmethod
    def from_csr(
        cls,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        *,
        in_indptr: np.ndarray | None = None,
        in_indices: np.ndarray | None = None,
        validate: bool = True,
    ) -> "DiGraph":
        """Build from existing CSR arrays, validating the invariants.

        With only the out-direction given, indices need not be sorted or
        deduplicated — the graph is rebuilt through the normal edge path
        and the in-direction derived.  When **both** directions are given
        (the deserialization fast path), each is validated structurally —
        offsets start at 0, are monotone, and end at the index count;
        indices lie in ``[0, n)`` and are strictly ascending within every
        row; the edge counts agree; and each direction's in/out degree
        histogram matches the other's offsets — then installed directly
        with no per-edge work.  The degree cross-check catches arrays
        from two different graphs; only a permutation *within* matching
        degree histograms could still slip through (a full transpose
        cross-check would cost a rebuild).

        ``validate=False`` (dual-CSR path only) installs the arrays after
        O(1) shape checks, skipping the O(m) scans — the memory-mapped
        loader's open-in-O(header) path, for arrays produced by this
        package and protected by a format header.  Arrays from anywhere
        else must keep ``validate=True``: a single unsorted row silently
        corrupts every binary-search probe.
        """
        out_indptr = np.asarray(out_indptr, dtype=np.int64)
        n = len(out_indptr) - 1
        if n < 0:
            raise ValueError("indptr must have at least one entry")
        if in_indptr is None or in_indices is None:
            if in_indptr is not None or in_indices is not None:
                raise ValueError("pass both in_indptr and in_indices, or neither")
            heads = np.repeat(
                np.arange(n, dtype=np.int64), np.diff(out_indptr)
            )
            tails = np.asarray(out_indices, dtype=np.int64)
            return cls(n, np.stack([heads, tails], axis=1))  # type: ignore[arg-type]

        in_indptr = np.asarray(in_indptr, dtype=np.int64)
        out_indices = np.asarray(out_indices, dtype=_ID_DTYPE)
        in_indices = np.asarray(in_indices, dtype=_ID_DTYPE)
        if len(in_indptr) != n + 1:
            raise ValueError("in_indptr and out_indptr disagree on vertex count")
        if len(out_indices) != len(in_indices):
            raise ValueError("out- and in-direction edge counts disagree")
        if validate:
            for name, indptr, indices in (
                ("out", out_indptr, out_indices),
                ("in", in_indptr, in_indices),
            ):
                validate_csr(name, n, indptr, indices)
            if not np.array_equal(
                np.bincount(out_indices, minlength=n), np.diff(in_indptr)
            ) or not np.array_equal(
                np.bincount(in_indices, minlength=n), np.diff(out_indptr)
            ):
                raise ValueError(
                    "in- and out-direction CSRs are not transposes of each other"
                )
        else:  # trusted install: O(1) span checks only
            for name, indptr, indices in (
                ("out", out_indptr, out_indices),
                ("in", in_indptr, in_indices),
            ):
                if int(indptr[0]) != 0 or int(indptr[-1]) != len(indices):
                    raise ValueError(
                        f"{name}_indptr must start at 0 and end at {len(indices)}"
                    )
        g = object.__new__(cls)
        g.n = n
        g.m = int(len(out_indices))
        g.out_indptr, g.out_indices = out_indptr, out_indices
        g.in_indptr, g.in_indices = in_indptr, in_indices
        g._labels = None
        g._label_to_id = None
        g._out_lists = None
        g._in_lists = None
        return g

    # ------------------------------------------------------------------
    # Label translation
    # ------------------------------------------------------------------
    @property
    def has_labels(self) -> bool:
        """Whether this graph was built with :meth:`from_labeled`."""
        return self._labels is not None

    def vertex_id(self, label: object) -> int:
        """Dense id for ``label`` (requires a labeled graph)."""
        if self._label_to_id is None:
            raise ValueError("graph has no vertex labels")
        return self._label_to_id[label]

    def vertex_label(self, v: int) -> object:
        """Label for dense id ``v`` (requires a labeled graph)."""
        if self._labels is None:
            raise ValueError("graph has no vertex labels")
        return self._labels[v]

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> np.ndarray:
        """Sorted out-neighbors of ``v`` as a numpy view."""
        return self.out_indices[self.out_indptr[v] : self.out_indptr[v + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sorted in-neighbors of ``v`` as a numpy view."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def out_degree(self, v: int) -> int:
        """Number of out-neighbors of ``v``."""
        return int(self.out_indptr[v + 1] - self.out_indptr[v])

    def in_degree(self, v: int) -> int:
        """Number of in-neighbors of ``v``."""
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    def degree(self, v: int) -> int:
        """Total degree: ``|inNei(v) ∪ outNei(v)|`` (paper's ``Deg``).

        The paper defines ``Deg(v, G) = |Nei(v, G)|`` with
        ``Nei = inNei ∪ outNei``, i.e. a vertex with the same neighbor on
        both sides counts it once.
        """
        merged = np.union1d(self.out_neighbors(v), self.in_neighbors(v))
        return int(len(merged))

    def degrees(self) -> np.ndarray:
        """Vector of ``in_degree + out_degree`` for every vertex.

        This is the cheap degree used for *ordering* heuristics (cover
        construction, landmark ordering); use :meth:`degree` for the
        paper-exact union semantics of a single vertex.
        """
        return (np.diff(self.out_indptr) + np.diff(self.in_indptr)).astype(np.int64)

    def out_degrees(self) -> np.ndarray:
        """Vector of out-degrees."""
        return np.diff(self.out_indptr).astype(np.int64)

    def in_degrees(self) -> np.ndarray:
        """Vector of in-degrees."""
        return np.diff(self.in_indptr).astype(np.int64)

    def out_lists(self) -> list[list[int]]:
        """Out-adjacency as plain Python lists of ints, built once and cached.

        Query-time code iterates tiny neighbor lists millions of times;
        plain lists avoid the per-element numpy scalar boxing cost that
        dominates at that granularity.
        """
        if self._out_lists is None:
            flat = self.out_indices.tolist()
            ptr = self.out_indptr.tolist()
            self._out_lists = [flat[ptr[v] : ptr[v + 1]] for v in range(self.n)]
        return self._out_lists

    def in_lists(self) -> list[list[int]]:
        """In-adjacency as plain Python lists of ints (see :meth:`out_lists`)."""
        if self._in_lists is None:
            flat = self.in_indices.tolist()
            ptr = self.in_indptr.tolist()
            self._in_lists = [flat[ptr[v] : ptr[v + 1]] for v in range(self.n)]
        return self._in_lists

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists (binary search)."""
        row = self.out_neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < len(row) and int(row[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate all edges as ``(u, v)`` pairs in sorted order."""
        for u in range(self.n):
            for v in self.out_neighbors(u):
                yield u, int(v)

    def edge_array(self) -> np.ndarray:
        """All edges as an ``(m, 2)`` numpy array (sorted by head, then tail)."""
        heads = np.repeat(
            np.arange(self.n, dtype=_ID_DTYPE),
            np.diff(self.out_indptr).astype(np.int64),
        )
        return np.stack([heads, self.out_indices.astype(_ID_DTYPE)], axis=1)

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reverse(self) -> "DiGraph":
        """The transpose graph (every edge flipped)."""
        g = DiGraph(self.n)
        g.m = self.m
        g.out_indptr, g.out_indices = self.in_indptr, self.in_indices
        g.in_indptr, g.in_indices = self.out_indptr, self.out_indices
        g._labels, g._label_to_id = self._labels, self._label_to_id
        return g

    def subgraph(self, vertices: Sequence[int]) -> tuple["DiGraph", np.ndarray]:
        """Induced subgraph on ``vertices``.

        Returns ``(sub, mapping)`` where ``mapping[i]`` is the original id
        of the subgraph's vertex ``i``.
        """
        keep = np.asarray(sorted(set(int(v) for v in vertices)), dtype=np.int64)
        if len(keep) and (keep[0] < 0 or keep[-1] >= self.n):
            raise ValueError("subgraph vertex out of range")
        new_id = -np.ones(self.n, dtype=np.int64)
        new_id[keep] = np.arange(len(keep))
        sub_edges = []
        for u in keep:
            nbrs = self.out_neighbors(int(u))
            kept = nbrs[new_id[nbrs] >= 0]
            for v in kept:
                sub_edges.append((int(new_id[u]), int(new_id[v])))
        return DiGraph(len(keep), sub_edges), keep

    def undirected_edges(self) -> set[frozenset[int]]:
        """The edge set with direction erased (used by vertex-cover code)."""
        return {frozenset((u, v)) for u, v in self.edges() if u != v}

    # ------------------------------------------------------------------
    # Storage accounting
    # ------------------------------------------------------------------
    def storage_bytes(self) -> int:
        """Bytes of the CSR arrays (both directions), the disk-size model."""
        return int(
            self.out_indptr.nbytes
            + self.out_indices.nbytes
            + self.in_indptr.nbytes
            + self.in_indices.nbytes
        )

    # ------------------------------------------------------------------
    # Dunder / misc
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.out_indptr, other.out_indptr)
            and np.array_equal(self.out_indices, other.out_indices)
        )

    def __hash__(self) -> int:  # graphs are immutable, allow dict keys
        return hash((self.n, self.m, self.out_indices.tobytes()))

    def to_dict(self) -> Mapping[int, list[int]]:
        """Adjacency-dict view ``{u: [out-neighbors]}`` (for debugging/tests)."""
        return {u: [int(v) for v in self.out_neighbors(u)] for u in range(self.n)}
