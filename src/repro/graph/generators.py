"""Synthetic graph generators.

General-purpose generators used by tests, examples and the dataset
stand-ins in :mod:`repro.datasets.synthetic`.  Everything is deterministic
given the ``rng`` / ``seed`` arguments.

:func:`paper_example_graph` reconstructs the worked example of the paper
(Figure 1 / Figure 3): the 10-vertex graph whose vertex cover is
``{b, d, g, i}`` and whose 2-hop vertex cover is ``{d, e, g}``.  Every claim
in the paper's Examples 1–4 is asserted against this graph in the tests.
"""

from __future__ import annotations

import numpy as np

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph

__all__ = [
    "path_graph",
    "cycle_graph",
    "complete_digraph",
    "star_graph",
    "random_tree",
    "balanced_tree",
    "gnp_digraph",
    "random_dag",
    "layered_dag",
    "power_law_digraph",
    "celebrity_crossfire_digraph",
    "paper_example_graph",
    "PAPER_EXAMPLE_LABELS",
]


def path_graph(n: int) -> DiGraph:
    """The directed path ``0 -> 1 -> ... -> n-1``."""
    return DiGraph(n, [(i, i + 1) for i in range(n - 1)])


def cycle_graph(n: int) -> DiGraph:
    """The directed cycle on ``n >= 2`` vertices."""
    if n < 2:
        raise ValueError(f"a directed cycle needs n >= 2, got {n}")
    return DiGraph(n, [(i, (i + 1) % n) for i in range(n)])


def complete_digraph(n: int) -> DiGraph:
    """All ``n * (n - 1)`` ordered pairs as edges."""
    return DiGraph(n, [(u, v) for u in range(n) for v in range(n) if u != v])


def star_graph(n: int, *, inward: bool = False) -> DiGraph:
    """Hub vertex 0 with ``n - 1`` spokes.

    Edges point hub->spoke by default; ``inward=True`` flips them.
    """
    if n < 1:
        raise ValueError(f"star needs n >= 1, got {n}")
    edges = [(0, i) if not inward else (i, 0) for i in range(1, n)]
    return DiGraph(n, edges)


def random_tree(n: int, *, seed: int = 0) -> DiGraph:
    """A random arborescence: each vertex i >= 1 gets a parent < i."""
    rng = np.random.default_rng(seed)
    edges = [(int(rng.integers(0, i)), i) for i in range(1, n)]
    return DiGraph(n, edges)


def balanced_tree(branching: int, height: int) -> DiGraph:
    """Complete ``branching``-ary tree of the given height, edges parent->child."""
    if branching < 1 or height < 0:
        raise ValueError("branching >= 1 and height >= 0 required")
    builder = GraphBuilder(1)
    frontier = [0]
    for _ in range(height):
        nxt = []
        for parent in frontier:
            for _ in range(branching):
                child = builder.add_vertex()
                builder.add_edge(parent, child)
                nxt.append(child)
        frontier = nxt
    return builder.build()


def gnp_digraph(n: int, p: float, *, seed: int = 0) -> DiGraph:
    """Directed Erdős–Rényi G(n, p): each ordered pair is an edge w.p. ``p``."""
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must be in [0, 1], got {p}")
    rng = np.random.default_rng(seed)
    if n == 0:
        return DiGraph(0)
    mask = rng.random((n, n)) < p
    np.fill_diagonal(mask, False)
    heads, tails = np.nonzero(mask)
    return DiGraph(n, np.stack([heads, tails], axis=1))  # type: ignore[arg-type]


def random_dag(n: int, m: int, *, seed: int = 0) -> DiGraph:
    """A uniform-ish random DAG with ``n`` vertices and about ``m`` edges.

    Edges always point from a smaller to a larger vertex id, so acyclicity
    is guaranteed by construction.
    """
    if n < 2:
        return DiGraph(n)
    rng = np.random.default_rng(seed)
    max_edges = n * (n - 1) // 2
    m = min(m, max_edges)
    edges: set[tuple[int, int]] = set()
    # Rejection sampling is fine while m is far below max_edges; fall back
    # to explicit enumeration when the request is dense.
    if m > max_edges // 2:
        all_pairs = [(u, v) for u in range(n) for v in range(u + 1, n)]
        picks = rng.choice(len(all_pairs), size=m, replace=False)
        edges = {all_pairs[i] for i in picks}
    else:
        while len(edges) < m:
            u = int(rng.integers(0, n - 1))
            v = int(rng.integers(u + 1, n))
            edges.add((u, v))
    return DiGraph(n, sorted(edges))


def layered_dag(
    layers: int, width: int, *, p: float = 0.3, seed: int = 0
) -> DiGraph:
    """A DAG of ``layers`` layers of ``width`` vertices; edges only between
    consecutive layers, each present with probability ``p``.

    Useful for exercising indexes on graphs with long shortest paths
    (diameter ≈ layers - 1), mimicking the XML datasets' deep structure.
    """
    if layers < 1 or width < 1:
        raise ValueError("layers >= 1 and width >= 1 required")
    rng = np.random.default_rng(seed)
    n = layers * width
    edges = []
    for layer in range(layers - 1):
        base, nxt = layer * width, (layer + 1) * width
        mask = rng.random((width, width)) < p
        for i, j in zip(*np.nonzero(mask)):
            edges.append((base + int(i), nxt + int(j)))
        # Guarantee connectivity layer-to-layer so the diameter is realized.
        for i in range(width):
            if not mask[i].any():
                edges.append((base + i, nxt + int(rng.integers(0, width))))
    return DiGraph(n, edges)


def power_law_digraph(
    n: int, m: int, *, exponent: float = 2.5, seed: int = 0
) -> DiGraph:
    """A directed configuration-model graph with power-law degrees.

    Degree propensities are drawn from a Pareto-like distribution with the
    given exponent; ``m`` edge slots are then matched head-to-tail.  The
    result has the heavy-tailed degree skew (§4.3's "curse of high-degree
    vertices") without further structure.
    """
    if n < 2:
        return DiGraph(n)
    rng = np.random.default_rng(seed)
    weights = (1.0 + rng.pareto(exponent - 1.0, size=n)) ** 1.0
    probs = weights / weights.sum()
    heads = rng.choice(n, size=m, p=probs)
    tails = rng.choice(n, size=m, p=probs)
    keep = heads != tails
    return DiGraph(n, np.stack([heads[keep], tails[keep]], axis=1))  # type: ignore[arg-type]


def celebrity_crossfire_digraph(
    brokers: int,
    celebrities: int,
    degree: int,
    *,
    p_broker: float = 0.02,
    seed: int = 0,
) -> DiGraph:
    """The Case-4 "celebrity × celebrity" stress graph (§1's hub story).

    Vertices ``0 .. brokers-1`` are *brokers* wired among themselves by a
    sparse random digraph (edge probability ``p_broker``); the remaining
    ``celebrities`` vertices each fire ``degree`` random out-edges into
    the brokers and receive ``degree`` random in-edges from them.  The
    brokers therefore form a vertex cover, every celebrity stays
    uncovered, and a celebrity-to-celebrity query is always Algorithm 2's
    Case 4 with a ``degree × degree`` neighbor cross product — the
    hub×hub workload that forces the chunked batch engine to materialize
    (or spill on) enormous products while the bitset join pays only
    O(degree) word operations per endpoint.
    """
    if brokers < 1 or celebrities < 0 or degree < 1:
        raise ValueError("need brokers >= 1, celebrities >= 0, degree >= 1")
    rng = np.random.default_rng(seed)
    degree = min(degree, brokers)
    n = brokers + celebrities
    m_broker = int(p_broker * brokers * brokers)
    backbone = rng.integers(0, brokers, size=(m_broker, 2))
    celebs = brokers + np.repeat(np.arange(celebrities, dtype=np.int64), degree)
    spokes_out = np.stack(
        [celebs, rng.integers(0, brokers, size=len(celebs))], axis=1
    )
    spokes_in = np.stack(
        [rng.integers(0, brokers, size=len(celebs)), celebs], axis=1
    )
    edges = np.concatenate([backbone, spokes_out, spokes_in], axis=0)
    return DiGraph(n, edges)  # type: ignore[arg-type]


#: Vertex labels of the paper's Figure 1 / Figure 3 example graph, in id order.
PAPER_EXAMPLE_LABELS = ("a", "b", "c", "d", "e", "f", "g", "h", "i", "j")


def paper_example_graph() -> DiGraph:
    """The worked-example graph G of the paper (Figures 1 and 3).

    The figures are not machine-readable in the paper text, but the edge
    set is fully determined by the constraints of Examples 1–4:

    * ``{b, d, g, i}`` is a vertex cover obtained by picking edges
      ``(b, d)`` and ``(g, i)`` — so both are edges;
    * the 3-reach graph has ω(b,d)=1, ω(d,g)=2, ω(b,g)=3, ω(d,i)=3;
    * ``a`` has no in-neighbors, ``b`` is an out-neighbor of both ``a`` and
      ``c``, ``f`` has in-neighbor ``d``, ``h`` has only in-neighbor ``g``,
      ``j`` has only in-neighbor ``i``;
    * ``⟨d, e, g⟩`` is a 2-hop path and ``{d, e, g}`` a 2-hop vertex cover.

    The unique minimal graph satisfying all of them::

        a -> b    c -> b    b -> d    d -> e    d -> f
        e -> g    g -> h    g -> i    i -> j

    Returned as a labeled graph with ids assigned a=0 … j=9.
    """
    edges = [
        ("a", "b"),
        ("c", "b"),
        ("b", "d"),
        ("d", "e"),
        ("d", "f"),
        ("e", "g"),
        ("g", "h"),
        ("g", "i"),
        ("i", "j"),
    ]
    builder_order = [(PAPER_EXAMPLE_LABELS.index(u), PAPER_EXAMPLE_LABELS.index(v)) for u, v in edges]
    g = DiGraph(10, builder_order)
    g._labels = list(PAPER_EXAMPLE_LABELS)
    g._label_to_id = {lab: i for i, lab in enumerate(PAPER_EXAMPLE_LABELS)}
    return g
