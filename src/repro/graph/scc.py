"""Strongly connected components and DAG condensation.

Every DAG-based comparator in the paper (PTree, 3-hop, GRAIL, PWAH — see
§3.1) pre-processes the input graph by condensing each strongly connected
component (SCC) into a super-vertex.  This module provides an iterative
Tarjan SCC computation (recursion-free, so it handles long paths without
hitting Python's stack limit) and the condensation construction.

The paper's Table 2 reports ``|V_DAG|`` and ``|E_DAG|`` per dataset; the
:func:`condensation` output regenerates those columns.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["strongly_connected_components", "condensation", "Condensation"]


def strongly_connected_components(g: DiGraph) -> np.ndarray:
    """Tarjan's algorithm, iteratively.

    Returns ``comp`` of length ``g.n`` where ``comp[v]`` is the component id
    of vertex ``v``.  Component ids are assigned in **reverse topological
    order of the condensation**: if component ``a`` has an edge to component
    ``b`` (``a != b``) then ``comp`` id of ``a`` is **greater** than that of
    ``b``.  (Tarjan emits sink components first.)
    """
    n = g.n
    indptr, indices = g.out_indptr, g.out_indices

    index = np.full(n, -1, dtype=np.int64)  # discovery index
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    comp = np.full(n, -1, dtype=np.int64)

    counter = 0
    comp_count = 0
    stack: list[int] = []  # Tarjan's vertex stack

    for root in range(n):
        if index[root] != -1:
            continue
        # Each work item is [vertex, next-edge-offset].
        work: list[list[int]] = [[root, int(indptr[root])]]
        while work:
            frame = work[-1]
            u = frame[0]
            if index[u] == -1:
                index[u] = lowlink[u] = counter
                counter += 1
                stack.append(u)
                on_stack[u] = True
            advanced = False
            while frame[1] < int(indptr[u + 1]):
                v = int(indices[frame[1]])
                frame[1] += 1
                if index[v] == -1:
                    work.append([v, int(indptr[v])])
                    advanced = True
                    break
                if on_stack[v]:
                    lowlink[u] = min(lowlink[u], index[v])
            if advanced:
                continue
            # u is finished.
            if lowlink[u] == index[u]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    comp[w] = comp_count
                    if w == u:
                        break
                comp_count += 1
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[u])
    return comp


@dataclass(frozen=True)
class Condensation:
    """The DAG of strongly connected components of a graph.

    Attributes
    ----------
    dag:
        The condensation as a :class:`DiGraph`.  Vertex ``c`` of ``dag``
        corresponds to SCC ``c`` of the original graph.  By construction
        (Tarjan ordering) every edge ``(a, b)`` of ``dag`` has ``a > b``,
        i.e. *decreasing ids form a topological order*.
    component_of:
        Array mapping original vertex -> SCC id.
    component_sizes:
        Array of SCC sizes, indexed by SCC id.
    """

    dag: DiGraph
    component_of: np.ndarray
    component_sizes: np.ndarray

    @property
    def num_components(self) -> int:
        """Number of SCCs (= vertices of the condensation DAG)."""
        return self.dag.n

    def members(self, c: int) -> np.ndarray:
        """Original vertices belonging to SCC ``c``."""
        return np.flatnonzero(self.component_of == c)

    def is_trivial(self, c: int) -> bool:
        """Whether SCC ``c`` is a single vertex."""
        return int(self.component_sizes[c]) == 1

    def map_pairs(self, pairs: np.ndarray) -> np.ndarray:
        """Map an ``(m, 2)`` array of original-vertex pairs to SCC ids.

        The vectorized query-translation step of
        :class:`~repro.core.condensed.CondensedKReach`: both columns are
        looked up through :attr:`component_of` in one gather.
        """
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.ndim != 2 or pairs.shape[1] != 2:
            raise ValueError("pairs must have shape (m, 2)")
        return self.component_of[pairs]


def condensation(g: DiGraph) -> Condensation:
    """Condense every SCC of ``g`` into a super-vertex.

    The resulting DAG has an edge ``(c1, c2)`` iff some original edge
    ``(u, v)`` has ``u`` in SCC ``c1`` and ``v`` in SCC ``c2 != c1``
    (paper §3.1).  The Tarjan id order is preserved, so ids decrease along
    edges — a free topological order that downstream indexes exploit.
    """
    comp = strongly_connected_components(g)
    num = int(comp.max()) + 1 if g.n else 0
    sizes = np.bincount(comp, minlength=num) if g.n else np.zeros(0, dtype=np.int64)

    if g.m:
        edges = g.edge_array()
        heads = comp[edges[:, 0]]
        tails = comp[edges[:, 1]]
        keep = heads != tails
        dag_edges = np.stack([heads[keep], tails[keep]], axis=1)
    else:
        dag_edges = np.empty((0, 2), dtype=np.int64)
    dag = DiGraph(num, dag_edges)  # type: ignore[arg-type]
    return Condensation(dag=dag, component_of=comp, component_sizes=sizes)
