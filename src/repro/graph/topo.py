"""Topological ordering of directed acyclic graphs.

Used by the DAG-based baseline indexes (transitive closure, PWAH, tree
cover, chain cover), all of which sweep the condensation DAG in reverse
topological order to propagate reachability sets.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["topological_order", "is_acyclic", "CycleError"]


class CycleError(ValueError):
    """Raised when a topological order is requested for a cyclic graph."""


def topological_order(g: DiGraph) -> np.ndarray:
    """Kahn's algorithm.

    Returns vertex ids such that every edge goes from an earlier to a later
    position.  Raises :class:`CycleError` if ``g`` has a directed cycle.
    Ties are broken by vertex id (smallest first) so the order is
    deterministic.
    """
    indeg = g.in_degrees().copy()
    # A deque of currently-source vertices; seeded in id order.
    ready: deque[int] = deque(int(v) for v in np.flatnonzero(indeg == 0))
    order = np.empty(g.n, dtype=np.int64)
    filled = 0
    while ready:
        u = ready.popleft()
        order[filled] = u
        filled += 1
        for v in g.out_neighbors(u):
            v = int(v)
            indeg[v] -= 1
            if indeg[v] == 0:
                ready.append(v)
    if filled != g.n:
        raise CycleError(
            f"graph is not acyclic: {g.n - filled} vertices lie on cycles"
        )
    return order


def is_acyclic(g: DiGraph) -> bool:
    """Whether ``g`` contains no directed cycle."""
    try:
        topological_order(g)
    except CycleError:
        return False
    return True
