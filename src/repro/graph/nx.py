"""networkx interoperability.

Optional bridge for downstream users whose graphs already live in
networkx: convert to :class:`~repro.graph.digraph.DiGraph` to build
indexes, and back for visualization/analysis.  networkx is imported
lazily so the core package keeps numpy as its only hard dependency.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graph.digraph import DiGraph

if TYPE_CHECKING:  # pragma: no cover - typing only
    import networkx

__all__ = ["from_networkx", "to_networkx"]


def _require_networkx():
    try:
        import networkx
    except ImportError as exc:  # pragma: no cover - environment-dependent
        raise ImportError(
            "networkx is required for this conversion: pip install networkx"
        ) from exc
    return networkx


def from_networkx(graph: "networkx.DiGraph") -> DiGraph:
    """Convert a networkx DiGraph (any hashable node labels).

    Node labels are preserved through the label table:
    ``result.vertex_id(label)`` / ``result.vertex_label(i)``.  Isolated
    nodes are kept; parallel edges (MultiDiGraph) collapse; self-loops are
    dropped (the paper's graphs are simple).

    >>> import networkx as nx
    >>> g = from_networkx(nx.DiGraph([("a", "b"), ("b", "c")]))
    >>> g.n, g.m
    (3, 2)
    >>> g.vertex_id("c")
    2
    """
    networkx = _require_networkx()
    if not graph.is_directed():
        raise ValueError(
            "expected a directed graph; call .to_directed() first if the "
            "symmetric interpretation is intended"
        )
    label_to_id = {label: i for i, label in enumerate(graph.nodes())}
    edges = [(label_to_id[u], label_to_id[v]) for u, v in graph.edges()]
    out = DiGraph(graph.number_of_nodes(), edges)
    out._labels = list(graph.nodes())
    out._label_to_id = label_to_id
    return out


def to_networkx(graph: DiGraph) -> "networkx.DiGraph":
    """Convert to a networkx DiGraph.

    Labeled graphs keep their labels as node identifiers; unlabeled graphs
    use the dense integer ids.
    """
    networkx = _require_networkx()
    out = networkx.DiGraph()
    if graph.has_labels:
        out.add_nodes_from(graph.vertex_label(v) for v in range(graph.n))
        out.add_edges_from(
            (graph.vertex_label(u), graph.vertex_label(v)) for u, v in graph.edges()
        )
    else:
        out.add_nodes_from(range(graph.n))
        out.add_edges_from(graph.edges())
    return out
