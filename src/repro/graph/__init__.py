"""Graph substrate: CSR digraph, traversals, SCC/DAG machinery, generators.

This subpackage is self-contained (it only depends on numpy) and provides
everything the paper's index — and every comparator index — is built on.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.digraph import DiGraph
from repro.graph.ingest import IngestStats, ingest_edge_list, parse_edge_block
from repro.graph.nx import from_networkx, to_networkx
from repro.graph.scc import Condensation, condensation, strongly_connected_components
from repro.graph.stats import GraphSummary, graph_h_index, shortest_path_stats, summarize
from repro.graph.topo import CycleError, is_acyclic, topological_order
from repro.graph.traversal import (
    UNREACHED,
    bfs_distances,
    bfs_distances_scalar,
    bidirectional_reaches_within,
    bounded_neighborhood,
    reachable_set,
    reaches_within_bfs,
)

__all__ = [
    "DiGraph",
    "GraphBuilder",
    "IngestStats",
    "ingest_edge_list",
    "parse_edge_block",
    "from_networkx",
    "to_networkx",
    "Condensation",
    "condensation",
    "strongly_connected_components",
    "GraphSummary",
    "graph_h_index",
    "shortest_path_stats",
    "summarize",
    "CycleError",
    "is_acyclic",
    "topological_order",
    "UNREACHED",
    "bfs_distances",
    "bfs_distances_scalar",
    "bidirectional_reaches_within",
    "bounded_neighborhood",
    "reachable_set",
    "reaches_within_bfs",
]
