"""Incremental construction of :class:`~repro.graph.digraph.DiGraph`.

:class:`DiGraph` is immutable; :class:`GraphBuilder` is the mutable
accumulator used by generators, loaders and tests.  It accepts edges in any
order, grows the vertex universe on demand, and produces a deduplicated CSR
graph with :meth:`GraphBuilder.build`.
"""

from __future__ import annotations

from typing import Iterable

from repro.graph.digraph import DiGraph

__all__ = ["GraphBuilder"]


class GraphBuilder:
    """Mutable edge accumulator producing an immutable :class:`DiGraph`.

    Parameters
    ----------
    n:
        Initial vertex-universe size.  ``add_edge`` extends it automatically
        when an endpoint id is ``>= n``.
    allow_self_loops:
        Whether ``(u, u)`` edges survive into the built graph.

    Examples
    --------
    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1)
    >>> b.add_edges([(1, 2), (2, 0)])
    >>> g = b.build()
    >>> g.n, g.m
    (3, 3)
    """

    def __init__(self, n: int = 0, *, allow_self_loops: bool = False) -> None:
        if n < 0:
            raise ValueError(f"vertex count must be non-negative, got {n}")
        self._n = n
        self._edges: list[tuple[int, int]] = []
        self._allow_self_loops = allow_self_loops

    @property
    def n(self) -> int:
        """Current vertex-universe size."""
        return self._n

    @property
    def edge_count(self) -> int:
        """Edges accumulated so far (before dedup)."""
        return len(self._edges)

    def ensure_vertex(self, v: int) -> None:
        """Grow the universe so that vertex ``v`` exists."""
        if v < 0:
            raise ValueError(f"vertex id must be non-negative, got {v}")
        if v >= self._n:
            self._n = v + 1

    def add_vertex(self) -> int:
        """Append a fresh isolated vertex, returning its id."""
        self._n += 1
        return self._n - 1

    def add_edge(self, u: int, v: int) -> None:
        """Add the directed edge ``(u, v)``, growing the universe if needed."""
        self.ensure_vertex(u)
        self.ensure_vertex(v)
        self._edges.append((u, v))

    def add_edges(self, edges: Iterable[tuple[int, int]]) -> None:
        """Add many directed edges."""
        for u, v in edges:
            self.add_edge(u, v)

    def add_path(self, vertices: Iterable[int]) -> None:
        """Add the directed path ``v0 -> v1 -> ... -> vk``.

        A single vertex adds no edge but still joins the universe.
        """
        prev: int | None = None
        for v in vertices:
            self.ensure_vertex(v)
            if prev is not None:
                self.add_edge(prev, v)
            prev = v

    def add_cycle(self, vertices: Iterable[int]) -> None:
        """Add the directed cycle through ``vertices`` (closing edge included)."""
        vs = list(vertices)
        if len(vs) < 2:
            raise ValueError("a cycle needs at least two vertices")
        self.add_path(vs)
        self.add_edge(vs[-1], vs[0])

    def build(self) -> DiGraph:
        """Produce the immutable CSR graph (duplicates collapsed)."""
        return DiGraph(self._n, self._edges, allow_self_loops=self._allow_self_loops)
