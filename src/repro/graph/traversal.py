"""Breadth-first and depth-first traversal kernels.

Every index in this package is built from (possibly bounded) BFS sweeps, and
the online baselines in :mod:`repro.baselines.bfs` answer queries with
bounded BFS directly, so these kernels are the hot path of the whole
reproduction.  Two implementations are provided:

* :func:`bfs_distances` — level-synchronous, vectorized over numpy frontier
  arrays.  Used for index construction, where each sweep may touch a large
  fraction of the graph.
* :func:`reaches_within_bfs` / :func:`bounded_neighborhood` — scalar,
  early-exiting deque versions.  Used at query time, where the expected
  frontier is tiny and numpy call overhead would dominate.

All functions take ``direction='out'`` (follow edges forward) or
``direction='in'`` (follow edges backward, i.e. BFS on the transpose).
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

import numpy as np

from repro import native
from repro import native_kernels as _nk
from repro.graph.digraph import DiGraph

__all__ = [
    "gather_neighbors",
    "bfs_distances",
    "bfs_distances_blocked",
    "bfs_distances_scalar",
    "blocked_ball_probe",
    "bulk_reaches_within",
    "reachable_set",
    "reaches_within_bfs",
    "reaches_within_small",
    "bidirectional_reaches_within",
    "bounded_neighborhood",
    "khop_neighbors",
    "dfs_postorder",
    "eccentricity",
]

UNREACHED = -1


def _csr(g: DiGraph, direction: str) -> tuple[np.ndarray, np.ndarray]:
    """The (indptr, indices) pair for the requested direction."""
    if direction == "out":
        return g.out_indptr, g.out_indices
    if direction == "in":
        return g.in_indptr, g.in_indices
    raise ValueError(f"direction must be 'out' or 'in', got {direction!r}")


def gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbors of the vertices in ``frontier``, concatenated.

    Vectorized gather: for CSR ``(indptr, indices)`` and a frontier of ``f``
    vertices whose adjacency lists hold ``t`` entries in total, this runs in
    O(f + t) numpy work with no Python-level loop.
    """
    starts = indptr[frontier]
    counts = (indptr[frontier + 1] - starts).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    # positions[i] = starts[j] + (i - cum_counts[j]) for the j-th frontier vertex
    cum = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=cum[1:])
    positions = np.repeat(starts - cum, counts) + np.arange(total, dtype=np.int64)
    return indices[positions]


def bfs_distances(
    g: DiGraph,
    source: int,
    *,
    k: int | None = None,
    direction: str = "out",
) -> np.ndarray:
    """Vectorized BFS distances from ``source``.

    Returns an ``int32`` array ``dist`` of length ``g.n`` with
    ``dist[v] = d(source, v)`` for vertices within ``k`` hops (all reachable
    vertices when ``k`` is None) and :data:`UNREACHED` (-1) elsewhere.
    ``dist[source]`` is 0.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range [0, {g.n})")
    if k is not None and k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    indptr, indices = _csr(g, direction)
    dist = np.full(g.n, UNREACHED, dtype=np.int32)
    dist[source] = 0
    frontier = np.array([source], dtype=np.int64)
    level = 0
    while len(frontier):
        if k is not None and level >= k:
            break
        nxt = gather_neighbors(indptr, indices, frontier)
        if not len(nxt):
            break
        nxt = nxt[dist[nxt] == UNREACHED]
        if not len(nxt):
            break
        nxt = np.unique(nxt)
        level += 1
        dist[nxt] = level
        frontier = nxt.astype(np.int64)
    return dist


def _or_group(vertices: np.ndarray, masks: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """OR the uint64 masks of duplicate vertices together.

    Returns ``(unique_vertices, ored_masks)`` with vertices ascending.
    One argsort plus one ``bitwise_or.reduceat`` — this is the multi-source
    frontier merge, replacing the per-vertex scatter a scalar BFS would do.
    """
    order = np.argsort(vertices, kind="stable")
    sv = vertices[order]
    sm = masks[order]
    new_group = np.empty(len(sv), dtype=bool)
    new_group[0] = True
    np.not_equal(sv[1:], sv[:-1], out=new_group[1:])
    bounds = np.flatnonzero(new_group)
    return sv[bounds], np.bitwise_or.reduceat(sm, bounds)


def _expand_frontier_numpy(
    indptr: np.ndarray,
    indices: np.ndarray,
    front_v: np.ndarray,
    front_m: np.ndarray,
    visited: np.ndarray,
    next_mask: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray]:
    """One level of blocked MS-BFS: gather, sort-merge OR, novelty filter.

    Numpy twin of :func:`repro.native_kernels.expand_frontier`: returns
    the newly reached ``(nv, nm)`` with ``nv`` ascending and ``visited``
    untouched (the caller commits after emitting).  ``next_mask`` — the
    native tier's vertex-indexed scratch — is unused here.
    """
    starts = indptr[front_v].astype(np.int64)
    counts = (indptr[front_v + 1] - indptr[front_v]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, np.empty(0, dtype=np.uint64)
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    positions = (
        np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
    )
    nbrs = indices[positions].astype(np.int64)
    masks = np.repeat(front_m, counts)
    nv, nm = _or_group(nbrs, masks)
    nm &= ~visited[nv]
    fresh = nm != 0
    return nv[fresh], nm[fresh]


def _resolve_expand(n: int):
    """The active frontier-expansion kernel plus its scratch buffer.

    The native tier scatters into a vertex-indexed uint64 accumulator;
    that scratch is allocated once per public call (not per level) and
    the kernel restores it to zeros before returning.  The numpy tier
    needs none.
    """
    fn, tier = native.resolve("expand_frontier")
    scratch = None if tier == "numpy" else np.zeros(n, dtype=np.uint64)
    return fn, scratch


def bfs_distances_blocked(
    g: DiGraph,
    sources: np.ndarray,
    *,
    k: int | None = None,
    direction: str = "out",
    emit: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Bit-parallel multi-source BFS emitting ``(src, dst, dist)`` triples.

    MS-BFS-style blocked traversal: sources are processed 64 per sweep,
    each owning one bit of a uint64 mask.  ``visited`` is a single uint64
    per vertex and a whole block's frontier expands through the CSR in a
    few vectorized numpy operations per level (gather, sort-merge OR,
    novelty mask) — the per-sweep cost is shared by all 64 sources, which
    is what makes Algorithm-1 construction scale with the hardware instead
    of with ``|S|`` Python-level BFS runs.

    Returns three aligned int64 arrays ``(src, dst, dist)`` with one
    triple per (source, reached vertex) pair where ``1 <= dist <= k``
    (``k=None`` means unbounded).  Duplicate sources are collapsed — each
    distinct source yields its triples exactly once.  ``emit`` optionally
    restricts the *reported* vertices to a boolean mask over vertex ids
    (traversal still crosses non-emitted vertices); index construction
    passes the cover membership mask here.  A source never reports
    itself, and triples come back in no particular order.
    """
    sources = np.unique(np.asarray(sources, dtype=np.int64))
    if len(sources) and (int(sources.min()) < 0 or int(sources.max()) >= g.n):
        raise ValueError(f"source out of range [0, {g.n})")
    if k is not None and k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    indptr, indices = _csr(g, direction)
    if emit is not None:
        emit = np.asarray(emit, dtype=bool)
        if len(emit) != g.n:
            raise ValueError(f"emit mask must have length {g.n}, got {len(emit)}")
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    out_dist: list[np.ndarray] = []
    expand, scratch = _resolve_expand(g.n)
    visited = np.zeros(g.n, dtype=np.uint64)
    for start in range(0, len(sources), 64):
        block = sources[start : start + 64]
        width = len(block)
        bit = np.uint64(1) << np.arange(width, dtype=np.uint64)
        if start:
            visited[:] = 0
        np.bitwise_or.at(visited, block, bit)
        front_v, front_m = _or_group(block, bit)
        level = 0
        while len(front_v) and (k is None or level < k):
            nv, nm = expand(indptr, indices, front_v, front_m, visited, scratch)
            if not len(nv):
                break
            visited[nv] |= nm
            level += 1
            if emit is None:
                hits, hit_masks = nv, nm
            else:
                sel = emit[nv]
                hits, hit_masks = nv[sel], nm[sel]
            if len(hits):
                bits = np.unpackbits(
                    np.ascontiguousarray(hit_masks).view(np.uint8).reshape(-1, 8),
                    axis=1,
                    bitorder="little",
                )[:, :width]
                rows, cols = np.nonzero(bits)
                out_src.append(block[cols])
                out_dst.append(hits[rows])
                out_dist.append(np.full(len(rows), level, dtype=np.int64))
            front_v, front_m = nv, nm
    if not out_src:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate(out_src),
        np.concatenate(out_dst),
        np.concatenate(out_dist),
    )


def blocked_ball_probe(
    g: DiGraph,
    sources: np.ndarray,
    probe_src: np.ndarray,
    probe_dst: np.ndarray,
    probe_depth: np.ndarray,
    *,
    depths: np.ndarray | None = None,
    direction: str = "out",
    emit: np.ndarray | None = None,
) -> tuple[np.ndarray, tuple[np.ndarray, np.ndarray, np.ndarray]]:
    """Bit-parallel bounded ball expansion with distance-checkpoint probes.

    The query-side sibling of :func:`bfs_distances_blocked`: 64 sources
    share each sweep, and on top of the level expansion it answers
    per-pair *probes* — "is ``probe_dst[i]`` within ``probe_depth[i]``
    hops of ``sources[probe_src[i]]``?" — by testing the destination's
    visited bit at exactly the probe's checkpoint level.  This is what
    replaces the per-pair scalar contact walks of the online BFS
    baselines and the (h,k)-reach batch engine.

    Parameters
    ----------
    sources:
        Strictly increasing int64 vertex ids (``np.unique`` output).
    probe_src / probe_dst / probe_depth:
        Aligned probe arrays: index into ``sources``, target vertex id,
        and hop checkpoint (use any value ``>= g.n`` for "unbounded").
    depths:
        Optional per-source expansion bound; each 64-source block expands
        to the max bound in the block (probe verdicts still honor their
        own checkpoints exactly).  ``None`` expands to exhaustion.  Every
        probe's checkpoint must be covered by its source's bound.
    emit:
        Optional bool mask over vertex ids; when given, the kernel also
        returns ``(src_pos, dst, dist)`` triples — ``src_pos`` **indexes
        into** ``sources`` — for every emitted vertex reached within the
        block's depth, exactly like :func:`bfs_distances_blocked` (a
        source never reports itself).  ``None`` emits nothing and lets a
        block stop early once all its probes are resolved.

    Returns ``(hits, (src_pos, dst, dist))`` with ``hits`` aligned to the
    probe arrays.
    """
    sources = np.asarray(sources, dtype=np.int64)
    if len(sources) > 1 and not bool(np.all(sources[:-1] < sources[1:])):
        raise ValueError("sources must be strictly increasing and unique")
    if len(sources) and (int(sources[0]) < 0 or int(sources[-1]) >= g.n):
        raise ValueError(f"source out of range [0, {g.n})")
    indptr, indices = _csr(g, direction)
    probe_src = np.asarray(probe_src, dtype=np.int64)
    probe_dst = np.asarray(probe_dst, dtype=np.int64)
    probe_depth = np.asarray(probe_depth, dtype=np.int64)
    if emit is not None:
        emit = np.asarray(emit, dtype=bool)

    hits = np.zeros(len(probe_src), dtype=bool)
    out_src: list[np.ndarray] = []
    out_dst: list[np.ndarray] = []
    out_dist: list[np.ndarray] = []
    # Probes grouped by source block: one argsort, then per-block slices.
    probe_order = np.argsort(probe_src, kind="stable")
    sorted_src = probe_src[probe_order]
    expand, scratch = _resolve_expand(g.n)
    visited = np.zeros(g.n, dtype=np.uint64)

    for start in range(0, len(sources), 64):
        block = sources[start : start + 64]
        width = len(block)
        bit = np.uint64(1) << np.arange(width, dtype=np.uint64)
        if start:
            visited[:] = 0
        visited[block] = bit  # sources are unique, so plain assignment
        lo = int(np.searchsorted(sorted_src, start))
        hi = int(np.searchsorted(sorted_src, start + width))
        bp = probe_order[lo:hi]  # this block's probe positions
        shifts = (probe_src[bp] - start).astype(np.uint64)
        dsts = probe_dst[bp]
        budgets = probe_depth[bp]
        active = np.ones(len(bp), dtype=bool)
        if depths is None:
            block_depth = None
        else:
            block_depth = int(depths[start : start + width].max()) if width else 0

        def probe_pass(level: int) -> None:
            nonlocal active
            if not active.any():
                return
            idx = np.flatnonzero(active)
            got = (visited[dsts[idx]] >> shifts[idx]) & np.uint64(1) != 0
            within = got & (level <= budgets[idx])
            hits[bp[idx[within]]] = True
            done = within | (budgets[idx] <= level)
            active[idx[done]] = False

        probe_pass(0)
        front_v, front_m = _or_group(block, bit)
        level = 0
        while len(front_v) and (block_depth is None or level < block_depth):
            if emit is None and not active.any():
                break
            nv, nm = expand(indptr, indices, front_v, front_m, visited, scratch)
            if not len(nv):
                break
            visited[nv] |= nm
            level += 1
            if emit is not None:
                sel = emit[nv]
                hit_v, hit_m = nv[sel], nm[sel]
                if len(hit_v):
                    bits = np.unpackbits(
                        np.ascontiguousarray(hit_m).view(np.uint8).reshape(-1, 8),
                        axis=1,
                        bitorder="little",
                    )[:, :width]
                    rows, cols = np.nonzero(bits)
                    out_src.append(start + cols.astype(np.int64))
                    out_dst.append(hit_v[rows])
                    out_dist.append(np.full(len(rows), level, dtype=np.int64))
            probe_pass(level)
            front_v, front_m = nv, nm
        # The ball is exhausted (or depth-capped past every unresolved
        # checkpoint): remaining probes resolve against the final visited.
        if active.any():
            budgets[:] = level  # force resolution at the current level
            probe_pass(level)

    if not out_src:
        empty = np.empty(0, dtype=np.int64)
        triples = (empty, empty.copy(), empty.copy())
    else:
        triples = (
            np.concatenate(out_src),
            np.concatenate(out_dst),
            np.concatenate(out_dist),
        )
    return hits, triples


def bulk_reaches_within(
    g: DiGraph, s: np.ndarray, t: np.ndarray, k: int | None
) -> np.ndarray:
    """Vectorized ``d(s[i], t[i]) <= k`` over aligned pair arrays.

    The blocked-MS-BFS replacement for looping
    :func:`reaches_within_bfs`: pairs sharing a source share its ball
    expansion, 64 distinct sources share each sweep, and a block stops as
    soon as all its probes are resolved.  ``k=None`` means unbounded
    reachability.  Answers are bit-identical to the scalar loop.
    """
    out = s == t
    if k is not None and k <= 0:
        return out if k == 0 else np.zeros(len(s), dtype=bool)
    rest = np.flatnonzero(~out)
    if not len(rest):
        return out
    uniq, inv = np.unique(s[rest], return_inverse=True)
    cap = np.int64(g.n if k is None else k)
    depth = None if k is None else np.full(len(uniq), cap, dtype=np.int64)
    hits, _ = blocked_ball_probe(
        g,
        uniq,
        inv,
        t[rest],
        np.full(len(rest), cap, dtype=np.int64),
        depths=depth,
    )
    out[rest[hits]] = True
    return out


def bfs_distances_scalar(
    g: DiGraph,
    source: int,
    *,
    k: int | None = None,
    direction: str = "out",
) -> dict[int, int]:
    """Scalar BFS distances, returned sparsely as ``{vertex: distance}``.

    Preferable to :func:`bfs_distances` when the k-hop ball around
    ``source`` is expected to be much smaller than the graph, because it
    allocates proportionally to the ball rather than to ``g.n``.
    """
    if not 0 <= source < g.n:
        raise ValueError(f"source {source} out of range [0, {g.n})")
    if k is not None and k < 0:
        raise ValueError(f"k must be non-negative, got {k}")
    indptr, indices = _csr(g, direction)
    dist = {source: 0}
    queue: deque[int] = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if k is not None and du >= k:
            continue
        for v in indices[indptr[u] : indptr[u + 1]]:
            v = int(v)
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def reachable_set(g: DiGraph, source: int, *, direction: str = "out") -> set[int]:
    """All vertices reachable from ``source`` (including itself)."""
    dist = bfs_distances(g, source, direction=direction)
    return set(int(v) for v in np.flatnonzero(dist != UNREACHED))


def reaches_within_bfs(g: DiGraph, s: int, t: int, k: int | None) -> bool:
    """Ground-truth k-hop reachability by early-exiting BFS.

    This is the paper's "k-hop BFS" online baseline (µ-BFS in Table 7) and
    doubles as the oracle against which every index is tested.  ``k=None``
    means classic (unbounded) reachability.
    """
    if not 0 <= s < g.n or not 0 <= t < g.n:
        raise ValueError("query vertex out of range")
    if s == t:
        return k is None or k >= 0
    if k is not None and k <= 0:
        return False
    indptr, indices = g.out_indptr, g.out_indices
    seen = {s}
    frontier = [s]
    level = 0
    while frontier:
        if k is not None and level >= k:
            return False
        nxt: list[int] = []
        for u in frontier:
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if v == t:
                    return True
                if v not in seen:
                    seen.add(v)
                    nxt.append(v)
        frontier = nxt
        level += 1
    return False


def bidirectional_reaches_within(g: DiGraph, s: int, t: int, k: int | None) -> bool:
    """k-hop reachability by meet-in-the-middle BFS.

    Expands the smaller of the forward ball around ``s`` and the backward
    ball around ``t`` one level at a time until the level budgets add up to
    ``k`` or the frontiers intersect.  Exponentially cheaper than one-sided
    BFS on expander-like graphs; used as an ablation baseline.
    """
    if not 0 <= s < g.n or not 0 <= t < g.n:
        raise ValueError("query vertex out of range")
    if s == t:
        return k is None or k >= 0
    if k is not None and k <= 0:
        return False
    if k is None:
        k = g.n  # a simple path never exceeds n-1 edges

    fwd_seen = {s}
    bwd_seen = {t}
    fwd_frontier = {s}
    bwd_frontier = {t}
    fwd_depth = 0
    bwd_depth = 0

    while fwd_frontier and bwd_frontier and fwd_depth + bwd_depth < k:
        # Expand the cheaper side (by current frontier adjacency volume).
        if len(fwd_frontier) <= len(bwd_frontier):
            nxt: set[int] = set()
            for u in fwd_frontier:
                for v in g.out_neighbors(u):
                    v = int(v)
                    if v in bwd_seen:
                        return True
                    if v not in fwd_seen:
                        fwd_seen.add(v)
                        nxt.add(v)
            fwd_frontier = nxt
            fwd_depth += 1
        else:
            nxt = set()
            for u in bwd_frontier:
                for v in g.in_neighbors(u):
                    v = int(v)
                    if v in fwd_seen:
                        return True
                    if v not in bwd_seen:
                        bwd_seen.add(v)
                        nxt.add(v)
            bwd_frontier = nxt
            bwd_depth += 1
    return False


def reaches_within_small(g: DiGraph, s: int, t: int, k: int) -> bool:
    """Specialized ``dist(s, t) <= k`` for tiny hop budgets (k <= 3).

    Pure neighbor-set algebra — never materializes a radius-2 ball:

    * k = 1: edge test;
    * k = 2: edge test or ``out(s) ∩ in(t)``;
    * k = 3: additionally, an edge between ``out(s)`` and ``in(t)``.

    On hub graphs this is the difference between O(deg) and an
    O(hub-ball) expansion: a hub's 2-hop ball can cover most of the
    graph, while its neighbor list is just its degree.
    """
    if s == t:
        return True
    if k <= 0:
        return False
    out_s = g.out_lists()[s]
    if t in out_s:
        return True
    if k == 1 or not out_s:
        return False
    in_t = g.in_lists()[t]
    if not in_t:
        return False
    in_t_set = set(in_t)
    if not in_t_set.isdisjoint(out_s):
        return True
    if k == 2:
        return False
    # k == 3: some edge (a, b) with a in out(s), b in in(t).  Probe the
    # smaller side's adjacency against the other side's set.
    out_lists = g.out_lists()
    if len(out_s) <= len(in_t):
        for a in out_s:
            row = out_lists[a]
            if len(row) < len(in_t_set):
                if any(b in in_t_set for b in row):
                    return True
            elif not in_t_set.isdisjoint(row):
                return True
        return False
    in_lists = g.in_lists()
    out_s_set = set(out_s)
    for b in in_t:
        row = in_lists[b]
        if len(row) < len(out_s_set):
            if any(a in out_s_set for a in row):
                return True
        elif not out_s_set.isdisjoint(row):
            return True
    return False


def bounded_neighborhood(
    g: DiGraph, v: int, h: int, *, direction: str = "out"
) -> dict[int, int]:
    """Vertices within ``h`` hops of ``v`` with their exact distances.

    ``direction='out'`` gives ``{u: d(v, u)}`` (the paper's ``outNei_i``),
    ``direction='in'`` gives ``{u: d(u, v)}`` (``inNei_i``).  ``v`` itself is
    included with distance 0.  Scalar implementation tuned for the tiny
    ``h`` used at query time.
    """
    return bfs_distances_scalar(g, v, k=h, direction=direction)


def khop_neighbors(
    g: DiGraph, v: int, h: int, *, direction: str = "out"
) -> Iterator[tuple[int, int]]:
    """Iterate ``(vertex, distance)`` pairs with ``1 <= distance <= h``."""
    for u, d in bounded_neighborhood(g, v, h, direction=direction).items():
        if d >= 1:
            yield u, d


def dfs_postorder(g: DiGraph, order: np.ndarray | None = None) -> np.ndarray:
    """Post-order of an iterative DFS over the whole graph.

    ``order`` optionally fixes the root/child visiting priority (a
    permutation of vertex ids); GRAIL uses random permutations.  Returns the
    vertex ids in post-order (every vertex appears exactly once).
    """
    if order is None:
        order = np.arange(g.n, dtype=np.int64)
    visited = np.zeros(g.n, dtype=bool)
    post: list[int] = []
    for root in order:
        root = int(root)
        if visited[root]:
            continue
        visited[root] = True
        # Stack holds (vertex, iterator over prioritized children).
        stack: list[tuple[int, Iterator[int]]] = [(root, _child_iter(g, root, order))]
        while stack:
            u, it = stack[-1]
            advanced = False
            for v in it:
                if not visited[v]:
                    visited[v] = True
                    stack.append((v, _child_iter(g, v, order)))
                    advanced = True
                    break
            if not advanced:
                post.append(u)
                stack.pop()
    return np.asarray(post, dtype=np.int64)


def _child_iter(g: DiGraph, u: int, priority: np.ndarray) -> Iterator[int]:
    """Out-neighbors of ``u`` ordered by the given priority permutation."""
    nbrs = g.out_neighbors(u)
    if len(nbrs) == 0:
        return iter(())
    ranks = priority[nbrs] if len(priority) == g.n else nbrs
    order = np.argsort(ranks, kind="stable")
    return iter(int(v) for v in nbrs[order])


def eccentricity(g: DiGraph, v: int, *, direction: str = "out") -> int:
    """Largest finite BFS distance from ``v`` (0 if nothing is reachable)."""
    dist = bfs_distances(g, v, direction=direction)
    reached = dist[dist != UNREACHED]
    return int(reached.max()) if len(reached) else 0


def _expand_frontier_sample():
    # A 5-vertex diamond-with-tail CSR: 0->{1,2}, 1->3, 2->3, 3->4.
    indptr = np.array([0, 2, 3, 4, 5, 5], dtype=np.int64)
    indices = np.array([1, 2, 3, 3, 4], dtype=np.int64)
    front_v = np.array([1, 2], dtype=np.int64)
    front_m = np.array([1, 2], dtype=np.uint64)
    visited = np.array([1, 1, 2, 2, 0], dtype=np.uint64)  # 3 seen by src 1 only
    return indptr, indices, front_v, front_m, visited, np.zeros(5, dtype=np.uint64)


native.register(
    "expand_frontier",
    numpy_impl=_expand_frontier_numpy,
    python_impl=_nk.expand_frontier,
    sample=_expand_frontier_sample,
)
