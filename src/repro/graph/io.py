"""Graph serialization.

Two formats:

* **Edge-list text** (`.txt` / `.el`, optionally gzipped): one ``u v``
  pair per line, ``#``/``%`` comments allowed — the interchange format
  the original datasets ship in.  Parsing is vectorized through the same
  :func:`~repro.graph.ingest.parse_edge_block` helper the streamed
  ingester uses; this eager reader stays as the small-graph differential
  baseline for :func:`~repro.graph.ingest.ingest_edge_list`.
* **NPZ binary** (`.npz`): the CSR arrays verbatim, loading in O(1) parses.

Both round-trip exactly (up to edge dedup, which :class:`DiGraph` always
performs).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.ingest import open_edge_stream, parse_edge_block

__all__ = ["write_edge_list", "read_edge_list", "save_npz", "load_npz"]


def write_edge_list(g: DiGraph, path: str | os.PathLike, *, header: bool = True) -> None:
    """Write ``g`` as an edge-list text file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# directed graph: {g.n} vertices, {g.m} edges\n")
        for u, v in g.edges():
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | os.PathLike, *, n: int | None = None) -> DiGraph:
    """Read an edge-list text file (plain or gzip, detected by content).

    Lines starting with ``#`` or ``%`` are comments; blank lines are
    skipped; columns past the first two are ignored.  ``n`` forces the
    vertex-universe size (otherwise ``max id + 1``).  The whole file is
    parsed in memory — for inputs that do not fit, use
    :func:`~repro.graph.ingest.ingest_edge_list`.
    """
    path = Path(path)
    with open_edge_stream(path) as fh:
        data = fh.read()
    u, v = parse_edge_block(data, path=path)
    if u.size == 0:
        return DiGraph(n if n is not None else 0)
    size = n if n is not None else int(max(u.max(), v.max())) + 1
    return DiGraph(size, np.column_stack([u, v]))


def save_npz(g: DiGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        n=np.int64(g.n),
        out_indptr=g.out_indptr,
        out_indices=g.out_indices,
        in_indptr=g.in_indptr,
        in_indices=g.in_indices,
    )


def load_npz(path: str | os.PathLike) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`.

    Reassembled through :meth:`DiGraph.from_csr
    <repro.graph.digraph.DiGraph.from_csr>`, which validates the CSR
    invariants instead of trusting the file blindly.
    """
    with np.load(Path(path)) as data:
        g = DiGraph.from_csr(
            data["out_indptr"],
            data["out_indices"],
            in_indptr=data["in_indptr"],
            in_indices=data["in_indices"],
        )
        if g.n != int(data["n"]):
            raise ValueError("stored vertex count disagrees with the CSR arrays")
    return g
