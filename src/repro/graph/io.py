"""Graph serialization.

Two formats:

* **Edge-list text** (`.txt` / `.el`): one ``u v`` pair per line, ``#``
  comments allowed — the interchange format the original datasets ship in.
* **NPZ binary** (`.npz`): the CSR arrays verbatim, loading in O(1) parses.

Both round-trip exactly (up to edge dedup, which :class:`DiGraph` always
performs).
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = ["write_edge_list", "read_edge_list", "save_npz", "load_npz"]


def write_edge_list(g: DiGraph, path: str | os.PathLike, *, header: bool = True) -> None:
    """Write ``g`` as an edge-list text file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        if header:
            fh.write(f"# directed graph: {g.n} vertices, {g.m} edges\n")
        for u, v in g.edges():
            fh.write(f"{u} {v}\n")


def read_edge_list(path: str | os.PathLike, *, n: int | None = None) -> DiGraph:
    """Read an edge-list text file.

    Lines starting with ``#`` or ``%`` are comments.  ``n`` forces the
    vertex-universe size (otherwise ``max id + 1``).
    """
    path = Path(path)
    edges: list[tuple[int, int]] = []
    max_id = -1
    with path.open("r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line or line.startswith(("#", "%")):
                continue
            parts = line.split()
            if len(parts) < 2:
                raise ValueError(f"{path}:{lineno}: expected 'u v', got {line!r}")
            u, v = int(parts[0]), int(parts[1])
            edges.append((u, v))
            max_id = max(max_id, u, v)
    size = n if n is not None else max_id + 1
    return DiGraph(size, edges)


def save_npz(g: DiGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays as a compressed ``.npz`` archive."""
    np.savez_compressed(
        Path(path),
        n=np.int64(g.n),
        out_indptr=g.out_indptr,
        out_indices=g.out_indices,
        in_indptr=g.in_indptr,
        in_indices=g.in_indices,
    )


def load_npz(path: str | os.PathLike) -> DiGraph:
    """Load a graph previously written by :func:`save_npz`.

    Reassembled through :meth:`DiGraph.from_csr
    <repro.graph.digraph.DiGraph.from_csr>`, which validates the CSR
    invariants instead of trusting the file blindly.
    """
    with np.load(Path(path)) as data:
        g = DiGraph.from_csr(
            data["out_indptr"],
            data["out_indices"],
            in_indptr=data["in_indptr"],
            in_indices=data["in_indices"],
        )
        if g.n != int(data["n"]):
            raise ValueError("stored vertex count disagrees with the CSR arrays")
    return g
