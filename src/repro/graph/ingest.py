"""Streamed edge-list ingestion: file on disk → dual-CSR, bounded memory.

The eager :func:`repro.graph.io.read_edge_list` path materializes every
edge before :class:`~repro.graph.digraph.DiGraph` dedups and sorts them —
fine for the synthetic benchmark graphs, fatal for SNAP-sized inputs
("millions of users" dies at ingest, not at query time).  This module is
the out-of-core alternative:

1. **Chunked reader** — the file (plain or gzip, detected by magic) is
   read in fixed-size blocks and parsed with pure numpy byte-vector
   operations (:func:`parse_edge_block`): no python string per line, no
   python int per id.  Comment (``#``/``%``) and blank lines are skipped;
   columns past the first two are ignored, exactly like the eager reader.
2. **External merge sort** — edges are fused into single int64 keys
   ``(u << 32) | v`` (same lexicographic order as ``(u, v)``; ids must
   fit int32, which the CSR substrate requires anyway) and buffered up
   to a memory budget (``--ingest-mb`` / ``KREACH_INGEST_MB``, default
   256).  Each full buffer is sorted, dedup'd, and spilled as a run file
   inside a ``TemporaryDirectory`` the context manager owns — an
   exception mid-merge leaves no orphan spill files behind.
3. **Chunked k-way merge → CSR** — runs are merged in bounded blocks
   (the per-block threshold is the minimum of the run chunks' tails, so
   consecutive blocks are strictly increasing and cross-block dedup is
   unnecessary) and accumulated directly into dual-CSR arrays, emitted
   through ``DiGraph.from_csr(..., validate=False)``.  No edge dict, no
   python-object edges, ever.

The differential guarantee — pinned by ``tests/graph/test_ingest.py`` —
is that for any input ``ingest_edge_list(path) == read_edge_list(path)``
bit-for-bit (same dedup, same self-loop dropping, same universe size).
"""

from __future__ import annotations

import gzip
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro import faults
from repro.graph.digraph import DiGraph

__all__ = [
    "IngestStats",
    "ingest_edge_list",
    "parse_edge_block",
    "open_edge_stream",
    "DEFAULT_BUDGET_MB",
]

#: Fallback in-memory budget (MiB) when neither the ``memory_mb``
#: argument nor the ``KREACH_INGEST_MB`` environment variable is set.
DEFAULT_BUDGET_MB = 256

#: Vertex ids must fit the fused-key upper half *and* the int32 CSR.
_MAX_ID = (1 << 31) - 1

#: Bytes read from the file per parser block.  The vectorized parser's
#: transient temporaries run ~25x the block bytes, so the block — not
#: the file — bounds the parse-stage peak; 1 MiB keeps that tens of MB
#: while staying big enough to amortize per-block numpy overhead.
_READ_BLOCK = 1 << 20

# ASCII byte classes used by the vectorized parser.
_WHITESPACE = np.zeros(256, dtype=bool)
_WHITESPACE[[9, 10, 11, 12, 13, 32]] = True  # \t \n \v \f \r space
_POW10 = 10 ** np.arange(19, dtype=np.int64)  # 10**18 < 2**63


@dataclass
class IngestStats:
    """Observability for one :func:`ingest_edge_list` run.

    Pass an instance via ``stats=`` and it is filled in place — the
    bench harness uses it to report spill behaviour next to timings.
    """

    lines_parsed: int = 0  #: data lines seen (before dedup / loop drop)
    edges: int = 0  #: unique non-loop edges in the final graph
    n: int = 0  #: vertex-universe size of the final graph
    spill_runs: int = 0  #: sorted run files written to the temp dir
    max_buffered_bytes: int = 0  #: peak bytes held in the sort buffer
    budget_bytes: int = 0  #: the configured buffer budget, in bytes


# ----------------------------------------------------------------------
# Vectorized parsing
# ----------------------------------------------------------------------
def parse_edge_block(
    buf: np.ndarray | bytes,
    *,
    path: str | os.PathLike = "<memory>",
    first_lineno: int = 1,
) -> tuple[np.ndarray, np.ndarray]:
    """Parse a block of edge-list text into ``(u, v)`` int64 arrays.

    ``buf`` is raw ASCII bytes (a ``uint8`` array or ``bytes``) holding
    whole lines — the caller is responsible for splitting the stream on
    line boundaries (:func:`ingest_edge_list` carries partial tails
    between blocks).  Blank lines and lines whose first visible byte is
    ``#`` or ``%`` are skipped; each remaining line must start with two
    non-negative integer tokens (extra columns are ignored).  Raises
    :class:`ValueError` with ``path:lineno`` context on a line with
    fewer than two tokens or a non-numeric leading token.
    """
    if isinstance(buf, (bytes, bytearray, memoryview)):
        buf = np.frombuffer(buf, dtype=np.uint8)
    if buf.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Allocation discipline: the streamed ingester's resident peak is
    # this function's temporaries, so every full-length helper array is
    # avoided (line ids come from binary search over newline positions,
    # never a per-byte cumsum) or held in the narrowest dtype that fits
    # a block, and freed the moment its last consumer has run.
    idx_dt = np.int32 if buf.size < (1 << 31) else np.int64
    nl_pos = np.flatnonzero(buf == 10)
    visible = ~_WHITESPACE[buf]
    vis_idx = np.flatnonzero(visible).astype(idx_dt, copy=False)
    del visible
    if vis_idx.size == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty

    # Line id of a visible byte = newlines strictly before it.
    n_lines = int(nl_pos.size) + 1
    line_of_vis = np.searchsorted(nl_pos, vis_idx).astype(idx_dt, copy=False)

    # First visible byte of each non-blank line → comment-line mask.
    first_lines, first_pos = np.unique(line_of_vis, return_index=True)
    first_byte = buf[vis_idx[first_pos]]
    is_comment = np.zeros(n_lines, dtype=bool)
    is_comment[first_lines[(first_byte == 35) | (first_byte == 37)]] = True  # '#' '%'
    if is_comment.any():
        keep = ~is_comment[line_of_vis]
        vis_idx = vis_idx[keep]
        line_of_vis = line_of_vis[keep]
        del keep
        if vis_idx.size == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
    del first_lines, first_pos, first_byte, is_comment

    # Tokenize: a token starts at a visible byte not preceded by one.
    starts = np.empty(vis_idx.size, dtype=bool)
    starts[0] = True
    np.not_equal(vis_idx[1:], vis_idx[:-1] + 1, out=starts[1:])
    tok_of_vis = np.cumsum(starts, dtype=idx_dt)
    tok_of_vis -= 1
    start_pos = np.flatnonzero(starts)
    del starts
    tok_line = line_of_vis[start_pos]
    del start_pos

    # Rank of each token within its line; demand >= 2 tokens per line.
    line_first_tok = np.zeros(n_lines, dtype=idx_dt)
    uniq_lines, uniq_first = np.unique(tok_line, return_index=True)
    line_first_tok[uniq_lines] = uniq_first
    rank = np.arange(tok_line.size, dtype=idx_dt) - line_first_tok[tok_line]
    tok_counts = np.bincount(tok_line, minlength=n_lines)
    short = np.flatnonzero(tok_counts == 1)
    del line_first_tok, uniq_lines, uniq_first, tok_counts
    if short.size:
        _bad_line(buf, nl_pos, int(short[0]), path, first_lineno, "expected 'u v'")

    kept_tok = rank < 2
    kept_of_vis = kept_tok[tok_of_vis]

    # Digit values for the kept tokens only (extra columns are free
    # text, so they are neither validated nor converted).
    k_line = line_of_vis[kept_of_vis]
    k_tok = tok_of_vis[kept_of_vis]
    del line_of_vis, tok_of_vis
    k_digits = buf[vis_idx[kept_of_vis]].astype(np.int16)
    del vis_idx, kept_of_vis
    k_digits -= 48
    bad = (k_digits < 0) | (k_digits > 9)
    if bad.any():
        first_bad_line = int(k_line[np.flatnonzero(bad)[0]])
        _bad_line(
            buf, nl_pos, first_bad_line, path, first_lineno,
            "expected a non-negative integer",
        )
    del bad

    k_starts = np.flatnonzero(
        np.diff(k_tok, prepend=k_tok[0] - 1) != 0
    ).astype(idx_dt, copy=False)
    lengths = np.diff(np.append(k_starts, k_tok.size))
    del k_tok
    if int(lengths.max()) > 18:
        over = int(k_line[k_starts[int(np.argmax(lengths))]])
        _bad_line(buf, nl_pos, over, path, first_lineno, "integer too large")
    del k_line
    # Digit place values, narrowest-first: per-digit token length (<= 18,
    # int8) → power-of-ten exponent → one int64 product array, scaled in
    # place and segment-summed per token.
    within = np.arange(k_digits.size, dtype=idx_dt)
    within -= np.repeat(k_starts, lengths)
    exp = np.repeat(lengths.astype(np.int8), lengths) - 1 - within
    del within
    values = _POW10[exp]
    del exp
    values *= k_digits
    del k_digits
    values = np.add.reduceat(values, k_starts)

    # Tokens arrive in byte order, so per line rank-0 precedes rank-1 and
    # the two selections below stay aligned.
    k_rank = rank[kept_tok]
    return values[k_rank == 0], values[k_rank == 1]


def _bad_line(
    buf: np.ndarray,
    nl_pos: np.ndarray,
    line: int,
    path: str | os.PathLike,
    first_lineno: int,
    why: str,
) -> None:
    start = int(nl_pos[line - 1]) + 1 if line > 0 else 0
    end = int(nl_pos[line]) if line < nl_pos.size else buf.size
    text = bytes(buf[start:end]).decode("utf-8", "replace").strip()
    raise ValueError(f"{path}:{first_lineno + line}: {why}, got {text!r}")


def open_edge_stream(path: str | os.PathLike):
    """Open ``path`` for binary reading, transparently gunzipping.

    Detection is by content (the ``1f 8b`` gzip magic), so a ``.gz``
    suffix is honoured and a mislabelled plain file still works.
    """
    fh = open(path, "rb")
    try:
        magic = fh.read(2)
        fh.seek(0)
    except OSError:
        fh.close()
        raise
    if magic == b"\x1f\x8b":
        return gzip.GzipFile(fileobj=fh)
    return fh


class _ChunkParser:
    """Feeds byte blocks to :func:`parse_edge_block`, carrying the
    partial trailing line and the running line number between blocks."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = path
        self._tail = b""
        self._lineno = 1

    def feed(self, data: bytes) -> tuple[np.ndarray, np.ndarray]:
        data = self._tail + data
        cut = data.rfind(b"\n") + 1
        if cut == 0:
            self._tail = data
            empty = np.empty(0, dtype=np.int64)
            return empty, empty
        block, self._tail = data[:cut], data[cut:]
        u, v = parse_edge_block(block, path=self.path, first_lineno=self._lineno)
        self._lineno += block.count(b"\n")
        return u, v

    def finish(self) -> tuple[np.ndarray, np.ndarray]:
        block, self._tail = self._tail, b""
        return parse_edge_block(block, path=self.path, first_lineno=self._lineno)


# ----------------------------------------------------------------------
# External merge sort on fused keys
# ----------------------------------------------------------------------
class _RunReader:
    """Sequential chunked reader over one sorted spill-run file."""

    __slots__ = ("_fh", "chunk", "pos", "_chunk_items")

    def __init__(self, path: Path, chunk_items: int) -> None:
        self._fh = open(path, "rb")
        self._chunk_items = max(1, chunk_items)
        self.chunk = np.empty(0, dtype=np.int64)
        self.pos = 0
        self._refill()

    def _refill(self) -> None:
        self.chunk = np.fromfile(self._fh, dtype=np.int64, count=self._chunk_items)
        self.pos = 0
        if self.chunk.size == 0:
            self._fh.close()

    @property
    def exhausted(self) -> bool:
        return self.chunk.size == 0

    def tail_key(self) -> int:
        return int(self.chunk[-1])

    def take_upto(self, threshold: int) -> np.ndarray:
        """Consume and return this run's keys ``<= threshold``."""
        end = int(np.searchsorted(self.chunk, threshold, side="right"))
        out = self.chunk[self.pos : end]
        self.pos = end
        if self.pos >= self.chunk.size:
            self._refill()
        else:
            self.chunk = self.chunk[self.pos :]
            self.pos = 0
        return out


def _merge_runs(run_paths: list[Path], chunk_items: int):
    """Yield strictly-increasing sorted+unique key blocks from the runs.

    Each iteration picks ``threshold = min(tail of every current
    chunk)``: all keys ``<= threshold`` anywhere in the runs are in the
    current chunks (runs are sorted and dedup'd, so later chunks hold
    strictly greater keys), which makes every block complete and the
    block sequence strictly increasing — no cross-block dedup needed.
    """
    readers = [_RunReader(p, chunk_items) for p in run_paths]
    readers = [r for r in readers if not r.exhausted]
    while readers:
        threshold = min(r.tail_key() for r in readers)
        parts = [r.take_upto(threshold) for r in readers]
        readers = [r for r in readers if not r.exhausted]
        block = np.unique(np.concatenate(parts))
        if block.size:
            yield block


class _CsrAccumulator:
    """Accumulates sorted-unique fused-key blocks into dual-CSR arrays."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.out_counts = np.zeros(n, dtype=np.int64)
        self.parts: list[np.ndarray] = []

    def add(self, keys: np.ndarray) -> None:
        u = (keys >> 32).astype(np.int64)
        v = (keys & 0xFFFFFFFF).astype(np.int32)
        uniq_u, counts = np.unique(u, return_counts=True)
        self.out_counts[uniq_u] += counts
        self.parts.append(v)

    def build(self) -> DiGraph:
        n = self.n
        out_indices = (
            np.concatenate(self.parts)
            if self.parts
            else np.empty(0, dtype=np.int32)
        )
        self.parts.clear()
        out_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(self.out_counts, out=out_indptr[1:])
        # In-CSR: edges arrive globally sorted by (u, v); a stable sort
        # by v therefore yields (v, u) order, and the source of edge i
        # in out-order is repeat(arange(n), out_counts)[i].
        heads = np.repeat(
            np.arange(n, dtype=np.int32), self.out_counts
        )
        order = np.argsort(out_indices, kind="stable")
        in_indices = heads[order]
        in_counts = np.bincount(out_indices, minlength=n)
        in_indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(in_counts, out=in_indptr[1:])
        return DiGraph.from_csr(
            out_indptr,
            out_indices,
            in_indptr=in_indptr,
            in_indices=in_indices,
            validate=False,
        )


def _budget_bytes(memory_mb: float | None) -> int:
    if memory_mb is None:
        raw = os.environ.get("KREACH_INGEST_MB", "")
        try:
            memory_mb = float(raw) if raw else float(DEFAULT_BUDGET_MB)
        except ValueError:
            raise ValueError(
                f"KREACH_INGEST_MB must be a number, got {raw!r}"
            ) from None
    if memory_mb <= 0:
        raise ValueError(f"ingest memory budget must be positive, got {memory_mb}")
    return max(1 << 16, int(memory_mb * (1 << 20)))


def ingest_edge_list(
    path: str | os.PathLike,
    *,
    n: int | None = None,
    memory_mb: float | None = None,
    tmp_dir: str | os.PathLike | None = None,
    stats: IngestStats | None = None,
) -> DiGraph:
    """Stream an edge-list file into a :class:`DiGraph` under a memory cap.

    Equivalent to :func:`repro.graph.io.read_edge_list` (same comment
    handling, dedup, self-loop dropping, and universe sizing) but never
    holds more than roughly ``memory_mb`` of unsorted edges: full sort
    buffers spill to run files under a ``TemporaryDirectory`` (inside
    ``tmp_dir`` when given) that is removed even when ingestion fails.

    ``memory_mb`` defaults to ``KREACH_INGEST_MB`` or
    :data:`DEFAULT_BUDGET_MB`.  ``n`` forces the vertex-universe size.
    Pass an :class:`IngestStats` as ``stats`` to observe spill behaviour.
    """
    path = Path(path)
    budget = _budget_bytes(memory_mb)
    # The sort buffer gets half the budget: np.unique on spill needs a
    # sorted copy of comparable size, so buffer + scratch ≈ budget.
    buffer_cap = max(1 << 15, budget // 2)
    # Keep single parsed blocks well under the cap too — ~12 bytes of
    # text per edge become 8 bytes of key, so a text block smaller than
    # half the cap cannot blow the buffer past it in one append.
    read_block = min(_READ_BLOCK, max(1 << 14, buffer_cap // 2))
    if stats is None:
        stats = IngestStats()
    stats.budget_bytes = budget

    max_id = -1
    buffered: list[np.ndarray] = []
    buffered_bytes = 0
    run_paths: list[Path] = []

    def spill(tmp: Path) -> None:
        nonlocal buffered_bytes
        if not buffered:
            return
        run = np.unique(np.concatenate(buffered))
        buffered.clear()
        buffered_bytes = 0
        run_path = tmp / f"run-{len(run_paths):05d}.keys"
        if faults.ENABLED:
            faults.fire("ingest.spill_write")
        run.tofile(run_path)
        run_paths.append(run_path)
        stats.spill_runs += 1

    with tempfile.TemporaryDirectory(
        prefix="kreach-ingest-", dir=None if tmp_dir is None else str(tmp_dir)
    ) as tmp_name:
        tmp = Path(tmp_name)
        parser = _ChunkParser(path)
        with open_edge_stream(path) as fh:
            while True:
                data = fh.read(read_block)
                if not data:
                    break
                u, v = parser.feed(data)
                max_id, buffered_bytes = _buffer_edges(
                    u, v, max_id, buffered, buffered_bytes, stats
                )
                if buffered_bytes >= buffer_cap:
                    spill(tmp)
        u, v = parser.finish()
        max_id, buffered_bytes = _buffer_edges(
            u, v, max_id, buffered, buffered_bytes, stats
        )

        size = n if n is not None else max_id + 1
        if max_id >= size:
            raise ValueError(
                f"edge endpoint out of range [0, {size}): max={max_id}"
            )
        stats.n = size
        acc = _CsrAccumulator(size)
        if run_paths:
            spill(tmp)  # the final partial buffer joins the merge
            # Budget the merge too: every run gets an equal slice of
            # half the budget (the other half covers the block concat).
            chunk_items = max(
                1024, buffer_cap // (8 * max(1, len(run_paths)))
            )
            for block in _merge_runs(run_paths, chunk_items):
                acc.add(block)
        elif buffered:
            acc.add(np.unique(np.concatenate(buffered)))
            buffered.clear()
    g = acc.build()
    stats.edges = g.m
    return g


def _buffer_edges(
    u: np.ndarray,
    v: np.ndarray,
    max_id: int,
    buffered: list[np.ndarray],
    buffered_bytes: int,
    stats: IngestStats,
) -> tuple[int, int]:
    """Fuse one parsed block into keys and append it to the sort buffer."""
    if u.size == 0:
        return max_id, buffered_bytes
    stats.lines_parsed += int(u.size)
    hi = int(max(u.max(), v.max()))
    if hi > _MAX_ID:
        raise ValueError(
            f"vertex id {hi} exceeds the int32 CSR limit ({_MAX_ID})"
        )
    max_id = max(max_id, hi)
    keep = u != v  # DiGraph drops self-loops; ids still count for n
    keys = (u[keep] << 32) | v[keep]
    if keys.size:
        buffered.append(keys)
        buffered_bytes += keys.nbytes
        stats.max_buffered_bytes = max(stats.max_buffered_bytes, buffered_bytes)
    return max_id, buffered_bytes
