"""Hopcroft–Karp maximum bipartite matching.

Substrate for the chain-cover index: the minimum *path cover* of a DAG has
``n - |maximum matching|`` paths, where the matching pairs each vertex's
out-slot with a successor's in-slot (König/Dilworth machinery).  Runs in
O(E·√V).
"""

from __future__ import annotations

from collections import deque

__all__ = ["hopcroft_karp"]

_INF = float("inf")


def hopcroft_karp(
    adjacency: list[list[int]], n_left: int, n_right: int
) -> tuple[list[int], list[int], int]:
    """Maximum matching in a bipartite graph.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-side vertices adjacent to left
        vertex ``u``; must have length ``n_left``.
    n_left, n_right:
        Partition sizes.

    Returns
    -------
    ``(match_left, match_right, size)`` where ``match_left[u]`` is the right
    partner of left vertex ``u`` (or -1) and vice versa.
    """
    if len(adjacency) != n_left:
        raise ValueError(f"adjacency must have {n_left} rows, got {len(adjacency)}")
    match_left = [-1] * n_left
    match_right = [-1] * n_right
    dist: list[float] = [0.0] * n_left

    def bfs() -> bool:
        queue: deque[int] = deque()
        for u in range(n_left):
            if match_left[u] == -1:
                dist[u] = 0
                queue.append(u)
            else:
                dist[u] = _INF
        found_free = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                w = match_right[v]
                if w == -1:
                    found_free = True
                elif dist[w] == _INF:
                    dist[w] = dist[u] + 1
                    queue.append(w)
        return found_free

    size = 0
    while bfs():
        for u in range(n_left):
            if match_left[u] == -1 and _dfs_iterative(u, adjacency, match_left, match_right, dist):
                size += 1
    return match_left, match_right, size


def _dfs_iterative(
    root: int,
    adjacency: list[list[int]],
    match_left: list[int],
    match_right: list[int],
    dist: list[float],
) -> bool:
    """Iterative version of the layered augmenting DFS."""
    stack: list[tuple[int, int]] = [(root, 0)]
    path: list[tuple[int, int]] = []  # (left vertex, right vertex) tentative pairs
    while stack:
        u, edge_i = stack.pop()
        advanced = False
        adj = adjacency[u]
        while edge_i < len(adj):
            v = adj[edge_i]
            edge_i += 1
            w = match_right[v]
            if w == -1:
                # Augmenting path found: flip all tentative pairs.
                path.append((u, v))
                for pu, pv in path:
                    match_left[pu] = pv
                    match_right[pv] = pu
                return True
            if dist[w] == dist[u] + 1:
                stack.append((u, edge_i))
                path.append((u, v))
                stack.append((w, 0))
                advanced = True
                break
        if not advanced:
            dist[u] = _INF
            if path and path[-1][0] != u:
                # Backtrack the tentative pair that led into u.
                path.pop()
    return False
