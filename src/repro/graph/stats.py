"""Graph statistics used throughout the paper's evaluation.

Regenerates the columns of the paper's Table 2 for any graph:

* ``|V|``, ``|E|`` — graph size;
* ``|V_DAG|``, ``|E_DAG|`` — size of the SCC condensation (§3.1);
* ``Degmax`` — maximum vertex degree (``|inNei ∪ outNei|``);
* ``d`` — diameter: the largest finite directed shortest-path length;
* ``µ`` — the median length of all finite, non-trivial shortest paths
  (the paper uses µ as a "typical k" in Tables 7 and 9).

Exact all-pairs statistics cost one BFS per vertex; for larger graphs a
uniform source sample gives an estimator that is exact for µ in
distribution and a lower bound for ``d``.  The paper's graphs are small
enough that the exact sweep is the default.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation
from repro.graph.traversal import UNREACHED, bfs_distances

__all__ = ["GraphSummary", "graph_h_index", "shortest_path_stats", "summarize"]


@dataclass(frozen=True)
class GraphSummary:
    """One row of the paper's Table 2."""

    n: int
    m: int
    n_dag: int
    m_dag: int
    deg_max: int
    diameter: int
    mu: int

    def as_row(self) -> dict[str, int]:
        """Dict keyed like the paper's column headers."""
        return {
            "|V|": self.n,
            "|E|": self.m,
            "|V_DAG|": self.n_dag,
            "|E_DAG|": self.m_dag,
            "Degmax": self.deg_max,
            "d": self.diameter,
            "mu": self.mu,
        }


def graph_h_index(g: DiGraph) -> int:
    """The graph's h-index: the largest ``h`` with ≥ h vertices of degree ≥ h.

    §4.3 cites the h-index to argue that real graphs have very few
    high-degree vertices, so all of them can be pushed into the vertex
    cover.  Uses the cheap ``in+out`` degree.
    """
    degrees = np.sort(g.degrees())[::-1]
    h = 0
    for i, deg in enumerate(degrees, start=1):
        if deg >= i:
            h = i
        else:
            break
    return h


def shortest_path_stats(
    g: DiGraph,
    *,
    sample_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> tuple[int, int]:
    """``(diameter, µ)`` over finite directed shortest paths of length ≥ 1.

    ``sample_size`` bounds the number of BFS sources (uniform without
    replacement); ``None`` sweeps every vertex (exact).  Returns ``(0, 0)``
    when the graph has no edges at all.
    """
    if g.n == 0 or g.m == 0:
        return 0, 0
    sources = np.arange(g.n)
    if sample_size is not None and sample_size < g.n:
        if sample_size <= 0:
            raise ValueError(f"sample_size must be positive, got {sample_size}")
        rng = rng or np.random.default_rng(0)
        sources = rng.choice(g.n, size=sample_size, replace=False)

    diameter = 0
    # Histogram of path lengths; real-world diameters are tiny, so a
    # growable histogram is far cheaper than materializing every distance.
    hist = np.zeros(64, dtype=np.int64)
    for s in sources:
        dist = bfs_distances(g, int(s))
        finite = dist[(dist != UNREACHED) & (dist > 0)]
        if not len(finite):
            continue
        dmax = int(finite.max())
        diameter = max(diameter, dmax)
        if dmax >= len(hist):
            grown = np.zeros(dmax + 1, dtype=np.int64)
            grown[: len(hist)] = hist
            hist = grown
        hist[: dmax + 1] += np.bincount(finite, minlength=dmax + 1)[: dmax + 1]

    total = int(hist.sum())
    if total == 0:
        return 0, 0
    cumulative = np.cumsum(hist)
    mu = int(np.searchsorted(cumulative, (total + 1) // 2))
    return diameter, mu


def summarize(
    g: DiGraph,
    *,
    sample_size: int | None = None,
    rng: np.random.Generator | None = None,
) -> GraphSummary:
    """Compute the full Table-2 row for ``g``."""
    cond = condensation(g)
    deg_max = 0
    if g.n:
        # Paper's Deg is |inNei ∪ outNei|; the union only differs from
        # in+out on vertices with reciprocal edges, so compute it exactly
        # just for the top candidates by the cheap bound.
        cheap = g.degrees()
        top = np.argsort(cheap)[::-1][:32]
        deg_max = max(g.degree(int(v)) for v in top)
    diameter, mu = shortest_path_stats(g, sample_size=sample_size, rng=rng)
    return GraphSummary(
        n=g.n,
        m=g.m,
        n_dag=cond.dag.n,
        m_dag=cond.dag.m,
        deg_max=deg_max,
        diameter=diameter,
        mu=mu,
    )
