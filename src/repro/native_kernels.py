"""Loop-level kernel bodies for the native (JIT-compiled) tier.

Every function here is written twice-compatible: it runs as plain Python
(slow, but exactly the semantics the tests pin) and it compiles cleanly
under ``numba.njit(nogil=True)`` — :mod:`repro.native` applies the
decorator lazily the first time the numba tier is activated, validates
the compiled kernel against its numpy twin on a smoke input, and falls
back to numpy if anything about the compile or the validation goes
wrong.  This module must therefore import without numba installed; the
only conditional is ``prange``, which degrades to ``range``.

Rules the bodies follow so numba's type inference stays happy:

* uint64 bit arithmetic never mixes with signed ints (the classic numba
  pitfall where ``uint64 + int64`` promotes to ``float64``): shifts and
  masks go through explicit ``np.uint64`` casts.
* ``prange`` is used only where iterations are independent; kernels with
  cross-iteration writes (segmented OR, bit scatter) stay sequential —
  they are still an order of magnitude past numpy because they run in
  one pass with no temporaries.
* Scratch buffers that must be vertex-sized are passed in by the caller
  (allocated once per public call, reused across BFS levels) and
  restored to all-zeros before returning.

The dispatched signatures are the contract: :mod:`repro.bitsets.ops`,
:mod:`repro.core.batch` and :mod:`repro.graph.traversal` register each
body together with a numpy implementation of the *same* signature, and
``tests/test_native.py`` pins them equal across tiers.
"""

from __future__ import annotations

import numpy as np

try:  # pragma: no cover - exercised only on numba-equipped hosts
    from numba import prange
except ImportError:  # plain-Python fallback: prange is just range
    prange = range

__all__ = [
    "and_any",
    "gather_and_any",
    "or_rows_into",
    "set_bits_into",
    "probe_bits",
    "keyed_lookup",
    "expand_frontier",
]


def and_any(a, b):
    """Row-wise ``any(a[i] & b[i])`` without materializing ``a & b``.

    The numpy twin allocates a full ``(rows, words)`` temporary and
    scans it; this body short-circuits per row at the first hot word.
    """
    rows = a.shape[0]
    words = a.shape[1]
    out = np.zeros(rows, dtype=np.bool_)
    for i in prange(rows):
        hit = False
        for w in range(words):
            if a[i, w] & b[i, w]:
                hit = True
                break
        out[i] = hit
    return out


def gather_and_any(ubits, tbits, s_idx, t_idx):
    """Fused gather + AND-any: ``any(ubits[s_idx[i]] & tbits[t_idx[i]])``.

    The Case-4 verdict loop: one row of per-source OR-folded link bits
    against one row of per-target neighbor bits, per pair, with no
    gathered ``(pairs, words)`` temporaries.
    """
    m = s_idx.shape[0]
    words = ubits.shape[1]
    out = np.zeros(m, dtype=np.bool_)
    for i in prange(m):
        si = s_idx[i]
        ti = t_idx[i]
        hit = False
        for w in range(words):
            if ubits[si, w] & tbits[ti, w]:
                hit = True
                break
        out[i] = hit
    return out


def or_rows_into(matrix, rows, owner, out):
    """Segmented OR of matrix rows: ``out[owner[i]] |= matrix[rows[i]]``.

    Sequential on purpose — ``owner`` carries duplicates, so iterations
    are not independent — but it runs in one pass over the gather stream
    with no ``(chunk, words)`` temporaries or reduceat bookkeeping.
    ``owner`` need not be sorted here (the numpy twin requires it).
    """
    words = matrix.shape[1]
    for i in range(rows.shape[0]):
        r = rows[i]
        o = owner[i]
        for w in range(words):
            out[o, w] |= matrix[r, w]
    return out


def set_bits_into(matrix, rows, cols):
    """Bit scatter: set bit ``cols[i]`` of ``matrix[rows[i]]``, in place.

    Duplicate ``(row, col)`` targets accumulate (like
    ``np.bitwise_or.at``, unlike a fancy-index ``|=``).
    """
    one = np.uint64(1)
    for i in range(rows.shape[0]):
        c = cols[i]
        matrix[rows[i], c >> 6] |= one << np.uint64(c & 63)
    return matrix


def probe_bits(matrix, rows, cols):
    """Per-element membership probe: is bit ``cols[i]`` set in
    ``matrix[rows[i]]``?"""
    m = rows.shape[0]
    out = np.zeros(m, dtype=np.bool_)
    one = np.uint64(1)
    zero = np.uint64(0)
    for i in prange(m):
        c = cols[i]
        word = matrix[rows[i], c >> 6]
        out[i] = ((word >> np.uint64(c & 63)) & one) != zero
    return out


def keyed_lookup(keys, weights, u, v, n, missing):
    """Bulk sorted-key weight lookup: one binary search per (u, v) pair.

    ``keys`` are the sorted ``u * n + v`` edge keys of a
    :class:`~repro.core.batch.KeyedRowStore`; misses yield ``missing``.
    Embarrassingly parallel — each probe is an independent search.
    """
    m = u.shape[0]
    kn = keys.shape[0]
    out = np.empty(m, dtype=np.int64)
    for i in prange(m):
        probe = u[i] * n + v[i]
        lo = 0
        hi = kn
        while lo < hi:
            mid = (lo + hi) >> 1
            if keys[mid] < probe:
                lo = mid + 1
            else:
                hi = mid
        if lo < kn and keys[lo] == probe:
            out[i] = weights[lo]
        else:
            out[i] = missing
    return out


def expand_frontier(indptr, indices, front_v, front_m, visited, next_mask):
    """One level of blocked MS-BFS: expand ``(front_v, front_m)`` by the CSR.

    Returns ``(nv, nm)`` — the newly reached vertices in ascending order
    with their (not-yet-visited) source-bit masks, exactly the numpy
    twin's gather → sort-merge OR → novelty-filter output, computed as a
    direct scatter instead: each traversed edge ORs its mask into a
    vertex-indexed accumulator, so the per-level cost is O(edges
    traversed) with no gathered neighbor/mask temporaries and no sort of
    the whole adjacency stream (only the touched vertices are sorted).

    ``visited`` is read, not written — the caller commits ``nv``/``nm``
    after emitting, same as the numpy path.  ``next_mask`` is caller-
    provided all-zeros uint64 scratch of length ``n``; it is restored to
    zeros before returning.
    """
    zero = np.uint64(0)
    touched = np.empty(visited.shape[0], dtype=np.int64)
    count = 0
    for i in range(front_v.shape[0]):
        u = front_v[i]
        mask = front_m[i]
        for e in range(indptr[u], indptr[u + 1]):
            v = indices[e]
            fresh = mask & ~visited[v]
            if fresh != zero:
                if next_mask[v] == zero:
                    touched[count] = v
                    count += 1
                next_mask[v] |= fresh
    nv = np.sort(touched[:count])
    nm = np.empty(count, dtype=np.uint64)
    for j in range(count):
        nm[j] = next_mask[nv[j]]
    for j in range(count):
        next_mask[touched[j]] = zero
    return nv, nm
