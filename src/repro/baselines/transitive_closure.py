"""Full transitive closure over the SCC condensation (§3.6).

The "other extreme" of the indexing/querying tradeoff (§5): O(1) queries
at O(n²)-bit worst-case storage.  Computed on the condensation DAG — as
the paper notes, TC-style indexes "work only on the much smaller DAG of
the input graph", which is precisely why they cannot answer k-hop queries
(§3.1) but remain the exact oracle for classic reachability.

Rows are kept as Python big-ints (arbitrary-precision bitmasks).  Because
Tarjan numbers components in reverse topological order, every successor of
component ``c`` has an id ``< c``; sweeping ids in increasing order makes
the closure a single OR-accumulation pass, and keeps each row's bitmask no
wider than its own id.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation

__all__ = ["TransitiveClosureIndex"]


class TransitiveClosureIndex(ReachabilityIndex):
    """Exact reachability with one-bit-per-DAG-pair storage.

    >>> from repro.graph.generators import path_graph
    >>> tc = TransitiveClosureIndex(path_graph(4))
    >>> tc.reaches(0, 3), tc.reaches(3, 0)
    (True, False)
    """

    name = "TC"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        cond = condensation(graph)
        self._comp = cond.component_of
        dag = cond.dag
        # closure[c] = bitmask of components reachable from c (excluding c).
        closure: list[int] = [0] * dag.n
        for c in range(dag.n):  # increasing id = reverse topological order
            acc = 0
            for child in dag.out_neighbors(c):
                child = int(child)
                acc |= closure[child] | (1 << child)
            closure[c] = acc
        self._closure = closure

    def reaches(self, s: int, t: int) -> bool:
        """O(1) bit probe after the component lookup."""
        self._check_pair(s, t)
        cs, ct = int(self._comp[s]), int(self._comp[t])
        if cs == ct:
            return True  # same SCC: mutually reachable
        return bool((self._closure[cs] >> ct) & 1)

    def reachable_count(self, s: int) -> int:
        """How many vertices ``s`` reaches (including itself) — test helper."""
        cs = int(self._comp[s])
        sizes = np.bincount(self._comp, minlength=len(self._closure))
        total = int(sizes[cs])
        mask = self._closure[cs]
        c = 0
        while mask:
            if mask & 1:
                total += int(sizes[c])
            mask >>= 1
            c += 1
        return total

    def storage_bytes(self) -> int:
        """Sum of row bitmask extents plus the component map."""
        rows = sum((row.bit_length() + 7) // 8 for row in self._closure)
        return rows + 4 * self.graph.n
