"""GRAIL: scalable reachability via randomized interval labeling.

Re-implementation of Yildirim, Chaoji & Zaki (PVLDB 2010) — reference [32]
of the paper and one of its four classic-reachability comparators.

Each of ``num_labels`` rounds performs a DFS over the condensation DAG
with a random child-visit order and assigns every component ``v`` an
interval ``L_i(v) = [low_i(v), rank_i(v)]`` where ``rank`` is the 1-based
post-order number and ``low`` is the minimum rank in ``v``'s reachable
set.  Reachability ``u → v`` *requires* ``L_i(v) ⊆ L_i(u)`` for every
``i``; the converse can fail, so containment hits fall back to a pruned
DFS (skipping any child whose intervals rule ``v`` out).

This two-phase behavior is exactly what the paper's Table 5 exposes:
GRAIL's construction is the fastest of the field, but on graphs where the
intervals have many false positives (aMaze, Kegg) query time blows up by
orders of magnitude versus k-reach.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation

__all__ = ["GrailIndex"]


class GrailIndex(ReachabilityIndex):
    """Randomized multi-interval reachability labeling.

    Parameters
    ----------
    graph:
        Input digraph (condensed internally; §3.1 preprocessing).
    num_labels:
        Number of independent random traversals (GRAIL's ``d``); more
        labels mean fewer false positives but a larger index.  The GRAIL
        paper uses 2–5; default 3.
    seed:
        Seed for the traversal orders.
    """

    name = "GRAIL"

    def __init__(self, graph: DiGraph, *, num_labels: int = 3, seed: int = 0) -> None:
        super().__init__(graph)
        if num_labels < 1:
            raise ValueError(f"num_labels must be >= 1, got {num_labels}")
        cond = condensation(graph)
        self._comp = cond.component_of
        self._dag = cond.dag
        self.num_labels = num_labels
        rng = np.random.default_rng(seed)
        n = self._dag.n
        self._ranks = np.empty((num_labels, n), dtype=np.int64)
        self._lows = np.empty((num_labels, n), dtype=np.int64)
        for i in range(num_labels):
            priority = rng.permutation(n)
            rank, low = self._labeled_dfs(priority)
            self._ranks[i] = rank
            self._lows[i] = low

    def _labeled_dfs(self, priority: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """One randomized DFS round: post-order ranks and subtree lows.

        In a DAG every out-neighbor of ``v`` is finished by the time ``v``
        finishes, so ``low(v) = min(rank(v), min_child low(child))`` can be
        filled in at pop time.
        """
        dag = self._dag
        n = dag.n
        rank = np.zeros(n, dtype=np.int64)
        low = np.zeros(n, dtype=np.int64)
        visited = np.zeros(n, dtype=bool)
        counter = 1
        roots = sorted(range(n), key=lambda v: priority[v])
        for root in roots:
            if visited[root]:
                continue
            visited[root] = True
            stack: list[tuple[int, list[int], int]] = []

            def ordered_children(u: int) -> list[int]:
                nbrs = dag.out_neighbors(u)
                return sorted((int(w) for w in nbrs), key=lambda w: priority[w])

            stack.append((root, ordered_children(root), 0))
            while stack:
                u, children, next_i = stack.pop()
                while next_i < len(children) and visited[children[next_i]]:
                    next_i += 1
                if next_i < len(children):
                    child = children[next_i]
                    visited[child] = True
                    stack.append((u, children, next_i + 1))
                    stack.append((child, ordered_children(child), 0))
                else:
                    rank[u] = counter
                    counter += 1
                    lo = rank[u]
                    for w in dag.out_neighbors(u):
                        lo = min(lo, low[int(w)])
                    low[u] = lo
        return rank, low

    def _maybe_reaches(self, cu: int, cv: int) -> bool:
        """Necessary condition: every label interval of v inside u's."""
        return bool(
            np.all(self._lows[:, cu] <= self._lows[:, cv])
            and np.all(self._ranks[:, cv] <= self._ranks[:, cu])
        )

    def reaches(self, s: int, t: int) -> bool:
        """Interval filter, then pruned DFS on containment hits."""
        self._check_pair(s, t)
        cs, ct = int(self._comp[s]), int(self._comp[t])
        if cs == ct:
            return True
        if not self._maybe_reaches(cs, ct):
            return False
        # Pruned DFS: only descend into children whose intervals still
        # admit ct.
        dag = self._dag
        seen = {cs}
        stack = [cs]
        while stack:
            u = stack.pop()
            if u == ct:
                return True
            for w in dag.out_neighbors(u):
                w = int(w)
                if w not in seen and self._maybe_reaches(w, ct):
                    seen.add(w)
                    stack.append(w)
        return False

    def exception_rate(self, pairs: "np.ndarray") -> float:
        """Fraction of pairs passing the interval filter that need the DFS
        fallback — a diagnostic for the false-positive behavior."""
        hits = 0
        total = 0
        for s, t in pairs:
            cs, ct = int(self._comp[int(s)]), int(self._comp[int(t)])
            if cs == ct:
                continue
            total += 1
            if self._maybe_reaches(cs, ct):
                hits += 1
        return hits / total if total else 0.0

    def storage_bytes(self) -> int:
        """Two 4-byte endpoints per label per DAG vertex + component map."""
        return self.num_labels * 2 * 4 * self._dag.n + 4 * self.graph.n
