"""Tree-cover interval labeling — the PTree family's interval core.

**Substitution note** (see DESIGN.md): the paper compares against Path-Tree
(Jin et al., SIGMOD 2008 — [24]), whose C++ implementation is not
available.  Path-Tree layers a tree-of-paths over the interval-labeling
idea of Agrawal, Borgida & Jagadish (SIGMOD 1989 — reference [2] of the
paper); we implement that interval core directly:

1. condense the graph (§3.1) and pick a spanning forest of the DAG;
2. number vertices in forest post-order, so each vertex's subtree is the
   contiguous interval ``[post - size + 1, post]``;
3. propagate, in reverse topological order, each vertex's *interval set*
   (its own tree interval merged with all successors' sets, coalescing
   overlaps and adjacencies);
4. ``u → v`` iff ``post(v)`` lies in one of ``u``'s intervals (binary
   search).

The same query shape (interval containment over a traversal numbering,
§3.2) and the same reason it cannot answer k-hop queries: the intervals
erase all distance information.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation

__all__ = ["PathTreeIndex"]


class PathTreeIndex(ReachabilityIndex):
    """Interval-set reachability labeling over a DAG spanning forest.

    >>> from repro.graph.generators import random_dag
    >>> ix = PathTreeIndex(random_dag(30, 60, seed=1))
    >>> isinstance(ix.reaches(0, 29), bool)
    True
    """

    name = "PTree"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        cond = condensation(graph)
        self._comp = cond.component_of
        dag = cond.dag
        n = dag.n

        # --- spanning forest: each vertex adopts one in-neighbor as parent.
        # Tarjan ids decrease along edges, so in-neighbors have larger ids
        # and processing ids in decreasing order visits parents first.
        parent = np.full(n, -1, dtype=np.int64)
        children: list[list[int]] = [[] for _ in range(n)]
        for v in range(n - 1, -1, -1):
            preds = dag.in_neighbors(v)
            if len(preds):
                p = int(preds[-1])  # deterministic pick: largest-id parent
                parent[v] = p
                children[p].append(v)

        # --- post-order numbering + subtree sizes over the forest.
        post = np.zeros(n, dtype=np.int64)
        size = np.ones(n, dtype=np.int64)
        counter = 1
        for root in range(n - 1, -1, -1):
            if parent[root] != -1:
                continue
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack:
                u, child_i = stack.pop()
                if child_i < len(children[u]):
                    stack.append((u, child_i + 1))
                    stack.append((children[u][child_i], 0))
                else:
                    post[u] = counter
                    counter += 1
                    for c in children[u]:
                        size[u] += size[c]
        self._post = post

        # --- interval sets, propagated children-first (increasing id).
        intervals: list[list[tuple[int, int]]] = [[] for _ in range(n)]
        for v in range(n):
            own = (int(post[v] - size[v] + 1), int(post[v]))
            merged = [own]
            for w in dag.out_neighbors(v):
                merged.extend(intervals[int(w)])
            intervals[v] = _coalesce(merged)
        self._starts = [np.asarray([a for a, _ in ivs], dtype=np.int64) for ivs in intervals]
        self._ends = [np.asarray([b for _, b in ivs], dtype=np.int64) for ivs in intervals]

    def reaches(self, s: int, t: int) -> bool:
        """Binary search ``post(t)`` in ``s``'s interval set."""
        self._check_pair(s, t)
        cs, ct = int(self._comp[s]), int(self._comp[t])
        if cs == ct:
            return True
        target = int(self._post[ct])
        starts = self._starts[cs]
        i = int(np.searchsorted(starts, target, side="right")) - 1
        return i >= 0 and target <= int(self._ends[cs][i])

    @property
    def interval_count(self) -> int:
        """Total intervals stored (the index's dominant size term)."""
        return sum(len(s) for s in self._starts)

    def storage_bytes(self) -> int:
        """8 bytes per interval + post numbers + component map."""
        return 8 * self.interval_count + 4 * len(self._post) + 4 * self.graph.n


def _coalesce(intervals: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Sort and merge overlapping or adjacent integer intervals.

    Adjacent intervals ([1,2], [3,5]) merge to [1,5]: post numbers are
    dense integers, so the merged interval covers exactly the union.
    """
    if not intervals:
        return []
    intervals = sorted(intervals)
    out = [intervals[0]]
    for a, b in intervals[1:]:
        la, lb = out[-1]
        if a <= lb + 1:
            if b > lb:
                out[-1] = (la, b)
        else:
            out.append((a, b))
    return out
