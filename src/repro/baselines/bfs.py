"""Online BFS baselines (no precomputation).

``k``-hop BFS is the naive algorithm the paper's introduction argues
against ("a BFS from a celebrity … is clearly out of the question for
online query processing") and the µ-BFS column of Table 7.  It is also the
ground-truth oracle for the entire test suite.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReachabilityIndex
from repro.core.batch import as_pair_arrays
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bulk_reaches_within, reaches_within_bfs

__all__ = ["BfsIndex"]


class BfsIndex(ReachabilityIndex):
    """Query-time BFS; zero construction cost, zero storage.

    Supports both classic and k-hop queries (BFS trivially handles both),
    which is exactly why it appears in Table 7 as the index-free baseline.
    Batch queries run through the blocked bit-parallel MS-BFS kernel —
    pairs sharing a source share one ball and 64 sources share each sweep
    — so the Table 5/7 comparison columns finish in seconds instead of
    looping a Python BFS per pair.  Answers stay bit-identical to the
    scalar methods.
    """

    name = "BFS"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)

    def reaches(self, s: int, t: int) -> bool:
        """Unbounded BFS from ``s`` with early exit at ``t``."""
        self._check_pair(s, t)
        return reaches_within_bfs(self.graph, s, t, None)

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """BFS truncated at ``k`` levels, early exit at ``t``."""
        self._check_pair(s, t)
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return reaches_within_bfs(self.graph, s, t, k)

    def reaches_batch(self, pairs) -> np.ndarray:
        """Bulk :meth:`reaches` through the blocked MS-BFS kernel."""
        s, t = as_pair_arrays(pairs, self.graph.n)
        return bulk_reaches_within(self.graph, s, t, None)

    def reaches_within_batch(self, pairs, k: int) -> np.ndarray:
        """Bulk :meth:`reaches_within` through the blocked MS-BFS kernel."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        s, t = as_pair_arrays(pairs, self.graph.n)
        return bulk_reaches_within(self.graph, s, t, k)

    def storage_bytes(self) -> int:
        """No index structures at all."""
        return 0
