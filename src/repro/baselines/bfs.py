"""Online BFS baselines (no precomputation).

``k``-hop BFS is the naive algorithm the paper's introduction argues
against ("a BFS from a celebrity … is clearly out of the question for
online query processing") and the µ-BFS column of Table 7.  It is also the
ground-truth oracle for the entire test suite.
"""

from __future__ import annotations

from repro.baselines.base import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import reaches_within_bfs

__all__ = ["BfsIndex"]


class BfsIndex(ReachabilityIndex):
    """Query-time BFS; zero construction cost, zero storage.

    Supports both classic and k-hop queries (BFS trivially handles both),
    which is exactly why it appears in Table 7 as the index-free baseline.
    """

    name = "BFS"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)

    def reaches(self, s: int, t: int) -> bool:
        """Unbounded BFS from ``s`` with early exit at ``t``."""
        self._check_pair(s, t)
        return reaches_within_bfs(self.graph, s, t, None)

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """BFS truncated at ``k`` levels, early exit at ``t``."""
        self._check_pair(s, t)
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return reaches_within_bfs(self.graph, s, t, k)

    def storage_bytes(self) -> int:
        """No index structures at all."""
        return 0
