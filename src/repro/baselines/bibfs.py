"""Bidirectional k-hop BFS baseline.

Not in the paper — included as an ablation: the strongest *index-free*
competitor we could give k-reach.  Meeting in the middle replaces one ball
of radius k with two of radius ≈ k/2, which on expander-like graphs is a
square-root saving in visited vertices.  The celebrity problem remains
(either ball may still hit a hub), which the ablation benchmark
demonstrates.
"""

from __future__ import annotations

from repro.baselines.base import ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reaches_within

__all__ = ["BidirectionalBfsIndex"]


class BidirectionalBfsIndex(ReachabilityIndex):
    """Meet-in-the-middle BFS; zero construction cost, zero storage."""

    name = "BiBFS"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)

    def reaches(self, s: int, t: int) -> bool:
        """Unbounded bidirectional search."""
        self._check_pair(s, t)
        return bidirectional_reaches_within(self.graph, s, t, None)

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """Bounded bidirectional search with combined level budget ``k``."""
        self._check_pair(s, t)
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return bidirectional_reaches_within(self.graph, s, t, k)

    def storage_bytes(self) -> int:
        """No index structures at all."""
        return 0
