"""Bidirectional k-hop BFS baseline.

Not in the paper — included as an ablation: the strongest *index-free*
competitor we could give k-reach.  Meeting in the middle replaces one ball
of radius k with two of radius ≈ k/2, which on expander-like graphs is a
square-root saving in visited vertices.  The celebrity problem remains
(either ball may still hit a hub), which the ablation benchmark
demonstrates.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReachabilityIndex
from repro.core.batch import as_pair_arrays
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bidirectional_reaches_within, bulk_reaches_within

__all__ = ["BidirectionalBfsIndex"]


class BidirectionalBfsIndex(ReachabilityIndex):
    """Meet-in-the-middle BFS; zero construction cost, zero storage.

    Scalar queries meet in the middle; batch queries route through the
    blocked bit-parallel MS-BFS kernel (one-sided, 64 shared sources per
    sweep), which amortizes better than per-pair bidirectional searches
    under bulk traffic.  Both compute the same predicate, so batch
    answers are bit-identical to the scalar method.
    """

    name = "BiBFS"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)

    def reaches(self, s: int, t: int) -> bool:
        """Unbounded bidirectional search."""
        self._check_pair(s, t)
        return bidirectional_reaches_within(self.graph, s, t, None)

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """Bounded bidirectional search with combined level budget ``k``."""
        self._check_pair(s, t)
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return bidirectional_reaches_within(self.graph, s, t, k)

    def reaches_batch(self, pairs) -> np.ndarray:
        """Bulk :meth:`reaches` through the blocked MS-BFS kernel."""
        s, t = as_pair_arrays(pairs, self.graph.n)
        return bulk_reaches_within(self.graph, s, t, None)

    def reaches_within_batch(self, pairs, k: int) -> np.ndarray:
        """Bulk :meth:`reaches_within` through the blocked MS-BFS kernel."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        s, t = as_pair_arrays(pairs, self.graph.n)
        return bulk_reaches_within(self.graph, s, t, k)

    def storage_bytes(self) -> int:
        """No index structures at all."""
        return 0
