"""Pruned landmark labeling — the shortest-path-distance comparator.

**Substitution note** (see DESIGN.md): the paper's µ-dist column (Table 7)
uses the 2-hop-cover distance index of Cheng & Yu (EDBT 2009 — [13]),
which is closed C++.  We substitute Pruned Landmark Labeling (Akiba,
Iwata & Yoshida, SIGMOD 2013) — the canonical modern 2-hop *distance*
labeling for directed graphs.  Both index families store, per vertex, two
label sets of (hub, distance) pairs and answer

    dist(s, t) = min over common hubs w of  d(s → w) + d(w → t),

so the substitution preserves exactly what the paper measures: a distance
index can answer k-hop reachability (``dist ≤ k``), but pays for the full
distance information at both construction and query time (§3.5).

Construction runs one forward and one backward *pruned* BFS per vertex in
descending-degree order; a visit is pruned when the labels built so far
already certify a distance no longer than the tentative one.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.baselines.base import ReachabilityIndex
from repro.graph.digraph import DiGraph

__all__ = ["PrunedLandmarkIndex"]

_INF = float("inf")


class PrunedLandmarkIndex(ReachabilityIndex):
    """Exact 2-hop distance labeling for directed graphs.

    >>> from repro.graph.generators import path_graph
    >>> ix = PrunedLandmarkIndex(path_graph(5))
    >>> ix.distance(0, 3)
    3
    >>> ix.reaches_within(0, 3, 2)
    False
    """

    name = "dist"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        n = graph.n
        # Landmarks in descending degree order; labels are keyed by
        # landmark *rank* so pruning comparisons follow the same order.
        self._order = np.argsort(-graph.degrees(), kind="stable")
        # label_in[v][r]  = dist(landmark_r -> v)
        # label_out[v][r] = dist(v -> landmark_r)
        self._label_in: list[dict[int, int]] = [dict() for _ in range(n)]
        self._label_out: list[dict[int, int]] = [dict() for _ in range(n)]
        for rank in range(n):
            landmark = int(self._order[rank])
            self._pruned_bfs(landmark, rank, forward=True)
            self._pruned_bfs(landmark, rank, forward=False)

    def _labels_distance(self, s: int, t: int) -> float:
        """Distance via the current (partial) labels."""
        out_s = self._label_out[s]
        in_t = self._label_in[t]
        if len(out_s) > len(in_t):
            best = _INF
            for r, d2 in in_t.items():
                d1 = out_s.get(r)
                if d1 is not None and d1 + d2 < best:
                    best = d1 + d2
            return best
        best = _INF
        for r, d1 in out_s.items():
            d2 = in_t.get(r)
            if d2 is not None and d1 + d2 < best:
                best = d1 + d2
        return best

    def _pruned_bfs(self, landmark: int, rank: int, *, forward: bool) -> None:
        """Forward BFS grows ``label_in`` of reached vertices; backward BFS
        grows ``label_out``."""
        g = self.graph
        if forward:
            indptr, indices = g.out_indptr, g.out_indices
        else:
            indptr, indices = g.in_indptr, g.in_indices
        dist: dict[int, int] = {landmark: 0}
        queue: deque[int] = deque([landmark])
        while queue:
            u = queue.popleft()
            d = dist[u]
            # Prune: the existing labels already certify a path this short.
            if forward:
                if u != landmark and self._labels_distance(landmark, u) <= d:
                    continue
                self._label_in[u][rank] = d
            else:
                if u != landmark and self._labels_distance(u, landmark) <= d:
                    continue
                self._label_out[u][rank] = d
            for v in indices[indptr[u] : indptr[u + 1]]:
                v = int(v)
                if v not in dist:
                    dist[v] = d + 1
                    queue.append(v)
        if forward:
            self._label_in[landmark][rank] = 0
        else:
            self._label_out[landmark][rank] = 0

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance; ``inf`` when unreachable."""
        self._check_pair(s, t)
        if s == t:
            return 0
        return self._labels_distance(s, t)

    def reaches(self, s: int, t: int) -> bool:
        """Classic reachability via the distance labels."""
        return self.distance(s, t) < _INF

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """k-hop reachability the expensive way: full distance, then compare."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self.distance(s, t) <= k

    @property
    def label_entries(self) -> int:
        """Total (hub, distance) pairs across both label sides."""
        return sum(len(d) for d in self._label_in) + sum(
            len(d) for d in self._label_out
        )

    def average_label_size(self) -> float:
        """Mean label entries per vertex (the PLL quality metric)."""
        return self.label_entries / max(1, self.graph.n)

    def storage_bytes(self) -> int:
        """8 bytes per label entry (4-byte hub + 4-byte distance)."""
        return 8 * self.label_entries
