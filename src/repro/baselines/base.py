"""Common protocol for reachability and k-hop indexes.

The benchmark harness treats every index uniformly: build it (timed),
measure :meth:`storage_bytes`, then fire a query workload at
:meth:`reaches` (classic reachability, Tables 3–6) or
:meth:`reaches_within` (k-hop, Table 7).

An index that supports only classic reachability (every comparator in the
paper) raises :class:`UnsupportedQueryError` from :meth:`reaches_within` —
mirroring the paper's §3 argument that those index families *cannot* answer
k-hop queries.

Every index also exposes the **batch API** the harness's bulk query path
runs on: :meth:`reaches_batch` / :meth:`reaches_within_batch` take an
``(m, 2)`` integer array-like of pairs and return an ``(m,)`` bool array,
bit-identical to calling the scalar methods pair by pair.  The base class
provides a generic scalar-loop fallback so every comparator participates
in the batch protocol; indexes with vectorized engines (the k-reach family
in :mod:`repro.core`) override it with real bulk evaluation.
"""

from __future__ import annotations

import abc
from typing import ClassVar

import numpy as np

from repro.core.batch import as_pair_arrays
from repro.graph.digraph import DiGraph

__all__ = ["ReachabilityIndex", "UnsupportedQueryError", "IndexBudgetExceeded"]


class UnsupportedQueryError(NotImplementedError):
    """The index family cannot answer this query type (paper §3)."""


class IndexBudgetExceeded(RuntimeError):
    """Construction aborted: the index exceeded its size/time budget.

    The paper reports "-" for 3-hop on most datasets because construction
    ran out of time or memory; the harness reproduces that behavior by
    letting indexes declare a budget and giving up loudly.
    """


class ReachabilityIndex(abc.ABC):
    """Abstract base for all indexes in :mod:`repro.baselines`.

    Subclasses build their structures in ``__init__`` (so wall-clock
    construction time is just the constructor call) and must implement
    :meth:`reaches`.
    """

    #: Short name used in benchmark tables ("GRAIL", "PWAH", ...).
    name: ClassVar[str] = "abstract"

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph

    @abc.abstractmethod
    def reaches(self, s: int, t: int) -> bool:
        """Classic reachability: does a directed path from s to t exist?"""

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """k-hop reachability; unsupported by classic-only index families."""
        raise UnsupportedQueryError(
            f"{type(self).__name__} answers classic reachability only (paper §3)"
        )

    def reaches_batch(self, pairs) -> np.ndarray:
        """Bulk :meth:`reaches`: an ``(m,)`` bool array aligned with ``pairs``.

        Generic scalar-loop fallback (pairs pre-converted to Python ints so
        the loop pays only the query cost); accepts any ``(m, 2)`` integer
        array-like, returns a ``(0,)`` bool array for empty input, and
        raises :class:`ValueError` for out-of-range vertex ids.
        """
        s, t = as_pair_arrays(pairs, self.graph.n)
        out = np.zeros(len(s), dtype=bool)
        reaches = self.reaches
        for i, (si, ti) in enumerate(zip(s.tolist(), t.tolist())):
            out[i] = reaches(si, ti)
        return out

    def reaches_within_batch(self, pairs, k: int) -> np.ndarray:
        """Bulk :meth:`reaches_within` (same contract as :meth:`reaches_batch`).

        Classic-only families raise :class:`UnsupportedQueryError`, exactly
        like the scalar method — an empty batch asks nothing and returns an
        empty answer.
        """
        s, t = as_pair_arrays(pairs, self.graph.n)
        out = np.zeros(len(s), dtype=bool)
        reaches_within = self.reaches_within
        for i, (si, ti) in enumerate(zip(s.tolist(), t.tolist())):
            out[i] = reaches_within(si, ti, k)
        return out

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Modeled on-disk size of the index structures (not the graph)."""

    def _check_pair(self, s: int, t: int) -> None:
        n = self.graph.n
        if not 0 <= s < n or not 0 <= t < n:
            raise ValueError(f"query vertex out of range [0, {n})")
