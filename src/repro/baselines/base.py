"""Common protocol for reachability and k-hop indexes.

The benchmark harness treats every index uniformly: build it (timed),
measure :meth:`storage_bytes`, then fire a query workload at
:meth:`reaches` (classic reachability, Tables 3–6) or
:meth:`reaches_within` (k-hop, Table 7).

An index that supports only classic reachability (every comparator in the
paper) raises :class:`UnsupportedQueryError` from :meth:`reaches_within` —
mirroring the paper's §3 argument that those index families *cannot* answer
k-hop queries.
"""

from __future__ import annotations

import abc
from typing import ClassVar

from repro.graph.digraph import DiGraph

__all__ = ["ReachabilityIndex", "UnsupportedQueryError", "IndexBudgetExceeded"]


class UnsupportedQueryError(NotImplementedError):
    """The index family cannot answer this query type (paper §3)."""


class IndexBudgetExceeded(RuntimeError):
    """Construction aborted: the index exceeded its size/time budget.

    The paper reports "-" for 3-hop on most datasets because construction
    ran out of time or memory; the harness reproduces that behavior by
    letting indexes declare a budget and giving up loudly.
    """


class ReachabilityIndex(abc.ABC):
    """Abstract base for all indexes in :mod:`repro.baselines`.

    Subclasses build their structures in ``__init__`` (so wall-clock
    construction time is just the constructor call) and must implement
    :meth:`reaches`.
    """

    #: Short name used in benchmark tables ("GRAIL", "PWAH", ...).
    name: ClassVar[str] = "abstract"

    def __init__(self, graph: DiGraph) -> None:
        self.graph = graph

    @abc.abstractmethod
    def reaches(self, s: int, t: int) -> bool:
        """Classic reachability: does a directed path from s to t exist?"""

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """k-hop reachability; unsupported by classic-only index families."""
        raise UnsupportedQueryError(
            f"{type(self).__name__} answers classic reachability only (paper §3)"
        )

    @abc.abstractmethod
    def storage_bytes(self) -> int:
        """Modeled on-disk size of the index structures (not the graph)."""

    def _check_pair(self, s: int, t: int) -> None:
        n = self.graph.n
        if not 0 <= s < n or not 0 <= t < n:
            raise ValueError(f"query vertex out of range [0, {n})")
