"""Re-implemented comparator indexes from the paper's evaluation.

Every comparator in the paper is closed-source C++; each is re-implemented
here from its published algorithm (GRAIL, PWAH, BFS, transitive closure)
or by a documented same-family stand-in (PTree → tree cover, 3-hop → chain
cover, µ-dist → pruned landmark labeling).  See DESIGN.md §2 for the
substitution rationale.
"""

from repro.baselines.base import (
    IndexBudgetExceeded,
    ReachabilityIndex,
    UnsupportedQueryError,
)
from repro.baselines.bfs import BfsIndex
from repro.baselines.bibfs import BidirectionalBfsIndex
from repro.baselines.chain_cover import ChainCoverIndex
from repro.baselines.grail import GrailIndex
from repro.baselines.path_tree import PathTreeIndex
from repro.baselines.pll import PrunedLandmarkIndex
from repro.baselines.pwah import PwahIndex
from repro.baselines.transitive_closure import TransitiveClosureIndex

__all__ = [
    "ReachabilityIndex",
    "UnsupportedQueryError",
    "IndexBudgetExceeded",
    "BfsIndex",
    "BidirectionalBfsIndex",
    "ChainCoverIndex",
    "GrailIndex",
    "PathTreeIndex",
    "PrunedLandmarkIndex",
    "PwahIndex",
    "TransitiveClosureIndex",
]
