"""Chain-cover compressed transitive closure — the 3-hop family's substrate.

**Substitution note** (see DESIGN.md): the paper compares against 3-hop
(Jin et al., SIGMOD 2009 — [23]), whose code is unavailable.  3-hop builds
a 2-hop-style labeling *between chains* of a chain decomposition; the chain
machinery itself is Jagadish's chain-cover transitive-closure compression
(ACM TODS 1990 — reference [19] of the paper, §3.3's "chain cover based
approach").  We implement that substrate:

1. condense the graph, decompose the DAG into vertex-disjoint paths
   ("chains" — consecutive chain elements are edges, hence reachable);
2. label each vertex with ``(chain, position)``;
3. for every vertex, store for each chain the *minimum position it can
   reach* on that chain (propagated in reverse topological order);
4. ``u → v`` iff ``min_reach[u][chain(v)] ≤ pos(v)``.

Two decompositions are available: a greedy topological sweep and the
minimum path cover via Hopcroft–Karp matching (Dilworth-style; fewer
chains, smaller labels, slower construction).

Like 3-hop in the paper's Table 3, construction degenerates on graphs
whose label volume explodes (the per-vertex chain vectors are the
O(n·chains) worst case); a configurable budget makes the index fail
loudly with :class:`IndexBudgetExceeded`, which the harness renders as the
paper's "-" entries.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import IndexBudgetExceeded, ReachabilityIndex
from repro.graph.digraph import DiGraph
from repro.graph.matching import hopcroft_karp
from repro.graph.scc import condensation

__all__ = ["ChainCoverIndex"]


class ChainCoverIndex(ReachabilityIndex):
    """Chain-cover compressed transitive closure.

    Parameters
    ----------
    graph:
        Input digraph.
    decomposition:
        ``'greedy'`` (default) or ``'matching'`` (minimum path cover via
        Hopcroft–Karp).
    max_label_entries:
        Abort construction with :class:`IndexBudgetExceeded` once the total
        number of (chain, position) label entries passes this budget —
        reproduces the "-" rows of the paper's Table 3.  ``None`` disables
        the guard.
    """

    name = "3-hop"

    def __init__(
        self,
        graph: DiGraph,
        *,
        decomposition: str = "greedy",
        max_label_entries: int | None = None,
    ) -> None:
        super().__init__(graph)
        if decomposition not in ("greedy", "matching"):
            raise ValueError(f"unknown decomposition {decomposition!r}")
        cond = condensation(graph)
        self._comp = cond.component_of
        dag = cond.dag
        n = dag.n

        if decomposition == "matching":
            successor = self._matching_successors(dag)
        else:
            successor = self._greedy_successors(dag)

        # Walk the successor links to assign (chain, position) labels.
        has_pred = np.zeros(n, dtype=bool)
        for v in range(n):
            if successor[v] != -1:
                has_pred[successor[v]] = True
        chain_of = np.full(n, -1, dtype=np.int64)
        pos_of = np.zeros(n, dtype=np.int64)
        chain_count = 0
        for v in range(n):
            if has_pred[v] or chain_of[v] != -1:
                continue
            u, pos = v, 0
            while u != -1:
                chain_of[u] = chain_count
                pos_of[u] = pos
                u = successor[u]
                pos += 1
            chain_count += 1
        self._chain_of = chain_of
        self._pos_of = pos_of
        self.chain_count = chain_count

        # min_reach[v] : chain -> minimum reachable position (includes v).
        min_reach: list[dict[int, int]] = [dict() for _ in range(n)]
        total_entries = 0
        for v in range(n):  # increasing id = successors first (Tarjan order)
            row: dict[int, int] = {int(chain_of[v]): int(pos_of[v])}
            for w in dag.out_neighbors(v):
                for c, p in min_reach[int(w)].items():
                    cur = row.get(c)
                    if cur is None or p < cur:
                        row[c] = p
            min_reach[v] = row
            total_entries += len(row)
            if max_label_entries is not None and total_entries > max_label_entries:
                raise IndexBudgetExceeded(
                    f"chain-cover labels exceeded {max_label_entries} entries "
                    f"at vertex {v}/{n}"
                )
        self._min_reach = min_reach
        self.label_entries = total_entries

    @staticmethod
    def _greedy_successors(dag: DiGraph) -> np.ndarray:
        """Greedy path decomposition: sweep topological order (decreasing
        Tarjan id), each unassigned vertex grabs one free out-neighbor."""
        n = dag.n
        successor = np.full(n, -1, dtype=np.int64)
        claimed = np.zeros(n, dtype=bool)  # vertex already has a predecessor
        for v in range(n - 1, -1, -1):
            for w in dag.out_neighbors(v):
                w = int(w)
                if not claimed[w]:
                    successor[v] = w
                    claimed[w] = True
                    break
        return successor

    @staticmethod
    def _matching_successors(dag: DiGraph) -> np.ndarray:
        """Minimum path cover: max matching between out-slots and in-slots."""
        n = dag.n
        adjacency = [[int(w) for w in dag.out_neighbors(v)] for v in range(n)]
        match_left, _, _ = hopcroft_karp(adjacency, n, n)
        return np.asarray(match_left, dtype=np.int64)

    def reaches(self, s: int, t: int) -> bool:
        """One dict probe: min reachable position on t's chain vs pos(t)."""
        self._check_pair(s, t)
        cs, ct = int(self._comp[s]), int(self._comp[t])
        if cs == ct:
            return True
        p = self._min_reach[cs].get(int(self._chain_of[ct]))
        return p is not None and p <= int(self._pos_of[ct])

    def storage_bytes(self) -> int:
        """8 bytes per label entry + chain/pos arrays + component map."""
        n_dag = len(self._chain_of)
        return 8 * self.label_entries + 8 * n_dag + 4 * self.graph.n
