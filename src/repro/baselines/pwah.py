"""PWAH: transitive closure compressed with word-aligned hybrid bitmaps.

Re-implementation of van Schaik & de Moor (SIGMOD 2011) — reference [28]
of the paper.  The index materializes the full transitive closure of the
condensation DAG, but stores each row as a WAH-compressed bitmap
(:class:`repro.bitsets.wah.WahBitVector`); queries probe a single bit by
scanning the compressed words, never decompressing.

The paper's §3.6 explains why this approach stops at classic reachability:
k-hop entries need multi-bit distances, which destroys the long 0/1 runs
the compression depends on — so, like the original, this index answers
``reaches`` only.

Construction keeps uncompressed rows (as Python big-int bitmasks) alive
only while some unprocessed predecessor still needs them; rows are
WAH-compressed and the big-ints dropped as soon as the last predecessor
has consumed them, bounding peak memory on sparse DAGs.
"""

from __future__ import annotations

import numpy as np

from repro.baselines.base import ReachabilityIndex
from repro.bitsets.wah import WahBitVector
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation

__all__ = ["PwahIndex"]


def _int_to_bits(mask: int, size: int) -> np.ndarray:
    """Little-endian bit expansion of a big-int bitmask to ``size`` bools."""
    if size == 0:
        return np.zeros(0, dtype=bool)
    nbytes = (size + 7) // 8
    raw = mask.to_bytes(nbytes, "little")
    bits = np.unpackbits(np.frombuffer(raw, dtype=np.uint8), bitorder="little")
    return bits[:size].astype(bool)


class PwahIndex(ReachabilityIndex):
    """WAH-compressed transitive closure.

    >>> from repro.graph.generators import path_graph
    >>> ix = PwahIndex(path_graph(5))
    >>> ix.reaches(0, 4), ix.reaches(4, 0)
    (True, False)
    """

    name = "PWAH"

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        cond = condensation(graph)
        self._comp = cond.component_of
        dag = cond.dag
        n = dag.n
        self._n_dag = n
        # Tarjan ids decrease along edges, so predecessors of c have larger
        # ids; pending[c] counts predecessors yet to consume row c.
        pending = dag.in_degrees()
        live: dict[int, int] = {}
        compressed: list[WahBitVector | None] = [None] * n
        for c in range(n):
            acc = 0
            for child in dag.out_neighbors(c):
                child = int(child)
                acc |= live[child] | (1 << child)
                pending[child] -= 1
                if pending[child] == 0:
                    del live[child]
            if pending[c] > 0:
                live[c] = acc
            compressed[c] = WahBitVector.compress(_int_to_bits(acc, n))
        self._rows = compressed

    def reaches(self, s: int, t: int) -> bool:
        """One compressed-bit probe (plus the SCC lookup)."""
        self._check_pair(s, t)
        cs, ct = int(self._comp[s]), int(self._comp[t])
        if cs == ct:
            return True
        row = self._rows[cs]
        assert row is not None
        return row.test(ct)

    def compression_ratio(self) -> float:
        """Aggregate raw-TC-bits / compressed-bits across all rows."""
        raw = self._n_dag * ((self._n_dag + 7) // 8)
        packed = sum(row.storage_bytes() for row in self._rows if row is not None)
        return raw / packed if packed else float("inf")

    def storage_bytes(self) -> int:
        """Compressed rows + per-row offsets + component map."""
        rows = sum(row.storage_bytes() for row in self._rows if row is not None)
        return rows + 4 * self._n_dag + 4 * self.graph.n
