"""The k-reach index (Definition 1, Algorithms 1–2 of the paper).

Given a directed graph ``G`` and a hop budget ``k``, the index is a small
weighted digraph ``I = (V_I, E_I, ω_I)``:

* ``V_I`` is a vertex cover ``S`` of ``G``;
* ``(u, v) ∈ E_I`` iff ``u →k v`` in ``G`` (``v`` reachable from ``u``
  within ``k`` hops);
* ``ω_I((u, v)) = max(d(u, v), k-2)`` — i.e. the shortest-path distance
  quantized to the three values ``{k-2, k-1, k}``, which is all query
  processing ever needs (2 bits per edge, §4.3).

The index is held as an :class:`~repro.core.index_graph.IndexGraph` — the
paper's §4.3 physical layout (cover-id table + CSR + packed weights) used
directly as the canonical in-memory representation.  Construction feeds
it from ``(src, dst, dist)`` triple arrays produced by the blocked
bit-parallel multi-source BFS (``builder='blocked'``, the default) or the
per-source serial sweep (``builder='serial'``, the differential/benchmark
baseline); both are bit-identical, as is the process-parallel build in
:mod:`repro.core.parallel`.

Queries (Algorithm 2) split on cover membership of the endpoints:

* **Case 1** (both in ``S``): one edge lookup in ``I``.
* **Case 2** (only ``s``): every in-neighbor of ``t`` is in ``S`` (else the
  edge into ``t`` would be uncovered), so ``s →k t`` iff some in-neighbor
  ``v`` has ``ω_I((s, v)) ≤ k-1``.
* **Case 3** (only ``t``): mirror of Case 2 via out-neighbors of ``s``.
* **Case 4** (neither): some out-neighbor ``u`` of ``s`` and in-neighbor
  ``v`` of ``t`` must satisfy ``ω_I((u, v)) ≤ k-2``.

**Self-handshake fix.**  The pseudocode in the paper implicitly relies on
``I`` containing a zero-weight self-loop at every cover vertex: in Case 2
the covering in-neighbor of ``t`` may be ``s`` itself (the path is the
single edge ``s → t``), and in Case 4 the out-neighbor of ``s`` may equal
the in-neighbor of ``t`` (the path is ``s → u → t``).  We implement this by
treating ``u == v`` as an always-present link of weight 0 rather than
materializing self-loops; `tests/core/test_kreach.py` exercises both
situations.

With ``k=None`` the index degenerates to the paper's **n-reach**: a classic
reachability index.  In that mode the serial builder runs over the SCC
condensation's transitive closure instead of per-cover-vertex BFS — the
same index, built with bitset sweeps instead of |S| graph traversals.
"""

from __future__ import annotations

import numpy as np

from repro import native
from repro.bitsets.ops import DEFAULT_MATRIX_BYTES
from repro.bitsets.packed import PackedIntArray
from repro.core.batch import (
    MISSING_WEIGHT,
    UNBOUNDED_BUDGET,
    KeyedRowStore,
    as_pair_arrays,
    case4_bitset_join,
    case_codes,
    coalesce_pairs,
    gather_segments,
    segment_any,
    plan_cross_products,
)
from repro.core.index_graph import (
    IndexGraph,
    cover_triples_blocked,
    cover_triples_serial,
)
from repro.core.rowstore import CompressedRow
from repro.core.vertex_cover import cover_from_strategy, is_vertex_cover
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation

__all__ = ["KReachIndex"]

_BUILDERS = ("blocked", "serial")
_ENGINES = ("auto", "native", "bitset", "chunked", "scalar")


class KReachIndex:
    """Vertex-cover-based k-hop reachability index.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.digraph.DiGraph`.  The index keeps a
        reference — queries need the original adjacency for Cases 2–4.
    k:
        Hop budget.  ``None`` builds the n-reach variant answering classic
        reachability.
    cover:
        Optional pre-computed vertex cover (it is validated); by default a
        cover is computed with ``cover_strategy``.
    cover_strategy:
        One of ``'degree'`` (default, the §4.3 high-degree-first pick),
        ``'random'``, ``'input'``, ``'greedy'``.
    include_degree_at_least:
        Seed all vertices of at least this degree into the cover (§4.3).
    compress_rows_at:
        If set, index rows with at least this many edges additionally get
        per-weight-level WAH bitmaps — the §4.3 compact representation for
        high-degree vertices.  Scalar queries then probe compressed bits
        for those rows instead of hashing neighbor keys.
    builder:
        ``'blocked'`` (default) constructs via the bit-parallel
        multi-source BFS; ``'serial'`` runs one BFS per cover vertex (the
        pre-refactor path, kept for differential tests and benchmarks).
        Both produce bit-identical :class:`IndexGraph` contents.
    bitset_matrix_bytes:
        Memory ceiling for the Case-4 bitset-join link matrix
        (``~|S|²/8`` bytes; default
        :data:`~repro.bitsets.ops.DEFAULT_MATRIX_BYTES`).  Covers too
        large for the ceiling make ``engine='auto'`` batches fall back
        to the chunked cross-product engine; ``0`` keeps ``'auto'`` off
        the bitset path entirely (an explicit ``engine='bitset'`` still
        forces the matrix build).
    rng:
        Randomness for ``cover_strategy='random'``.

    **Batch API contract.**  :meth:`query_batch` and
    :meth:`query_case_batch` accept any ``(m, 2)`` integer array-like of
    ``(s, t)`` pairs (lists of tuples included) and return numpy arrays
    aligned with the input order: ``query_batch`` an ``(m,)`` bool array
    (``True`` iff ``s →k t``), ``query_case_batch`` an ``(m,)`` uint8
    array of Algorithm-2 case numbers 1–4.  Empty inputs yield empty
    ``(0,)`` arrays of the same dtypes; any vertex id outside
    ``[0, graph.n)`` raises :class:`ValueError`, exactly like the scalar
    methods.  Answers are bit-identical to calling :meth:`query` /
    :meth:`query_case` pair by pair.

    Examples
    --------
    >>> from repro.graph.generators import paper_example_graph
    >>> g = paper_example_graph()
    >>> idx = KReachIndex(g, k=3)
    >>> idx.query(g.vertex_id("b"), g.vertex_id("g"))
    True
    >>> idx.query(g.vertex_id("b"), g.vertex_id("i"))
    False
    """

    def __init__(
        self,
        graph: DiGraph,
        k: int | None,
        *,
        cover: frozenset[int] | None = None,
        cover_strategy: str = "degree",
        include_degree_at_least: int | None = None,
        compress_rows_at: int | None = None,
        builder: str = "blocked",
        bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
        storage: str = "dense",
        rng: np.random.Generator | None = None,
    ) -> None:
        if k is not None and k < 0:
            raise ValueError(f"k must be non-negative or None, got {k}")
        if builder not in _BUILDERS:
            raise ValueError(f"builder must be one of {_BUILDERS}, got {builder!r}")
        if cover is None:
            cover = cover_from_strategy(
                graph,
                cover_strategy,
                rng=rng,
                include_degree_at_least=include_degree_at_least,
            )
        else:
            cover = frozenset(int(v) for v in cover)
            if not is_vertex_cover(graph, cover):
                raise ValueError("provided vertex set is not a vertex cover")
        if k is None and builder == "serial":
            triples = self._unbounded_triples_serial(graph, cover)
        else:
            make = cover_triples_serial if builder == "serial" else cover_triples_blocked
            triples = make(graph, cover, k)
        ig = IndexGraph.for_kreach(graph.n, cover, *triples, k)
        if storage != "dense":
            ig.use_storage(storage)
        self._finish_init(
            graph, k, cover, ig, compress_rows_at, bitset_matrix_bytes
        )

    def _finish_init(
        self,
        graph: DiGraph,
        k: int | None,
        cover: frozenset[int],
        index_graph: IndexGraph,
        compress_rows_at: int | None,
        bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
    ) -> None:
        self.graph = graph
        self.k = k
        self.cover = cover
        # bytearray: fastest per-query membership flag in CPython.  Built
        # through one numpy scatter instead of a Python loop — covers are
        # |S|-sized and this runs on the serving tier's open path.
        if cover:
            flags = np.zeros(graph.n, dtype=np.uint8)
            flags[np.fromiter(cover, dtype=np.int64, count=len(cover))] = 1
            self._cover_flags = bytearray(flags.tobytes())
        else:
            self._cover_flags = bytearray(graph.n)
        # Pre-resolved query-time budgets (None = unbounded).
        self._b1_ok = k is None or k >= 1  # may a u == v handshake use k-1?
        self._b2_ok = k is None or k >= 2  # ... use k-2?
        self._ig = index_graph
        #: Row-store backing ('dense' keyed arrays or 'wah' compressed
        #: bitmaps) — owned by the IndexGraph, mirrored for introspection.
        self.storage = index_graph.storage
        self.compress_rows_at = compress_rows_at
        self.bitset_matrix_bytes = int(bitset_matrix_bytes)
        self._wah = self._build_wah(compress_rows_at)
        # Plain-list adjacency for the hot scalar query loops — built on
        # the first scalar query, not here: an O(n + m) list
        # materialization at construction time would put the whole graph
        # on the open path of the zero-copy loader (which must stay
        # O(header)).  The batch engines never touch these lists.
        self._out_lists: list[list[int]] | None = None
        self._in_lists: list[list[int]] | None = None
        # Lazily-built scalar probe view and vectorized lookup structures.
        self._scalar: tuple | None = None
        self._keyed_rows: KeyedRowStore | None = None
        self._flags_np: np.ndarray | None = None

    def _build_wah(self, threshold: int | None) -> dict[int, CompressedRow] | None:
        """§4.3 WAH bitmap views of rows with at least ``threshold`` edges."""
        if threshold is None:
            return None
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        ig = self._ig
        counts = np.diff(ig.indptr)
        weights = ig.weights64()
        wah: dict[int, CompressedRow] = {}
        for i in np.flatnonzero(counts >= threshold).tolist():
            lo, hi = int(ig.indptr[i]), int(ig.indptr[i + 1])
            wah[int(ig.cover_ids[i])] = CompressedRow.from_arrays(
                ig.targets[lo:hi], weights[lo:hi], ig.n
            )
        return wah or None

    @classmethod
    def from_index_graph(
        cls,
        graph: DiGraph,
        k: int | None,
        *,
        cover: frozenset[int],
        index_graph: IndexGraph,
        compress_rows_at: int | None = None,
        bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
        storage: str | None = None,
    ) -> "KReachIndex":
        """Assemble an index around a pre-built :class:`IndexGraph`.

        Used by the parallel builder (:mod:`repro.core.parallel`), the
        on-disk loaders (:mod:`repro.core.serialize`), and
        :meth:`~repro.core.dynamic.DynamicKReachIndex.freeze`.  The caller
        is responsible for the contents being exactly what Algorithm 1
        would have produced for this ``(graph, k, cover)``.
        ``storage=None`` inherits the IndexGraph's backing (the loaders
        pre-install a compressed store there); pass ``'dense'``/``'wah'``
        to override.
        """
        self = object.__new__(cls)
        if not isinstance(cover, frozenset):
            cover = frozenset(int(v) for v in cover)
        if storage is not None and storage != index_graph.storage:
            index_graph.use_storage(storage)
        self._finish_init(
            graph,
            k,
            cover,
            index_graph,
            compress_rows_at,
            bitset_matrix_bytes,
        )
        return self

    @classmethod
    def from_parts(
        cls,
        graph: DiGraph,
        k: int | None,
        *,
        cover: frozenset[int],
        rows: dict[int, dict[int, int]],
        compress_rows_at: int | None = None,
    ) -> "KReachIndex":
        """Conversion helper: assemble from legacy nested-dict rows.

        Prefer :meth:`from_index_graph`; this remains for tests and tools
        that still hold ``{u: {v: w}}`` mappings.
        """
        cover = frozenset(int(v) for v in cover)
        if k is None:
            ig = IndexGraph.from_rows(
                graph.n, cover, rows, weight_base=0, weight_bits=1
            )
        else:
            ig = IndexGraph.from_rows(
                graph.n, cover, rows, weight_base=k - 2, weight_bits=2
            )
        return cls.from_index_graph(
            graph, k, cover=cover, index_graph=ig, compress_rows_at=compress_rows_at
        )

    # ------------------------------------------------------------------
    # Construction (Algorithm 1)
    # ------------------------------------------------------------------
    @staticmethod
    def _unbounded_triples_serial(
        graph: DiGraph, cover: frozenset[int]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """n-reach triples over the condensation's transitive closure.

        For ``k = ∞`` only reachability between cover vertices matters, so
        instead of |S| full BFS sweeps the serial builder computes the DAG
        transitive closure once (big-int bitmask OR-accumulation in
        reverse topological order) and expands it to cover pairs.
        """
        cond = condensation(graph)
        comp = cond.component_of
        dag = cond.dag
        n_dag = dag.n

        members: dict[int, list[int]] = {}
        for u in cover:
            members.setdefault(int(comp[u]), []).append(u)
        cover_comp_mask = 0
        for c in members:
            cover_comp_mask |= 1 << c

        closure: list[int] = [0] * n_dag
        for c in range(n_dag):  # increasing id = reverse topological order
            acc = 0
            for child in dag.out_neighbors(c):
                child = int(child)
                acc |= closure[child] | (1 << child)
            closure[c] = acc

        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        for c, us in members.items():
            # Cover vertices in strictly-reachable components.
            reach: list[int] = []
            mask = closure[c] & cover_comp_mask
            while mask:
                low = mask & -mask
                reach.extend(members[low.bit_length() - 1])
                mask ^= low
            same = us if len(us) > 1 and not cond.is_trivial(c) else None
            for u in us:
                row = list(reach)
                if same is not None:
                    row.extend(v for v in same if v != u)
                if row:
                    dsts.append(np.asarray(row, dtype=np.int64))
                    srcs.append(np.full(len(row), u, dtype=np.int64))
        if not srcs:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        src = np.concatenate(srcs)
        return src, np.concatenate(dsts), np.zeros(len(src), dtype=np.int64)

    # ------------------------------------------------------------------
    # Scalar probe view (derived from the IndexGraph, built on first use)
    # ------------------------------------------------------------------
    def _scalar_view(self) -> tuple:
        """``(probe, targets, weights, row_pos, indptr)`` for scalar loops.

        ``probe(u, v)`` returns the stored weight or None via one flat
        hash lookup (WAH bitmap bit-probes for compressed hub rows); the
        plain-list CSR columns back the Case-4 small-row scans.  All of it
        is a view of the canonical :class:`IndexGraph` arrays.
        """
        if self._scalar is None:
            ig = self._ig
            n = self.graph.n
            wah = self._wah
            if wah is None and ig.storage == "wah":
                # Compressed storage: scalar probes go through the row
                # store's decompress-on-touch cache instead of
                # materializing the flat dict (which would cost the
                # dense bytes the backing exists to avoid).
                store = ig.wah_store()

                def probe(u: int, v: int, _store=store):
                    return _store.weight_of(u, v)

            elif wah is None:
                flat = ig.flat()

                def probe(u: int, v: int, _flat=flat, _n=n):
                    return _flat.get(u * _n + v)

            else:
                # Hub rows answer through their bitmaps; exclude them from
                # the flat dict so it stays proportional to the plain rows.
                heads = np.repeat(ig.cover_ids, np.diff(ig.indptr))
                keep = ~np.isin(
                    heads,
                    np.fromiter(wah.keys(), dtype=np.int64, count=len(wah)),
                )
                flat = dict(
                    zip(
                        ig.keys()[keep].tolist(),
                        ig.weights64()[keep].tolist(),
                    )
                )

                def probe(u: int, v: int, _flat=flat, _wah=wah, _n=n):
                    row = _wah.get(u)
                    if row is not None:
                        return row.get(v)
                    return _flat.get(u * _n + v)

            self._scalar = (
                probe,
                ig.targets.tolist(),
                ig.weights64().tolist(),
                ig.row_pos().tolist(),
                ig.indptr.tolist(),
            )
        return self._scalar

    # ------------------------------------------------------------------
    # Query processing (Algorithm 2)
    # ------------------------------------------------------------------
    def _out_adj(self) -> list[list[int]]:
        """Plain-list out-adjacency for the scalar loops (first use only —
        each direction is O(n + m) of Python lists, so Case 1/2 queries
        must never trigger the build)."""
        if self._out_lists is None:
            self._out_lists = self.graph.out_lists()
        return self._out_lists

    def _in_adj(self) -> list[list[int]]:
        """Plain-list in-adjacency, built on first use (see :meth:`_out_adj`)."""
        if self._in_lists is None:
            self._in_lists = self.graph.in_lists()
        return self._in_lists

    def query(self, s: int, t: int) -> bool:
        """Whether ``s →k t`` (``s → t`` for the n-reach mode)."""
        flags = self._cover_flags
        n = len(flags)
        if not 0 <= s < n or not 0 <= t < n:
            raise ValueError(f"query vertex out of range [0, {n})")
        if s == t:
            return True
        k = self.k
        if k == 0:
            return False
        probe, tlist, wlist, row_pos, indptr = self._scalar_view()

        if flags[s]:
            if flags[t]:
                # Case 1: all stored weights are <= k by construction.
                return probe(s, t) is not None
            # Case 2: all in-neighbors of t are covered.
            in_lists = self._in_adj()
            if k is None:
                for v in in_lists[t]:
                    if v == s or probe(s, v) is not None:
                        return True
                return False
            budget = k - 1
            b1_ok = self._b1_ok
            for v in in_lists[t]:
                if v == s:
                    if b1_ok:
                        return True
                else:
                    w = probe(s, v)
                    if w is not None and w <= budget:
                        return True
            return False

        if flags[t]:
            # Case 3: all out-neighbors of s are covered.
            out_lists = self._out_adj()
            if k is None:
                for u in out_lists[s]:
                    if u == t or probe(u, t) is not None:
                        return True
                return False
            budget = k - 1
            for u in out_lists[s]:
                if u == t:
                    if self._b1_ok:
                        return True
                else:
                    w = probe(u, t)
                    if w is not None and w <= budget:
                        return True
            return False

        # Case 4: bridge an out-neighbor of s to an in-neighbor of t.
        preds = self._in_adj()[t]
        if not preds:
            return False
        pred_set = set(preds)
        b2_ok = self._b2_ok
        budget = 0 if k is None else k - 2
        unbounded = k is None
        wah = self._wah
        for u in self._out_adj()[s]:
            if b2_ok and u in pred_set:
                return True  # s -> u -> t
            p = row_pos[u]
            if p < 0:
                continue
            if wah is not None:
                row = wah.get(u)
                if row is not None:  # hub row: compressed bit probes
                    for v in pred_set:
                        w = row.get(v)
                        if w is not None and (unbounded or w <= budget):
                            return True
                    continue
            a, b = indptr[p], indptr[p + 1]
            if a == b:
                continue
            if b - a < len(pred_set):
                # Scan the smaller row against the predecessor set.
                if unbounded:
                    for i in range(a, b):
                        if tlist[i] in pred_set:
                            return True
                else:
                    for i in range(a, b):
                        if wlist[i] <= budget and tlist[i] in pred_set:
                            return True
            else:
                if unbounded:
                    for v in pred_set:
                        if probe(u, v) is not None:
                            return True
                else:
                    for v in pred_set:
                        w = probe(u, v)
                        if w is not None and w <= budget:
                            return True
        return False

    def reaches(self, s: int, t: int) -> bool:
        """Classic-reachability alias (meaningful for the n-reach mode)."""
        return self.query(s, t)

    def query_case(self, s: int, t: int) -> int:
        """Which of Algorithm 2's four cases the query (s, t) falls into."""
        flags = self._cover_flags
        if not 0 <= s < len(flags) or not 0 <= t < len(flags):
            raise ValueError("query vertex out of range")
        if flags[s]:
            return 1 if flags[t] else 2
        return 3 if flags[t] else 4

    # ------------------------------------------------------------------
    # Batch query processing (vectorized Algorithm 2)
    # ------------------------------------------------------------------
    def _keyed(self) -> KeyedRowStore:
        """The batch engine's probe view — zero-copy from the IndexGraph.

        With ``storage='wah'`` this is the compressed
        :class:`~repro.core.rowstore.WahRowStore` instead (same
        ``lookup`` contract, decompress-on-touch rows); every batch
        engine runs unchanged against either backing.
        """
        if self._keyed_rows is None:
            if self._ig.storage == "wah":
                self._keyed_rows = self._ig.wah_store()
            else:
                self._keyed_rows = KeyedRowStore(
                    self._ig.keys(), self._ig.weights64(), self.graph.n
                )
        return self._keyed_rows

    def _flags(self) -> np.ndarray:
        """Cover-membership flags as a bool array (for vectorized dispatch)."""
        if self._flags_np is None:
            self._flags_np = np.frombuffer(
                bytes(self._cover_flags), dtype=np.uint8
            ).astype(bool)
        return self._flags_np

    def prepare_batch(self) -> "KReachIndex":
        """Build the batch engine's lookup structures now.

        They are otherwise built lazily on the first :meth:`query_batch`
        call (a one-time key/weight materialization from the IndexGraph,
        plus the Case-4 link matrix when it fits
        :attr:`bitset_matrix_bytes`); serving setups and benchmarks call
        this to keep that cost out of the steady-state query path.
        Returns ``self`` for chaining.
        """
        self._keyed()
        self._flags()
        self._case4_matrix()
        return self

    def query_batch(self, pairs, *, engine: str = "auto") -> np.ndarray:
        """Vectorized :meth:`query` over a batch of (s, t) pairs.

        Input is any ``(m, 2)`` integer array-like; output an ``(m,)``
        bool array with ``out[i] == self.query(pairs[i][0], pairs[i][1])``
        (see the class docstring for the full batch API contract).  All
        engines return bit-identical answers.

        Algorithm 2's case split is evaluated over the cover-membership
        flags of all pairs at once.  Case-1 weights are gathered in one
        sorted-key binary search over the row store and Cases 2/3 batch
        the neighbor probes over the CSR arrays.  Case 4 depends on
        ``engine``:

        * ``'auto'`` (default) — the bitset join when the cover-local
          link matrix fits :attr:`bitset_matrix_bytes`, else the chunked
          engine.
        * ``'native'`` — same case split as ``'auto'``, but the kernels
          prefer the compiled tier for this batch
          (:func:`repro.native.use`); identical answers, and a plain
          ``'auto'`` run when numba is absent.
        * ``'bitset'`` — force the bitset join: per-pair verdicts become
          word-wise AND-any tests against per-endpoint cover bitsets; no
          cross product is materialized and no pair ever takes the
          hub-spill path.
        * ``'chunked'`` — the chunked ``outNei(s) × inNei(t)`` cross
          products with the scalar early-exit spill for hub×hub pairs
          (the pre-bitset engine, kept for benchmarks/differential
          tests).
        * ``'scalar'`` — a plain per-pair :meth:`query` loop (the
          differential reference).

        Before the kernels run, the vector engines deduplicate repeated
        (s, t) pairs and group the distinct pairs by Algorithm-2 case
        code (:func:`~repro.core.batch.coalesce_pairs`), scattering the
        verdicts back to input order — a repeated-pair-heavy workload
        pays each kernel once per *distinct* pair.
        """
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if engine == "native":
            with native.use("auto"):
                return self.query_batch(pairs, engine="auto")
        g = self.graph
        s, t = as_pair_arrays(pairs, g.n)
        m = len(s)
        if m == 0:
            return np.zeros(0, dtype=bool)
        if engine == "scalar":
            out = np.zeros(m, dtype=bool)
            query = self.query
            for i, (si, ti) in enumerate(zip(s.tolist(), t.tolist())):
                out[i] = query(si, ti)
            return out
        flags = self._flags()
        codes = case_codes(flags[s], flags[t])
        # Kernels always run over the deduplicated, case-grouped pairs:
        # the sort is the dedup check anyway, so the grouping is free,
        # and the O(m) inverse scatter is noise next to the kernels.
        us, ut, inverse = coalesce_pairs(s, t, g.n, codes=codes)
        return self._query_batch_arrays(us, ut, engine)[inverse]

    def _query_batch_arrays(
        self, s: np.ndarray, t: np.ndarray, engine: str
    ) -> np.ndarray:
        """The vector engines over validated (s, t) columns (see
        :meth:`query_batch`)."""
        g = self.graph
        m = len(s)
        out = np.zeros(m, dtype=bool)
        np.equal(s, t, out=out)
        k = self.k
        if k == 0:
            return out
        store = self._keyed()
        flags = self._flags()
        s_in = flags[s]
        t_in = flags[t]
        undecided = ~out  # s != t
        b1 = UNBOUNDED_BUDGET if k is None else np.int64(k - 1)
        b2 = UNBOUNDED_BUDGET if k is None else np.int64(k - 2)

        # Case 1: one bulk weight gather; presence alone decides (stored
        # weights never exceed k by construction).
        sel = np.flatnonzero(undecided & s_in & t_in)
        if len(sel):
            out[sel] = store.lookup(s[sel], t[sel]) < MISSING_WEIGHT

        # Case 2: some in-neighbor v of t with v == s or ω(s, v) <= k-1.
        sel = np.flatnonzero(undecided & s_in & ~t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.in_indptr, g.in_indices, t[sel])
            src = s[sel][owner]
            hit = store.lookup(src, nbrs) <= b1
            if self._b1_ok:
                hit |= nbrs == src
            out[sel] = segment_any(hit, owner, len(sel))

        # Case 3: mirror of Case 2 over out-neighbors of s.
        sel = np.flatnonzero(undecided & ~s_in & t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.out_indptr, g.out_indices, s[sel])
            dst = t[sel][owner]
            hit = store.lookup(nbrs, dst) <= b1
            if self._b1_ok:
                hit |= nbrs == dst
            out[sel] = segment_any(hit, owner, len(sel))

        # Case 4: bridge outNei(s) × inNei(t) through the index.
        sel = np.flatnonzero(undecided & ~s_in & ~t_in)
        if len(sel):
            out[sel] = self._case4_batch(store, s[sel], t[sel], b2, engine)
        return out

    def _case4_matrix(self, *, force: bool = False) -> np.ndarray | None:
        """The Case-4 link matrix, or None when it exceeds the memory gate.

        Row ``i`` holds the cover vertices reachable from
        ``cover_ids[i]`` within budget ``k-2`` (any stored link for
        n-reach), with the diagonal standing in for the ``u == v``
        handshake whenever a 2-hop bridge is legal.  Built lazily and
        cached on the :class:`IndexGraph`.
        """
        ig = self._ig
        if not force and ig.link_matrix_bytes() > self.bitset_matrix_bytes:
            return None
        budget = None if self.k is None else self.k - 2
        return ig.link_matrix(budget, diagonal=self._b2_ok)

    def _case4_batch(
        self,
        store: KeyedRowStore,
        s: np.ndarray,
        t: np.ndarray,
        budget: np.int64,
        engine: str,
    ) -> np.ndarray:
        """Case-4 verdicts for aligned uncovered (s, t) arrays."""
        if engine != "chunked":
            matrix = self._case4_matrix(force=engine == "bitset")
            if matrix is not None:
                return case4_bitset_join(
                    self.graph, s, t, matrix, self._ig.row_pos()
                )
        res = np.zeros(len(s), dtype=bool)
        big, chunks = plan_cross_products(self.graph, s, t)
        for sub, u, v, owner in chunks:
            hit = store.lookup(u, v) <= budget
            if self._b2_ok:
                hit |= u == v  # the s -> u -> t handshake
            res[sub] |= segment_any(hit, owner, len(sub))
        for j in big.tolist():  # hub×hub pairs: scalar path short-circuits
            res[j] = self.query(int(s[j]), int(t[j]))
        return res

    def query_case_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query_case`: an ``(m,)`` uint8 array of 1–4."""
        s, t = as_pair_arrays(pairs, self.graph.n)
        flags = self._flags()
        return case_codes(flags[s], flags[t])

    def contains(self, v: int) -> bool:
        """Whether ``v`` is in the index's vertex cover."""
        return bool(self._cover_flags[v])

    # ------------------------------------------------------------------
    # Introspection & storage model
    # ------------------------------------------------------------------
    @property
    def index_graph(self) -> IndexGraph:
        """The canonical CSR storage (§4.3 physical layout)."""
        return self._ig

    @property
    def cover_size(self) -> int:
        """``|V_I|`` — the size of the vertex cover."""
        return len(self.cover)

    @property
    def edge_count(self) -> int:
        """``|E_I|`` — the number of index edges."""
        return self._ig.edge_count

    def weight(self, u: int, v: int) -> int | None:
        """The stored weight ``ω_I((u, v))``, or None if the edge is absent."""
        return self._ig.weight_of(u, v)

    def weighted_edges(self) -> list[tuple[int, int, int]]:
        """All index edges as sorted ``(u, v, weight)`` triples."""
        return self._ig.weighted_edges()

    def weight_bits(self) -> int:
        """Bits per stored edge weight.

        §4.3: a fixed-k index needs only 2 bits (three values).  The
        n-reach mode stores no distance information at all, so 0 bits.
        """
        return 2 if self.k is not None else 0

    def storage_bytes(self) -> int:
        """Modeled on-disk size of the index (§4.3 storage scheme).

        Plain rows: CSR over the cover — 4-byte ids for the cover members
        and edge targets, 4-byte offsets, a packed 2-bit weight array.
        Compressed rows: their WAH words.  Plus an n-bit cover-membership
        bitmap for the O(1) case dispatch.  With ``storage='wah'`` the
        row payload is the compressed store itself (bitmap words plus
        level/row offsets) instead of the dense CSR columns.
        """
        bitmap_bytes = (self.graph.n + 7) // 8
        if self._ig.storage == "wah":
            return self._ig.wah_store().storage_bytes() + bitmap_bytes
        n_i = self.cover_size
        if self._wah is not None:
            compressed_bytes = sum(r.storage_bytes() for r in self._wah.values())
            plain_edges = self._ig.edge_count - sum(
                len(r) for r in self._wah.values()
            )
        else:
            compressed_bytes = 0
            plain_edges = self._ig.edge_count
        id_bytes = 4 * n_i  # cover-vertex id table
        indptr_bytes = 4 * (n_i + 1)
        indices_bytes = 4 * plain_edges
        weight_bytes = (plain_edges * self.weight_bits() + 7) // 8
        bitmap_bytes = (self.graph.n + 7) // 8
        return (
            id_bytes
            + indptr_bytes
            + indices_bytes
            + weight_bytes
            + compressed_bytes
            + bitmap_bytes
        )

    def packed_weights(self) -> PackedIntArray:
        """The edge weights packed at 2 bits each (0 ↦ k-2, 1 ↦ k-1, 2 ↦ k).

        This is the §4.3 physical encoding — and with the CSR-native
        storage it is simply the canonical weight array of the
        :class:`IndexGraph`.  Only defined for finite ``k``.
        """
        if self.k is None:
            raise ValueError("n-reach stores no weights")
        return self._ig.packed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = "inf" if self.k is None else self.k
        return (
            f"KReachIndex(k={k}, |V_I|={self.cover_size}, |E_I|={self.edge_count})"
        )
