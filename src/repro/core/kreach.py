"""The k-reach index (Definition 1, Algorithms 1–2 of the paper).

Given a directed graph ``G`` and a hop budget ``k``, the index is a small
weighted digraph ``I = (V_I, E_I, ω_I)``:

* ``V_I`` is a vertex cover ``S`` of ``G``;
* ``(u, v) ∈ E_I`` iff ``u →k v`` in ``G`` (``v`` reachable from ``u``
  within ``k`` hops);
* ``ω_I((u, v)) = max(d(u, v), k-2)`` — i.e. the shortest-path distance
  quantized to the three values ``{k-2, k-1, k}``, which is all query
  processing ever needs (2 bits per edge, §4.3).

Queries (Algorithm 2) split on cover membership of the endpoints:

* **Case 1** (both in ``S``): one edge lookup in ``I``.
* **Case 2** (only ``s``): every in-neighbor of ``t`` is in ``S`` (else the
  edge into ``t`` would be uncovered), so ``s →k t`` iff some in-neighbor
  ``v`` has ``ω_I((s, v)) ≤ k-1``.
* **Case 3** (only ``t``): mirror of Case 2 via out-neighbors of ``s``.
* **Case 4** (neither): some out-neighbor ``u`` of ``s`` and in-neighbor
  ``v`` of ``t`` must satisfy ``ω_I((u, v)) ≤ k-2``.

**Self-handshake fix.**  The pseudocode in the paper implicitly relies on
``I`` containing a zero-weight self-loop at every cover vertex: in Case 2
the covering in-neighbor of ``t`` may be ``s`` itself (the path is the
single edge ``s → t``), and in Case 4 the out-neighbor of ``s`` may equal
the in-neighbor of ``t`` (the path is ``s → u → t``).  We implement this by
treating ``u == v`` as an always-present link of weight 0 rather than
materializing self-loops; `tests/core/test_kreach.py` exercises both
situations.

With ``k=None`` the index degenerates to the paper's **n-reach**: a classic
reachability index.  In that mode construction runs over the SCC
condensation's transitive closure instead of per-cover-vertex BFS — the
same index, built with bitset sweeps instead of |S| graph traversals.
"""

from __future__ import annotations

import numpy as np

from repro.bitsets.packed import PackedIntArray
from repro.core.batch import (
    MISSING_WEIGHT,
    UNBOUNDED_BUDGET,
    KeyedRowStore,
    as_pair_arrays,
    case_codes,
    gather_segments,
    segment_any,
    plan_cross_products,
)
from repro.core.rowstore import compress_rows
from repro.core.vertex_cover import cover_from_strategy, is_vertex_cover
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation
from repro.graph.traversal import UNREACHED, bfs_distances, bfs_distances_scalar

__all__ = ["KReachIndex"]

# Below this k a scalar sparse BFS beats the vectorized full-array BFS
# because the k-hop ball is tiny relative to the graph.
_SCALAR_BFS_MAX_K = 3


class KReachIndex:
    """Vertex-cover-based k-hop reachability index.

    Parameters
    ----------
    graph:
        The input :class:`~repro.graph.digraph.DiGraph`.  The index keeps a
        reference — queries need the original adjacency for Cases 2–4.
    k:
        Hop budget.  ``None`` builds the n-reach variant answering classic
        reachability.
    cover:
        Optional pre-computed vertex cover (it is validated); by default a
        cover is computed with ``cover_strategy``.
    cover_strategy:
        One of ``'degree'`` (default, the §4.3 high-degree-first pick),
        ``'random'``, ``'input'``, ``'greedy'``.
    include_degree_at_least:
        Seed all vertices of at least this degree into the cover (§4.3).
    compress_rows_at:
        If set, index rows with at least this many edges are stored as
        per-weight-level WAH bitmaps instead of hash tables — the §4.3
        compact representation for high-degree vertices.  Queries then
        probe compressed bits instead of scanning neighbor lists.
    rng:
        Randomness for ``cover_strategy='random'``.

    **Batch API contract.**  :meth:`query_batch` and
    :meth:`query_case_batch` accept any ``(m, 2)`` integer array-like of
    ``(s, t)`` pairs (lists of tuples included) and return numpy arrays
    aligned with the input order: ``query_batch`` an ``(m,)`` bool array
    (``True`` iff ``s →k t``), ``query_case_batch`` an ``(m,)`` uint8
    array of Algorithm-2 case numbers 1–4.  Empty inputs yield empty
    ``(0,)`` arrays of the same dtypes; any vertex id outside
    ``[0, graph.n)`` raises :class:`ValueError`, exactly like the scalar
    methods.  Answers are bit-identical to calling :meth:`query` /
    :meth:`query_case` pair by pair.

    Examples
    --------
    >>> from repro.graph.generators import paper_example_graph
    >>> g = paper_example_graph()
    >>> idx = KReachIndex(g, k=3)
    >>> idx.query(g.vertex_id("b"), g.vertex_id("g"))
    True
    >>> idx.query(g.vertex_id("b"), g.vertex_id("i"))
    False
    """

    def __init__(
        self,
        graph: DiGraph,
        k: int | None,
        *,
        cover: frozenset[int] | None = None,
        cover_strategy: str = "degree",
        include_degree_at_least: int | None = None,
        compress_rows_at: int | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        if k is not None and k < 0:
            raise ValueError(f"k must be non-negative or None, got {k}")
        self.graph = graph
        self.k = k
        if cover is None:
            cover = cover_from_strategy(
                graph,
                cover_strategy,
                rng=rng,
                include_degree_at_least=include_degree_at_least,
            )
        else:
            cover = frozenset(int(v) for v in cover)
            if not is_vertex_cover(graph, cover):
                raise ValueError("provided vertex set is not a vertex cover")
        self.cover: frozenset[int] = cover
        # bytearray: fastest per-query membership flag in CPython.
        self._cover_flags = bytearray(graph.n)
        for v in cover:
            self._cover_flags[v] = 1
        # Index adjacency: cover vertex -> {cover vertex: quantized weight}.
        self._rows: dict[int, dict[int, int]] = {}
        # Pre-resolved query-time budgets (None = unbounded).
        self._b1_ok = k is None or k >= 1  # may a u == v handshake use k-1?
        self._b2_ok = k is None or k >= 2  # ... use k-2?
        if k is None:
            self._build_unbounded()
        else:
            self._build_khop()
        self.compress_rows_at = compress_rows_at
        if compress_rows_at is not None:
            self._rows = compress_rows(self._rows, graph.n, compress_rows_at)
        # Plain-list adjacency for the hot query loops.
        self._out_lists = graph.out_lists()
        self._in_lists = graph.in_lists()
        # Lazily-built vectorized lookup structures for the batch engine.
        self._keyed_rows: KeyedRowStore | None = None
        self._flags_np: np.ndarray | None = None

    @classmethod
    def from_parts(
        cls,
        graph: DiGraph,
        k: int | None,
        *,
        cover: frozenset[int],
        rows: dict[int, dict[int, int]],
        compress_rows_at: int | None = None,
    ) -> "KReachIndex":
        """Assemble an index from pre-computed parts without rebuilding.

        Used by the parallel builder (:mod:`repro.core.parallel`) and the
        on-disk loader (:mod:`repro.core.serialize`).  The caller is
        responsible for ``rows`` being exactly what Algorithm 1 would have
        produced for this ``(graph, k, cover)``.
        """
        self = object.__new__(cls)
        self.graph = graph
        self.k = k
        self.cover = frozenset(int(v) for v in cover)
        self._cover_flags = bytearray(graph.n)
        for v in self.cover:
            self._cover_flags[v] = 1
        self._rows = {int(u): dict(row) for u, row in rows.items()}
        self._b1_ok = k is None or k >= 1
        self._b2_ok = k is None or k >= 2
        self.compress_rows_at = compress_rows_at
        if compress_rows_at is not None:
            self._rows = compress_rows(self._rows, graph.n, compress_rows_at)
        self._out_lists = graph.out_lists()
        self._in_lists = graph.in_lists()
        self._keyed_rows = None
        self._flags_np = None
        return self

    # ------------------------------------------------------------------
    # Construction (Algorithm 1)
    # ------------------------------------------------------------------
    def _build_khop(self) -> None:
        """k-hop BFS from every cover vertex (Algorithm 1, line 5)."""
        g, k = self.graph, self.k
        assert k is not None
        floor = k - 2
        flags = self._cover_flags
        in_cover_np = np.frombuffer(bytes(flags), dtype=np.uint8).astype(bool)
        use_scalar = k <= _SCALAR_BFS_MAX_K
        for u in self.cover:
            row: dict[int, int] = {}
            if use_scalar:
                for v, d in bfs_distances_scalar(g, u, k=k).items():
                    if v != u and flags[v]:
                        row[v] = d if d > floor else floor
            else:
                dist = bfs_distances(g, u, k=k)
                hit = np.flatnonzero((dist != UNREACHED) & in_cover_np)
                for v in hit.tolist():
                    if v != u:
                        d = int(dist[v])
                        row[v] = d if d > floor else floor
            if row:
                self._rows[u] = row

    def _build_unbounded(self) -> None:
        """n-reach construction over the condensation's transitive closure.

        For ``k = ∞`` only reachability between cover vertices matters, so
        instead of |S| full BFS sweeps we compute the DAG transitive
        closure once (big-int bitmask OR-accumulation in reverse
        topological order) and expand it to cover pairs.
        """
        g = self.graph
        cond = condensation(g)
        comp = cond.component_of
        dag = cond.dag
        n_dag = dag.n

        members: dict[int, list[int]] = {}
        for u in self.cover:
            members.setdefault(int(comp[u]), []).append(u)
        cover_comp_mask = 0
        for c in members:
            cover_comp_mask |= 1 << c

        closure: list[int] = [0] * n_dag
        for c in range(n_dag):  # increasing id = reverse topological order
            acc = 0
            for child in dag.out_neighbors(c):
                child = int(child)
                acc |= closure[child] | (1 << child)
            closure[c] = acc

        for c, us in members.items():
            # Cover vertices in strictly-reachable components.
            reach: list[int] = []
            mask = closure[c] & cover_comp_mask
            while mask:
                low = mask & -mask
                reach.extend(members[low.bit_length() - 1])
                mask ^= low
            same = us if len(us) > 1 and not cond.is_trivial(c) else None
            for u in us:
                row = dict.fromkeys(reach, 0)
                if same is not None:
                    for v in same:
                        if v != u:
                            row[v] = 0
                if row:
                    self._rows[u] = row

    # ------------------------------------------------------------------
    # Query processing (Algorithm 2)
    # ------------------------------------------------------------------
    def query(self, s: int, t: int) -> bool:
        """Whether ``s →k t`` (``s → t`` for the n-reach mode)."""
        flags = self._cover_flags
        n = len(flags)
        if not 0 <= s < n or not 0 <= t < n:
            raise ValueError(f"query vertex out of range [0, {n})")
        if s == t:
            return True
        k = self.k
        if k == 0:
            return False
        rows = self._rows

        if flags[s]:
            if flags[t]:
                # Case 1: all stored weights are <= k by construction.
                row = rows.get(s)
                return row is not None and t in row
            # Case 2: all in-neighbors of t are covered.
            row = rows.get(s)
            b1_ok = self._b1_ok
            if k is None:
                for v in self._in_lists[t]:
                    if v == s or (row is not None and v in row):
                        return True
                return False
            budget = k - 1
            for v in self._in_lists[t]:
                if v == s:
                    if b1_ok:
                        return True
                elif row is not None:
                    w = row.get(v)
                    if w is not None and w <= budget:
                        return True
            return False

        if flags[t]:
            # Case 3: all out-neighbors of s are covered.
            if k is None:
                for u in self._out_lists[s]:
                    if u == t:
                        return True
                    row = rows.get(u)
                    if row is not None and t in row:
                        return True
                return False
            budget = k - 1
            for u in self._out_lists[s]:
                if u == t:
                    if self._b1_ok:
                        return True
                else:
                    row = rows.get(u)
                    if row is not None:
                        w = row.get(t)
                        if w is not None and w <= budget:
                            return True
            return False

        # Case 4: bridge an out-neighbor of s to an in-neighbor of t.
        preds = self._in_lists[t]
        if not preds:
            return False
        pred_set = set(preds)
        b2_ok = self._b2_ok
        if k is None:
            for u in self._out_lists[s]:
                if u in pred_set:
                    return True
                row = rows.get(u)
                if not row:
                    continue
                if len(row) < len(pred_set) and type(row) is dict:
                    if not pred_set.isdisjoint(row):
                        return True
                else:
                    for v in pred_set:
                        if v in row:
                            return True
            return False
        budget = k - 2
        for u in self._out_lists[s]:
            if b2_ok and u in pred_set:
                return True  # s -> u -> t
            row = rows.get(u)
            if not row:
                continue
            if len(row) < len(pred_set) and type(row) is dict:
                for v, w in row.items():
                    if w <= budget and v in pred_set:
                        return True
            else:
                for v in pred_set:
                    w = row.get(v)
                    if w is not None and w <= budget:
                        return True
        return False

    def reaches(self, s: int, t: int) -> bool:
        """Classic-reachability alias (meaningful for the n-reach mode)."""
        return self.query(s, t)

    def query_case(self, s: int, t: int) -> int:
        """Which of Algorithm 2's four cases the query (s, t) falls into."""
        flags = self._cover_flags
        if not 0 <= s < len(flags) or not 0 <= t < len(flags):
            raise ValueError("query vertex out of range")
        if flags[s]:
            return 1 if flags[t] else 2
        return 3 if flags[t] else 4

    # ------------------------------------------------------------------
    # Batch query processing (vectorized Algorithm 2)
    # ------------------------------------------------------------------
    def _keyed(self) -> KeyedRowStore:
        """The sorted-key view of the row store, built once on first use."""
        if self._keyed_rows is None:
            self._keyed_rows = KeyedRowStore(self._rows, self.graph.n)
        return self._keyed_rows

    def _flags(self) -> np.ndarray:
        """Cover-membership flags as a bool array (for vectorized dispatch)."""
        if self._flags_np is None:
            self._flags_np = np.frombuffer(
                bytes(self._cover_flags), dtype=np.uint8
            ).astype(bool)
        return self._flags_np

    def prepare_batch(self) -> "KReachIndex":
        """Build the batch engine's lookup structures now.

        They are otherwise built lazily on the first :meth:`query_batch`
        call (a one-time O(|E_I|) flatten-and-sort of the row store);
        serving setups and benchmarks call this to keep that cost out of
        the steady-state query path.  Returns ``self`` for chaining.
        """
        self._keyed()
        self._flags()
        return self

    def query_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query` over a batch of (s, t) pairs.

        Input is any ``(m, 2)`` integer array-like; output an ``(m,)``
        bool array with ``out[i] == self.query(pairs[i][0], pairs[i][1])``
        (see the class docstring for the full batch API contract).

        Algorithm 2's case split is evaluated over the cover-membership
        flags of all pairs at once.  Case-1 weights are gathered in one
        sorted-key binary search over the row store (WAH-compressed rows
        included), Cases 2/3 batch the neighbor probes over the CSR
        arrays, and Case 4 sweeps chunked ``outNei(s) × inNei(t)`` cross
        products — except for rare hub×hub pairs whose product alone
        would dominate memory; those take the scalar early-exit path.
        """
        g = self.graph
        s, t = as_pair_arrays(pairs, g.n)
        m = len(s)
        out = np.zeros(m, dtype=bool)
        if m == 0:
            return out
        np.equal(s, t, out=out)
        k = self.k
        if k == 0:
            return out
        store = self._keyed()
        flags = self._flags()
        s_in = flags[s]
        t_in = flags[t]
        undecided = ~out  # s != t
        b1 = UNBOUNDED_BUDGET if k is None else np.int64(k - 1)
        b2 = UNBOUNDED_BUDGET if k is None else np.int64(k - 2)

        # Case 1: one bulk weight gather; presence alone decides (stored
        # weights never exceed k by construction).
        sel = np.flatnonzero(undecided & s_in & t_in)
        if len(sel):
            out[sel] = store.lookup(s[sel], t[sel]) < MISSING_WEIGHT

        # Case 2: some in-neighbor v of t with v == s or ω(s, v) <= k-1.
        sel = np.flatnonzero(undecided & s_in & ~t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.in_indptr, g.in_indices, t[sel])
            src = s[sel][owner]
            hit = store.lookup(src, nbrs) <= b1
            if self._b1_ok:
                hit |= nbrs == src
            out[sel] = segment_any(hit, owner, len(sel))

        # Case 3: mirror of Case 2 over out-neighbors of s.
        sel = np.flatnonzero(undecided & ~s_in & t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.out_indptr, g.out_indices, s[sel])
            dst = t[sel][owner]
            hit = store.lookup(nbrs, dst) <= b1
            if self._b1_ok:
                hit |= nbrs == dst
            out[sel] = segment_any(hit, owner, len(sel))

        # Case 4: bridge outNei(s) × inNei(t) through the index.
        sel = np.flatnonzero(undecided & ~s_in & ~t_in)
        if len(sel):
            out[sel] = self._case4_batch(store, s[sel], t[sel], b2)
        return out

    def _case4_batch(
        self, store: KeyedRowStore, s: np.ndarray, t: np.ndarray, budget: np.int64
    ) -> np.ndarray:
        """Case-4 verdicts for aligned uncovered (s, t) arrays."""
        res = np.zeros(len(s), dtype=bool)
        big, chunks = plan_cross_products(self.graph, s, t)
        for sub, u, v, owner in chunks:
            hit = store.lookup(u, v) <= budget
            if self._b2_ok:
                hit |= u == v  # the s -> u -> t handshake
            res[sub] |= segment_any(hit, owner, len(sub))
        for j in big.tolist():  # hub×hub pairs: scalar path short-circuits
            res[j] = self.query(int(s[j]), int(t[j]))
        return res

    def query_case_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query_case`: an ``(m,)`` uint8 array of 1–4."""
        s, t = as_pair_arrays(pairs, self.graph.n)
        flags = self._flags()
        return case_codes(flags[s], flags[t])

    def contains(self, v: int) -> bool:
        """Whether ``v`` is in the index's vertex cover."""
        return bool(self._cover_flags[v])

    # ------------------------------------------------------------------
    # Introspection & storage model
    # ------------------------------------------------------------------
    @property
    def cover_size(self) -> int:
        """``|V_I|`` — the size of the vertex cover."""
        return len(self.cover)

    @property
    def edge_count(self) -> int:
        """``|E_I|`` — the number of index edges."""
        return sum(len(row) for row in self._rows.values())

    def weight(self, u: int, v: int) -> int | None:
        """The stored weight ``ω_I((u, v))``, or None if the edge is absent."""
        row = self._rows.get(u)
        return None if row is None else row.get(v)

    def weighted_edges(self) -> list[tuple[int, int, int]]:
        """All index edges as sorted ``(u, v, weight)`` triples."""
        return sorted(
            (u, v, w) for u, row in self._rows.items() for v, w in row.items()
        )

    def weight_bits(self) -> int:
        """Bits per stored edge weight.

        §4.3: a fixed-k index needs only 2 bits (three values).  The
        n-reach mode stores no distance information at all, so 0 bits.
        """
        return 2 if self.k is not None else 0

    def storage_bytes(self) -> int:
        """Modeled on-disk size of the index (§4.3 storage scheme).

        Plain rows: CSR over the cover — 4-byte ids for the cover members
        and edge targets, 4-byte offsets, a packed 2-bit weight array.
        Compressed rows: their WAH words.  Plus an n-bit cover-membership
        bitmap for the O(1) case dispatch.
        """
        n_i = self.cover_size
        plain_edges = 0
        compressed_bytes = 0
        for row in self._rows.values():
            if type(row) is dict:
                plain_edges += len(row)
            else:
                compressed_bytes += row.storage_bytes()
        id_bytes = 4 * n_i  # cover-vertex id table
        indptr_bytes = 4 * (n_i + 1)
        indices_bytes = 4 * plain_edges
        weight_bytes = (plain_edges * self.weight_bits() + 7) // 8
        bitmap_bytes = (self.graph.n + 7) // 8
        return (
            id_bytes
            + indptr_bytes
            + indices_bytes
            + weight_bytes
            + compressed_bytes
            + bitmap_bytes
        )

    def packed_weights(self) -> PackedIntArray:
        """The edge weights packed at 2 bits each (0 ↦ k-2, 1 ↦ k-1, 2 ↦ k).

        This is the §4.3 physical encoding; provided for inspection and to
        keep the storage model honest.  Only defined for finite ``k``.
        """
        if self.k is None:
            raise ValueError("n-reach stores no weights")
        floor = self.k - 2
        values = [w - floor for _, _, w in self.weighted_edges()]
        return PackedIntArray.from_values(values, bits=2)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = "inf" if self.k is None else self.k
        return (
            f"KReachIndex(k={k}, |V_I|={self.cover_size}, |E_I|={self.edge_count})"
        )
