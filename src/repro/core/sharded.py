"""Scatter-gather serving over a sharded manifest.

:class:`ShardedQueryServer` is the multi-shard sibling of
:class:`~repro.core.serve.QueryServer`: it opens a
:func:`~repro.core.serialize.save_sharded` directory, runs one worker
pool per shard (process pools by default, thread pools on the native
tier), and keeps the single-server contract intact —
``submit``/``collect`` tickets, ``timeout=``/``deadline=`` bounds,
verdicts reassembled in input order, and answers **bit-identical** to
the unsharded index.

Scatter: :meth:`submit` routes every ``(s, t)`` pair to its owning
shard (see :meth:`~repro.core.partition.ShardedKReach.route`) and
enqueues one local-id sub-batch per touched shard — all pools compute
concurrently.  Cross-shard pairs never reach a pool: the parent answers
them directly from the memory-mapped portal tables
(:meth:`~repro.core.partition.ShardedKReach.stitch`), which is a few
vectorized row operations per batch.  Gather: :meth:`collect` drains
each sub-ticket into its input positions; a sub-collect that times out
leaves the whole ticket collectable, exactly like the single-pool
deadline contract.  Worker crashes, hangs, and restarts stay the
responsibility of the per-shard pools and their supervision; this layer
adds no new failure modes, only fan-out.
"""

from __future__ import annotations

import os

import numpy as np

from repro.core.batch import as_pair_arrays
from repro.core.partition import ShardedKReach
from repro.core.serialize import load_sharded
from repro.core.serve import (
    QueryServer,
    QueryTimeout,
    ThreadQueryServer,
    UnknownTicketError,
    _merge_deadlines,
    _resolve_deadline,
)

__all__ = ["ShardedQueryServer"]


class _ShardTicket:
    """One client batch fanned out across shard pools."""

    __slots__ = ("id", "out", "parts", "deadline")

    def __init__(self, ticket_id: int, size: int, deadline: float | None) -> None:
        self.id = ticket_id
        self.out = np.zeros(size, dtype=bool)
        # (shard_id, sub_ticket, input positions) still awaiting collect.
        self.parts: list[tuple[int, int, np.ndarray]] = []
        self.deadline = deadline


class ShardedQueryServer:
    """Route, scatter, and gather batches over per-shard worker pools.

    Parameters
    ----------
    manifest_dir:
        A directory written by :func:`~repro.core.serialize.save_sharded`.
    workers:
        Pool size **per shard** — total parallelism is
        ``num_shards x workers``.
    backend:
        ``'process'`` (default) builds one supervised
        :class:`QueryServer` per shard; ``'thread'`` builds
        :class:`ThreadQueryServer` pools (zero IPC — the right choice on
        the compiled-kernel tier, or when shards are the only
        parallelism wanted).
    engine:
        Default engine for the pools; per-call ``engine=`` overrides.
    server_kwargs:
        Extra keyword arguments forwarded to every pool constructor
        (e.g. ``hang_timeout=``, ``max_restarts=`` for the process
        backend).
    """

    def __init__(
        self,
        manifest_dir: str | os.PathLike,
        *,
        workers: int = 1,
        backend: str = "process",
        engine: str = "auto",
        verify: bool = False,
        server_kwargs: dict | None = None,
    ) -> None:
        if backend not in ("process", "thread"):
            raise ValueError(
                f"backend must be 'process' or 'thread', got {backend!r}"
            )
        manifest = load_sharded(manifest_dir, verify=verify)
        self._sharded = ShardedKReach.from_manifest(manifest)
        self._n = self._sharded.n
        self._closed = False
        self._next_ticket = 0
        self._tickets: dict[int, _ShardTicket] = {}
        self.pairs_served = 0
        self.cross_pairs = 0
        kwargs = dict(server_kwargs or {})
        kwargs.setdefault("workers", workers)
        kwargs.setdefault("engine", engine)
        cls = QueryServer if backend == "process" else ThreadQueryServer
        self.servers: list = []
        try:
            for path in manifest.shard_paths:
                self.servers.append(cls(path, **kwargs))
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------ facts

    @property
    def n(self) -> int:
        return self._n

    @property
    def k(self) -> int | None:
        return self._sharded.k

    @property
    def num_shards(self) -> int:
        return self._sharded.num_shards

    @property
    def sharded(self) -> ShardedKReach:
        """The routing/stitch view (also answers in-process)."""
        return self._sharded

    # ---------------------------------------------------------- serving

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("server is closed")

    def submit(
        self,
        pairs,
        *,
        engine: str | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> int:
        """Scatter a batch across the shard pools; returns a ticket.

        Cross-shard pairs are answered immediately from the portal
        tables; everything else is enqueued on its owning shard's pool
        with the ticket's deadline attached, so all pools pipeline the
        batch concurrently.
        """
        self._check_open()
        s, t = as_pair_arrays(pairs, self._n)
        bound = _resolve_deadline(timeout, deadline)
        ticket = _ShardTicket(self._next_ticket, len(s), bound)
        self._next_ticket += 1
        owner = self._sharded.route(s, t) if len(s) else np.empty(0, np.int64)
        for i, (server, shard) in enumerate(
            zip(self.servers, self._sharded.shards)
        ):
            positions = np.flatnonzero(owner == i)
            if not len(positions):
                continue
            local = np.stack(
                [
                    shard.to_local(s[positions]),
                    shard.to_local(t[positions]),
                ],
                axis=1,
            )
            sub = server.submit(local, engine=engine, deadline=bound)
            ticket.parts.append((i, sub, positions))
        cross = np.flatnonzero(owner < 0)
        if len(cross):
            ticket.out[cross] = self._sharded.stitch(s[cross], t[cross])
            self.cross_pairs += len(cross)
        self.pairs_served += len(s)
        self._tickets[ticket.id] = ticket
        return ticket.id

    def collect(
        self,
        ticket_id: int,
        *,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Gather a ticket's verdicts in input order.

        Sub-tickets already gathered stay gathered across a
        :class:`QueryTimeout` — the ticket remains collectable and a
        later call only waits on the shards still outstanding.
        """
        self._check_open()
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise UnknownTicketError(ticket_id)
        bound = _merge_deadlines(
            ticket.deadline, _resolve_deadline(timeout, deadline)
        )
        while ticket.parts:
            shard_id, sub, positions = ticket.parts[-1]
            try:
                verdicts = self.servers[shard_id].collect(sub, deadline=bound)
            except QueryTimeout as exc:
                raise QueryTimeout(ticket_id, exc.waited) from None
            ticket.out[positions] = verdicts
            ticket.parts.pop()
        del self._tickets[ticket_id]
        return ticket.out

    def query_batch(
        self,
        pairs,
        *,
        engine: str | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Scatter + gather in one call."""
        ticket = self.submit(pairs, engine=engine, timeout=timeout, deadline=deadline)
        return self.collect(ticket)

    # ------------------------------------------------------- management

    def restart_worker(self, shard_id: int, worker_id: int) -> None:
        """Kill-and-revive one worker of one shard pool (process backend)."""
        self.servers[shard_id].restart_worker(worker_id)

    def stats(self) -> dict:
        """Aggregate counters plus the per-shard pool breakdown."""
        per_shard = [server.stats() for server in self.servers]
        return {
            "num_shards": self.num_shards,
            "pairs_served": self.pairs_served,
            "cross_pairs": self.cross_pairs,
            "outstanding_tickets": len(self._tickets),
            "boundary_size": int(len(self._sharded.boundary)),
            "restarts": sum(s.get("restarts", 0) for s in per_shard),
            "timeouts": sum(s.get("timeouts", 0) for s in per_shard),
            "health": (
                "degraded"
                if any(s["health"] != "ok" for s in per_shard)
                else "ok"
            ),
            "shards": per_shard,
        }

    def close(self) -> None:
        """Close every shard pool.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for server in getattr(self, "servers", []):
            try:
                server.close()
            except Exception:
                pass
        self._tickets.clear()

    def __enter__(self) -> "ShardedQueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.close()
        except Exception:
            pass
