"""Hub-aware graph partitioning for the sharded serving tier.

One v5 file behind one :class:`~repro.core.serve.QueryServer` pool is
one box.  To scale past it, :func:`partition_kreach` splits the index
into ``N`` independently servable shards whose answers are **bit
identical** to the single global index, by construction rather than by
hope:

* **SCC condensation first.**  Components are the paper's standard
  preprocessing unit (§3.1); keeping each SCC whole means a shard never
  splits a cycle, and the condensation DAG gives cheap component-level
  edge counts for balanced-connectivity assignment.

* **A hub boundary set replicated everywhere.**  Small-world graphs are
  dominated by celebrity vertices; cutting on them would drag every
  query cross-shard.  Instead the top-degree hubs — plus a greedy cover
  of whatever cross-shard edges remain — form a boundary set ``B``
  copied into *every* shard.  ``B`` separates shard interiors: any edge
  between two different-shard interior vertices has an endpoint in
  ``B`` (it was added precisely to cover that edge), so the induced
  subgraph on ``interior_i ∪ B`` holds the **complete** adjacency of
  every interior vertex.

* **The global index, sliced.**  One global :class:`KReachIndex` is
  built with ``B`` forced into its vertex cover, then its weighted
  index graph is restricted to each shard's vertex set.  Algorithm 2
  only ever enumerates the adjacency of *non-cover* endpoints — all of
  which are interior, hence complete in-shard — and only ever looks up
  index-edge weights between cover vertices, which the slice carries
  verbatim from the global build.  Every same-shard four-case
  evaluation is therefore literally the computation the global index
  would have performed.

* **Portal tables for cross-shard pairs.**  A pair with endpoints
  interior to two different shards is answered by min-plus stitching:
  ``dist(s,t) = min over (b, b') in B×B of exit_i(s,b) +
  closure(b,b') + entry_j(b',t)`` — exact because any s→t walk can be
  split at its first and last boundary visit, with the prefix inside
  ``interior_i ∪ {b}`` and the suffix inside ``interior_j ∪ {b'}``.
  Distances are clipped at ``k+1`` (sums then compare against ``k``
  exactly), and the ``exit × closure`` half is precomposed per shard so
  query-time stitching is one ``(m, |B|)`` add-min.  For ``k=None``
  the clipped tables are 0/1 reachability rows packed into uint64
  bitsets and the verdict is one :func:`repro.bitsets.ops.and_any`
  join — the same kernel the batch engine uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.bitsets import ops
from repro.core.batch import as_pair_arrays
from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.core.vertex_cover import vertex_cover_2approx
from repro.graph.digraph import DiGraph
from repro.graph.scc import condensation
from repro.graph.traversal import bfs_distances_blocked

__all__ = [
    "Shard",
    "ShardedKReach",
    "partition_kreach",
    "default_hub_count",
]


def default_hub_count(n: int) -> int:
    """Boundary hub budget when the caller does not pick one.

    ``O(sqrt(n))`` hubs cover the heavy tail of a small-world degree
    distribution without replicating a meaningful fraction of the graph
    into every shard.
    """
    return max(4, int(np.ceil(np.sqrt(max(n, 1)))))


def _clip_cap(k: int | None) -> int:
    """Stored-distance ceiling: ``cap`` means "no path within budget".

    Finite ``k``: distances are clipped at ``k+1`` — for any split of a
    path into clipped parts, ``sum <= k`` iff the true sum is ``<= k``
    (a part exceeding ``k`` forces both sums past ``k``; otherwise every
    part is exact).  ``k=None``: only reachability matters, so finite
    distances collapse to 0 and ``cap=1`` marks unreachable; the stitch
    threshold becomes 0.
    """
    return 1 if k is None else k + 1


def _threshold(k: int | None) -> int:
    return 0 if k is None else k


def _clip(dist: np.ndarray, k: int | None) -> np.ndarray:
    if k is None:
        return np.zeros(len(dist), dtype=np.int32)
    return np.minimum(dist, k + 1).astype(np.int32)


def _assign_components(
    g: DiGraph, comp_of: np.ndarray, sizes: np.ndarray, num_shards: int, balance: float
) -> np.ndarray:
    """Greedy balanced-connectivity assignment of SCCs to shards.

    Components are placed largest-first onto the shard they share the
    most edges with (affinity), subject to a ``balance`` cap on shard
    size; ties and affinity-free components go to the least-loaded
    shard.  Returns ``shard_of_component``.
    """
    num_comps = len(sizes)
    if num_shards == 1:
        return np.zeros(num_comps, dtype=np.int64)
    edges = g.edge_array()
    cu = comp_of[edges[:, 0]]
    cv = comp_of[edges[:, 1]]
    keep = cu != cv
    lo = np.minimum(cu[keep], cv[keep])
    hi = np.maximum(cu[keep], cv[keep])
    key, weight = np.unique(lo * num_comps + hi, return_counts=True)
    heads = np.concatenate([key // num_comps, key % num_comps])
    tails = np.concatenate([key % num_comps, key // num_comps])
    weight = np.concatenate([weight, weight])
    order = np.argsort(heads, kind="stable")
    heads, tails, weight = heads[order], tails[order], weight[order]
    indptr = np.zeros(num_comps + 1, dtype=np.int64)
    indptr[1:] = np.cumsum(np.bincount(heads, minlength=num_comps))

    cap = int(np.ceil(balance * g.n / num_shards))
    load = np.zeros(num_shards, dtype=np.int64)
    affinity = np.zeros((num_comps, num_shards), dtype=np.float64)
    shard_of_comp = np.full(num_comps, -1, dtype=np.int64)
    for c in np.argsort(-sizes, kind="stable").tolist():
        fits = load + sizes[c] <= cap
        if fits.any():
            candidates = np.flatnonzero(fits)
            # Highest affinity wins; break ties toward the emptier shard.
            ranking = np.lexsort((load[candidates], -affinity[c, candidates]))
            best = int(candidates[ranking[0]])
        else:  # one component bigger than the cap — someone must take it
            best = int(np.argmin(load))
        shard_of_comp[c] = best
        load[best] += sizes[c]
        span = slice(int(indptr[c]), int(indptr[c + 1]))
        affinity[tails[span], best] += weight[span]
    return shard_of_comp


def _boundary_mask(
    g: DiGraph, shard_of_vertex: np.ndarray, hub_count: int
) -> np.ndarray:
    """Hubs + a greedy cover of the remaining cross-shard edges.

    After seeding with the ``hub_count`` highest-degree vertices, every
    edge whose endpoints still sit in two different shards gets its
    higher-degree endpoint promoted into the boundary.  The result
    separates shard interiors: no edge joins two interior vertices of
    different shards.
    """
    degrees = g.degrees()
    boundary = np.zeros(g.n, dtype=bool)
    if hub_count > 0 and g.n:
        hubs = np.argpartition(-degrees, min(hub_count, g.n) - 1)[:hub_count]
        boundary[hubs] = True
    edges = g.edge_array()
    if len(edges):
        u64 = edges[:, 0].astype(np.int64)
        v64 = edges[:, 1].astype(np.int64)
        cross = shard_of_vertex[u64] != shard_of_vertex[v64]
        for i in np.flatnonzero(cross & ~boundary[u64] & ~boundary[v64]).tolist():
            u, v = int(u64[i]), int(v64[i])
            if boundary[u] or boundary[v]:
                continue  # an earlier promotion already covered this edge
            pick = u if (int(degrees[u]), u) >= (int(degrees[v]), v) else v
            boundary[pick] = True
    return boundary


def _portal_matrix(
    sub: DiGraph, boundary_local: np.ndarray, k: int | None, direction: str
) -> np.ndarray:
    """Clipped distance matrix ``(|B|, n_local)`` from/into the boundary.

    ``direction='out'`` gives entry budgets (boundary -> vertex);
    ``direction='in'`` gives exit budgets transposed (vertex -> boundary
    read as ``[b, v]``).
    """
    cap = _clip_cap(k)
    mat = np.full((len(boundary_local), sub.n), cap, dtype=np.int32)
    if len(boundary_local):
        src, dst, dist = bfs_distances_blocked(
            sub, boundary_local, k=k, direction=direction
        )
        mat[np.searchsorted(boundary_local, src), dst] = _clip(dist, k)
        mat[np.arange(len(boundary_local)), boundary_local] = 0
    return mat


def _closure_matrix(g: DiGraph, boundary: np.ndarray, k: int | None) -> np.ndarray:
    """Clipped boundary-to-boundary distances over the *global* graph."""
    cap = _clip_cap(k)
    size = len(boundary)
    mat = np.full((size, size), cap, dtype=np.int32)
    if size:
        emit = np.zeros(g.n, dtype=bool)
        emit[boundary] = True
        src, dst, dist = bfs_distances_blocked(g, boundary, k=k, emit=emit)
        mat[np.searchsorted(boundary, src), np.searchsorted(boundary, dst)] = _clip(
            dist, k
        )
        np.fill_diagonal(mat, 0)
    return mat


def _compose_exit(
    exit_by_boundary: np.ndarray, closure: np.ndarray, cap: int
) -> np.ndarray:
    """Min-plus precompose ``exit × closure`` -> ``(n_local, |B|)``.

    ``out[v, b'] = clip(min over b of exit(v, b) + closure(b, b'))`` —
    valid to precompose (and re-clip) by min-plus associativity and the
    monotonicity of clipping, so the query-time stitch is a single
    ``(m, |B|)`` add-min against the target shard's entry table.
    """
    num_b, n_local = exit_by_boundary.shape
    out = np.full((n_local, num_b), cap, dtype=np.int32)
    if num_b == 0 or n_local == 0:
        return out
    exits = exit_by_boundary.T  # (n_local, |B|)
    # (chunk, |B|, |B|) workspace, bounded ~16 MB.
    chunk = max(1, (1 << 22) // max(1, num_b * num_b))
    for start in range(0, n_local, chunk):
        block = exits[start : start + chunk]
        combined = block[:, :, None] + closure[None, :, :]
        np.minimum(combined.min(axis=1), cap, out=out[start : start + chunk])
    return out


@dataclass
class Shard:
    """One independently servable slice of a :class:`ShardedKReach`.

    ``vertex_map`` is the ascending global-id array of the shard's
    vertices (its interior plus the full boundary set); ``index`` is a
    complete :class:`KReachIndex` over the induced subgraph in local
    ids.  ``entry[b, v]`` / ``exit_closure[v, b']`` are the clipped
    portal budgets used by the cross-shard stitch.
    """

    index: KReachIndex
    vertex_map: np.ndarray
    entry: np.ndarray  # (|B|, n_local) int32
    exit_closure: np.ndarray  # (n_local, |B|) int32
    _exit_bits: np.ndarray | None = field(default=None, repr=False)
    _entry_bits: np.ndarray | None = field(default=None, repr=False)

    @property
    def n(self) -> int:
        return len(self.vertex_map)

    def to_local(self, vertices: np.ndarray) -> np.ndarray:
        """Map global vertex ids into this shard's local id space."""
        return np.searchsorted(self.vertex_map, vertices)

    def exit_bits(self) -> np.ndarray:
        """Packed ``exit_closure == 0`` rows (n-reach stitch, lazy)."""
        if self._exit_bits is None:
            rows, cols = np.nonzero(self.exit_closure == 0)
            self._exit_bits = ops.bit_matrix(
                rows, cols, self.exit_closure.shape[0], self.exit_closure.shape[1]
            )
        return self._exit_bits

    def entry_bits(self) -> np.ndarray:
        """Packed ``entry[:, v] == 0`` rows (n-reach stitch, lazy)."""
        if self._entry_bits is None:
            cols, rows = np.nonzero(self.entry == 0)
            self._entry_bits = ops.bit_matrix(
                rows, cols, self.entry.shape[1], self.entry.shape[0]
            )
        return self._entry_bits


class ShardedKReach:
    """A partitioned k-reach index answering exactly like the global one.

    Construct with :func:`partition_kreach` (or rehydrate a saved
    manifest via :meth:`from_manifest`).  :meth:`query_batch` serves
    in-process; :class:`~repro.core.sharded.ShardedQueryServer` runs the
    same routing over per-shard worker pools.
    """

    def __init__(
        self,
        *,
        n: int,
        k: int | None,
        boundary: np.ndarray,
        shard_of: np.ndarray,
        closure: np.ndarray,
        shards: list[Shard],
    ) -> None:
        self.n = int(n)
        self.k = k
        self.boundary = np.asarray(boundary, dtype=np.int64)
        self.shard_of = np.asarray(shard_of, dtype=np.int64)
        self.closure = closure
        self.shards = shards

    @property
    def num_shards(self) -> int:
        return len(self.shards)

    @classmethod
    def from_manifest(cls, manifest) -> "ShardedKReach":
        """Assemble from a :func:`repro.core.serialize.load_sharded` result."""
        shards = [
            Shard(
                index=index,
                vertex_map=np.asarray(vmap, dtype=np.int64),
                entry=np.asarray(entry, dtype=np.int32),
                exit_closure=np.asarray(exitc, dtype=np.int32),
            )
            for index, vmap, entry, exitc in zip(
                manifest.indexes,
                manifest.vertex_maps,
                manifest.entries,
                manifest.exit_closures,
            )
        ]
        return cls(
            n=manifest.n,
            k=manifest.k,
            boundary=np.asarray(manifest.boundary, dtype=np.int64),
            shard_of=np.asarray(manifest.shard_of, dtype=np.int64),
            closure=np.asarray(manifest.closure, dtype=np.int32),
            shards=shards,
        )

    # ----------------------------------------------------------- routing

    def route(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Owning shard per pair; ``-1`` marks cross-shard stitch pairs.

        Boundary vertices live in every shard, so a pair with a boundary
        endpoint is answered wherever its other endpoint resides;
        boundary×boundary pairs hash across shards to spread celebrity
        load.  Only interior×interior pairs from two different shards
        need the portal stitch.
        """
        owner = np.empty(len(s), dtype=np.int64)
        s_home = self.shard_of[s]
        t_home = self.shard_of[t]
        s_b = s_home < 0
        t_b = t_home < 0
        both = s_b & t_b
        owner[both] = (s[both] + t[both]) % self.num_shards
        only_s = s_b & ~t_b
        owner[only_s] = t_home[only_s]
        only_t = t_b & ~s_b
        owner[only_t] = s_home[only_t]
        neither = ~s_b & ~t_b
        same = neither & (s_home == t_home)
        owner[same] = s_home[same]
        owner[neither & (s_home != t_home)] = -1
        return owner

    def stitch(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Exact verdicts for cross-shard pairs via the portal tables."""
        out = np.zeros(len(s), dtype=bool)
        if not len(s) or not len(self.boundary):
            return out  # no portals => shard interiors are disconnected
        combo = self.shard_of[s] * self.num_shards + self.shard_of[t]
        for key in np.unique(combo):
            sel = np.flatnonzero(combo == key)
            source_shard = self.shards[int(key) // self.num_shards]
            target_shard = self.shards[int(key) % self.num_shards]
            local_s = source_shard.to_local(s[sel])
            local_t = target_shard.to_local(t[sel])
            if self.k is None:
                out[sel] = ops.and_any(
                    source_shard.exit_bits()[local_s],
                    target_shard.entry_bits()[local_t],
                )
            else:
                budgets = (
                    source_shard.exit_closure[local_s]
                    + target_shard.entry[:, local_t].T
                )
                out[sel] = budgets.min(axis=1) <= self.k
        return out

    def query_batch(self, pairs, *, engine: str = "auto") -> np.ndarray:
        """Batch verdicts in input order, bit-identical to the global index."""
        s, t = as_pair_arrays(pairs, self.n)
        out = np.zeros(len(s), dtype=bool)
        owner = self.route(s, t)
        for i, shard in enumerate(self.shards):
            sel = np.flatnonzero(owner == i)
            if len(sel):
                local = np.stack(
                    [shard.to_local(s[sel]), shard.to_local(t[sel])], axis=1
                )
                out[sel] = shard.index.query_batch(local, engine=engine)
        cross = np.flatnonzero(owner < 0)
        if len(cross):
            out[cross] = self.stitch(s[cross], t[cross])
        return out

    def summary(self) -> dict:
        """Partition shape facts for benches and the metrics endpoint."""
        return {
            "n": self.n,
            "k": self.k,
            "num_shards": self.num_shards,
            "boundary_size": int(len(self.boundary)),
            "shard_sizes": [shard.n for shard in self.shards],
            "interior_sizes": [
                shard.n - len(self.boundary) for shard in self.shards
            ],
        }


def partition_kreach(
    graph: DiGraph,
    k: int | None,
    num_shards: int,
    *,
    hub_count: int | None = None,
    cover: frozenset[int] | None = None,
    balance: float = 1.25,
) -> ShardedKReach:
    """Partition ``graph`` into ``num_shards`` exact k-reach shards.

    Parameters
    ----------
    hub_count:
        Top-degree vertices seeded into the replicated boundary set
        (default ``O(sqrt(n))``).  More hubs shrink the cross-shard
        stitch fraction at the cost of per-shard size.
    cover:
        Optional base vertex cover; the boundary set is always unioned
        in (a superset of a cover is still a cover), which is what keeps
        Algorithm 2 from ever enumerating a boundary vertex's shard-local
        — possibly incomplete — adjacency.
    balance:
        Shard-size cap as a multiple of the ideal ``n / num_shards``.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    cond = condensation(graph)
    shard_of_comp = _assign_components(
        graph, cond.component_of, cond.component_sizes, num_shards, balance
    )
    shard_of = shard_of_comp[cond.component_of]
    hubs = default_hub_count(graph.n) if hub_count is None else hub_count
    boundary_flags = (
        _boundary_mask(graph, shard_of, hubs)
        if num_shards > 1
        else np.zeros(graph.n, dtype=bool)
    )
    boundary = np.flatnonzero(boundary_flags).astype(np.int64)
    shard_of = shard_of.copy()
    shard_of[boundary_flags] = -1

    base_cover = vertex_cover_2approx(graph) if cover is None else cover
    full_cover = frozenset(base_cover) | set(boundary.tolist())
    global_index = KReachIndex(graph, k, cover=full_cover)
    closure = _closure_matrix(graph, boundary, k)
    cap = _clip_cap(k)

    heads, targets, weights = global_index.index_graph.triples()
    cover_flags = np.zeros(graph.n, dtype=bool)
    cover_flags[list(full_cover)] = True

    shards: list[Shard] = []
    for i in range(num_shards):
        vertex_map = np.flatnonzero((shard_of == i) | boundary_flags).astype(
            np.int64
        )
        sub, _ = graph.subgraph(vertex_map)
        member = np.zeros(graph.n, dtype=bool)
        member[vertex_map] = True
        keep = member[heads] & member[targets]
        local_cover = np.searchsorted(
            vertex_map, np.flatnonzero(cover_flags & member)
        )
        sliced = IndexGraph.for_kreach(
            len(vertex_map),
            local_cover,
            np.searchsorted(vertex_map, heads[keep]),
            np.searchsorted(vertex_map, targets[keep]),
            weights[keep],
            k,
        )
        index = KReachIndex.from_index_graph(
            sub,
            k,
            cover=frozenset(int(v) for v in local_cover),
            index_graph=sliced,
        )
        boundary_local = np.searchsorted(vertex_map, boundary)
        entry = _portal_matrix(sub, boundary_local, k, "out")
        exit_by_boundary = _portal_matrix(sub, boundary_local, k, "in")
        shards.append(
            Shard(
                index=index,
                vertex_map=vertex_map,
                entry=entry,
                exit_closure=_compose_exit(exit_by_boundary, closure, cap),
            )
        )
    return ShardedKReach(
        n=graph.n,
        k=k,
        boundary=boundary,
        shard_of=shard_of,
        closure=closure,
        shards=shards,
    )
