"""Incrementally maintained k-reach index.

The paper builds its index once over a static graph; its related work
(Bramandia et al. [3], on incremental 2-hop maintenance) raises the
obvious follow-up — keeping the index consistent as the graph changes.
:class:`DynamicKReachIndex` answers that for k-reach:

* **Edge insertion** is cheap, because every quantity the index stores is
  a *minimum*: distances only shrink.  Inserting ``(u, v)``:

  1. repairs the vertex-cover invariant — if neither endpoint is covered,
     the higher-degree endpoint joins the cover (§4.3 spirit), gaining a
     forward row and backward in-links from a pair of bounded BFS sweeps;
  2. relaxes cover-pair weights through the new edge:
     ``d(x, y) ≤ d(x, u) + 1 + d(v, y)``, evaluated over the backward
     ``(k-1)``-ball of ``u`` and the forward ``(k-1)``-ball of ``v``
     restricted to cover vertices.

* **Edge deletion** is the hard direction (distances can grow, and stored
  minima cannot be "un-relaxed"), so it falls back to partial
  recomputation: every cover vertex that could reach ``u`` within ``k-1``
  hops rebuilds its row with a fresh bounded BFS.  The cover itself stays
  valid under deletions (removing edges never uncovers one).

The class keeps its own mutable adjacency (the static
:class:`~repro.graph.digraph.DiGraph` is by design immutable) and its own
mutable weight store — vertex-indexed row dicts, the update-friendly
mirror of the static :class:`~repro.core.index_graph.IndexGraph` (row
replacement is one list-slot swap; there is no outer hash layer) — and
answers queries with the same four-case Algorithm 2.  Equivalence
against a freshly built
:class:`~repro.core.kreach.KReachIndex` after arbitrary update sequences
is the central test invariant, and :meth:`DynamicKReachIndex.freeze`
emits exactly such a static index through the array path once a burst of
updates settles.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph

__all__ = ["DynamicKReachIndex"]


class DynamicKReachIndex:
    """k-reach with ``insert_edge`` / ``delete_edge`` maintenance.

    Parameters
    ----------
    graph:
        Initial graph; copied into mutable adjacency.
    k:
        Hop budget (``None`` for the classic-reachability mode).

    Examples
    --------
    >>> g = DiGraph(4, [(0, 1), (2, 3)])
    >>> idx = DynamicKReachIndex(g, k=3)
    >>> idx.query(0, 3)
    False
    >>> idx.insert_edge(1, 2)
    >>> idx.query(0, 3)
    True
    >>> idx.delete_edge(1, 2)
    >>> idx.query(0, 3)
    False
    """

    def __init__(self, graph: DiGraph, k: int | None) -> None:
        if k is not None and k < 0:
            raise ValueError(f"k must be non-negative or None, got {k}")
        self.n = graph.n
        self.k = k
        self._out: list[set[int]] = [set(row) for row in graph.out_lists()]
        self._in: list[set[int]] = [set(row) for row in graph.in_lists()]
        base = KReachIndex(graph, k)
        self._cover: set[int] = set(base.cover)
        # Mutable weight store: vertex-indexed row dicts (None = no row).
        # Row replacement — the deletion hot path — swaps one list slot
        # for a freshly built dict; there is no outer hash layer to keep
        # consistent.  Seeded straight from the static index's arrays.
        self._rows: list[dict[int, int] | None] = [None] * graph.n
        for u, row in base.index_graph.rows_dict().items():
            self._rows[u] = row

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------
    def _quantize(self, dist: int) -> int:
        if self.k is None:
            return 0
        floor = self.k - 2
        return dist if dist > floor else floor

    def _bounded_ball(
        self, source: int, limit: int | None, adjacency: list[set[int]]
    ) -> dict[int, int]:
        """BFS distances over the mutable adjacency, ``limit`` hops deep."""
        dist = {source: 0}
        queue: deque[int] = deque([source])
        while queue:
            x = queue.popleft()
            d = dist[x]
            if limit is not None and d >= limit:
                continue
            for y in adjacency[x]:
                if y not in dist:
                    dist[y] = d + 1
                    queue.append(y)
        return dist

    def _set_link(self, x: int, y: int, dist: int) -> None:
        """Relax the stored weight of (x, y) to at most quantize(dist)."""
        if x == y:
            return
        if self.k is not None and dist > self.k:
            return
        w = self._quantize(dist)
        row = self._rows[x]
        if row is None:
            row = self._rows[x] = {}
        old = row.get(y)
        if old is None or w < old:
            row[y] = w

    def _rebuild_row(self, x: int) -> None:
        """Recompute cover vertex ``x``'s row with a fresh bounded BFS."""
        cover = self._cover
        ball = self._bounded_ball(x, self.k, self._out)
        ball.pop(x, None)
        row: dict[int, int] = {}
        if self.k is None:  # quantization inlined: this loop is the
            for v in ball:  # maintenance hot path (millions of targets)
                if v in cover:
                    row[v] = 0
        else:
            floor = self.k - 2
            for v, d in ball.items():
                if v in cover:
                    row[v] = d if d > floor else floor
        self._rows[x] = row or None

    def _add_to_cover(self, w: int) -> None:
        """Grow the cover by ``w``: forward row + backward in-links."""
        self._cover.add(w)
        self._rebuild_row(w)
        back = self._bounded_ball(w, self.k, self._in)
        for x, d in back.items():
            if x != w and x in self._cover:
                self._set_link(x, w, d)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Insert the directed edge ``(u, v)`` and repair the index."""
        self._check(u, v)
        if u == v or v in self._out[u]:
            return  # self-loops ignored (simple graphs), duplicates no-op
        self._out[u].add(v)
        self._in[v].add(u)
        # Cover invariant: every edge needs a covered endpoint.
        if u not in self._cover and v not in self._cover:
            u_deg = len(self._out[u]) + len(self._in[u])
            v_deg = len(self._out[v]) + len(self._in[v])
            self._add_to_cover(u if u_deg >= v_deg else v)
        # Relax cover-pair distances through the new edge:
        # d(x, y) <= d(x, u) + 1 + d(v, y).
        side = None if self.k is None else self.k - 1
        back = self._bounded_ball(u, side, self._in)
        fwd = self._bounded_ball(v, side, self._out)
        back_cover = [(x, d) for x, d in back.items() if x in self._cover]
        fwd_cover = [(y, d) for y, d in fwd.items() if y in self._cover]
        for x, a in back_cover:
            for y, b in fwd_cover:
                if self.k is None or a + 1 + b <= self.k:
                    self._set_link(x, y, a + 1 + b)

    def delete_edge(self, u: int, v: int) -> None:
        """Delete the directed edge ``(u, v)`` and repair the index.

        Distances through the edge may grow, so every cover vertex within
        ``k-1`` backward hops of ``u`` (those whose rows could have relied
        on the edge) rebuilds its row.  The cover is left unchanged —
        covers stay valid under deletions.
        """
        self._check(u, v)
        if v not in self._out[u]:
            return
        self._out[u].discard(v)
        self._in[v].discard(u)
        side = None if self.k is None else self.k - 1
        back = self._bounded_ball(u, side, self._in)
        affected = [x for x in back if x in self._cover]
        if u in self._cover and u not in back:
            affected.append(u)
        for x in affected:
            self._rebuild_row(x)

    def _check(self, u: int, v: int) -> None:
        if not 0 <= u < self.n or not 0 <= v < self.n:
            raise ValueError(f"vertex out of range [0, {self.n})")

    # ------------------------------------------------------------------
    # Queries (Algorithm 2 over the mutable state)
    # ------------------------------------------------------------------
    def _link_within(self, x: int, y: int, budget: int | None) -> bool:
        if x == y:
            return budget is None or budget >= 0
        row = self._rows[x]
        if row is None:
            return False
        w = row.get(y)
        if w is None:
            return False
        return budget is None or w <= budget

    def query(self, s: int, t: int) -> bool:
        """Whether ``s →k t`` in the *current* graph."""
        self._check(s, t)
        if s == t:
            return True
        k = self.k
        if k == 0:
            return False
        s_in = s in self._cover
        t_in = t in self._cover
        if s_in and t_in:
            return self._link_within(s, t, k)
        minus1 = None if k is None else k - 1
        if s_in:
            return any(self._link_within(s, v, minus1) for v in self._in[t])
        if t_in:
            return any(self._link_within(u, t, minus1) for u in self._out[s])
        minus2 = None if k is None else k - 2
        preds = self._in[t]
        if not preds:
            return False
        for u in self._out[s]:
            if u in preds and (minus2 is None or minus2 >= 0):
                return True
            if any(self._link_within(u, v, minus2) for v in preds):
                return True
        return False

    def query_case(self, s: int, t: int) -> int:
        """Which Algorithm-2 case the pair falls into (cover may have grown)."""
        self._check(s, t)
        s_in = s in self._cover
        t_in = t in self._cover
        if s_in and t_in:
            return 1
        if s_in:
            return 2
        if t_in:
            return 3
        return 4

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def cover_size(self) -> int:
        """Current cover size (monotone non-decreasing under updates)."""
        return len(self._cover)

    @property
    def edge_count(self) -> int:
        """Current number of index edges."""
        return sum(len(row) for row in self._rows if row is not None)

    def to_digraph(self) -> DiGraph:
        """Snapshot the current graph as an immutable :class:`DiGraph`."""
        edges = [(u, v) for u in range(self.n) for v in self._out[u]]
        return DiGraph(self.n, edges)

    def freeze(self) -> KReachIndex:
        """Emit a static :class:`KReachIndex` of the current state.

        The mutable rows are flattened into ``(src, dst, w)`` arrays and
        fed through the same array path every other builder uses
        (:meth:`IndexGraph.from_triples
        <repro.core.index_graph.IndexGraph.from_triples>`) — no
        re-traversal, no dict-of-dicts intermediate.  The frozen index
        answers exactly like the dynamic one (and hence like a fresh
        static build on the current graph, per the maintenance
        invariant); use it to hand a settled graph to the serving /
        serialization paths.
        """
        g = self.to_digraph()
        row_items = [
            (u, row) for u, row in enumerate(self._rows) if row
        ]
        counts = [len(row) for _, row in row_items]
        m = sum(counts)
        src = np.repeat(
            np.fromiter((u for u, _ in row_items), dtype=np.int64, count=len(row_items)),
            counts,
        )
        dst = np.fromiter(
            (v for _, row in row_items for v in row), dtype=np.int64, count=m
        )
        weights = np.fromiter(
            (w for _, row in row_items for w in row.values()), dtype=np.int64, count=m
        )
        cover = frozenset(self._cover)
        ig = IndexGraph.for_kreach(g.n, cover, src, dst, weights, self.k)
        return KReachIndex.from_index_graph(g, self.k, cover=cover, index_graph=ig)
