"""Snapshot + delta-overlay dynamic k-reach engine.

The paper builds its index once over a static graph; its related work
(Bramandia et al. [3], on incremental 2-hop maintenance) raises the
obvious follow-up — keeping the index consistent as the graph changes.
:class:`DynamicKReachIndex` answers that with an LSM-style two-tier
architecture:

* **Base snapshot** — an immutable :class:`~repro.core.kreach.KReachIndex`
  over the graph as of the last compaction: the §4.3 CSR
  :class:`~repro.core.index_graph.IndexGraph` substrate, its zero-copy
  :class:`~repro.core.batch.KeyedRowStore`, and its cached bitset link
  matrices.  Nothing in this tier ever mutates.
* **Delta overlay** — the small mutable tail: the cover rows *replaced*
  since the snapshot (copy-on-write, full-row semantics), sparse
  *min-patches* on otherwise-clean rows, the vertices whose adjacency
  diverged from the snapshot graph, the cover vertices added since, and
  the replayable operation log the v3 on-disk format
  (:func:`~repro.core.serialize.save_dynamic`) persists.

Queries — scalar *and* :meth:`DynamicKReachIndex.query_batch` — route
through the same four-case Algorithm 2 the static engine runs.  Batch
reads stay on the PR-3 bulk paths under write churn: Case 1 is one
two-tier weight gather (dirty sources override the base store), Cases
2/3 gather neighbors from the base CSR for clean vertices and patch in
overlay adjacency for the few dirty ones, and Case 4 joins against a
*patched* link matrix — the base snapshot's cached matrix with dirty
rows masked out and refilled from overlay lookups, extended with the
cover vertices added since the snapshot.

**Maintenance** is the same incremental algebra as before, applied to
the overlay:

* **Edge insertion** is cheap, because every stored quantity is a
  *minimum*: distances only shrink.  Inserting ``(u, v)`` repairs the
  vertex-cover invariant (the higher-degree uncovered endpoint joins the
  cover) and relaxes cover-pair weights through the new edge —
  ``d(x, y) ≤ d(x, u) + 1 + d(v, y)`` over the backward/forward
  ``(k-1)``-balls.  The candidate relaxations are *queued as arrays*
  (one vectorized outer sum per insert) and min-merged into the overlay
  at the next read — one sort + one bulk lookup per write burst instead
  of a Python probe per candidate pair — dirtying exactly the rows that
  improve.
* **Edge deletion** is the hard direction (stored minima cannot be
  "un-relaxed").  The affected rows are pinned *exactly* at delete time
  by comparing ``v``'s backward k-ball before and after the removal —
  on well-connected graphs almost every deleted edge has same-length
  alternates, so most deletions pin nothing — and the recomputation is
  *deferred* to the next read: consecutive deletions in a write burst
  share one repair pass, which runs 64 rows per sweep through the same
  blocked bit-parallel MS-BFS the static builder uses, and a repair
  crossing the compaction threshold merges straight into a fresh
  snapshot without ever materializing dict rows.

**Compaction** bounds the overlay: once the replaced-row count crosses
``max(compaction_min_rows, compaction_ratio · |S_base|)`` (checked after
every write and read-side flush when ``auto_compact`` is on),
:meth:`compact` merges clean
base rows (array mask + concatenate, no per-edge Python) with the
overlay rows into a fresh :class:`IndexGraph` and promotes it — with the
current graph snapshot — to the new base; ``rebuild=True`` instead
re-derives every row from the graph through the blocked bit-parallel
MS-BFS builder (useful after heavy churn, when a fresh degree-ordered
cover can undo the monotone cover growth).  :meth:`freeze` is compaction
promoted to an API: settle the overlay and hand back the static base
snapshot for the serving/serialization paths.

Equivalence after arbitrary update sequences — against a freshly built
static index, against :meth:`freeze`'s output, and against the BFS
oracle — is the central test invariant
(``tests/core/test_dynamic.py``).
"""

from __future__ import annotations

import numpy as np

from repro import native
from repro.bitsets.ops import (
    DEFAULT_MATRIX_BYTES,
    matrix_bytes,
    set_bits,
    words_for,
)
from repro.core.batch import (
    MISSING_WEIGHT,
    UNBOUNDED_BUDGET,
    KeyedRowStore,
    as_pair_arrays,
    case4_bitset_join,
    case_codes,
    gather_segments,
    segment_any,
)
from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_distances_blocked

__all__ = ["DynamicKReachIndex", "OP_INSERT", "OP_DELETE"]

#: Operation codes of the replayable delta log (the v3 on-disk format
#: stores the log as an ``(ops, 3)`` int64 array of ``(op, u, v)`` rows).
OP_INSERT = 0
OP_DELETE = 1

_ENGINES = ("auto", "native", "bitset", "scalar")

#: Affected-row count at which a deletion repairs through one blocked
#: bit-parallel MS-BFS over the current graph instead of per-row scalar
#: sweeps.  The blocked path pays an O(n + m) graph snapshot up front,
#: so tiny repair sets stay on the scalar sweeps.
_BLOCKED_REBUILD_MIN = 16

#: Caps on queued insert-relaxation candidates: the outer-product chunk
#: size per insert, and the total queue volume at which the pending
#: candidates are min-merged early instead of waiting for the next read.
_RELAX_CHUNK = 1 << 22
_RELAX_QUEUE_MAX = 1 << 24


class DynamicKReachIndex:
    """k-reach with ``insert_edge`` / ``delete_edge`` maintenance.

    Parameters
    ----------
    graph:
        Initial graph; becomes the first base snapshot.
    k:
        Hop budget (``None`` for the classic-reachability mode).
    compaction_ratio:
        Overlay size ratio triggering automatic compaction: the overlay
        merges into a fresh base snapshot once its dirty-row count
        reaches this fraction of the base cover size.
    compaction_min_rows:
        Floor under the ratio trigger.  A single k-hop deletion can
        dirty every cover row within its backward ball, so a floor well
        above typical ball sizes keeps small covers from compacting
        after every other write.
    auto_compact:
        Run the threshold check after every update (default).  Off, the
        overlay grows until an explicit :meth:`compact` / :meth:`freeze`.
    bitset_matrix_bytes:
        Memory ceiling for the patched Case-4 link matrix (~|S|²/8
        bytes), mirroring the static index's parameter.  Batches whose
        cover exceeds it fall back to the scalar Case-4 walk under
        ``engine='auto'``.

    Examples
    --------
    >>> g = DiGraph(4, [(0, 1), (2, 3)])
    >>> idx = DynamicKReachIndex(g, k=3)
    >>> idx.query(0, 3)
    False
    >>> idx.insert_edge(1, 2)
    >>> idx.query(0, 3)
    True
    >>> idx.delete_edge(1, 2)
    >>> idx.query(0, 3)
    False
    """

    def __init__(
        self,
        graph: DiGraph,
        k: int | None,
        *,
        compaction_ratio: float = 0.5,
        compaction_min_rows: int = 64,
        auto_compact: bool = True,
        bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
    ) -> None:
        if k is not None and k < 0:
            raise ValueError(f"k must be non-negative or None, got {k}")
        self._init_config(
            graph.n,
            k,
            compaction_ratio,
            compaction_min_rows,
            auto_compact,
            bitset_matrix_bytes,
        )
        self._install_base(
            KReachIndex(graph, k, bitset_matrix_bytes=bitset_matrix_bytes)
        )

    @classmethod
    def from_base(
        cls,
        base: KReachIndex,
        *,
        compaction_ratio: float = 0.5,
        compaction_min_rows: int = 64,
        auto_compact: bool = True,
    ) -> "DynamicKReachIndex":
        """Wrap an existing static index as the base snapshot (no build).

        The on-disk loader (:func:`~repro.core.serialize.load_dynamic`)
        uses this to install a validated snapshot before replaying the
        pending delta log; it also lets a settled :meth:`freeze` output
        re-enter dynamic service without paying a reconstruction.

        The base must use the default dense row storage: the dynamic
        tier merges delta rows against the base's flat key/weight
        arrays, which a ``storage='wah'`` index deliberately does not
        materialize.  Rebuild (or reload) the snapshot densely first.
        """
        if base.index_graph.storage != "dense":
            raise ValueError(
                "DynamicKReachIndex requires a dense-storage base index; "
                f"got storage={base.index_graph.storage!r}"
            )
        self = object.__new__(cls)
        self._init_config(
            base.graph.n,
            base.k,
            compaction_ratio,
            compaction_min_rows,
            auto_compact,
            base.bitset_matrix_bytes,
        )
        self._install_base(base)
        return self

    def _init_config(
        self,
        n: int,
        k: int | None,
        compaction_ratio: float,
        compaction_min_rows: int,
        auto_compact: bool,
        bitset_matrix_bytes: int,
    ) -> None:
        """Validate and set the shared constructor/from_base fields."""
        if compaction_ratio <= 0:
            raise ValueError(
                f"compaction_ratio must be positive, got {compaction_ratio}"
            )
        if compaction_min_rows < 1:
            raise ValueError(
                f"compaction_min_rows must be >= 1, got {compaction_min_rows}"
            )
        self.n = n
        self.k = k
        self.compaction_ratio = float(compaction_ratio)
        self.compaction_min_rows = int(compaction_min_rows)
        self.auto_compact = bool(auto_compact)
        self.bitset_matrix_bytes = int(bitset_matrix_bytes)
        self.compactions = 0
        self._journal = None  # optional crash-safe OpLog (attach_journal)
        self._b1_ok = k is None or k >= 1  # may a u == v handshake use k-1?
        self._b2_ok = k is None or k >= 2  # ... use k-2?

    def _install_base(self, base: KReachIndex) -> None:
        """Promote ``base`` to the immutable tier and reset the overlay."""
        self._base = base
        g = base.graph
        self._out: list[set[int]] = [set(row) for row in g.out_lists()]
        self._in: list[set[int]] = [set(row) for row in g.in_lists()]
        self._cover: set[int] = set(base.cover)
        # Overlay state: everything that diverged since the snapshot.
        self._delta: dict[int, dict[int, int]] = {}
        # Per-row flattened (sorted dst, w) views of delta rows; entries
        # drop when their row changes, so a flush re-flattens only what
        # moved instead of the whole overlay.
        self._row_arrays: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        # Min-patches: sparse {y: w} improvements on top of CLEAN base
        # rows (insert relaxations rarely touch more than a few entries,
        # and a full-row copy per improvement would dirty the row, mask
        # it out of the base link matrix, and push it toward compaction
        # for no reason).  Invariant: patch keys never overlap delta
        # keys — improvements on an already-replaced row go into its
        # delta dict directly, and a repair drops the row's patch.
        self._patch: dict[int, dict[int, int]] = {}
        self._cover_added: list[int] = []
        self._dirty_out: set[int] = set()
        self._dirty_in: set[int] = set()
        self._pending_repair: set[int] = set()
        self._pending_relax: list[
            tuple[np.ndarray, np.ndarray, np.ndarray]
        ] = []
        self._pending_relax_size = 0
        self._log: list[tuple[int, int, int]] = []
        self._invalidate()

    def _invalidate(self) -> None:
        """Drop every derived batch view; they rebuild on next use.

        Only base promotion needs this.  Ordinary writes maintain the
        O(n) views (cover flags, position map, dirty-adjacency flags)
        *incrementally* and drop just the delta-dependent ones in
        :meth:`_after_write` — otherwise every write would make the next
        batch pay full O(n) rebuilds.
        """
        self._flags_np: np.ndarray | None = None
        self._row_pos_np: np.ndarray | None = None
        self._delta_cache: (
            tuple[KeyedRowStore, np.ndarray, np.ndarray, np.ndarray, np.ndarray]
            | None
        ) = None
        self._patch_cache: (
            tuple[KeyedRowStore, np.ndarray, np.ndarray, np.ndarray] | None
        ) = None
        self._dirty_out_np: np.ndarray | None = None
        self._dirty_in_np: np.ndarray | None = None
        self._matrix_cache: tuple[np.ndarray | None] | None = None

    # ------------------------------------------------------------------
    # Internal helpers (maintenance algebra)
    # ------------------------------------------------------------------
    def _quantize(self, dist: int) -> int:
        if self.k is None:
            return 0
        floor = self.k - 2
        return dist if dist > floor else floor

    def _ball_dists(
        self, source: int, limit: int | None, direction: str
    ) -> np.ndarray:
        """BFS distances from ``source``, ``limit`` hops deep, as a full
        ``(n,)`` int64 array (-1 = unreached).

        Level-synchronous over the same clean/dirty adjacency split the
        batch engine gathers through (:meth:`_gather`): clean frontier
        vertices expand via the base snapshot's CSR in bulk, only
        diverged vertices read their mutable sets.  This is the
        maintenance path's workhorse — insert relaxation balls and the
        deletion pin test both consume the arrays directly.
        """
        dist = np.full(self.n, -1, dtype=np.int64)
        dist[source] = 0
        adjacency = self._out if direction == "out" else self._in
        frontier: list[int] = [source]
        d = 0
        while frontier and (limit is None or d < limit):
            d += 1
            if len(frontier) < 96:
                # Narrow frontier: plain set hops beat numpy dispatch.
                nxt: list[int] = []
                for x in frontier:
                    for y in adjacency[x]:
                        if dist[y] < 0:
                            dist[y] = d
                            nxt.append(y)
                frontier = nxt
            else:
                nbrs, _ = self._gather(
                    np.asarray(frontier, dtype=np.int64), direction
                )
                nbrs = np.unique(nbrs)
                new = nbrs[dist[nbrs] < 0]
                dist[new] = d
                frontier = new.tolist()
        return dist

    def _row_get(self, x: int, y: int) -> int | None:
        """Current stored weight of (x, y): overlay row or base, min'd
        with the row's pending insert patch."""
        row = self._delta.get(x)
        if row is not None:
            w = row.get(y)
        else:
            w = self._base.index_graph.flat().get(x * self.n + y)
            prow = self._patch.get(x)
            if prow is not None:
                pw = prow.get(y)
                if pw is not None and (w is None or pw < w):
                    w = pw
        return w

    def _queue_relax(
        self, xs: np.ndarray, ys: np.ndarray, dists: np.ndarray
    ) -> None:
        """Queue candidate relaxations ``d(x, y) <= dist`` for the flush.

        Candidates carry raw distances; quantization and the min-merge
        against the stored rows happen in bulk at
        :meth:`_apply_relaxations`.  Self-pairs and over-budget
        candidates are assumed already filtered by the caller.
        """
        if not len(xs):
            return
        self._pending_relax.append((xs, ys, dists))
        self._pending_relax_size += len(xs)
        if self._pending_relax_size > _RELAX_QUEUE_MAX:
            self._apply_relaxations()

    def _apply_relaxations(self) -> None:
        """Min-merge the queued insert candidates into the overlay.

        One concatenation + sort gives the best candidate per (x, y);
        one bulk lookup over all tiers finds the pairs that actually
        improve; only those touch Python dicts — an entry in the row's
        min-patch when the row is clean, an in-place update when the row
        was already replaced.  No candidate ever dirties a clean row
        (replaced rows are masked out of the base link matrix and count
        toward the compaction threshold; patches just OR extra bits in).
        """
        if not self._pending_relax:
            return
        parts = self._pending_relax
        self._pending_relax = []
        self._pending_relax_size = 0
        xs = np.concatenate([p[0] for p in parts])
        ys = np.concatenate([p[1] for p in parts])
        dists = np.concatenate([p[2] for p in parts])
        if self.k is None:
            w = np.zeros(len(dists), dtype=np.int64)
        else:
            w = np.maximum(dists, self.k - 2)
        keys = xs * self.n + ys
        if self.k is None:
            order = np.argsort(keys, kind="stable")  # weights all equal
        elif self.n < (1 << 30):
            # Quantized weights span {k-2, k-1, k}: fuse them into the
            # low bits so one radix pass orders by (key, weight).
            order = np.argsort(keys * np.int64(4) + (w - (self.k - 2)))
        else:
            order = np.lexsort((w, keys))
        kk = keys[order]
        ww = w[order]
        first = np.empty(len(kk), dtype=bool)
        first[0] = True
        np.not_equal(kk[1:], kk[:-1], out=first[1:])
        bounds = np.flatnonzero(first)
        ukeys = kk[bounds]
        uw = ww[bounds]  # sorted by (key, w): first entry per key is min
        ux = ukeys // self.n
        uy = ukeys % self.n
        improved = uw < self._lookup(ux, uy)
        if not bool(improved.any()):
            return
        delta = self._delta
        patch = self._patch
        drop_arrays = self._row_arrays.pop
        for x, y, wv in zip(
            ux[improved].tolist(), uy[improved].tolist(), uw[improved].tolist()
        ):
            row = delta.get(x)
            if row is not None:  # already-replaced row: update in place
                row[y] = wv
                drop_arrays(x, None)
                self._delta_cache = None
                continue
            prow = patch.get(x)
            if prow is None:
                prow = patch[x] = {}
            prow[y] = wv
        self._patch_cache = None
        self._matrix_cache = None

    def _rebuild_row(self, x: int) -> None:
        """Recompute cover vertex ``x``'s row with a fresh bounded BFS."""
        dist = self._ball_dists(x, self.k, "out")
        mask = (dist >= 0) & self._flags()
        mask[x] = False
        hit = np.flatnonzero(mask)
        if self.k is None:
            row = dict.fromkeys(hit.tolist(), 0)
        else:
            weights = np.maximum(dist[hit], self.k - 2)
            row = dict(zip(hit.tolist(), weights.tolist()))
        # An empty dict is meaningful: the row exists and has no edges
        # (absence from the overlay means "clean", not "empty").
        self._delta[x] = row
        self._row_arrays.pop(x, None)
        # A fresh recompute supersedes the row's pending patch and repair.
        if self._patch.pop(x, None) is not None:
            self._patch_cache = None
        self._pending_repair.discard(x)

    def _rebuild_rows_blocked(self, affected: list[int]) -> None:
        """Recompute many dirtied rows in one blocked MS-BFS pass.

        A deletion on a dense region can dirty most of the cover; per-row
        scalar sweeps would then cost nearly a full rebuild in Python
        loops.  Instead the affected rows ride the same 64-sources-per-
        sweep bit-parallel kernel Algorithm-1 construction uses, against
        a snapshot of the current adjacency.  When the repair set alone
        crosses the compaction threshold, the fresh triples merge
        straight into a new base snapshot — arrays to arrays, never
        materializing a dict overlay that the very next write burst
        would flatten again.
        """
        g = self.to_digraph()
        in_cover = self._bool_flags(self._cover)
        sources = np.unique(np.asarray(affected, dtype=np.int64))
        src, dst, dist = bfs_distances_blocked(
            g, sources, k=self.k, emit=in_cover
        )
        # A repair crossing the compaction threshold merges straight
        # into a fresh snapshot — the overlay would only hand the same
        # rows to a compaction moments later.  Anything smaller lands in
        # the overlay as dict rows whose flattened-array views are
        # seeded below for free.
        if self.auto_compact and len(sources) >= self.compaction_threshold:
            self._compact_with_repair(g, sources, src, dst, dist)
            return
        if self.k is None:
            w = np.zeros(len(dist), dtype=np.int64)
        else:
            w = np.maximum(dist, self.k - 2)
        order = np.argsort(src * np.int64(self.n) + dst)
        src, dst, w = src[order], dst[order], w[order]
        starts = np.searchsorted(src, sources, side="left")
        stops = np.searchsorted(src, sources, side="right")
        for x, lo, hi in zip(sources.tolist(), starts.tolist(), stops.tolist()):
            xi = int(x)
            self._delta[xi] = dict(zip(dst[lo:hi].tolist(), w[lo:hi].tolist()))
            # The fused-key sort leaves each row's targets ascending, so
            # the slices double as the row's flattened-array cache.
            self._row_arrays[xi] = (dst[lo:hi], w[lo:hi])
            if self._patch.pop(xi, None) is not None:
                self._patch_cache = None

    def _materialize_patches(self) -> None:
        """Fold the pending insert patches into full delta rows.

        Only the compaction merges need this — steady-state queries read
        patches through their own store — so the full-row copies are
        paid once per compaction instead of once per improvement.
        """
        if not self._patch:
            return
        row_dict = self._base.index_graph.row_dict
        for x, prow in self._patch.items():
            row = self._delta.get(x)
            if row is None:
                row = self._delta[x] = row_dict(x)
            for y, w in prow.items():
                old = row.get(y)
                if old is None or w < old:
                    row[y] = w
            self._row_arrays.pop(x, None)
        self._patch.clear()
        self._patch_cache = None
        self._delta_cache = None

    def _compact_with_repair(
        self,
        g: DiGraph,
        repaired: np.ndarray,
        r_src: np.ndarray,
        r_dst: np.ndarray,
        r_dist: np.ndarray,
    ) -> None:
        """Mass-repair compaction: clean base rows + surviving overlay
        rows + freshly repaired triples merge into a new base snapshot.

        ``r_dist`` carries raw BFS distances; :meth:`IndexGraph.for_kreach`
        applies the same quantization to them and (idempotently) to the
        already-quantized stored weights, so both streams concatenate.
        """
        self._materialize_patches()
        cover = frozenset(self._cover)
        base_src, base_dst, base_w = self._base.index_graph.triples()
        repaired_flag = np.zeros(self.n, dtype=bool)
        repaired_flag[repaired] = True
        parts = [(r_src, r_dst, r_dist)]
        exclude = repaired_flag
        if self._delta:
            _, dirty, d_src, d_dst, d_w = self._delta_store()
            survive = ~repaired_flag[d_src]
            parts.append((d_src[survive], d_dst[survive], d_w[survive]))
            exclude = repaired_flag | dirty
        keep = ~exclude[base_src]
        parts.append((base_src[keep], base_dst[keep], base_w[keep]))
        src = np.concatenate([p[0] for p in parts])
        dst = np.concatenate([p[1] for p in parts])
        w = np.concatenate([p[2] for p in parts])
        ig = IndexGraph.for_kreach(self.n, cover, src, dst, w, self.k)
        base = KReachIndex.from_index_graph(
            g,
            self.k,
            cover=cover,
            index_graph=ig,
            bitset_matrix_bytes=self.bitset_matrix_bytes,
        )
        self.compactions += 1
        self._install_base(base)

    def _cover_ball_arrays(
        self, dist: np.ndarray, exclude: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(vertices, dists)`` of a ball's cover members."""
        mask = (dist >= 0) & self._flags()
        if 0 <= exclude < self.n:
            mask[exclude] = False
        verts = np.flatnonzero(mask)
        return verts, dist[verts]

    def _add_to_cover(self, w: int) -> None:
        """Grow the cover by ``w``: forward row + backward in-links."""
        self._cover.add(w)
        self._cover_added.append(w)
        if self._flags_np is not None:
            self._flags_np[w] = True
        if self._row_pos_np is not None:
            self._row_pos_np[w] = (
                self._base.index_graph.cover_size + len(self._cover_added) - 1
            )
        self._rebuild_row(w)
        bx, bd = self._cover_ball_arrays(
            self._ball_dists(w, self.k, "in"), w
        )
        self._queue_relax(bx, np.full(len(bx), w, dtype=np.int64), bd)

    # ------------------------------------------------------------------
    # Updates
    # ------------------------------------------------------------------
    def insert_edge(self, u: int, v: int) -> None:
        """Insert the directed edge ``(u, v)`` and repair the overlay."""
        self._check(u, v)
        if u == v or v in self._out[u]:
            return  # self-loops ignored (simple graphs), duplicates no-op
        self._out[u].add(v)
        self._in[v].add(u)
        self._mark_dirty_adjacency(u, v)
        self._log.append((OP_INSERT, u, v))
        if self._journal is not None:
            self._journal.append(OP_INSERT, u, v)
        # Cover invariant: every edge needs a covered endpoint.
        if u not in self._cover and v not in self._cover:
            u_deg = len(self._out[u]) + len(self._in[u])
            v_deg = len(self._out[v]) + len(self._in[v])
            self._add_to_cover(u if u_deg >= v_deg else v)
        # Queue the relaxations of cover-pair distances through the new
        # edge — d(x, y) <= d(x, u) + 1 + d(v, y) — as one chunked outer
        # sum over the cover members of the backward/forward balls.
        side = None if self.k is None else self.k - 1
        bx, ba = self._cover_ball_arrays(self._ball_dists(u, side, "in"), -1)
        fy, fb = self._cover_ball_arrays(self._ball_dists(v, side, "out"), -1)
        if len(bx) and len(fy):
            step = max(1, _RELAX_CHUNK // len(fy))
            for start in range(0, len(bx), step):
                cx, ca = bx[start : start + step], ba[start : start + step]
                dist = (ca[:, None] + 1 + fb[None, :]).ravel()
                xs = np.repeat(cx, len(fy))
                ys = np.tile(fy, len(cx))
                keep = xs != ys
                if self.k is not None:
                    keep &= dist <= self.k
                self._queue_relax(xs[keep], ys[keep], dist[keep])
        self._after_write()

    def delete_edge(self, u: int, v: int) -> None:
        """Delete the directed edge ``(u, v)`` and repair the overlay.

        Distances through the edge may grow, so the cover rows whose
        distance *to v* actually changed (the exact affected set — see
        the inline proof) are pinned for recomputation, deferred to the
        next read.  The cover itself is left unchanged — covers stay
        valid under deletions.
        """
        self._check(u, v)
        if v not in self._out[u]:
            return
        # Pin the affected rows exactly: compare v's backward k-ball
        # before and after the delete.  A cover row x whose d(x, v) is
        # unchanged cannot lose any distance — every old route through
        # (u, v) passes v, and splicing the surviving shortest x→v path
        # (which avoids (u, v) by construction: it exists post-delete)
        # in front of the old suffix gives an equally short (u, v)-free
        # walk.  On well-connected graphs a deleted edge almost always
        # has same-length alternates, so the repair set collapses from
        # "the whole backward ball" to the few rows v actually drifted
        # away from.
        back_pre = self._ball_dists(v, self.k, "in")
        self._out[u].discard(v)
        self._in[v].discard(u)
        self._mark_dirty_adjacency(u, v)
        self._log.append((OP_DELETE, u, v))
        if self._journal is not None:
            self._journal.append(OP_DELETE, u, v)
        back_post = self._ball_dists(v, self.k, "in")
        # The recomputation itself is deferred to the next read, so
        # consecutive deletions in a burst share one repair pass.  The
        # pinned set also covers every queued insert candidate a
        # deletion invalidates: when a candidate's witnessed distance
        # first grows past its bound, the distance to that deletion's v
        # grew with it, so the candidate's source row is pinned here and
        # its fresh repair overwrites whatever the stale candidate
        # merged in.
        changed = (back_pre >= 0) & (back_post != back_pre) & self._flags()
        self._pending_repair.update(np.flatnonzero(changed).tolist())
        self._after_write()

    def _check(self, u: int, v: int) -> None:
        if not 0 <= u < self.n or not 0 <= v < self.n:
            raise ValueError(f"vertex out of range [0, {self.n})")

    def _mark_dirty_adjacency(self, u: int, v: int) -> None:
        """An edge (u, v) changed: u's out-list and v's in-list diverged."""
        self._dirty_out.add(u)
        self._dirty_in.add(v)
        if self._dirty_out_np is not None:
            self._dirty_out_np[u] = True
        if self._dirty_in_np is not None:
            self._dirty_in_np[v] = True

    def _after_write(self) -> None:
        # Only the delta-dependent views go stale; the O(n) flag arrays
        # were already patched in place by the write itself.
        self._delta_cache = None
        self._matrix_cache = None
        if self.auto_compact and len(self._delta) >= self.compaction_threshold:
            self.compact()

    def _flush_repairs(self) -> None:
        """Settle the deferred write work (called before any row read).

        Queued insert relaxations min-merge first (rows a deletion also
        touched get overwritten by their repair right after, so a stale
        candidate can never survive — see :meth:`delete_edge` for why
        the repair set provably covers every broken candidate path).
        Then the deletion repairs run: small sets per row with scalar
        BFS, larger ones through the blocked MS-BFS kernel, 64 rows per
        sweep.  Every read entry point (scalar query, batch query,
        compaction, freeze, introspection that reads rows) funnels
        through here, so deferral is invisible to callers — answers are
        always exact.
        """
        self._apply_relaxations()
        if not self._pending_repair:
            return
        affected = list(self._pending_repair)
        self._pending_repair.clear()
        if len(affected) >= _BLOCKED_REBUILD_MIN:
            self._rebuild_rows_blocked(affected)
        else:
            for x in affected:
                self._rebuild_row(x)
        self._delta_cache = None
        self._matrix_cache = None
        if self.auto_compact and len(self._delta) >= self.compaction_threshold:
            self.compact()

    # ------------------------------------------------------------------
    # Compaction (the maintenance loop's snapshot merge)
    # ------------------------------------------------------------------
    @property
    def compaction_threshold(self) -> int:
        """Dirty-row count at which automatic compaction fires."""
        return max(
            self.compaction_min_rows,
            int(self.compaction_ratio * self._base.cover_size),
        )

    def compact(self, *, rebuild: bool = False) -> KReachIndex:
        """Merge the overlay into a fresh base snapshot and promote it.

        The default path never re-traverses the graph: clean base rows
        are taken as array slices (dirty sources masked out of the
        :meth:`IndexGraph.triples <repro.core.index_graph.IndexGraph.triples>`
        stream), overlay rows are appended, and the concatenation feeds
        the same :meth:`IndexGraph.for_kreach
        <repro.core.index_graph.IndexGraph.for_kreach>` array path every
        other builder uses.  ``rebuild=True`` instead re-derives all rows
        from the current graph through the blocked bit-parallel MS-BFS
        builder (and a fresh degree-ordered cover) — full Algorithm-1
        cost, worth paying after heavy churn since the maintained cover
        only ever grows.  Either way the overlay (dirty rows, dirty
        adjacency, pending log) resets to empty and the current graph
        becomes the new snapshot graph.  Returns the new base.
        """
        self._flush_repairs()  # may itself promote a merged snapshot
        if not self._log and not self._delta:
            return self._base  # nothing pending; keep the snapshot
        g = self.to_digraph()
        if rebuild:
            base = KReachIndex(
                g, self.k, bitset_matrix_bytes=self.bitset_matrix_bytes
            )
        else:
            self._materialize_patches()
            cover = frozenset(self._cover)
            src, dst, w = self._base.index_graph.triples()
            if self._delta:
                _, dirty, d_src, d_dst, d_w = self._delta_store()
                keep = ~dirty[src]
                src = np.concatenate([src[keep], d_src])
                dst = np.concatenate([dst[keep], d_dst])
                w = np.concatenate([w[keep], d_w])
            ig = IndexGraph.for_kreach(self.n, cover, src, dst, w, self.k)
            base = KReachIndex.from_index_graph(
                g,
                self.k,
                cover=cover,
                index_graph=ig,
                bitset_matrix_bytes=self.bitset_matrix_bytes,
            )
        self.compactions += 1
        self._install_base(base)
        return base

    def freeze(self) -> KReachIndex:
        """Settle the overlay and return the static base snapshot.

        Compaction promoted to an API: after :meth:`freeze` the overlay
        is empty and the returned :class:`KReachIndex` answers exactly
        like the dynamic index (and like a fresh static build on the
        current graph, per the maintenance invariant) — hand it to the
        serving or serialization paths once a burst of updates settles.
        """
        return self.compact()

    # ------------------------------------------------------------------
    # Queries (Algorithm 2 over base + overlay)
    # ------------------------------------------------------------------
    def _link_within(self, x: int, y: int, budget: int | None) -> bool:
        if x == y:
            return budget is None or budget >= 0
        w = self._row_get(x, y)
        if w is None:
            return False
        return budget is None or w <= budget

    def query(self, s: int, t: int) -> bool:
        """Whether ``s →k t`` in the *current* graph."""
        self._check(s, t)
        self._flush_repairs()
        if s == t:
            return True
        k = self.k
        if k == 0:
            return False
        s_in = s in self._cover
        t_in = t in self._cover
        if s_in and t_in:
            return self._link_within(s, t, k)
        minus1 = None if k is None else k - 1
        if s_in:
            return any(self._link_within(s, v, minus1) for v in self._in[t])
        if t_in:
            return any(self._link_within(u, t, minus1) for u in self._out[s])
        minus2 = None if k is None else k - 2
        preds = self._in[t]
        if not preds:
            return False
        for u in self._out[s]:
            if u in preds and (minus2 is None or minus2 >= 0):
                return True
            if any(self._link_within(u, v, minus2) for v in preds):
                return True
        return False

    def query_case(self, s: int, t: int) -> int:
        """Which Algorithm-2 case the pair falls into (cover may have grown)."""
        self._check(s, t)
        s_in = s in self._cover
        t_in = t in self._cover
        if s_in and t_in:
            return 1
        if s_in:
            return 2
        if t_in:
            return 3
        return 4

    # ------------------------------------------------------------------
    # Batch queries (vectorized Algorithm 2 over base + overlay)
    # ------------------------------------------------------------------
    def _bool_flags(self, members) -> np.ndarray:
        """A per-vertex bool array with ``members`` set."""
        flags = np.zeros(self.n, dtype=bool)
        if members:
            flags[
                np.fromiter(members, dtype=np.int64, count=len(members))
            ] = True
        return flags

    def _flags(self) -> np.ndarray:
        """Current cover membership as a bool array."""
        if self._flags_np is None:
            self._flags_np = self._bool_flags(self._cover)
        return self._flags_np

    def _row_pos(self) -> np.ndarray:
        """Vertex → cover-position map: base positions, additions appended.

        Base cover vertices keep their snapshot positions (so the base
        link matrix copies in place); vertices that joined the cover
        since occupy positions ``|S_base| ..`` in insertion order.
        """
        if self._row_pos_np is None:
            # Always a copy: cover growth patches this array in place.
            pos = self._base.index_graph.row_pos().copy()
            first = self._base.index_graph.cover_size
            for i, v in enumerate(self._cover_added):
                pos[v] = first + i
            self._row_pos_np = pos
        return self._row_pos_np

    def _row_arrays_of(self, x: int) -> tuple[np.ndarray, np.ndarray]:
        """``(sorted dst, aligned w)`` arrays of delta row ``x`` (cached)."""
        cached = self._row_arrays.get(x)
        if cached is not None:
            return cached
        row = self._delta[x]
        dst = np.fromiter(row.keys(), dtype=np.int64, count=len(row))
        w = np.fromiter(row.values(), dtype=np.int64, count=len(row))
        order = np.argsort(dst)
        arrays = (dst[order], w[order])
        self._row_arrays[x] = arrays
        return arrays

    def _delta_store(
        self,
    ) -> tuple[KeyedRowStore, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The overlay flattened for bulk work, rebuilt per write burst.

        ``(store, dirty, src, dst, w)``: a :class:`KeyedRowStore` over
        the dirty rows, per-vertex dirty-source flags, and the aligned
        triple arrays (shared by the patched-matrix fill and the
        compaction merges, so the overlay is flattened at most once per
        burst).  Rows concatenate in ascending source order with sorted
        targets, so the store's keys arrive pre-sorted and only rows
        whose per-row cache dropped pay a re-flatten.
        """
        if self._delta_cache is None:
            dirty = np.zeros(self.n, dtype=bool)
            if self._delta:
                row_ids = np.asarray(sorted(self._delta), dtype=np.int64)
                dirty[row_ids] = True
                pairs = [self._row_arrays_of(int(x)) for x in row_ids]
                counts = np.fromiter(
                    (len(p[0]) for p in pairs), dtype=np.int64, count=len(pairs)
                )
                src = np.repeat(row_ids, counts)
                dst = np.concatenate([p[0] for p in pairs])
                w = np.concatenate([p[1] for p in pairs])
            else:
                src = np.empty(0, dtype=np.int64)
                dst = src.copy()
                w = src.copy()
            store = KeyedRowStore(src * self.n + dst, w, self.n)
            self._delta_cache = (store, dirty, src, dst, w)
        return self._delta_cache

    def _patch_store(
        self,
    ) -> tuple[KeyedRowStore, np.ndarray, np.ndarray, np.ndarray]:
        """``(store, src, dst, w)`` over the pending insert patches."""
        if self._patch_cache is None:
            if self._patch:
                row_ids = sorted(self._patch)
                counts = np.fromiter(
                    (len(self._patch[x]) for x in row_ids),
                    dtype=np.int64,
                    count=len(row_ids),
                )
                src = np.repeat(
                    np.asarray(row_ids, dtype=np.int64), counts
                )
                dst = np.fromiter(
                    (y for x in row_ids for y in self._patch[x]),
                    dtype=np.int64,
                    count=int(counts.sum()),
                )
                w = np.fromiter(
                    (pw for x in row_ids for pw in self._patch[x].values()),
                    dtype=np.int64,
                    count=int(counts.sum()),
                )
            else:
                src = np.empty(0, dtype=np.int64)
                dst = src.copy()
                w = src.copy()
            store = KeyedRowStore(src * self.n + dst, w, self.n)
            self._patch_cache = (store, src, dst, w)
        return self._patch_cache

    def _lookup(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Bulk weight lookup over the tiers: base, overridden by
        replaced (dirty) rows, min'd with the pending insert patches."""
        weights = self._base._keyed().lookup(u, v)
        if self._delta:
            store, dirty = self._delta_store()[:2]
            d = dirty[u]
            if d.any():
                weights[d] = store.lookup(u[d], v[d])
        if self._patch:
            np.minimum(
                weights, self._patch_store()[0].lookup(u, v), out=weights
            )
        return weights

    def _dirty_adj_flags(self, direction: str) -> np.ndarray:
        if direction == "out":
            if self._dirty_out_np is None:
                self._dirty_out_np = self._bool_flags(self._dirty_out)
            return self._dirty_out_np
        if self._dirty_in_np is None:
            self._dirty_in_np = self._bool_flags(self._dirty_in)
        return self._dirty_in_np

    def _gather(self, vertices: np.ndarray, direction: str) -> tuple[np.ndarray, np.ndarray]:
        """Current-graph adjacency of ``vertices`` with owner tags.

        Clean vertices gather from the base snapshot's CSR in bulk;
        vertices whose adjacency diverged since the snapshot read their
        mutable sets.  Owners come back sorted ascending — the
        :func:`~repro.core.batch.gather_segments` contract the bitset
        join's OR-fold relies on.
        """
        g = self._base.graph
        if direction == "out":
            indptr, indices, adj = g.out_indptr, g.out_indices, self._out
            dirty_set = self._dirty_out
        else:
            indptr, indices, adj = g.in_indptr, g.in_indices, self._in
            dirty_set = self._dirty_in
        if not dirty_set:
            nbrs, owner, _ = gather_segments(indptr, indices, vertices)
            return nbrs, owner
        is_dirty = self._dirty_adj_flags(direction)[vertices]
        if not is_dirty.any():
            nbrs, owner, _ = gather_segments(indptr, indices, vertices)
            return nbrs, owner
        clean = np.flatnonzero(~is_dirty)
        nbrs_c, owner_c, _ = gather_segments(indptr, indices, vertices[clean])
        parts = [nbrs_c]
        owners = [clean[owner_c]]
        for j in np.flatnonzero(is_dirty).tolist():
            row = adj[int(vertices[j])]
            if row:
                parts.append(np.fromiter(row, dtype=np.int64, count=len(row)))
                owners.append(np.full(len(row), j, dtype=np.int64))
        nbrs = np.concatenate(parts)
        owner = np.concatenate(owners)
        order = np.argsort(owner, kind="stable")
        return nbrs[order], owner[order]

    def _case4_matrix(self, *, force: bool = False) -> np.ndarray | None:
        """The patched Case-4 link matrix, or None past the memory gate.

        Built as: base snapshot matrix copied into the top-left block
        (base positions are stable across overlay growth), dirty rows
        zeroed, overlay rows scattered back in at the query budget, and
        the diagonal restored wherever the ``u == v`` handshake is legal.
        Rebuilt lazily after each write burst and cached until the next
        write.
        """
        cached = self._matrix_cache
        if cached is not None:
            if cached[0] is not None or not force:
                return cached[0]
        size = self._base.index_graph.cover_size + len(self._cover_added)
        if not force and matrix_bytes(size, size) > self.bitset_matrix_bytes:
            self._matrix_cache = (None,)
            return None
        budget = None if self.k is None else self.k - 2
        diagonal = self._b2_ok
        base_mat = self._base.index_graph.link_matrix(budget, diagonal=diagonal)
        mat = np.zeros((size, words_for(size)), dtype=np.uint64)
        rows_b, words_b = base_mat.shape
        if rows_b:
            mat[:rows_b, :words_b] = base_mat
        row_pos = self._row_pos()
        if self._delta:
            dirty_pos = row_pos[
                np.fromiter(self._delta, dtype=np.int64, count=len(self._delta))
            ]
            mat[dirty_pos] = 0
            _, _, d_src, d_dst, d_w = self._delta_store()
            pu = row_pos[d_src]
            pv = row_pos[d_dst]
            keep = pv >= 0
            if budget is not None:
                keep &= d_w <= budget
            set_bits(mat, pu[keep], pv[keep])
            if diagonal:
                set_bits(mat, dirty_pos, dirty_pos)
        if self._patch:
            # Pending insert patches only ever lower weights, so they
            # can only turn link bits ON — OR them over the base rows.
            _, p_src, p_dst, p_w = self._patch_store()
            pu = row_pos[p_src]
            pv = row_pos[p_dst]
            keep = pv >= 0
            if budget is not None:
                keep &= p_w <= budget
            set_bits(mat, pu[keep], pv[keep])
        if diagonal and self._cover_added:
            added_pos = np.arange(rows_b, size, dtype=np.int64)
            set_bits(mat, added_pos, added_pos)
        self._matrix_cache = (mat,)
        return mat

    def prepare_batch(self) -> "DynamicKReachIndex":
        """Build the batch engine's lookup structures now.

        Mirrors :meth:`KReachIndex.prepare_batch
        <repro.core.kreach.KReachIndex.prepare_batch>`: warms the base
        row store and link matrix plus the overlay views, keeping their
        one-time cost out of the steady-state query path.  Returns
        ``self`` for chaining.
        """
        self._flush_repairs()
        self._base._keyed()
        self._flags()
        self._delta_store()
        self._patch_store()
        self._case4_matrix()
        return self

    def query_batch(self, pairs, *, engine: str = "auto") -> np.ndarray:
        """Vectorized :meth:`query` over a batch of (s, t) pairs.

        Same batch API contract as the static engine: any ``(m, 2)``
        integer array-like in, an aligned ``(m,)`` bool array out,
        bit-identical to the scalar :meth:`query` loop.  ``engine``:

        * ``'auto'`` (default) — the four-case bulk path; Case 4 runs
          the bitset join against the patched link matrix when it fits
          :attr:`bitset_matrix_bytes`, else falls back to the scalar
          walk for those pairs.
        * ``'native'`` — ``'auto'`` with the kernels preferring the
          compiled tier for this batch (:func:`repro.native.use`);
          identical answers, numpy fallback when numba is absent.
        * ``'bitset'`` — force the patched-matrix join past the gate.
        * ``'scalar'`` — a plain per-pair :meth:`query` loop (the
          differential reference, and the pre-overlay behavior).
        """
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if engine == "native":
            with native.use("auto"):
                return self.query_batch(pairs, engine="auto")
        self._flush_repairs()
        s, t = as_pair_arrays(pairs, self.n)
        m = len(s)
        out = np.zeros(m, dtype=bool)
        if m == 0:
            return out
        if engine == "scalar":
            query = self.query
            for i, (si, ti) in enumerate(zip(s.tolist(), t.tolist())):
                out[i] = query(si, ti)
            return out
        np.equal(s, t, out=out)
        k = self.k
        if k == 0:
            return out
        flags = self._flags()
        s_in = flags[s]
        t_in = flags[t]
        undecided = ~out  # s != t
        b1 = UNBOUNDED_BUDGET if k is None else np.int64(k - 1)

        # Case 1: one two-tier weight gather; presence alone decides
        # (overlay and base both store only weights <= k).
        sel = np.flatnonzero(undecided & s_in & t_in)
        if len(sel):
            out[sel] = self._lookup(s[sel], t[sel]) < MISSING_WEIGHT

        # Case 2: some in-neighbor v of t with v == s or ω(s, v) <= k-1.
        sel = np.flatnonzero(undecided & s_in & ~t_in)
        if len(sel):
            nbrs, owner = self._gather(t[sel], "in")
            src = s[sel][owner]
            hit = self._lookup(src, nbrs) <= b1
            if self._b1_ok:
                hit |= nbrs == src
            out[sel] = segment_any(hit, owner, len(sel))

        # Case 3: mirror of Case 2 over out-neighbors of s.
        sel = np.flatnonzero(undecided & ~s_in & t_in)
        if len(sel):
            nbrs, owner = self._gather(s[sel], "out")
            dst = t[sel][owner]
            hit = self._lookup(nbrs, dst) <= b1
            if self._b1_ok:
                hit |= nbrs == dst
            out[sel] = segment_any(hit, owner, len(sel))

        # Case 4: bridge outNei(s) × inNei(t) through the patched matrix.
        sel = np.flatnonzero(undecided & ~s_in & ~t_in)
        if len(sel):
            out[sel] = self._case4_batch(s[sel], t[sel], engine)
        return out

    def _case4_batch(
        self, s: np.ndarray, t: np.ndarray, engine: str
    ) -> np.ndarray:
        matrix = self._case4_matrix(force=engine == "bitset")
        if matrix is not None:
            return case4_bitset_join(
                None,
                s,
                t,
                matrix,
                self._row_pos(),
                gather_out=lambda vs: self._gather(vs, "out"),
                gather_in=lambda vs: self._gather(vs, "in"),
            )
        # Memory-gated fallback: the early-exiting per-pair walk.
        res = np.zeros(len(s), dtype=bool)
        query = self.query
        for i, (si, ti) in enumerate(zip(s.tolist(), t.tolist())):
            res[i] = query(si, ti)
        return res

    def query_case_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query_case`: an ``(m,)`` uint8 array of 1–4."""
        s, t = as_pair_arrays(pairs, self.n)
        flags = self._flags()
        return case_codes(flags[s], flags[t])

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def base(self) -> KReachIndex:
        """The immutable base snapshot (as of the last compaction)."""
        return self._base

    @property
    def cover_size(self) -> int:
        """Current cover size (monotone non-decreasing between compactions)."""
        return len(self._cover)

    @property
    def edge_count(self) -> int:
        """Current number of index edges (clean base rows + overlay rows)."""
        self._flush_repairs()
        ig = self._base.index_graph
        total = ig.edge_count + sum(len(row) for row in self._delta.values())
        for u in self._delta:
            lo, hi = ig.row_bounds(u)
            total -= hi - lo
        if self._patch:
            flat = ig.flat()
            n = self.n
            for x, prow in self._patch.items():
                for y in prow:
                    if flat.get(x * n + y) is None:
                        total += 1
        return total

    @property
    def overlay_rows(self) -> int:
        """Cover rows currently living in the delta overlay (replaced
        rows plus rows with pending insert patches)."""
        return len(self._delta) + len(self._patch)

    @property
    def pending_repairs(self) -> int:
        """Rows pinned by deletions but not yet recomputed (the deferred
        repair set; drained by the next read or compaction)."""
        return len(self._pending_repair)

    @property
    def pending_ops(self) -> int:
        """Updates logged since the last compaction (the v3 delta log)."""
        return len(self._log)

    def pending_log(self) -> np.ndarray:
        """The replayable delta log as an ``(ops, 3)`` int64 array of
        ``(op, u, v)`` rows — what :func:`~repro.core.serialize.save_dynamic`
        persists alongside the base snapshot."""
        if not self._log:
            return np.empty((0, 3), dtype=np.int64)
        return np.asarray(self._log, dtype=np.int64)

    def attach_journal(self, journal) -> None:
        """Mirror every *accepted* update into a crash-safe journal.

        ``journal`` is a :class:`~repro.core.serialize.OpLog` (anything
        with ``append(op, u, v)`` works); ``None`` detaches.  No-op
        writes — duplicate inserts, missing deletes, self-loops — are
        not journaled, exactly as they never enter the v3 delta log, so
        a replay of the journal reproduces this index's state.  Attach
        *after* :func:`~repro.core.serialize.recover_dynamic` has
        replayed history, not before, or the replay would re-journal
        every recovered op.
        """
        self._journal = journal

    def replay(self, log: np.ndarray) -> None:
        """Apply a delta log produced by :meth:`pending_log` in order."""
        for op, u, v in np.asarray(log, dtype=np.int64).tolist():
            if op == OP_INSERT:
                self.insert_edge(u, v)
            elif op == OP_DELETE:
                self.delete_edge(u, v)
            else:
                raise ValueError(f"unknown delta-log op code {op}")

    def to_digraph(self) -> DiGraph:
        """Snapshot the current graph as an immutable :class:`DiGraph`."""
        counts = np.fromiter(
            (len(row) for row in self._out), dtype=np.int64, count=self.n
        )
        m = int(counts.sum())
        if m == 0:
            return DiGraph(self.n)
        src = np.repeat(np.arange(self.n, dtype=np.int64), counts)
        dst = np.fromiter(
            (v for row in self._out for v in row), dtype=np.int64, count=m
        )
        return DiGraph(self.n, np.column_stack([src, dst]))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = "inf" if self.k is None else self.k
        return (
            f"DynamicKReachIndex(k={k}, |V_I|={self.cover_size}, "
            f"overlay={self.overlay_rows} rows/{self.pending_ops} ops, "
            f"compactions={self.compactions})"
        )
