"""Shared-memory multi-process query serving over a v4 index file.

The batch engines in :mod:`repro.core.kreach` saturate exactly one CPU:
numpy kernels release the GIL only inside individual ufunc calls, so one
process is one core's worth of throughput no matter how many queries are
queued.  :class:`QueryServer` is the serving tier the ROADMAP's
"millions of users" story needs — a persistent pool of worker processes
that scales batch-query throughput with cores:

* **Shared index, O(1) worker start-up.**  Every worker opens the same
  :func:`~repro.core.serialize.save_mmap` file via
  :func:`~repro.core.serialize.load_mmap`; the OS page cache backs all of
  them with one copy of the clean index pages.  Nothing graph-sized is
  ever pickled to a worker — the re-pickle-per-pool-start pattern of
  :mod:`repro.core.parallel` (fine for one-shot construction, wrong for a
  serving loop) does not appear here.  Only the lazily built caches
  (link matrices, probe dicts) are per-worker, copy-on-build.
* **Shared-memory dispatch.**  Query pairs travel to workers — and
  verdicts travel back — through preallocated shared-memory ndarray
  slots; the per-worker control pipes carry only tiny ``(slot, count)``
  tuples (each an atomic pipe write — a crashed worker cannot tear or
  wedge the transport), so no per-batch serialization of sources,
  targets, or results ever happens.
* **Case-code pre-split.**  The parent splits each batch by Algorithm-2
  case code before sharding, so every worker receives the same *mix* of
  cases — no worker inherits all the expensive Case-4 pairs.  (Each
  share also happens to arrive case-grouped, a free by-product of the
  split; the engine's own dedup sort re-establishes its order either
  way.)
* **Pipelined mode.**  :meth:`submit` returns a ticket without waiting;
  slots are double-buffered per worker, so the next shard's pairs are
  being copied in while the previous shard computes.  :meth:`collect`
  reassembles a ticket's verdicts in input order.
* **Worker supervision.**  A worker that dies mid-stream (OOM-killed,
  crashed, or :meth:`restart_worker`) is respawned and its in-flight
  shards are re-dispatched; results from a dead generation are dropped
  by a generation tag, so answers stay exact across restarts.

:class:`ThreadQueryServer` is the single-address-space sibling for the
native kernel tier (:mod:`repro.native`): compiled ``nogil`` kernels
release the GIL for the whole loop, so a *thread* pool scales with cores
too — and threads share the one mmap'd index object directly, so there
are no shared-memory slots, no pickling, and no per-batch scatter copies
at all.  Workers pull case-grouped sub-batches off a queue and write
verdicts straight into the ticket's output array (shards own disjoint
position sets, so concurrent writes never overlap).  On the pure-numpy
tier the GIL serializes most of the work and the process pool remains
the scaling deployment; the thread server is still a valid (lower
overhead, shared everything) single-core server there.

**Thread-budget policy** (the oversubscription fix): a pool of W workers
whose kernels each spawn their own threads would run W × cpu_count
threads.  Both servers therefore pin the per-worker kernel-thread count
to ``max(1, cpu_count // W)`` (:func:`repro.native.thread_budget`) by
setting ``NUMBA_NUM_THREADS`` / ``OMP_NUM_THREADS`` **before** the first
kernel runs — numba reads the variable at first import and
``set_num_threads`` can only lower it afterwards.  Process workers pin
in the child before the index loads; the thread server pins once in its
constructor (one address space — the budget is shared by all its
workers).

Differential guarantee: ``server.query_batch(pairs)`` is bit-identical
to the in-process ``load_mmap(path).query_batch(pairs)`` for every
engine and worker count, for both servers (pinned by
``tests/core/test_serve.py`` / ``tests/core/test_thread_serve.py``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from multiprocessing import sharedctypes

import numpy as np

from repro import native
from repro.core.batch import as_pair_arrays, case_codes
from repro.core.kreach import _ENGINES

__all__ = ["QueryServer", "ThreadQueryServer"]

#: Default pairs per shared-memory slot (the dispatch granularity).
DEFAULT_SLOT_PAIRS = 1 << 15

#: Default slots per worker — 2 double-buffers transfer against compute.
DEFAULT_SLOTS_PER_WORKER = 2

#: Seconds the result-drain loop waits before re-checking worker health.
_HEALTH_POLL_S = 1.0

#: Times one shard may be re-dispatched after killing its worker before
#: its ticket is failed — a poison shard (e.g. a batch whose kernel
#: deterministically OOMs the worker) must surface an error, not revive
#: workers forever.
_MAX_SHARD_RETRIES = 2

#: Tracebacks are truncated to this many characters before crossing a
#: control pipe, keeping every frame under PIPE_BUF so each send is one
#: atomic write (see :func:`_worker_main`).
_MAX_ERROR_CHARS = 2000


def _worker_main(
    path,
    worker_id,
    generation,
    slots,
    slot_pairs,
    raw_in,
    raw_out,
    task_r,
    result_w,
    engine,
    prepare,
    kernel_threads,
):
    """Worker loop: open the shared file, then serve slots until ``None``.

    Runs in a child process.  All heavy state (the index) comes from the
    memory-mapped file — the only constructor traffic is this argument
    tuple.  Control messages travel over per-worker pipes and are sent
    *directly* (no mp.Queue feeder thread): every frame stays far below
    PIPE_BUF, so each send is one atomic pipe write — a crash can end the
    stream (EOF) but can never leave a torn frame, and there is no
    cross-process queue lock a dying worker could take to its grave (the
    failure mode that wedges a shared mp.Queue on a hard kill).  Every
    message carries ``(worker_id, generation)`` so the parent can discard
    echoes from a generation it has already restarted.
    """
    # Pin this worker's kernel-thread budget before anything imports
    # numba (see the module docstring's thread-budget policy) — with W
    # pool processes each running parallel kernels, the pins keep the
    # host at ~cpu_count threads total instead of W x cpu_count.
    native.pin_kernel_threads(kernel_threads)

    from repro.core.serialize import load_mmap

    def send(kind, detail=None):
        result_w.send((kind, worker_id, generation, detail))

    try:
        index = load_mmap(path)
        if prepare:
            index.prepare_batch()
    except BaseException:
        send("init_error", traceback.format_exc()[-_MAX_ERROR_CHARS:])
        return
    pairs_view = np.frombuffer(raw_in, dtype=np.int64).reshape(
        slots, slot_pairs, 2
    )
    out_view = np.frombuffer(raw_out, dtype=np.uint8).reshape(slots, slot_pairs)
    send("ready")
    while True:
        try:
            msg = task_r.recv()
        except (EOFError, OSError):
            break  # parent vanished; exit quietly
        if msg is None:
            break
        slot, count, eng = msg
        try:
            verdicts = index.query_batch(
                pairs_view[slot, :count], engine=eng or engine
            )
            out_view[slot, :count] = verdicts
            send("done", slot)
        except BaseException:
            send(
                "task_error",
                (slot, traceback.format_exc()[-_MAX_ERROR_CHARS:]),
            )


def _case_shards(codes: np.ndarray, count: int) -> list[np.ndarray]:
    """Per-worker position arrays, case-balanced.

    For each Algorithm-2 case, its pairs are split contiguously across
    the pool — every worker gets ~1/W of each case, so the load stays
    balanced even though Case 4 costs orders of magnitude more than
    Case 1.  (The case-by-case ordering of each share is a free
    by-product, not something workers rely on.)
    """
    if count == 1:
        return [np.arange(len(codes), dtype=np.int64)]
    shares: list[list[np.ndarray]] = [[] for _ in range(count)]
    for case in (1, 2, 3, 4):
        positions = np.flatnonzero(codes == case)
        if not len(positions):
            continue
        for i, part in enumerate(np.array_split(positions, count)):
            if len(part):
                shares[i].append(part)
    return [
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        for parts in shares
    ]


class _Ticket:
    """One submitted batch: its output buffer and outstanding shard count."""

    __slots__ = ("id", "s", "t", "out", "remaining", "error")

    def __init__(self, ticket_id: int, s: np.ndarray, t: np.ndarray) -> None:
        self.id = ticket_id
        self.s = s
        self.t = t
        self.out = np.zeros(len(s), dtype=bool)
        self.remaining = 0
        self.error: str | None = None


class _Worker:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = (
        "id",
        "raw_in",
        "raw_out",
        "in_view",
        "out_view",
        "task_w",
        "result_r",
        "awaiting_ready",
        "process",
        "generation",
        "free_slots",
        "inflight",
        "backlog",
        "reviving",
    )

    def __init__(self, worker_id: int, slots: int, slot_pairs: int) -> None:
        self.id = worker_id
        self.raw_in = sharedctypes.RawArray("b", slots * slot_pairs * 2 * 8)
        self.raw_out = sharedctypes.RawArray("b", slots * slot_pairs)
        self.in_view = np.frombuffer(self.raw_in, dtype=np.int64).reshape(
            slots, slot_pairs, 2
        )
        self.out_view = np.frombuffer(self.raw_out, dtype=np.uint8).reshape(
            slots, slot_pairs
        )
        self.task_w = None  # parent's send end of the task pipe
        self.result_r = None  # parent's receive end of the result pipe
        self.awaiting_ready = False
        self.process = None
        self.generation = -1
        self.free_slots: list[int] = list(range(slots))
        # slot -> (ticket, positions, engine, attempts); shards
        # re-dispatched (attempts + 1) on a restart, failed past the cap.
        self.inflight: dict[
            int, tuple[_Ticket, np.ndarray, str | None, int]
        ] = {}
        # (ticket, positions, engine, attempts) awaiting a free slot.
        self.backlog: deque[tuple[_Ticket, np.ndarray, str | None, int]] = (
            deque()
        )
        self.reviving = False


class QueryServer:
    """A persistent multi-process batch-query pool over one v4 file.

    Parameters
    ----------
    path:
        A file written by :func:`~repro.core.serialize.save_mmap`.  Each
        worker (and the parent, for the case pre-split) opens it
        zero-copy; the kernel shares the clean pages between them.
    workers:
        Pool size.  Throughput scales with cores until the memory bus
        saturates; 1 is a valid (supervised, out-of-process) deployment.
    engine:
        Default engine workers pass to
        :meth:`~repro.core.kreach.KReachIndex.query_batch`; individual
        calls may override it.
    slot_pairs:
        Capacity of one shared-memory slot.  Batches larger than one
        slot are sharded transparently; bigger slots amortize dispatch,
        smaller ones pipeline sooner.
    slots_per_worker:
        Shared-memory slots per worker (2 = double buffering: the parent
        fills one slot while the worker computes the other).
    prepare:
        Run :meth:`~repro.core.kreach.KReachIndex.prepare_batch` in each
        worker at start-up so steady-state queries never pay the lazy
        link-matrix build.
    start_method:
        Multiprocessing start method; default ``'fork'`` where available
        (workers then inherit nothing index-sized — the index comes from
        the file either way).

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.core import KReachIndex, save_mmap
    >>> from repro.graph.generators import gnp_digraph
    >>> g = gnp_digraph(60, 0.08, seed=1)
    >>> fd, path = tempfile.mkstemp(suffix=".kr4"); os.close(fd)
    >>> save_mmap(KReachIndex(g, 3), path)
    >>> with QueryServer(path, workers=2) as server:
    ...     verdicts = server.query_batch([(0, 5), (5, 0), (3, 3)])
    >>> verdicts.dtype.name, len(verdicts)
    ('bool', 3)
    >>> os.unlink(path)
    """

    def __init__(
        self,
        path,
        *,
        workers: int = 2,
        engine: str = "auto",
        slot_pairs: int = DEFAULT_SLOT_PAIRS,
        slots_per_worker: int = DEFAULT_SLOTS_PER_WORKER,
        prepare: bool = True,
        start_method: str | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if slot_pairs < 1:
            raise ValueError(f"slot_pairs must be >= 1, got {slot_pairs}")
        if slots_per_worker < 1:
            raise ValueError(
                f"slots_per_worker must be >= 1, got {slots_per_worker}"
            )
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        from repro.core.serialize import load_mmap

        self._path = os.fspath(path)
        self._engine = engine
        self._slot_pairs = int(slot_pairs)
        self._slots = int(slots_per_worker)
        self._prepare = bool(prepare)
        # The parent's own O(header) view: cover flags for the case
        # pre-split and input validation.  It never runs a kernel.
        self._index = load_mmap(self._path)
        self._n = self._index.graph.n
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._workers = [
            _Worker(i, self._slots, self._slot_pairs) for i in range(workers)
        ]
        self._tickets: dict[int, _Ticket] = {}
        self._next_ticket = 0
        self._closed = False
        self.restarts = 0
        self.pairs_served = 0
        try:
            for w in self._workers:
                self._spawn(w)
            self._await_ready(self._workers)
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, w: _Worker) -> None:
        """Start (or restart) one worker process on a fresh generation.

        Each generation gets fresh per-worker control pipes: a crashing
        worker can affect at most its own channel, and replacing the
        pipes on revive discards any stale bytes along with it.
        """
        w.generation += 1
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        w.task_w = task_w
        w.result_r = result_r
        w.awaiting_ready = True
        w.process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._path,
                w.id,
                w.generation,
                self._slots,
                self._slot_pairs,
                w.raw_in,
                w.raw_out,
                task_r,
                result_w,
                self._engine,
                self._prepare,
                native.thread_budget(len(self._workers)),
            ),
            daemon=True,
        )
        w.process.start()
        # The child holds its own copies; closing the parent's lets a
        # dead worker's result pipe read EOF instead of blocking.
        task_r.close()
        result_w.close()

    def _pump(self, timeout: float) -> bool:
        """Receive and apply every available worker message.

        Waits up to ``timeout`` for traffic on the per-worker result
        connections, then drains each readable one frame by frame
        (frames are atomic single writes, so a readable connection
        always yields complete messages without blocking).  A connection
        at EOF — its worker died — is closed and detached; the liveness
        paths revive the worker with fresh pipes.  Returns whether any
        message was handled.
        """
        conns = {
            w.result_r: w for w in self._workers if w.result_r is not None
        }
        if not conns:
            return False
        handled = False
        for conn in mp_connection.wait(list(conns), timeout):
            w = conns[conn]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    msg = conn.recv()
                except (EOFError, OSError):
                    conn.close()
                    if w.result_r is conn:
                        w.result_r = None
                    break
                handled = True
                self._handle_message(msg)
        return handled

    def _await_ready(self, pending: list[_Worker]) -> None:
        """Block until every worker in ``pending`` reports ready.

        Other traffic (``done`` results from healthy workers) arriving
        meanwhile is handled normally, never dropped.
        """
        while any(w.awaiting_ready for w in pending):
            if self._pump(_HEALTH_POLL_S):
                continue
            for w in pending:
                if w.awaiting_ready and not w.process.is_alive():
                    self._pump(0)  # a final init_error may still be queued
                    if w.awaiting_ready:
                        raise RuntimeError(
                            f"query-server worker {w.id} died during start-up"
                        )

    def _revive(self, w: _Worker) -> None:
        """Respawn a dead worker and requeue everything it was holding."""
        if w.process is not None:
            w.process.join(timeout=5)
        self.restarts += 1
        w.reviving = True
        try:
            # Settle whatever the old generation already delivered before
            # its channel is torn down — a gracefully drained worker
            # completed its queued shards on the way out, and dropping
            # those answers would recompute them for nothing.
            if w.result_r is not None:
                try:
                    while w.result_r.poll(0):
                        self._handle_message(w.result_r.recv())
                except (EOFError, OSError):
                    pass
                w.result_r.close()
                w.result_r = None
            if w.task_w is not None:
                try:
                    w.task_w.close()
                except OSError:
                    pass
                w.task_w = None
            # Remaining in-flight shards (whose results never arrived) go
            # back to the front of the backlog; their slots are free
            # again (the new generation never saw them).  A shard that
            # has already been re-dispatched past the retry cap fails
            # its ticket instead — it is the likely worker-killer, and
            # requeueing it forever would revive workers in a loop.
            for slot in sorted(w.inflight):
                ticket, positions, eng, attempts = w.inflight.pop(slot)
                if attempts >= _MAX_SHARD_RETRIES:
                    ticket.error = ticket.error or (
                        f"shard of {len(positions)} pairs was re-dispatched "
                        f"{attempts} times after killing its worker"
                    )
                    ticket.remaining -= 1
                else:
                    w.backlog.appendleft(
                        (ticket, positions, eng, attempts + 1)
                    )
            w.free_slots = list(range(self._slots))
            self._spawn(w)
            self._await_ready([w])
        finally:
            w.reviving = False
        self._dispatch(w)

    def restart_worker(self, worker_id: int) -> None:
        """Restart one worker, re-dispatching its in-flight work.

        Safe mid-stream: the worker is drained first (a stop sentinel,
        then a bounded join) so in-progress shards finish; only a hung
        worker is terminated.  Results it already sent settle normally —
        a shard is only re-dispatched if its ``done`` message never
        arrived, and the generation tag keeps the two paths from
        double-counting.  This is also the recovery path the server
        takes on its own when it notices a worker died.
        """
        self._check_open()
        w = self._workers[worker_id]
        if w.process is not None and w.process.is_alive():
            if w.task_w is not None:
                try:
                    w.task_w.send(None)
                except (OSError, ValueError):
                    pass
            w.process.join(timeout=5)
            if w.process.is_alive():
                w.process.terminate()
        self._revive(w)

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------
    def _shard(self, codes: np.ndarray) -> list[np.ndarray]:
        """Per-worker position arrays, case-balanced (see :func:`_case_shards`)."""
        return _case_shards(codes, len(self._workers))

    def _dispatch(self, w: _Worker) -> None:
        """Move backlog shards into free slots and notify the worker.

        A worker that died while idle is revived *here*, before any
        shard lands in its slots — otherwise the death would only be
        noticed by the blocking drain's health poll, a guaranteed
        latency spike on the first post-death batch.
        """
        if w.reviving:
            return  # _revive re-dispatches once the new generation is up
        if w.backlog and (
            w.process is None
            or w.result_r is None
            or not w.process.is_alive()
        ):
            self._revive(w)  # _revive re-enters _dispatch on the new process
            return
        while w.free_slots and w.backlog:
            ticket, positions, eng, attempts = w.backlog.popleft()
            slot = w.free_slots.pop()
            count = len(positions)
            w.in_view[slot, :count, 0] = ticket.s[positions]
            w.in_view[slot, :count, 1] = ticket.t[positions]
            w.inflight[slot] = (ticket, positions, eng, attempts)
            try:
                w.task_w.send((slot, count, eng))
            except (OSError, ValueError):
                # Died between the liveness check and the send: roll the
                # shard back and restart the worker.
                del w.inflight[slot]
                w.free_slots.append(slot)
                w.backlog.appendleft((ticket, positions, eng, attempts))
                self._revive(w)
                return

    def _handle_message(self, msg) -> tuple[str, int, int]:
        """Apply one result-queue message; returns (kind, worker, gen).

        Messages from a generation the parent has already replaced are
        reported as ``'stale'`` and otherwise ignored — their shards were
        re-dispatched when the worker was revived.
        """
        kind, worker_id, generation, detail = msg
        w = self._workers[worker_id]
        if generation != w.generation:
            return ("stale", worker_id, generation)
        if kind == "ready":
            w.awaiting_ready = False
        if kind == "init_error":
            raise RuntimeError(
                f"query-server worker {worker_id} failed to start:\n{detail}"
            )
        if kind in ("done", "task_error"):
            slot, error = (detail, None) if kind == "done" else detail
            ticket, positions, _, _ = w.inflight.pop(slot)
            count = len(positions)
            if error is None:
                ticket.out[positions] = w.out_view[slot, :count] != 0
            else:
                # The shard failed in the worker (the worker itself is
                # alive).  Fail only this ticket — the slot is recovered
                # and the pool keeps serving other tickets; collect()
                # raises once the ticket settles.
                ticket.error = ticket.error or error
            ticket.remaining -= 1
            w.free_slots.append(slot)
            self._dispatch(w)
        return (kind, worker_id, generation)

    def _drain(self, block: bool) -> bool:
        """Process available worker messages; returns whether any arrived.

        On a quiet interval with ``block=True`` the pool is
        health-checked and any dead worker revived (its shards
        re-dispatched), so a caller looping on :meth:`collect` can never
        deadlock on a crashed worker.
        """
        handled = self._pump(_HEALTH_POLL_S if block else 0)
        if not handled and block:
            for w in self._workers:
                if (w.inflight or w.backlog) and (
                    w.result_r is None or not w.process.is_alive()
                ):
                    self._revive(w)
        return handled

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("QueryServer is closed")

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def submit(self, pairs, *, engine: str | None = None) -> int:
        """Enqueue a batch; returns a ticket for :meth:`collect`.

        The batch is validated, pre-split by case code, sharded across
        the pool in slot-sized chunks, and the first chunks start
        transferring immediately — call :meth:`submit` again before
        :meth:`collect` to pipeline batches through the pool.
        """
        self._check_open()
        if engine is not None and engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        s, t = as_pair_arrays(pairs, self._n)
        ticket = _Ticket(self._next_ticket, s, t)
        self._next_ticket += 1
        self._tickets[ticket.id] = ticket
        if len(s):
            flags = self._index._flags()
            shares = self._shard(case_codes(flags[s], flags[t]))
            for w, share in zip(self._workers, shares):
                for start in range(0, len(share), self._slot_pairs):
                    w.backlog.append(
                        (
                            ticket,
                            share[start : start + self._slot_pairs],
                            engine,
                            0,
                        )
                    )
                    ticket.remaining += 1
                self._dispatch(w)
        self.pairs_served += len(s)
        while self._drain(block=False):  # opportunistic, non-blocking
            pass
        return ticket.id

    def collect(self, ticket_id: int) -> np.ndarray:
        """Block until a ticket's shards are done; verdicts in input order.

        If any shard raised inside a worker, the ticket settles (its
        slots are recovered, the pool stays serviceable) and the worker's
        traceback is re-raised here as :class:`RuntimeError`.
        """
        self._check_open()
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise KeyError(f"unknown or already-collected ticket {ticket_id}")
        while ticket.remaining:
            self._drain(block=True)
        del self._tickets[ticket_id]
        if ticket.error is not None:
            raise RuntimeError(
                f"query-server batch {ticket_id} failed in a worker:\n"
                f"{ticket.error}"
            )
        return ticket.out

    def query_batch(self, pairs, *, engine: str | None = None) -> np.ndarray:
        """Synchronous round-trip: ``collect(submit(pairs))``.

        Bit-identical to the in-process
        :meth:`~repro.core.kreach.KReachIndex.query_batch` on the same
        file, for every engine and worker count.
        """
        return self.collect(self.submit(pairs, engine=engine))

    # ------------------------------------------------------------------
    # Introspection & shutdown
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Pool size."""
        return len(self._workers)

    @property
    def index(self):
        """The parent's zero-copy view of the served index (read-only use)."""
        return self._index

    def stats(self) -> dict[str, int]:
        """Counters: pairs served, outstanding tickets, worker restarts."""
        return {
            "workers": len(self._workers),
            "pairs_served": self.pairs_served,
            "outstanding_tickets": len(self._tickets),
            "restarts": self.restarts,
        }

    def close(self) -> None:
        """Stop every worker and release the control pipes.  Idempotent."""
        if self._closed:
            return
        self._closed = True
        for w in self._workers:
            if w.process is None:
                continue
            if w.process.is_alive() and w.task_w is not None:
                try:
                    w.task_w.send(None)
                except (OSError, ValueError):
                    pass
            w.process.join(timeout=5)
            if w.process.is_alive():
                w.process.terminate()
                w.process.join(timeout=5)
            for conn in (w.task_w, w.result_r):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            w.task_w = None
            w.result_r = None
        self._tickets.clear()
        # Drop the parent's mapping of the served file so the mmap can be
        # collected — on platforms where a mapped file cannot be deleted
        # (Windows), a TemporaryDirectory holding the .kr4 must be able
        # to clean up once the server is closed.
        self._index = None

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"QueryServer(path={self._path!r}, workers={len(self._workers)}, "
            f"{state})"
        )


class ThreadQueryServer:
    """A thread-pool batch-query server sharing one mmap'd v4 index.

    The zero-IPC sibling of :class:`QueryServer`, built for the native
    kernel tier: every worker thread calls ``query_batch`` on the *same*
    index object in this address space, so there are no shared-memory
    slots, no pickling, and no result scatter — workers pull
    case-grouped sub-batches from a queue and write verdicts directly
    into the ticket's preallocated output array (shards hold disjoint
    positions, so the concurrent writes never overlap).  With compiled
    ``nogil`` kernels the GIL is released for the whole kernel loop and
    throughput scales with cores; on the pure-numpy tier the GIL
    serializes most of the work, making this a low-overhead single-core
    server (use :class:`QueryServer` to scale there).

    The constructor pins the kernel-thread budget for the whole process
    to ``max(1, cpu_count // workers)`` — see the module docstring's
    thread-budget policy.

    Same ``submit`` / ``collect`` / ``query_batch`` / ``stats`` /
    context-manager API as :class:`QueryServer`, so benchmarks and
    examples can swap the two; verdicts are bit-identical to the
    in-process index for every engine and worker count.

    Parameters
    ----------
    path:
        A file written by :func:`~repro.core.serialize.save_mmap`.
    workers:
        Thread-pool size.
    engine:
        Default engine for :meth:`~repro.core.kreach.KReachIndex.query_batch`;
        individual calls may override it.
    shard_pairs:
        Maximum pairs per queued sub-batch.  Batches larger than one
        shard per worker split further so :meth:`submit` pipelines.
    prepare:
        Build the lazy batch caches up front (in the constructor) so
        worker threads never race a lazy build; ``False`` defers the
        build to a lock-guarded first use.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.core import KReachIndex, save_mmap
    >>> from repro.graph.generators import gnp_digraph
    >>> g = gnp_digraph(60, 0.08, seed=1)
    >>> fd, path = tempfile.mkstemp(suffix=".kr4"); os.close(fd)
    >>> save_mmap(KReachIndex(g, 3), path)
    >>> with ThreadQueryServer(path, workers=2) as server:
    ...     verdicts = server.query_batch([(0, 5), (5, 0), (3, 3)])
    >>> verdicts.dtype.name, len(verdicts)
    ('bool', 3)
    >>> os.unlink(path)
    """

    def __init__(
        self,
        path,
        *,
        workers: int = 2,
        engine: str = "auto",
        shard_pairs: int = DEFAULT_SLOT_PAIRS,
        prepare: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_pairs < 1:
            raise ValueError(f"shard_pairs must be >= 1, got {shard_pairs}")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        from repro.core.serialize import load_mmap

        self._path = os.fspath(path)
        self._engine = engine
        self._shard_pairs = int(shard_pairs)
        # One address space: pin the shared kernel-thread budget before
        # any kernel (and hence numba's thread pool) starts.
        self.kernel_threads = native.pin_kernel_threads(
            native.thread_budget(workers)
        )
        self._index = load_mmap(self._path)
        self._n = self._index.graph.n
        self._prep_lock = threading.Lock()
        self._prepared = False
        if prepare:
            self._index.prepare_batch()
            self._prepared = True
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._cond = threading.Condition()
        self._tickets: dict[int, _Ticket] = {}
        self._next_ticket = 0
        self._closed = False
        self.pairs_served = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"kreach-serve-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for th in self._threads:
            th.start()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _ensure_prepared(self) -> None:
        """Build the lazy batch caches exactly once (``prepare=False``)."""
        if not self._prepared:
            with self._prep_lock:
                if not self._prepared:
                    self._index.prepare_batch()
                    self._prepared = True

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            ticket, positions, eng = task
            error = None
            try:
                self._ensure_prepared()
                pairs = np.column_stack(
                    (ticket.s[positions], ticket.t[positions])
                )
                verdicts = self._index.query_batch(
                    pairs, engine=eng or self._engine
                )
                # Disjoint positions per shard: no write overlaps a
                # sibling thread's, so no lock is needed for the scatter.
                ticket.out[positions] = verdicts
            except BaseException:
                error = traceback.format_exc()[-_MAX_ERROR_CHARS:]
            with self._cond:
                if error is not None:
                    ticket.error = ticket.error or error
                ticket.remaining -= 1
                self._cond.notify_all()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ThreadQueryServer is closed")

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def submit(self, pairs, *, engine: str | None = None) -> int:
        """Enqueue a batch; returns a ticket for :meth:`collect`.

        The batch is validated, pre-split by case code, and queued in
        shard-sized position chunks; worker threads start on it
        immediately, so further :meth:`submit` calls pipeline.
        """
        self._check_open()
        if engine is not None and engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        s, t = as_pair_arrays(pairs, self._n)
        ticket = _Ticket(self._next_ticket, s, t)
        self._next_ticket += 1
        self._tickets[ticket.id] = ticket
        if len(s):
            self._ensure_prepared()
            flags = self._index._flags()
            shares = _case_shards(
                case_codes(flags[s], flags[t]), len(self._threads)
            )
            chunks = [
                share[start : start + self._shard_pairs]
                for share in shares
                for start in range(0, len(share), self._shard_pairs)
            ]
            # Count every shard before the first enqueue: a worker that
            # finishes instantly must not see remaining hit zero early.
            ticket.remaining = len(chunks)
            for chunk in chunks:
                self._tasks.put((ticket, chunk, engine))
        self.pairs_served += len(s)
        return ticket.id

    def collect(self, ticket_id: int) -> np.ndarray:
        """Block until a ticket's shards are done; verdicts in input order.

        If any shard raised in a worker thread, the ticket settles (the
        pool stays serviceable) and the traceback is re-raised here as
        :class:`RuntimeError`.
        """
        self._check_open()
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise KeyError(f"unknown or already-collected ticket {ticket_id}")
        with self._cond:
            while ticket.remaining:
                self._cond.wait()
        del self._tickets[ticket_id]
        if ticket.error is not None:
            raise RuntimeError(
                f"query-server batch {ticket_id} failed in a worker:\n"
                f"{ticket.error}"
            )
        return ticket.out

    def query_batch(self, pairs, *, engine: str | None = None) -> np.ndarray:
        """Synchronous round-trip: ``collect(submit(pairs))``.

        Bit-identical to the in-process
        :meth:`~repro.core.kreach.KReachIndex.query_batch` on the same
        file, for every engine and worker count.
        """
        return self.collect(self.submit(pairs, engine=engine))

    # ------------------------------------------------------------------
    # Introspection & shutdown
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Pool size."""
        return len(self._threads)

    @property
    def index(self):
        """The shared mmap'd index every worker thread queries."""
        return self._index

    def stats(self) -> dict[str, int]:
        """Counters: pairs served, outstanding tickets, kernel budget."""
        return {
            "workers": len(self._threads),
            "pairs_served": self.pairs_served,
            "outstanding_tickets": len(self._tickets),
            "kernel_threads": self.kernel_threads,
        }

    def close(self) -> None:
        """Stop every worker thread and drop the index.  Idempotent.

        Queued shards are served before the stop sentinels; outstanding
        tickets therefore settle, but they can no longer be collected.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._tasks.put(None)
        for th in self._threads:
            th.join(timeout=10)
        self._tickets.clear()
        self._index = None

    def __enter__(self) -> "ThreadQueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"ThreadQueryServer(path={self._path!r}, "
            f"workers={len(self._threads)}, {state})"
        )
