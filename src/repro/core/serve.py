"""Shared-memory multi-process query serving over a v4 index file.

The batch engines in :mod:`repro.core.kreach` saturate exactly one CPU:
numpy kernels release the GIL only inside individual ufunc calls, so one
process is one core's worth of throughput no matter how many queries are
queued.  :class:`QueryServer` is the serving tier the ROADMAP's
"millions of users" story needs — a persistent pool of worker processes
that scales batch-query throughput with cores:

* **Shared index, O(1) worker start-up.**  Every worker opens the same
  :func:`~repro.core.serialize.save_mmap` file via
  :func:`~repro.core.serialize.load_mmap`; the OS page cache backs all of
  them with one copy of the clean index pages.  Nothing graph-sized is
  ever pickled to a worker — the re-pickle-per-pool-start pattern of
  :mod:`repro.core.parallel` (fine for one-shot construction, wrong for a
  serving loop) does not appear here.  Only the lazily built caches
  (link matrices, probe dicts) are per-worker, copy-on-build.
* **Shared-memory dispatch.**  Query pairs travel to workers — and
  verdicts travel back — through preallocated shared-memory ndarray
  slots; the per-worker control pipes carry only tiny ``(slot, count)``
  tuples (each an atomic pipe write — a crashed worker cannot tear or
  wedge the transport), so no per-batch serialization of sources,
  targets, or results ever happens.
* **Case-code pre-split.**  The parent splits each batch by Algorithm-2
  case code before sharding, so every worker receives the same *mix* of
  cases — no worker inherits all the expensive Case-4 pairs.  (Each
  share also happens to arrive case-grouped, a free by-product of the
  split; the engine's own dedup sort re-establishes its order either
  way.)
* **Pipelined mode.**  :meth:`submit` returns a ticket without waiting;
  slots are double-buffered per worker, so the next shard's pairs are
  being copied in while the previous shard computes.  :meth:`collect`
  reassembles a ticket's verdicts in input order.
* **Worker supervision.**  A worker that dies mid-stream (OOM-killed,
  crashed, or :meth:`restart_worker`) is respawned and its in-flight
  shards are re-dispatched; results from a dead generation are dropped
  by a generation tag, so answers stay exact across restarts.  A
  watchdog thread additionally detects *hung* (not just dead) workers
  via per-shard heartbeats and kill-restarts them through the same
  protocol, with capped exponential backoff on repeated failures; a
  pool that exhausts its restart budget degrades gracefully to serving
  in-process (see ``hang_timeout`` / ``max_restarts``).
* **Deadlines.**  ``submit`` / ``collect`` / ``query_batch`` accept
  ``timeout=`` (seconds from now) and ``deadline=`` (absolute
  ``time.monotonic()`` instant).  A ticket that cannot settle in time
  raises :class:`QueryTimeout`; the ticket stays collectable, so a
  caller may retry ``collect`` later without losing the batch.

:class:`ThreadQueryServer` is the single-address-space sibling for the
native kernel tier (:mod:`repro.native`): compiled ``nogil`` kernels
release the GIL for the whole loop, so a *thread* pool scales with cores
too — and threads share the one mmap'd index object directly, so there
are no shared-memory slots, no pickling, and no per-batch scatter copies
at all.  Workers pull case-grouped sub-batches off a queue and write
verdicts straight into the ticket's output array (shards own disjoint
position sets, so concurrent writes never overlap).  On the pure-numpy
tier the GIL serializes most of the work and the process pool remains
the scaling deployment; the thread server is still a valid (lower
overhead, shared everything) single-core server there.

**Thread-budget policy** (the oversubscription fix): a pool of W workers
whose kernels each spawn their own threads would run W × cpu_count
threads.  Both servers therefore pin the per-worker kernel-thread count
to ``max(1, cpu_count // W)`` (:func:`repro.native.thread_budget`) by
setting ``NUMBA_NUM_THREADS`` / ``OMP_NUM_THREADS`` **before** the first
kernel runs — numba reads the variable at first import and
``set_num_threads`` can only lower it afterwards.  Process workers pin
in the child before the index loads; the thread server pins once in its
constructor (one address space — the budget is shared by all its
workers).

Differential guarantee: ``server.query_batch(pairs)`` is bit-identical
to the in-process ``load_mmap(path).query_batch(pairs)`` for every
engine and worker count, for both servers (pinned by
``tests/core/test_serve.py`` / ``tests/core/test_thread_serve.py``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
import traceback
from collections import deque
from multiprocessing import connection as mp_connection
from multiprocessing import sharedctypes

import numpy as np

from repro import faults, native
from repro.core.batch import as_pair_arrays, case_codes
from repro.core.kreach import _ENGINES

__all__ = [
    "QueryServer",
    "ThreadQueryServer",
    "QueryTimeout",
    "UnknownTicketError",
]

#: Default pairs per shared-memory slot (the dispatch granularity).
DEFAULT_SLOT_PAIRS = 1 << 15

#: Default slots per worker — 2 double-buffers transfer against compute.
DEFAULT_SLOTS_PER_WORKER = 2

#: Seconds the result-drain loop waits before re-checking worker health.
_HEALTH_POLL_S = 1.0

#: Times one shard may be re-dispatched after killing its worker before
#: its ticket is failed — a poison shard (e.g. a batch whose kernel
#: deterministically OOMs the worker) must surface an error, not revive
#: workers forever.
_MAX_SHARD_RETRIES = 2

#: Tracebacks are truncated to this many characters before crossing a
#: control pipe, keeping every frame under PIPE_BUF so each send is one
#: atomic write (see :func:`_worker_main`).
_MAX_ERROR_CHARS = 2000

#: Ceiling on the exponential restart backoff (seconds).
_BACKOFF_CAP = 2.0


class QueryTimeout(TimeoutError):
    """A ticket missed its ``timeout=`` / ``deadline=`` bound.

    The ticket is *not* discarded: its shards keep computing (or keep
    being supervised) and a later :meth:`QueryServer.collect` without a
    deadline — or with a fresh one — can still retrieve the verdicts.
    """

    def __init__(self, ticket_id: int, waited: float) -> None:
        super().__init__(
            f"ticket {ticket_id} not settled after {waited:.3f}s; "
            "it remains collectable"
        )
        self.ticket_id = ticket_id
        self.waited = waited


class UnknownTicketError(KeyError):
    """``collect`` was asked for a ticket that does not exist.

    Either the id was never issued by this server or the ticket was
    already collected (tickets are single-use).  Subclasses
    :class:`KeyError` so pre-existing ``except KeyError`` callers keep
    working.
    """

    def __init__(self, ticket_id: int) -> None:
        super().__init__(
            f"unknown or already-collected ticket {ticket_id}"
        )
        self.ticket_id = ticket_id

    def __str__(self) -> str:  # KeyError would quote the message
        return self.args[0]


def _resolve_deadline(
    timeout: float | None, deadline: float | None
) -> float | None:
    """Combine ``timeout`` (relative) and ``deadline`` (monotonic) bounds."""
    dl = None
    if timeout is not None:
        dl = time.monotonic() + float(timeout)
    if deadline is not None:
        deadline = float(deadline)
        dl = deadline if dl is None else min(dl, deadline)
    return dl


def _merge_deadlines(a: float | None, b: float | None) -> float | None:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _worker_main(
    path,
    worker_id,
    generation,
    slots,
    slot_pairs,
    raw_in,
    raw_out,
    task_r,
    result_w,
    engine,
    prepare,
    kernel_threads,
):
    """Worker loop: open the shared file, then serve slots until ``None``.

    Runs in a child process.  All heavy state (the index) comes from the
    memory-mapped file — the only constructor traffic is this argument
    tuple.  Control messages travel over per-worker pipes and are sent
    *directly* (no mp.Queue feeder thread): every frame stays far below
    PIPE_BUF, so each send is one atomic pipe write — a crash can end the
    stream (EOF) but can never leave a torn frame, and there is no
    cross-process queue lock a dying worker could take to its grave (the
    failure mode that wedges a shared mp.Queue on a hard kill).  Every
    message carries ``(worker_id, generation)`` so the parent can discard
    echoes from a generation it has already restarted.
    """
    # Pin this worker's kernel-thread budget before anything imports
    # numba (see the module docstring's thread-budget policy) — with W
    # pool processes each running parallel kernels, the pins keep the
    # host at ~cpu_count threads total instead of W x cpu_count.
    native.pin_kernel_threads(kernel_threads)

    from repro.core.serialize import load_mmap

    def send(kind, detail=None):
        result_w.send((kind, worker_id, generation, detail))

    try:
        index = load_mmap(path)
        if prepare:
            index.prepare_batch()
    except BaseException:
        send("init_error", traceback.format_exc()[-_MAX_ERROR_CHARS:])
        return
    pairs_view = np.frombuffer(raw_in, dtype=np.int64).reshape(
        slots, slot_pairs, 2
    )
    out_view = np.frombuffer(raw_out, dtype=np.uint8).reshape(slots, slot_pairs)
    send("ready")
    while True:
        try:
            msg = task_r.recv()
        except (EOFError, OSError):
            break  # parent vanished; exit quietly
        if msg is None:
            break
        slot, count, eng = msg
        # Shard-progress heartbeat: the parent's watchdog distinguishes
        # "computing" from "hung" by the age of the latest beat.
        send("start", slot)
        try:
            if faults.ENABLED:
                faults.fire("serve.worker_exit")  # os._exit, like an OOM kill
                faults.fire("serve.worker_hang")  # park for the watchdog
            verdicts = index.query_batch(
                pairs_view[slot, :count], engine=eng or engine
            )
            out_view[slot, :count] = verdicts
            send("done", slot)
        except BaseException:
            send(
                "task_error",
                (slot, traceback.format_exc()[-_MAX_ERROR_CHARS:]),
            )


def _case_shards(codes: np.ndarray, count: int) -> list[np.ndarray]:
    """Per-worker position arrays, case-balanced.

    For each Algorithm-2 case, its pairs are split contiguously across
    the pool — every worker gets ~1/W of each case, so the load stays
    balanced even though Case 4 costs orders of magnitude more than
    Case 1.  (The case-by-case ordering of each share is a free
    by-product, not something workers rely on.)
    """
    if count == 1:
        return [np.arange(len(codes), dtype=np.int64)]
    shares: list[list[np.ndarray]] = [[] for _ in range(count)]
    for case in (1, 2, 3, 4):
        positions = np.flatnonzero(codes == case)
        if not len(positions):
            continue
        for i, part in enumerate(np.array_split(positions, count)):
            if len(part):
                shares[i].append(part)
    return [
        np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)
        for parts in shares
    ]


class _Ticket:
    """One submitted batch: its output buffer and outstanding shard count."""

    __slots__ = ("id", "s", "t", "out", "remaining", "error", "deadline")

    def __init__(
        self,
        ticket_id: int,
        s: np.ndarray,
        t: np.ndarray,
        deadline: float | None = None,
    ) -> None:
        self.id = ticket_id
        self.s = s
        self.t = t
        self.out = np.zeros(len(s), dtype=bool)
        self.remaining = 0
        self.error: str | None = None
        self.deadline = deadline  # absolute time.monotonic() bound, if any


class _Worker:
    """Parent-side bookkeeping for one worker process."""

    __slots__ = (
        "id",
        "raw_in",
        "raw_out",
        "in_view",
        "out_view",
        "task_w",
        "result_r",
        "awaiting_ready",
        "process",
        "generation",
        "free_slots",
        "inflight",
        "backlog",
        "reviving",
        "last_beat",
        "strikes",
        "restarts",
    )

    def __init__(self, worker_id: int, slots: int, slot_pairs: int) -> None:
        self.id = worker_id
        self.raw_in = sharedctypes.RawArray("b", slots * slot_pairs * 2 * 8)
        self.raw_out = sharedctypes.RawArray("b", slots * slot_pairs)
        self.in_view = np.frombuffer(self.raw_in, dtype=np.int64).reshape(
            slots, slot_pairs, 2
        )
        self.out_view = np.frombuffer(self.raw_out, dtype=np.uint8).reshape(
            slots, slot_pairs
        )
        self.task_w = None  # parent's send end of the task pipe
        self.result_r = None  # parent's receive end of the result pipe
        self.awaiting_ready = False
        self.process = None
        self.generation = -1
        self.free_slots: list[int] = list(range(slots))
        # slot -> (ticket, positions, engine, attempts); shards
        # re-dispatched (attempts + 1) on a restart, failed past the cap.
        self.inflight: dict[
            int, tuple[_Ticket, np.ndarray, str | None, int]
        ] = {}
        # (ticket, positions, engine, attempts) awaiting a free slot.
        self.backlog: deque[tuple[_Ticket, np.ndarray, str | None, int]] = (
            deque()
        )
        self.reviving = False
        self.last_beat = 0.0  # monotonic time of the latest heartbeat
        self.strikes = 0  # consecutive revivals without a completed shard
        self.restarts = 0  # lifetime revivals of this worker slot


class QueryServer:
    """A persistent multi-process batch-query pool over one v4 file.

    Parameters
    ----------
    path:
        A file written by :func:`~repro.core.serialize.save_mmap`.  Each
        worker (and the parent, for the case pre-split) opens it
        zero-copy; the kernel shares the clean pages between them.
    workers:
        Pool size.  Throughput scales with cores until the memory bus
        saturates; 1 is a valid (supervised, out-of-process) deployment.
    engine:
        Default engine workers pass to
        :meth:`~repro.core.kreach.KReachIndex.query_batch`; individual
        calls may override it.
    slot_pairs:
        Capacity of one shared-memory slot.  Batches larger than one
        slot are sharded transparently; bigger slots amortize dispatch,
        smaller ones pipeline sooner.
    slots_per_worker:
        Shared-memory slots per worker (2 = double buffering: the parent
        fills one slot while the worker computes the other).
    prepare:
        Run :meth:`~repro.core.kreach.KReachIndex.prepare_batch` in each
        worker at start-up so steady-state queries never pay the lazy
        link-matrix build.
    start_method:
        Multiprocessing start method; default ``'fork'`` where available
        (workers then inherit nothing index-sized — the index comes from
        the file either way).
    hang_timeout:
        Seconds of heartbeat silence from a worker *holding in-flight
        shards* before the watchdog declares it hung and kills it (the
        generation protocol then re-dispatches its shards exactly as for
        a crash).  Must exceed the worst-case single-shard compute time;
        ``None`` disables the watchdog (dead workers are still detected
        by the drain paths).
    max_restarts:
        Total worker restarts (crash, hang, or explicit) this pool will
        attempt before degrading to in-process serving; ``None`` means
        unlimited.  Degraded mode answers every query with the parent's
        own index view — slower, never wrong.
    restart_backoff:
        Base of the capped exponential backoff between *consecutive*
        failed revivals of the same worker (first revival is immediate).
    shutdown_grace:
        Seconds a worker gets to exit cleanly before ``close`` (or a
        revival) escalates to ``terminate`` and then ``kill``.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.core import KReachIndex, save_mmap
    >>> from repro.graph.generators import gnp_digraph
    >>> g = gnp_digraph(60, 0.08, seed=1)
    >>> fd, path = tempfile.mkstemp(suffix=".kr4"); os.close(fd)
    >>> save_mmap(KReachIndex(g, 3), path)
    >>> with QueryServer(path, workers=2) as server:
    ...     verdicts = server.query_batch([(0, 5), (5, 0), (3, 3)])
    >>> verdicts.dtype.name, len(verdicts)
    ('bool', 3)
    >>> os.unlink(path)
    """

    def __init__(
        self,
        path,
        *,
        workers: int = 2,
        engine: str = "auto",
        slot_pairs: int = DEFAULT_SLOT_PAIRS,
        slots_per_worker: int = DEFAULT_SLOTS_PER_WORKER,
        prepare: bool = True,
        start_method: str | None = None,
        hang_timeout: float | None = 30.0,
        max_restarts: int | None = 16,
        restart_backoff: float = 0.05,
        shutdown_grace: float = 5.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if hang_timeout is not None and hang_timeout <= 0:
            raise ValueError(
                f"hang_timeout must be positive or None, got {hang_timeout}"
            )
        if slot_pairs < 1:
            raise ValueError(f"slot_pairs must be >= 1, got {slot_pairs}")
        if slots_per_worker < 1:
            raise ValueError(
                f"slots_per_worker must be >= 1, got {slots_per_worker}"
            )
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        from repro.core.serialize import load_mmap

        self._path = os.fspath(path)
        self._engine = engine
        self._slot_pairs = int(slot_pairs)
        self._slots = int(slots_per_worker)
        self._prepare = bool(prepare)
        # The parent's own O(header) view: cover flags for the case
        # pre-split and input validation.  It never runs a kernel.
        self._index = load_mmap(self._path)
        self._n = self._index.graph.n
        if start_method is None:
            start_method = (
                "fork" if "fork" in mp.get_all_start_methods() else "spawn"
            )
        self._ctx = mp.get_context(start_method)
        self._workers = [
            _Worker(i, self._slots, self._slot_pairs) for i in range(workers)
        ]
        self._tickets: dict[int, _Ticket] = {}
        self._next_ticket = 0
        self._closed = False
        self._hang_timeout = hang_timeout
        self._max_restarts = max_restarts
        self._restart_backoff = float(restart_backoff)
        self._shutdown_grace = float(shutdown_grace)
        self._degraded = False
        self.restarts = 0
        self.pairs_served = 0
        self.timeouts = 0
        self.hangs = 0
        self._watchdog_stop = threading.Event()
        self._watchdog: threading.Thread | None = None
        try:
            for w in self._workers:
                self._spawn(w)
            self._await_ready(self._workers)
        except BaseException:
            self.close()
            raise
        if hang_timeout is not None:
            self._watchdog = threading.Thread(
                target=self._watch,
                name="kreach-serve-watchdog",
                daemon=True,
            )
            self._watchdog.start()

    # ------------------------------------------------------------------
    # Worker lifecycle
    # ------------------------------------------------------------------
    def _spawn(self, w: _Worker) -> None:
        """Start (or restart) one worker process on a fresh generation.

        Each generation gets fresh per-worker control pipes: a crashing
        worker can affect at most its own channel, and replacing the
        pipes on revive discards any stale bytes along with it.
        """
        w.generation += 1
        task_r, task_w = self._ctx.Pipe(duplex=False)
        result_r, result_w = self._ctx.Pipe(duplex=False)
        w.task_w = task_w
        w.result_r = result_r
        w.awaiting_ready = True
        w.last_beat = time.monotonic()  # fresh generation, fresh clock
        w.process = self._ctx.Process(
            target=_worker_main,
            args=(
                self._path,
                w.id,
                w.generation,
                self._slots,
                self._slot_pairs,
                w.raw_in,
                w.raw_out,
                task_r,
                result_w,
                self._engine,
                self._prepare,
                native.thread_budget(len(self._workers)),
            ),
            daemon=True,
        )
        w.process.start()
        # The child holds its own copies; closing the parent's lets a
        # dead worker's result pipe read EOF instead of blocking.
        task_r.close()
        result_w.close()

    def _pump(self, timeout: float) -> bool:
        """Receive and apply every available worker message.

        Waits up to ``timeout`` for traffic on the per-worker result
        connections, then drains each readable one frame by frame
        (frames are atomic single writes, so a readable connection
        always yields complete messages without blocking).  A connection
        at EOF — its worker died — is closed and detached; the liveness
        paths revive the worker with fresh pipes.  Returns whether any
        message was handled.
        """
        conns = {
            w.result_r: w for w in self._workers if w.result_r is not None
        }
        if not conns:
            return False
        handled = False
        for conn in mp_connection.wait(list(conns), timeout):
            w = conns[conn]
            while True:
                try:
                    if not conn.poll(0):
                        break
                    msg = conn.recv()
                except (EOFError, OSError):
                    conn.close()
                    if w.result_r is conn:
                        w.result_r = None
                    break
                handled = True
                self._handle_message(msg)
        return handled

    def _await_ready(self, pending: list[_Worker]) -> None:
        """Block until every worker in ``pending`` reports ready.

        Other traffic (``done`` results from healthy workers) arriving
        meanwhile is handled normally, never dropped.
        """
        while any(w.awaiting_ready for w in pending):
            if self._pump(_HEALTH_POLL_S):
                continue
            for w in pending:
                if w.awaiting_ready and not w.process.is_alive():
                    self._pump(0)  # a final init_error may still be queued
                    if w.awaiting_ready:
                        raise RuntimeError(
                            f"query-server worker {w.id} died during start-up"
                        )

    def _watch(self) -> None:
        """Watchdog loop: kill workers whose heartbeats went silent.

        Detection-only by design — killing the hung process makes its
        result pipe hit EOF, which the single-threaded drain paths
        already translate into a revival with re-dispatch, so the
        watchdog never touches pipes or worker bookkeeping from this
        thread.  A worker is only suspect while it *holds in-flight
        shards*; an idle worker may be silent forever.
        """
        interval = max(0.05, self._hang_timeout / 4.0)
        while not self._watchdog_stop.wait(interval):
            now = time.monotonic()
            for w in self._workers:
                process = w.process
                if (
                    process is None
                    or not process.is_alive()
                    or w.reviving
                    or not w.inflight
                ):
                    continue
                result_r = w.result_r
                try:
                    if result_r is not None and result_r.poll(0):
                        # Undrained traffic: progressing, parent just
                        # hasn't read the beats yet.
                        continue
                except (OSError, ValueError):
                    continue  # channel being torn down concurrently
                if now - w.last_beat > self._hang_timeout:
                    self.hangs += 1
                    try:
                        process.kill()
                    except (OSError, ValueError):
                        pass

    def _reap(self, w: _Worker, grace: float | None = None) -> None:
        """Ensure a worker process is gone: join, terminate, then kill."""
        process = w.process
        if process is None:
            return
        process.join(timeout=self._shutdown_grace if grace is None else grace)
        if process.is_alive():
            process.terminate()
            process.join(timeout=1.0)
        if process.is_alive():
            process.kill()
            process.join(timeout=1.0)

    def _run_local(self, ticket: _Ticket, positions, eng) -> None:
        """Serve one shard on the parent's own index view (degraded mode)."""
        try:
            pairs = np.column_stack((ticket.s[positions], ticket.t[positions]))
            ticket.out[positions] = self._index.query_batch(
                pairs, engine=eng or self._engine
            )
        except BaseException:
            ticket.error = (
                ticket.error or traceback.format_exc()[-_MAX_ERROR_CHARS:]
            )
        ticket.remaining -= 1

    def _degrade(self) -> None:
        """Give up on the pool: serve everything in-process from now on.

        The restart budget is spent — rather than reviving workers in a
        loop (or deadlocking the callers), every outstanding shard is
        answered with the parent's own index view and future submissions
        bypass the pool entirely.  Slower, never wrong; ``stats()``
        reports ``health='degraded'``.
        """
        if self._degraded:
            return
        self._degraded = True
        self._watchdog_stop.set()
        for w in self._workers:
            for slot in sorted(w.inflight):
                ticket, positions, eng, _ = w.inflight.pop(slot)
                w.backlog.appendleft((ticket, positions, eng, 0))
            w.free_slots = list(range(self._slots))
            while w.backlog:
                ticket, positions, eng, _ = w.backlog.popleft()
                self._run_local(ticket, positions, eng)
            self._reap(w, grace=0.1)
            for conn in (w.task_w, w.result_r):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            w.task_w = None
            w.result_r = None

    def _revive(self, w: _Worker) -> None:
        """Respawn a dead worker and requeue everything it was holding."""
        if self._degraded:
            return
        self._reap(w)
        self.restarts += 1
        w.strikes += 1
        w.restarts += 1
        w.reviving = True
        try:
            # Settle whatever the old generation already delivered before
            # its channel is torn down — a gracefully drained worker
            # completed its queued shards on the way out, and dropping
            # those answers would recompute them for nothing.
            if w.result_r is not None:
                try:
                    while w.result_r.poll(0):
                        self._handle_message(w.result_r.recv())
                except (EOFError, OSError):
                    pass
                w.result_r.close()
                w.result_r = None
            if w.task_w is not None:
                try:
                    w.task_w.close()
                except OSError:
                    pass
                w.task_w = None
            # Remaining in-flight shards (whose results never arrived) go
            # back to the front of the backlog; their slots are free
            # again (the new generation never saw them).  A shard that
            # has already been re-dispatched past the retry cap fails
            # its ticket instead — it is the likely worker-killer, and
            # requeueing it forever would revive workers in a loop.
            for slot in sorted(w.inflight):
                ticket, positions, eng, attempts = w.inflight.pop(slot)
                if attempts >= _MAX_SHARD_RETRIES:
                    ticket.error = ticket.error or (
                        f"shard of {len(positions)} pairs was re-dispatched "
                        f"{attempts} times after killing its worker"
                    )
                    ticket.remaining -= 1
                else:
                    w.backlog.appendleft(
                        (ticket, positions, eng, attempts + 1)
                    )
            w.free_slots = list(range(self._slots))
            if (
                self._max_restarts is not None
                and self.restarts > self._max_restarts
            ):
                self._degrade()
                return
            if w.strikes >= 2:
                # Same worker failing repeatedly: back off before the
                # respawn so a crash loop cannot spin the host.
                time.sleep(
                    min(
                        _BACKOFF_CAP,
                        self._restart_backoff * (2 ** (w.strikes - 2)),
                    )
                )
            try:
                self._spawn(w)
                self._await_ready([w])
            except RuntimeError:
                # The replacement itself failed to come up; spend the
                # rest of the budget elsewhere or degrade now.
                self._degrade()
                return
        finally:
            w.reviving = False
        self._dispatch(w)

    def restart_worker(self, worker_id: int) -> None:
        """Restart one worker, re-dispatching its in-flight work.

        Safe mid-stream: the worker is drained first (a stop sentinel,
        then a bounded join) so in-progress shards finish; only a hung
        worker is terminated.  Results it already sent settle normally —
        a shard is only re-dispatched if its ``done`` message never
        arrived, and the generation tag keeps the two paths from
        double-counting.  This is also the recovery path the server
        takes on its own when it notices a worker died.
        """
        self._check_open()
        w = self._workers[worker_id]
        if w.process is not None and w.process.is_alive():
            if w.task_w is not None:
                try:
                    w.task_w.send(None)
                except (OSError, ValueError):
                    pass
        self._revive(w)  # _reap inside escalates join -> terminate -> kill

    # ------------------------------------------------------------------
    # Dispatch plumbing
    # ------------------------------------------------------------------
    def _shard(self, codes: np.ndarray) -> list[np.ndarray]:
        """Per-worker position arrays, case-balanced (see :func:`_case_shards`)."""
        return _case_shards(codes, len(self._workers))

    def _dispatch(self, w: _Worker) -> None:
        """Move backlog shards into free slots and notify the worker.

        A worker that died while idle is revived *here*, before any
        shard lands in its slots — otherwise the death would only be
        noticed by the blocking drain's health poll, a guaranteed
        latency spike on the first post-death batch.
        """
        if self._degraded:
            while w.backlog:
                ticket, positions, eng, _ = w.backlog.popleft()
                self._run_local(ticket, positions, eng)
            return
        if w.reviving:
            return  # _revive re-dispatches once the new generation is up
        if w.backlog and (
            w.process is None
            or w.result_r is None
            or not w.process.is_alive()
        ):
            self._revive(w)  # _revive re-enters _dispatch on the new process
            return
        while w.free_slots and w.backlog:
            ticket, positions, eng, attempts = w.backlog.popleft()
            slot = w.free_slots.pop()
            count = len(positions)
            w.in_view[slot, :count, 0] = ticket.s[positions]
            w.in_view[slot, :count, 1] = ticket.t[positions]
            w.inflight[slot] = (ticket, positions, eng, attempts)
            try:
                w.task_w.send((slot, count, eng))
            except (OSError, ValueError):
                # Died between the liveness check and the send: roll the
                # shard back and restart the worker.
                del w.inflight[slot]
                w.free_slots.append(slot)
                w.backlog.appendleft((ticket, positions, eng, attempts))
                self._revive(w)
                return

    def _handle_message(self, msg) -> tuple[str, int, int]:
        """Apply one result-queue message; returns (kind, worker, gen).

        Messages from a generation the parent has already replaced are
        reported as ``'stale'`` and otherwise ignored — their shards were
        re-dispatched when the worker was revived.
        """
        kind, worker_id, generation, detail = msg
        w = self._workers[worker_id]
        if generation != w.generation:
            return ("stale", worker_id, generation)
        # Any current-generation message is proof of life.  "start" is
        # sent for exactly this purpose — it needs no other handling.
        w.last_beat = time.monotonic()
        if kind == "ready":
            w.awaiting_ready = False
        if kind == "init_error":
            raise RuntimeError(
                f"query-server worker {worker_id} failed to start:\n{detail}"
            )
        if kind in ("done", "task_error"):
            w.strikes = 0  # completed a shard: the crash-loop backoff resets
            slot, error = (detail, None) if kind == "done" else detail
            ticket, positions, _, _ = w.inflight.pop(slot)
            count = len(positions)
            if error is None:
                ticket.out[positions] = w.out_view[slot, :count] != 0
            else:
                # The shard failed in the worker (the worker itself is
                # alive).  Fail only this ticket — the slot is recovered
                # and the pool keeps serving other tickets; collect()
                # raises once the ticket settles.
                ticket.error = ticket.error or error
            ticket.remaining -= 1
            w.free_slots.append(slot)
            self._dispatch(w)
        return (kind, worker_id, generation)

    def _drain(self, block: bool, wait: float | None = None) -> bool:
        """Process available worker messages; returns whether any arrived.

        On a quiet interval with ``block=True`` the pool is
        health-checked and any dead worker revived (its shards
        re-dispatched), so a caller looping on :meth:`collect` can never
        deadlock on a crashed worker.  ``wait`` caps the blocking
        interval (deadline-bounded collects poll at least that often).
        """
        interval = _HEALTH_POLL_S if block else 0
        if wait is not None:
            interval = max(0.0, min(interval, wait))
        handled = self._pump(interval)
        if not handled and block:
            for w in self._workers:
                if (w.inflight or w.backlog) and (
                    w.result_r is None or not w.process.is_alive()
                ):
                    self._revive(w)
        return handled

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("QueryServer is closed")

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def submit(
        self,
        pairs,
        *,
        engine: str | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> int:
        """Enqueue a batch; returns a ticket for :meth:`collect`.

        The batch is validated, pre-split by case code, sharded across
        the pool in slot-sized chunks, and the first chunks start
        transferring immediately — call :meth:`submit` again before
        :meth:`collect` to pipeline batches through the pool.

        ``timeout`` (seconds from now) / ``deadline`` (absolute
        ``time.monotonic()``) attach a bound to the *ticket*: every
        later ``collect`` honors it, combined with the collect call's
        own bound, whichever is tighter.
        """
        self._check_open()
        if engine is not None and engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        s, t = as_pair_arrays(pairs, self._n)
        ticket = _Ticket(
            self._next_ticket, s, t, _resolve_deadline(timeout, deadline)
        )
        self._next_ticket += 1
        self._tickets[ticket.id] = ticket
        if len(s):
            if self._degraded:
                ticket.remaining = 1
                self._run_local(
                    ticket, np.arange(len(s), dtype=np.int64), engine
                )
            else:
                flags = self._index._flags()
                shares = self._shard(case_codes(flags[s], flags[t]))
                for w, share in zip(self._workers, shares):
                    for start in range(0, len(share), self._slot_pairs):
                        w.backlog.append(
                            (
                                ticket,
                                share[start : start + self._slot_pairs],
                                engine,
                                0,
                            )
                        )
                        ticket.remaining += 1
                    self._dispatch(w)
        self.pairs_served += len(s)
        if not self._degraded:
            while self._drain(block=False):  # opportunistic, non-blocking
                pass
        return ticket.id

    def collect(
        self,
        ticket_id: int,
        *,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Block until a ticket's shards are done; verdicts in input order.

        If any shard raised inside a worker, the ticket settles (its
        slots are recovered, the pool stays serviceable) and the worker's
        traceback is re-raised here as :class:`RuntimeError`.  An
        unknown or already-collected id raises
        :class:`UnknownTicketError`.

        With a ``timeout`` / ``deadline`` (combined with any bound the
        ticket carries from :meth:`submit`), a ticket that has not
        settled by the bound raises :class:`QueryTimeout` — the ticket
        stays collectable, its shards keep being served and supervised.
        """
        self._check_open()
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise UnknownTicketError(ticket_id)
        bound = _merge_deadlines(
            ticket.deadline, _resolve_deadline(timeout, deadline)
        )
        started = time.monotonic()
        while ticket.remaining:
            if bound is None:
                self._drain(block=True)
                continue
            now = time.monotonic()
            if now >= bound:
                self.timeouts += 1
                raise QueryTimeout(ticket_id, now - started)
            self._drain(block=True, wait=bound - now)
        del self._tickets[ticket_id]
        if ticket.error is not None:
            raise RuntimeError(
                f"query-server batch {ticket_id} failed in a worker:\n"
                f"{ticket.error}"
            )
        return ticket.out

    def query_batch(
        self,
        pairs,
        *,
        engine: str | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Synchronous round-trip: ``collect(submit(pairs))``.

        Bit-identical to the in-process
        :meth:`~repro.core.kreach.KReachIndex.query_batch` on the same
        file, for every engine and worker count.  ``timeout`` /
        ``deadline`` bound the round-trip (:class:`QueryTimeout`).
        """
        return self.collect(
            self.submit(pairs, engine=engine, timeout=timeout, deadline=deadline)
        )

    # ------------------------------------------------------------------
    # Introspection & shutdown
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Pool size."""
        return len(self._workers)

    @property
    def index(self):
        """The parent's zero-copy view of the served index (read-only use)."""
        return self._index

    def stats(self) -> dict:
        """Counters plus pool health (``health`` / ``degraded``)."""
        return {
            "workers": len(self._workers),
            "pairs_served": self.pairs_served,
            "outstanding_tickets": len(self._tickets),
            "restarts": self.restarts,
            "worker_restarts": [w.restarts for w in self._workers],
            "timeouts": self.timeouts,
            "hangs": self.hangs,
            "degraded": self._degraded,
            "health": "degraded" if self._degraded else "ok",
        }

    def close(self) -> None:
        """Stop every worker and release the control pipes.  Idempotent.

        Escalates per worker: a stop sentinel and a bounded join first,
        then ``terminate`` (SIGTERM), then ``kill`` (SIGKILL) — a hung
        worker cannot leak past close.
        """
        if self._closed:
            return
        self._closed = True
        self._watchdog_stop.set()
        if self._watchdog is not None:
            self._watchdog.join(timeout=2.0)
            self._watchdog = None
        for w in self._workers:
            if w.process is None:
                continue
            if w.process.is_alive() and w.task_w is not None:
                try:
                    w.task_w.send(None)
                except (OSError, ValueError):
                    pass
            self._reap(w)
            for conn in (w.task_w, w.result_r):
                if conn is not None:
                    try:
                        conn.close()
                    except OSError:
                        pass
            w.task_w = None
            w.result_r = None
        self._tickets.clear()
        # Drop the parent's mapping of the served file so the mmap can be
        # collected — on platforms where a mapped file cannot be deleted
        # (Windows), a TemporaryDirectory holding the .kr4 must be able
        # to clean up once the server is closed.
        self._index = None

    def __enter__(self) -> "QueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"QueryServer(path={self._path!r}, workers={len(self._workers)}, "
            f"{state})"
        )


class ThreadQueryServer:
    """A thread-pool batch-query server sharing one mmap'd v4 index.

    The zero-IPC sibling of :class:`QueryServer`, built for the native
    kernel tier: every worker thread calls ``query_batch`` on the *same*
    index object in this address space, so there are no shared-memory
    slots, no pickling, and no result scatter — workers pull
    case-grouped sub-batches from a queue and write verdicts directly
    into the ticket's preallocated output array (shards hold disjoint
    positions, so the concurrent writes never overlap).  With compiled
    ``nogil`` kernels the GIL is released for the whole kernel loop and
    throughput scales with cores; on the pure-numpy tier the GIL
    serializes most of the work, making this a low-overhead single-core
    server (use :class:`QueryServer` to scale there).

    The constructor pins the kernel-thread budget for the whole process
    to ``max(1, cpu_count // workers)`` — see the module docstring's
    thread-budget policy.

    Same ``submit`` / ``collect`` / ``query_batch`` / ``stats`` /
    context-manager API as :class:`QueryServer`, so benchmarks and
    examples can swap the two; verdicts are bit-identical to the
    in-process index for every engine and worker count.

    Parameters
    ----------
    path:
        A file written by :func:`~repro.core.serialize.save_mmap`.
    workers:
        Thread-pool size.
    engine:
        Default engine for :meth:`~repro.core.kreach.KReachIndex.query_batch`;
        individual calls may override it.
    shard_pairs:
        Maximum pairs per queued sub-batch.  Batches larger than one
        shard per worker split further so :meth:`submit` pipelines.
    prepare:
        Build the lazy batch caches up front (in the constructor) so
        worker threads never race a lazy build; ``False`` defers the
        build to a lock-guarded first use.

    Examples
    --------
    >>> import tempfile, os
    >>> from repro.core import KReachIndex, save_mmap
    >>> from repro.graph.generators import gnp_digraph
    >>> g = gnp_digraph(60, 0.08, seed=1)
    >>> fd, path = tempfile.mkstemp(suffix=".kr4"); os.close(fd)
    >>> save_mmap(KReachIndex(g, 3), path)
    >>> with ThreadQueryServer(path, workers=2) as server:
    ...     verdicts = server.query_batch([(0, 5), (5, 0), (3, 3)])
    >>> verdicts.dtype.name, len(verdicts)
    ('bool', 3)
    >>> os.unlink(path)
    """

    def __init__(
        self,
        path,
        *,
        workers: int = 2,
        engine: str = "auto",
        shard_pairs: int = DEFAULT_SLOT_PAIRS,
        prepare: bool = True,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if shard_pairs < 1:
            raise ValueError(f"shard_pairs must be >= 1, got {shard_pairs}")
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        from repro.core.serialize import load_mmap

        self._path = os.fspath(path)
        self._engine = engine
        self._shard_pairs = int(shard_pairs)
        # One address space: pin the shared kernel-thread budget before
        # any kernel (and hence numba's thread pool) starts.
        self.kernel_threads = native.pin_kernel_threads(
            native.thread_budget(workers)
        )
        self._index = load_mmap(self._path)
        self._n = self._index.graph.n
        self._prep_lock = threading.Lock()
        self._prepared = False
        if prepare:
            self._index.prepare_batch()
            self._prepared = True
        self._tasks: queue.SimpleQueue = queue.SimpleQueue()
        self._cond = threading.Condition()
        self._tickets: dict[int, _Ticket] = {}
        self._next_ticket = 0
        self._closed = False
        self.pairs_served = 0
        self.timeouts = 0
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"kreach-serve-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for th in self._threads:
            th.start()

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _ensure_prepared(self) -> None:
        """Build the lazy batch caches exactly once (``prepare=False``)."""
        if not self._prepared:
            with self._prep_lock:
                if not self._prepared:
                    self._index.prepare_batch()
                    self._prepared = True

    def _worker_loop(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            ticket, positions, eng = task
            error = None
            try:
                # Only the hang site fires here: thread workers share the
                # test process, so an injected os._exit would kill it —
                # worker_exit chaos belongs to the process pool.
                if faults.ENABLED:
                    faults.fire("serve.worker_hang")
                self._ensure_prepared()
                pairs = np.column_stack(
                    (ticket.s[positions], ticket.t[positions])
                )
                verdicts = self._index.query_batch(
                    pairs, engine=eng or self._engine
                )
                # Disjoint positions per shard: no write overlaps a
                # sibling thread's, so no lock is needed for the scatter.
                ticket.out[positions] = verdicts
            except BaseException:
                error = traceback.format_exc()[-_MAX_ERROR_CHARS:]
            with self._cond:
                if error is not None:
                    ticket.error = ticket.error or error
                ticket.remaining -= 1
                self._cond.notify_all()

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("ThreadQueryServer is closed")

    # ------------------------------------------------------------------
    # Query API
    # ------------------------------------------------------------------
    def submit(
        self,
        pairs,
        *,
        engine: str | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> int:
        """Enqueue a batch; returns a ticket for :meth:`collect`.

        The batch is validated, pre-split by case code, and queued in
        shard-sized position chunks; worker threads start on it
        immediately, so further :meth:`submit` calls pipeline.
        ``timeout`` / ``deadline`` attach a bound every later
        ``collect`` honors (see :class:`QueryTimeout`).
        """
        self._check_open()
        if engine is not None and engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        s, t = as_pair_arrays(pairs, self._n)
        ticket = _Ticket(
            self._next_ticket, s, t, _resolve_deadline(timeout, deadline)
        )
        self._next_ticket += 1
        self._tickets[ticket.id] = ticket
        if len(s):
            self._ensure_prepared()
            flags = self._index._flags()
            shares = _case_shards(
                case_codes(flags[s], flags[t]), len(self._threads)
            )
            chunks = [
                share[start : start + self._shard_pairs]
                for share in shares
                for start in range(0, len(share), self._shard_pairs)
            ]
            # Count every shard before the first enqueue: a worker that
            # finishes instantly must not see remaining hit zero early.
            ticket.remaining = len(chunks)
            for chunk in chunks:
                self._tasks.put((ticket, chunk, engine))
        self.pairs_served += len(s)
        return ticket.id

    def collect(
        self,
        ticket_id: int,
        *,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Block until a ticket's shards are done; verdicts in input order.

        If any shard raised in a worker thread, the ticket settles (the
        pool stays serviceable) and the traceback is re-raised here as
        :class:`RuntimeError`.  An unknown or already-collected id
        raises :class:`UnknownTicketError`; a missed ``timeout`` /
        ``deadline`` bound (combined with any bound from
        :meth:`submit`) raises :class:`QueryTimeout` and leaves the
        ticket collectable.
        """
        self._check_open()
        ticket = self._tickets.get(ticket_id)
        if ticket is None:
            raise UnknownTicketError(ticket_id)
        bound = _merge_deadlines(
            ticket.deadline, _resolve_deadline(timeout, deadline)
        )
        started = time.monotonic()
        with self._cond:
            while ticket.remaining:
                if bound is None:
                    self._cond.wait()
                    continue
                now = time.monotonic()
                if now >= bound:
                    self.timeouts += 1
                    raise QueryTimeout(ticket_id, now - started)
                self._cond.wait(timeout=bound - now)
        del self._tickets[ticket_id]
        if ticket.error is not None:
            raise RuntimeError(
                f"query-server batch {ticket_id} failed in a worker:\n"
                f"{ticket.error}"
            )
        return ticket.out

    def query_batch(
        self,
        pairs,
        *,
        engine: str | None = None,
        timeout: float | None = None,
        deadline: float | None = None,
    ) -> np.ndarray:
        """Synchronous round-trip: ``collect(submit(pairs))``.

        Bit-identical to the in-process
        :meth:`~repro.core.kreach.KReachIndex.query_batch` on the same
        file, for every engine and worker count.  ``timeout`` /
        ``deadline`` bound the round-trip (:class:`QueryTimeout`).
        """
        return self.collect(
            self.submit(pairs, engine=engine, timeout=timeout, deadline=deadline)
        )

    # ------------------------------------------------------------------
    # Introspection & shutdown
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Pool size."""
        return len(self._threads)

    @property
    def index(self):
        """The shared mmap'd index every worker thread queries."""
        return self._index

    def stats(self) -> dict:
        """Counters: pairs served, outstanding tickets, kernel budget."""
        return {
            "workers": len(self._threads),
            "pairs_served": self.pairs_served,
            "outstanding_tickets": len(self._tickets),
            "kernel_threads": self.kernel_threads,
            "restarts": 0,  # threads are never respawned
            "worker_restarts": [0] * len(self._threads),
            "timeouts": self.timeouts,
            "degraded": False,  # threads share our fate: no degraded mode
            "health": "ok",
        }

    def close(self) -> None:
        """Stop every worker thread and drop the index.  Idempotent.

        Queued shards are served before the stop sentinels; outstanding
        tickets therefore settle, but they can no longer be collected.
        """
        if self._closed:
            return
        self._closed = True
        for _ in self._threads:
            self._tasks.put(None)
        for th in self._threads:
            th.join(timeout=10)
        self._tickets.clear()
        self._index = None

    def __enter__(self) -> "ThreadQueryServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else "open"
        return (
            f"ThreadQueryServer(path={self._path!r}, "
            f"workers={len(self._threads)}, {state})"
        )
