"""The (h,k)-reach index (Definition 2, Algorithm 3, §5 of the paper).

Trades query time for index size: the vertex cover of k-reach is replaced
by an **h-hop vertex cover** (every simple directed path of length ``h``
meets the cover), which Corollary 1 shows is never larger.  The index graph
``H = (V_H, E_H, ω_H)`` stores, for cover pairs, the shortest distance
quantized to the ``2h+1`` values ``{k-2h, …, k}`` — ``ceil(log2(2h+1))``
bits per edge.

Queries (Algorithm 3) mirror k-reach's four cases but expand up to
``h``-hop neighborhoods around uncovered endpoints:

* **Case 2** (only ``s`` covered): some ``v ∈ inNei_i(t)`` with
  ``ω_H((s, v)) ≤ k - i``, ``1 ≤ i ≤ h``.
* **Case 4** (neither covered): some ``u ∈ outNei_i(s)``,
  ``v ∈ inNei_j(t)`` with ``ω_H((u, v)) ≤ k - i - j``.

**Completeness fixes** (see DESIGN.md; the paper's Theorem 2 glosses both):

1. *Self-handshake*: a shortest path may carry exactly one cover vertex,
   serving as both the "u" and the "v" of Case 4 — a link of weight 0.
2. *Short cover-free paths*: an h-hop cover only intercepts paths of
   length ``≥ h``, so a path shorter than ``h`` may avoid the cover
   entirely (for example, a single edge ``s → t`` with ``h = 2`` and
   neither endpoint covered).

Both are handled by a meet-in-the-middle *direct-contact test* that runs
before the index lookups (see :meth:`HKReachIndex._contact_limit`).

**Query-time engineering.**  The paper notes that expansions "terminate
earlier as soon as a match is found"; we go further and bound how deep an
expansion can ever be useful: a level-i neighbor can only certify a link
of weight ``≤ k - i - 1``, and no link is cheaper than ``max(1, k-2h)``,
so levels beyond ``k - 1 - max(1, k-2h)`` are never expanded.  On
hub-dominated graphs this caps the Case-4 cost at neighbor-list size
instead of the (often graph-sized) h-hop hub ball — the difference
between the paper's Table 9 query times and a ~100x blowup.

Definition 2 requires ``h < k/2`` so the smallest useful budget
``k - 2h`` stays positive; the constructor enforces this for finite ``k``
unless ``strict=False`` (which the paper's own Table 9 configuration
needs, since it evaluates (2, µ)-reach with µ = 2).
"""

from __future__ import annotations

import numpy as np

from repro import native
from repro.bitsets.ops import (
    DEFAULT_MATRIX_BYTES,
    and_any,
    bit_matrix,
    or_rows_segmented,
    probe_bits,
    words_for,
)
from repro.bitsets.packed import PackedIntArray, bits_needed
from repro.core.batch import (
    UNBOUNDED_BUDGET,
    KeyedRowStore,
    as_pair_arrays,
    case_codes,
    coalesce_pairs,
    gather_segments,
    segment_any,
)
from repro.core.index_graph import (
    LINK_MATRIX_CACHE_CAP,
    IndexGraph,
    cover_triples_blocked,
)
from repro.core.vertex_cover import hhop_vertex_cover, is_hhop_vertex_cover
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bidirectional_reaches_within,
    blocked_ball_probe,
    bounded_neighborhood,
    reaches_within_small,
)

__all__ = ["HKReachIndex"]

# Cap on the per-batch level-expansion memo (entries).  Random 1M-pair
# workloads have mostly distinct endpoints; without a bound the memo
# would retain every expanded ball for the life of the batch, which on
# hub-heavy graphs is multi-GB where the scalar loop needs O(1).  The
# memo evicts FIFO at the cap, so long hub-heavy batches keep amortizing
# repeated endpoints instead of freezing the cache at its first fill.
_LEVEL_MEMO_CAP = 65_536

# The bitset engine processes Cases 2-4 in slices of this many pairs so
# its per-distinct-endpoint bitset blocks stay bounded regardless of the
# batch size.
_BITSET_SLICE = 1 << 16

_ENGINES = ("auto", "native", "bitset", "scalar")


class HKReachIndex:
    """h-hop vertex-cover-based k-reach index.

    Parameters
    ----------
    graph:
        Input digraph (referenced by queries, as with k-reach).
    h:
        Cover hop parameter (``h ≥ 1``; ``h = 1`` coincides with k-reach's
        cover but keeps Algorithm 3's machinery).
    k:
        Hop budget, or ``None`` for the classic-reachability mode.
        Finite ``k`` must satisfy ``h < k/2`` (Definition 2).
    cover:
        Optional pre-computed h-hop vertex cover (validated on graphs small
        enough for the exhaustive check).
    cover_order:
        Start-vertex priority for the (h+1)-approximation: ``'degree'``
        (default), ``'random'``, or ``'input'``.
    strict:
        Enforce Definition 2's ``h < k/2`` (default).  Pass ``False`` to
        build anyway — the query algorithm remains correct for any
        ``h ≥ 1`` (budgets simply go negative more often and weights are
        quantized less aggressively); the paper itself does this in
        Table 9, where (2, µ)-reach is evaluated with µ = 2.
    bitset_matrix_bytes:
        Memory ceiling for the batch engine's stack of per-budget
        cover-local link matrices (up to ``2h`` matrices of ``~|V_H|²/8``
        bytes each; default
        :data:`~repro.bitsets.ops.DEFAULT_MATRIX_BYTES`).  When the
        stack would exceed it, ``engine='auto'`` batches fall back to
        the memoized scalar Algorithm-3 walk; ``0`` keeps ``'auto'`` off
        the bitset path entirely (an explicit ``engine='bitset'`` still
        forces the matrix builds).

    Examples
    --------
    >>> from repro.graph.generators import paper_example_graph
    >>> g = paper_example_graph()
    >>> idx = HKReachIndex(g, h=2, k=5)
    >>> idx.query(g.vertex_id("a"), g.vertex_id("i"))
    True
    >>> idx.query(g.vertex_id("a"), g.vertex_id("j"))
    False
    """

    _COVER_VALIDATION_MAX_N = 512  # exhaustive h-hop check is exponential-ish

    def __init__(
        self,
        graph: DiGraph,
        h: int,
        k: int | None,
        *,
        cover: frozenset[int] | None = None,
        cover_order: str = "degree",
        strict: bool = True,
        bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
        rng: np.random.Generator | None = None,
    ) -> None:
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        if k is not None:
            if k < 0:
                raise ValueError(f"k must be non-negative or None, got {k}")
            if strict and not h < k / 2:
                raise ValueError(
                    f"Definition 2 requires h < k/2; got h={h}, k={k} "
                    f"(pass strict=False to build anyway)"
                )
        self.graph = graph
        self.h = h
        self.k = k
        if cover is None:
            cover = hhop_vertex_cover(graph, h, order=cover_order, rng=rng)
        else:
            cover = frozenset(int(v) for v in cover)
            if graph.n <= self._COVER_VALIDATION_MAX_N and not is_hhop_vertex_cover(
                graph, cover, h
            ):
                raise ValueError(f"provided vertex set is not an {h}-hop vertex cover")
        self.cover: frozenset[int] = cover
        self._in_cover = np.zeros(graph.n, dtype=bool)
        if cover:
            self._in_cover[list(cover)] = True
        self.bitset_matrix_bytes = int(bitset_matrix_bytes)
        self._ig = self._build()
        self._flat: dict[int, int] | None = None
        self._keyed_rows: KeyedRowStore | None = None

    # ------------------------------------------------------------------
    # Construction (Algorithm 1 with Definition-2 weights)
    # ------------------------------------------------------------------
    def _build(self) -> IndexGraph:
        """Blocked MS-BFS sweeps into the canonical CSR storage."""
        g, k = self.graph, self.k
        floor = max(k - 2 * self.h, 0) if k is not None else 0
        triples = cover_triples_blocked(g, self.cover, k)
        return IndexGraph.from_triples(
            g.n,
            self.cover,
            *triples,
            floor=floor,
            weight_bits=self.weight_bits() if k is not None else None,
        )

    # ------------------------------------------------------------------
    # Query processing (Algorithm 3)
    # ------------------------------------------------------------------
    def _link_within(self, u: int, v: int, budget: int | None) -> bool:
        """Index-certified ``d(u, v) ≤ budget``; ``u == v`` is distance 0."""
        if u == v:
            return budget is None or budget >= 0
        flat = self._flat
        if flat is None:
            flat = self._flat = self._ig.flat()
        w = flat.get(u * self.graph.n + v)
        if w is None:
            return False
        return budget is None or w <= budget

    def _contact_limit(self, *, both_uncovered: bool) -> int:
        """Hop bound for the meet-in-the-middle direct test.

        Cases 2/3 (one endpoint covered): a path whose only cover vertex is
        the covered endpoint itself is cover-free afterwards, hence shorter
        than ``h`` — the test needs ``min(h, k)`` hops.

        Case 4: a shortest path may carry exactly **one** cover vertex,
        within ``h`` of both endpoints.  That certificate is the u == v
        self-handshake (weight 0), which the link-expansion caps cannot
        see, so the direct test must cover it: up to ``min(2h, k)`` hops.
        """
        reach = 2 * self.h if both_uncovered else self.h
        if self.k is None:
            return reach
        return min(reach, self.k)

    def _min_link_weight(self) -> int:
        """Smallest weight a (u != v) index edge can carry.

        Weights are ``max(distance, k-2h)`` and distinct cover vertices are
        at distance ≥ 1, so no link is cheaper than ``max(1, k-2h)``.  The
        expansion-depth caps below derive from this: expanding further than
        the cheapest link can pay off is pure waste — on hub-dominated
        graphs the difference is a ~1000x query-time cliff, since a 2-hop
        ball around a hub neighbor covers most of the graph.
        """
        assert self.k is not None
        return max(1, self.k - 2 * self.h)

    def _levels(
        self,
        v: int,
        limit: int,
        direction: str,
        memo: dict | None = None,
    ) -> list[list[int]]:
        """BFS levels 1..limit around ``v`` (level 0 = {v} omitted).

        ``memo`` (used by the scalar batch engine) caches expansions
        across a batch: random workloads repeat endpoints, and celebrity
        workloads repeat them heavily, so the per-vertex balls amortize.
        The memo is capped at :data:`_LEVEL_MEMO_CAP` entries with FIFO
        eviction — a huge batch of distinct endpoints cannot hold every
        ball in memory at once, while long hub-heavy batches keep
        amortizing their repeated endpoints instead of losing the cache
        the moment it first fills.
        """
        if limit <= 0:
            return []
        if memo is not None:
            key = (v, limit, direction)
            cached = memo.get(key)
            if cached is not None:
                return cached
        ball = bounded_neighborhood(self.graph, v, limit, direction=direction)
        levels: list[list[int]] = [[] for _ in range(limit)]
        for u, d in ball.items():
            if d >= 1:
                levels[d - 1].append(u)
        if memo is not None:
            if len(memo) >= _LEVEL_MEMO_CAP:
                memo.pop(next(iter(memo)))  # FIFO: drop the oldest ball
            memo[key] = levels
        return levels

    def query(self, s: int, t: int) -> bool:
        """Whether ``s →k t`` (``s → t`` when ``k`` is None)."""
        g = self.graph
        if not 0 <= s < g.n or not 0 <= t < g.n:
            raise ValueError(f"query vertex out of range [0, {g.n})")
        return self._query_impl(s, t, None)

    def _query_impl(self, s: int, t: int, memo: dict | None) -> bool:
        """Algorithm 3 for one validated pair (``memo``: see :meth:`_levels`)."""
        g, k, h = self.graph, self.k, self.h
        if s == t:
            return True
        if k == 0:
            return False
        s_in = bool(self._in_cover[s])
        t_in = bool(self._in_cover[t])

        if s_in and t_in:
            return self._link_within(s, t, k)

        in_cover = self._in_cover
        if s_in or t_in:
            # Cases 2/3: one uncovered endpoint.  Direct contact first
            # (meet-in-the-middle keeps hub balls unexpanded), then cover
            # links, nearest levels first — a level-i link needs budget
            # k-i ≥ min link weight, capping the expansion depth.
            limit = self._contact_limit(both_uncovered=False)
            contact = (
                reaches_within_small(g, s, t, limit)
                if limit <= 3
                else bidirectional_reaches_within(g, s, t, limit)
            )
            if contact:
                return True
            if k is None:
                link_limit = h
            else:
                link_limit = min(h, k - self._min_link_weight())
            if s_in:
                levels = self._levels(t, link_limit, "in", memo)
                for i, level in enumerate(levels, start=1):
                    budget = None if k is None else k - i
                    for v in level:
                        if in_cover[v] and self._link_within(s, v, budget):
                            return True
            else:
                levels = self._levels(s, link_limit, "out", memo)
                for i, level in enumerate(levels, start=1):
                    budget = None if k is None else k - i
                    for u in level:
                        if in_cover[u] and self._link_within(u, t, budget):
                            return True
            return False

        # Case 4: both endpoints uncovered.
        limit = self._contact_limit(both_uncovered=True)
        contact = (
            reaches_within_small(g, s, t, limit)
            if limit <= 3
            else bidirectional_reaches_within(g, s, t, limit)
        )
        if contact:
            return True
        if k is None:
            side_limit = h
        else:
            # i + j + min_weight <= k with i, j >= 1 bounds each side.
            side_limit = min(h, k - 1 - self._min_link_weight())
        if side_limit <= 0:
            return False
        fwd_levels = self._levels(s, side_limit, "out", memo)
        back_levels = self._levels(t, side_limit, "in", memo)
        fwd_cover = [
            (u, i)
            for i, level in enumerate(fwd_levels, start=1)
            for u in level
            if in_cover[u]
        ]
        if not fwd_cover:
            return False
        back_cover = [
            (v, j)
            for j, level in enumerate(back_levels, start=1)
            for v in level
            if in_cover[v]
        ]
        if not back_cover:
            return False
        # Nearest cover contacts first: they leave the largest budget.
        fwd_cover.sort(key=lambda p: p[1])
        back_cover.sort(key=lambda p: p[1])
        for u, i in fwd_cover:
            for v, j in back_cover:
                budget = None if k is None else k - i - j
                if self._link_within(u, v, budget):
                    return True
        return False

    def reaches(self, s: int, t: int) -> bool:
        """Classic-reachability alias (meaningful for ``k=None``)."""
        return self.query(s, t)

    # ------------------------------------------------------------------
    # Batch query processing
    # ------------------------------------------------------------------
    def _keyed(self) -> KeyedRowStore:
        """Sorted-key view for bulk Case-1 gathers (zero-copy from CSR)."""
        if self._keyed_rows is None:
            self._keyed_rows = KeyedRowStore(
                self._ig.keys(), self._ig.weights64(), self.graph.n
            )
        return self._keyed_rows

    def prepare_batch(self) -> "HKReachIndex":
        """Build the batch engine's lookup structures now (see
        :meth:`KReachIndex.prepare_batch
        <repro.core.kreach.KReachIndex.prepare_batch>`), including the
        per-budget link matrices when they fit
        :attr:`bitset_matrix_bytes`."""
        self._keyed()
        if self._bitset_ready():
            for budget in self._bitset_budgets():
                self._matrix(budget)
        return self

    def _join_params(self) -> tuple[int, int, int, int]:
        """``(L23, L4, link_limit, side_limit)`` — Algorithm 3's depth caps.

        ``L23`` / ``L4`` are the direct-contact hop bounds of Cases 2/3
        and Case 4 (:meth:`_contact_limit`); ``link_limit`` /
        ``side_limit`` the deepest expansion levels that can still
        certify an index link (see :meth:`_min_link_weight`).
        """
        k, h = self.k, self.h
        if k is None:
            return h, 2 * h, h, h
        minw = self._min_link_weight()
        return (
            min(h, k),
            min(2 * h, k),
            max(0, min(h, k - minw)),
            max(0, min(h, k - 1 - minw)),
        )

    def _bitset_budgets(self) -> list[int | None]:
        """The distinct link budgets the bitset engine joins against.

        One cover-local matrix is built per budget: ``k - j`` for the
        Case-2/3 levels and every non-negative ``k - i - j`` Case 4 can
        combine — at most ``2h`` values.  ``k=None`` needs only the
        presence matrix.
        """
        if self.k is None:
            return [None]
        _, _, link_limit, side_limit = self._join_params()
        budgets: set[int] = {self.k - j for j in range(1, link_limit + 1)}
        for i in range(1, side_limit + 1):
            for j in range(1, side_limit + 1):
                if self.k - i - j >= 0:
                    budgets.add(self.k - i - j)
        return sorted(budgets)

    def _bitset_ready(self) -> bool:
        """Whether the per-budget matrix stack fits the memory ceiling.

        The stack must also fit the :class:`IndexGraph` matrix cache in
        full — otherwise a long batch would silently rebuild evicted
        budgets every slice instead of amortizing them.
        """
        budgets = self._bitset_budgets()
        return (
            len(budgets) <= LINK_MATRIX_CACHE_CAP
            and len(budgets) * self._ig.link_matrix_bytes()
            <= self.bitset_matrix_bytes
        )

    def _matrix(self, budget: int | None) -> np.ndarray:
        """The cover-local link matrix for one budget, diagonal set.

        The diagonal encodes the ``u == v`` handshake
        (:meth:`_link_within` treats it as distance 0), which every
        budget the engine joins against admits (all are ``>= 0``).
        """
        return self._ig.link_matrix(budget, diagonal=True)

    def query_batch(self, pairs, *, engine: str = "auto") -> np.ndarray:
        """Vectorized :meth:`query` over a batch of (s, t) pairs.

        Same contract as :meth:`KReachIndex.query_batch
        <repro.core.kreach.KReachIndex.query_batch>`: ``(m, 2)`` integer
        array-like in, ``(m,)`` bool array out, bit-identical to the
        scalar path, ``(0,)`` for empty input, :class:`ValueError` for
        out-of-range ids.

        Algorithm 3's case split is vectorized over the cover flags and
        Case 1 resolves through one bulk sorted-key gather.  Cases 2–4
        depend on ``engine``:

        * ``'bitset'`` (the ``'auto'`` default when the per-budget link
          matrices fit :attr:`bitset_matrix_bytes`) — 64-source
          bit-parallel ball expansion over the batch's distinct
          endpoints: one blocked sweep answers every direct-contact test
          at its exact hop checkpoint and collects per-endpoint
          cover-contact bitsets, which then resolve the index joins as
          word-wise AND tests against the per-budget matrix rows.  No
          per-pair Python walk remains.
        * ``'scalar'`` — the per-pair Algorithm-3 walk with the shared
          FIFO level-expansion memo (the differential reference, and the
          ``'auto'`` fallback for covers too large for the matrices).

        The non-scalar engines deduplicate repeated (s, t) pairs and
        group the distinct pairs by case code before the kernels run
        (:func:`~repro.core.batch.coalesce_pairs`), scattering verdicts
        back to input order; the scalar walk keeps the raw pair stream
        (its level memo already amortizes repeats).
        """
        if engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {engine!r}")
        if engine == "native":
            # Prefer the compiled kernel tier for this batch; identical
            # answers, numpy fallback when numba is absent.
            with native.use("auto"):
                return self.query_batch(pairs, engine="auto")
        s, t = as_pair_arrays(pairs, self.graph.n)
        m = len(s)
        if m == 0:
            return np.zeros(0, dtype=bool)
        if engine != "scalar":
            codes = case_codes(self._in_cover[s], self._in_cover[t])
            # As in KReachIndex.query_batch: kernels always see the
            # deduplicated, case-grouped pairs.
            us, ut, inverse = coalesce_pairs(s, t, self.graph.n, codes=codes)
            return self._query_batch_arrays(us, ut, engine)[inverse]
        return self._query_batch_arrays(s, t, engine)

    def _query_batch_arrays(
        self, s: np.ndarray, t: np.ndarray, engine: str
    ) -> np.ndarray:
        """Algorithm 3 over validated (s, t) columns (see :meth:`query_batch`)."""
        g, k = self.graph, self.k
        m = len(s)
        out = np.zeros(m, dtype=bool)
        np.equal(s, t, out=out)
        if k == 0:
            return out
        s_in = self._in_cover[s]
        t_in = self._in_cover[t]
        undecided = ~out  # s != t

        # Case 1: one bulk weight gather.
        sel = np.flatnonzero(undecided & s_in & t_in)
        if len(sel):
            bk = UNBOUNDED_BUDGET if k is None else np.int64(k)
            out[sel] = self._keyed().lookup(s[sel], t[sel]) <= bk

        rest = np.flatnonzero(undecided & ~(s_in & t_in))
        if not len(rest):
            return out
        if engine == "auto":
            engine = "bitset" if self._bitset_ready() else "scalar"
        if engine == "scalar":
            # Per-pair Algorithm-3 walk with shared level memo.
            memo: dict = {}
            for j in rest.tolist():
                out[j] = self._query_impl(int(s[j]), int(t[j]), memo)
            return out
        for start in range(0, len(rest), _BITSET_SLICE):
            sl = rest[start : start + _BITSET_SLICE]
            out[sl] = self._rest_batch_bitset(s[sl], t[sl], s_in[sl])
        return out

    def _rest_batch_bitset(
        self, rs: np.ndarray, rt: np.ndarray, rs_in: np.ndarray
    ) -> np.ndarray:
        """Cases 2–4 verdicts for one slice of non-Case-1 pairs (s != t).

        Three phases, all bit-parallel:

        1. One blocked forward sweep from the slice's **distinct**
           sources resolves every pair's direct-contact test at its
           exact hop checkpoint (``L23`` or ``L4``) and emits
           ``(source, cover vertex, level)`` contact triples.
        2. One blocked backward sweep from the distinct uncovered
           targets emits the mirror triples, packed into per-(target,
           level) cover-position bitsets.
        3. The index joins: Case 2 ANDs the covered source's matrix row
           against the target's level bitsets, Case 3 probes one matrix
           bit per forward contact, Case 4 OR-folds the forward
           contacts' matrix rows (per level pair, respecting the
           ``k - i - j`` budgets) and ANDs them against the backward
           bitsets.  Every verdict matches the scalar walk bit for bit.
        """
        g, k = self.graph, self.k
        n_pairs = len(rs)
        res = np.zeros(n_pairs, dtype=bool)
        ig = self._ig
        row_pos = ig.row_pos()
        cover_size = ig.cover_size
        words = words_for(cover_size)
        L23, L4, link_limit, side_limit = self._join_params()
        case = np.where(rs_in, 2, np.where(self._in_cover[rt], 3, 4)).astype(np.int8)

        # Phase 1: forward contact sweep over distinct sources.
        uniq_s, s_idx = np.unique(rs, return_inverse=True)
        contact_depth = np.where(case == 4, L4, L23).astype(np.int64)
        depth_s = np.zeros(len(uniq_s), dtype=np.int64)
        np.maximum.at(depth_s, s_idx, contact_depth)
        contact, (fs, fv, fd) = blocked_ball_probe(
            g,
            uniq_s,
            s_idx,
            rt,
            contact_depth,
            depths=depth_s,
            direction="out",
            emit=self._in_cover,
        )
        res |= contact
        if link_limit == 0 and side_limit == 0:
            return res

        # Forward contacts grouped by source index (a CSR over uniq_s).
        order = np.argsort(fs, kind="stable")
        fs, fv, fd = fs[order], fv[order], fd[order]
        f_indptr = np.zeros(len(uniq_s) + 1, dtype=np.int64)
        np.cumsum(np.bincount(fs, minlength=len(uniq_s)), out=f_indptr[1:])

        # Phase 2: backward sweep over distinct uncovered targets,
        # packed into per-(target, level) cover-position bitsets.
        bmask = case != 3
        t_idx = np.full(n_pairs, -1, dtype=np.int64)
        slots = 1 if k is None else link_limit
        bits_b: np.ndarray | None = None
        if bool(bmask.any()) and slots > 0:
            uniq_t, t_part = np.unique(rt[bmask], return_inverse=True)
            t_idx[bmask] = t_part
            depth_t = np.zeros(len(uniq_t), dtype=np.int64)
            np.maximum.at(
                depth_t,
                t_part,
                np.where(case[bmask] == 2, link_limit, side_limit),
            )
            empty = np.empty(0, dtype=np.int64)
            _, (bs, bv, bd) = blocked_ball_probe(
                g,
                uniq_t,
                empty,
                empty,
                empty,
                depths=depth_t,
                direction="in",
                emit=self._in_cover,
            )
            rows = bs if k is None else bs * slots + (bd - 1)
            bits_b = bit_matrix(
                rows, row_pos[bv], len(uniq_t) * slots, cover_size
            ).reshape(len(uniq_t), slots, words)

        # Phase 3a: Case 2 — the covered source's matrix row AND the
        # target's level bitsets, nearest levels with the largest budget.
        sel = np.flatnonzero((case == 2) & ~res)
        if len(sel) and link_limit > 0 and bits_b is not None:
            spos = row_pos[rs[sel]]
            tsel = t_idx[sel]
            if k is None:
                res[sel] |= and_any(self._matrix(None)[spos], bits_b[tsel, 0])
            else:
                for j in range(1, link_limit + 1):
                    res[sel] |= and_any(
                        self._matrix(k - j)[spos], bits_b[tsel, j - 1]
                    )

        # Phase 3b: Case 3 — one matrix-bit probe per forward contact.
        sel = np.flatnonzero((case == 3) & ~res)
        if len(sel) and link_limit > 0:
            cpos, owner, _ = gather_segments(
                f_indptr, np.arange(len(fv), dtype=np.int64), s_idx[sel]
            )
            keep = fd[cpos] <= link_limit
            cpos, owner = cpos[keep], owner[keep]
            upos = row_pos[fv[cpos]]
            levels = fd[cpos]
            tpos = row_pos[rt[sel]][owner]
            hit = np.zeros(len(cpos), dtype=bool)
            if k is None:
                hit = probe_bits(self._matrix(None), upos, tpos)
            else:
                for i in range(1, link_limit + 1):
                    seli = levels == i
                    if seli.any():
                        hit[seli] = probe_bits(
                            self._matrix(k - i), upos[seli], tpos[seli]
                        )
            res[sel] |= segment_any(hit, owner, len(sel))

        # Phase 3c: Case 4 — OR-fold the forward contacts' matrix rows
        # per level pair (i, j) under the k - i - j budget, then AND
        # against the backward level bitsets.
        sel = np.flatnonzero((case == 4) & ~res)
        if len(sel) and side_limit > 0 and bits_b is not None:
            su, su_inv = np.unique(s_idx[sel], return_inverse=True)
            cpos, owner, _ = gather_segments(
                f_indptr, np.arange(len(fv), dtype=np.int64), su
            )
            keep = fd[cpos] <= side_limit
            cpos, owner = cpos[keep], owner[keep]
            upos = row_pos[fv[cpos]]
            levels = fd[cpos]
            tsel = t_idx[sel]
            if k is None:
                folded = or_rows_segmented(
                    self._matrix(None), upos, owner, len(su)
                )
                res[sel] |= and_any(folded[su_inv], bits_b[tsel, 0])
            else:
                for j in range(1, side_limit + 1):
                    folded = np.zeros((len(su), words), dtype=np.uint64)
                    for i in range(1, side_limit + 1):
                        budget = k - i - j
                        if budget < 0:
                            continue
                        seli = levels == i
                        if seli.any():
                            or_rows_segmented(
                                self._matrix(budget),
                                upos[seli],
                                owner[seli],
                                len(su),
                                out=folded,
                            )
                    res[sel] |= and_any(folded[su_inv], bits_b[tsel, j - 1])
        return res

    def query_case_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query_case`: an ``(m,)`` uint8 array of 1–4."""
        s, t = as_pair_arrays(pairs, self.graph.n)
        return case_codes(self._in_cover[s], self._in_cover[t])

    def query_case(self, s: int, t: int) -> int:
        """Which of Algorithm 3's four cases the query (s, t) falls into."""
        if not 0 <= s < self.graph.n or not 0 <= t < self.graph.n:
            raise ValueError("query vertex out of range")
        s_in = bool(self._in_cover[s])
        t_in = bool(self._in_cover[t])
        if s_in and t_in:
            return 1
        if s_in:
            return 2
        if t_in:
            return 3
        return 4

    def contains(self, v: int) -> bool:
        """Whether ``v`` is in the h-hop vertex cover."""
        return bool(self._in_cover[v])

    # ------------------------------------------------------------------
    # Introspection & storage model
    # ------------------------------------------------------------------
    @property
    def index_graph(self) -> IndexGraph:
        """The canonical CSR storage (§4.3 physical layout)."""
        return self._ig

    @property
    def cover_size(self) -> int:
        """``|V_H|``."""
        return len(self.cover)

    @property
    def edge_count(self) -> int:
        """``|E_H|``."""
        return self._ig.edge_count

    def weight(self, u: int, v: int) -> int | None:
        """The stored ``ω_H((u, v))``, or None if absent."""
        return self._ig.weight_of(u, v)

    def weighted_edges(self) -> list[tuple[int, int, int]]:
        """All index edges as sorted ``(u, v, weight)`` triples."""
        return self._ig.weighted_edges()

    def weight_bits(self) -> int:
        """Bits per edge weight: ``ceil(log2(2h+1))`` distinct values
        (fewer when ``k < 2h`` caps the quantization range)."""
        if self.k is None:
            return 0
        floor = max(self.k - 2 * self.h, 0)
        return bits_needed(self.k - floor + 1)

    def storage_bytes(self) -> int:
        """Modeled on-disk size, same scheme as k-reach but wider weights."""
        n_h, m_h = self.cover_size, self.edge_count
        id_bytes = 4 * n_h
        indptr_bytes = 4 * (n_h + 1)
        indices_bytes = 4 * m_h
        weight_bytes = (m_h * self.weight_bits() + 7) // 8
        bitmap_bytes = (self.graph.n + 7) // 8
        return id_bytes + indptr_bytes + indices_bytes + weight_bytes + bitmap_bytes

    def packed_weights(self) -> PackedIntArray:
        """Edge weights packed at ``weight_bits()`` bits (offset by k-2h).

        With the CSR-native storage this is the canonical weight array of
        the :class:`IndexGraph`, not a copy.
        """
        if self.k is None:
            raise ValueError("the unbounded mode stores no weights")
        return self._ig.packed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = "inf" if self.k is None else self.k
        return (
            f"HKReachIndex(h={self.h}, k={k}, |V_H|={self.cover_size}, "
            f"|E_H|={self.edge_count})"
        )
