"""The (h,k)-reach index (Definition 2, Algorithm 3, §5 of the paper).

Trades query time for index size: the vertex cover of k-reach is replaced
by an **h-hop vertex cover** (every simple directed path of length ``h``
meets the cover), which Corollary 1 shows is never larger.  The index graph
``H = (V_H, E_H, ω_H)`` stores, for cover pairs, the shortest distance
quantized to the ``2h+1`` values ``{k-2h, …, k}`` — ``ceil(log2(2h+1))``
bits per edge.

Queries (Algorithm 3) mirror k-reach's four cases but expand up to
``h``-hop neighborhoods around uncovered endpoints:

* **Case 2** (only ``s`` covered): some ``v ∈ inNei_i(t)`` with
  ``ω_H((s, v)) ≤ k - i``, ``1 ≤ i ≤ h``.
* **Case 4** (neither covered): some ``u ∈ outNei_i(s)``,
  ``v ∈ inNei_j(t)`` with ``ω_H((u, v)) ≤ k - i - j``.

**Completeness fixes** (see DESIGN.md; the paper's Theorem 2 glosses both):

1. *Self-handshake*: a shortest path may carry exactly one cover vertex,
   serving as both the "u" and the "v" of Case 4 — a link of weight 0.
2. *Short cover-free paths*: an h-hop cover only intercepts paths of
   length ``≥ h``, so a path shorter than ``h`` may avoid the cover
   entirely (for example, a single edge ``s → t`` with ``h = 2`` and
   neither endpoint covered).

Both are handled by a meet-in-the-middle *direct-contact test* that runs
before the index lookups (see :meth:`HKReachIndex._contact_limit`).

**Query-time engineering.**  The paper notes that expansions "terminate
earlier as soon as a match is found"; we go further and bound how deep an
expansion can ever be useful: a level-i neighbor can only certify a link
of weight ``≤ k - i - 1``, and no link is cheaper than ``max(1, k-2h)``,
so levels beyond ``k - 1 - max(1, k-2h)`` are never expanded.  On
hub-dominated graphs this caps the Case-4 cost at neighbor-list size
instead of the (often graph-sized) h-hop hub ball — the difference
between the paper's Table 9 query times and a ~100x blowup.

Definition 2 requires ``h < k/2`` so the smallest useful budget
``k - 2h`` stays positive; the constructor enforces this for finite ``k``
unless ``strict=False`` (which the paper's own Table 9 configuration
needs, since it evaluates (2, µ)-reach with µ = 2).
"""

from __future__ import annotations

import numpy as np

from repro.bitsets.packed import PackedIntArray, bits_needed
from repro.core.batch import (
    UNBOUNDED_BUDGET,
    KeyedRowStore,
    as_pair_arrays,
    case_codes,
)
from repro.core.index_graph import IndexGraph, cover_triples_blocked
from repro.core.vertex_cover import hhop_vertex_cover, is_hhop_vertex_cover
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bidirectional_reaches_within,
    bounded_neighborhood,
    reaches_within_small,
)

__all__ = ["HKReachIndex"]

# Cap on the per-batch level-expansion memo (entries).  Random 1M-pair
# workloads have mostly distinct endpoints; without a bound the memo
# would retain every expanded ball for the life of the batch, which on
# hub-heavy graphs is multi-GB where the scalar loop needs O(1).
_LEVEL_MEMO_CAP = 65_536


class HKReachIndex:
    """h-hop vertex-cover-based k-reach index.

    Parameters
    ----------
    graph:
        Input digraph (referenced by queries, as with k-reach).
    h:
        Cover hop parameter (``h ≥ 1``; ``h = 1`` coincides with k-reach's
        cover but keeps Algorithm 3's machinery).
    k:
        Hop budget, or ``None`` for the classic-reachability mode.
        Finite ``k`` must satisfy ``h < k/2`` (Definition 2).
    cover:
        Optional pre-computed h-hop vertex cover (validated on graphs small
        enough for the exhaustive check).
    cover_order:
        Start-vertex priority for the (h+1)-approximation: ``'degree'``
        (default), ``'random'``, or ``'input'``.
    strict:
        Enforce Definition 2's ``h < k/2`` (default).  Pass ``False`` to
        build anyway — the query algorithm remains correct for any
        ``h ≥ 1`` (budgets simply go negative more often and weights are
        quantized less aggressively); the paper itself does this in
        Table 9, where (2, µ)-reach is evaluated with µ = 2.

    Examples
    --------
    >>> from repro.graph.generators import paper_example_graph
    >>> g = paper_example_graph()
    >>> idx = HKReachIndex(g, h=2, k=5)
    >>> idx.query(g.vertex_id("a"), g.vertex_id("i"))
    True
    >>> idx.query(g.vertex_id("a"), g.vertex_id("j"))
    False
    """

    _COVER_VALIDATION_MAX_N = 512  # exhaustive h-hop check is exponential-ish

    def __init__(
        self,
        graph: DiGraph,
        h: int,
        k: int | None,
        *,
        cover: frozenset[int] | None = None,
        cover_order: str = "degree",
        strict: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        if h < 1:
            raise ValueError(f"h must be >= 1, got {h}")
        if k is not None:
            if k < 0:
                raise ValueError(f"k must be non-negative or None, got {k}")
            if strict and not h < k / 2:
                raise ValueError(
                    f"Definition 2 requires h < k/2; got h={h}, k={k} "
                    f"(pass strict=False to build anyway)"
                )
        self.graph = graph
        self.h = h
        self.k = k
        if cover is None:
            cover = hhop_vertex_cover(graph, h, order=cover_order, rng=rng)
        else:
            cover = frozenset(int(v) for v in cover)
            if graph.n <= self._COVER_VALIDATION_MAX_N and not is_hhop_vertex_cover(
                graph, cover, h
            ):
                raise ValueError(f"provided vertex set is not an {h}-hop vertex cover")
        self.cover: frozenset[int] = cover
        self._in_cover = np.zeros(graph.n, dtype=bool)
        if cover:
            self._in_cover[list(cover)] = True
        self._ig = self._build()
        self._flat: dict[int, int] | None = None
        self._keyed_rows: KeyedRowStore | None = None

    # ------------------------------------------------------------------
    # Construction (Algorithm 1 with Definition-2 weights)
    # ------------------------------------------------------------------
    def _build(self) -> IndexGraph:
        """Blocked MS-BFS sweeps into the canonical CSR storage."""
        g, k = self.graph, self.k
        floor = max(k - 2 * self.h, 0) if k is not None else 0
        triples = cover_triples_blocked(g, self.cover, k)
        return IndexGraph.from_triples(
            g.n,
            self.cover,
            *triples,
            floor=floor,
            weight_bits=self.weight_bits() if k is not None else None,
        )

    # ------------------------------------------------------------------
    # Query processing (Algorithm 3)
    # ------------------------------------------------------------------
    def _link_within(self, u: int, v: int, budget: int | None) -> bool:
        """Index-certified ``d(u, v) ≤ budget``; ``u == v`` is distance 0."""
        if u == v:
            return budget is None or budget >= 0
        flat = self._flat
        if flat is None:
            flat = self._flat = self._ig.flat()
        w = flat.get(u * self.graph.n + v)
        if w is None:
            return False
        return budget is None or w <= budget

    def _contact_limit(self, *, both_uncovered: bool) -> int:
        """Hop bound for the meet-in-the-middle direct test.

        Cases 2/3 (one endpoint covered): a path whose only cover vertex is
        the covered endpoint itself is cover-free afterwards, hence shorter
        than ``h`` — the test needs ``min(h, k)`` hops.

        Case 4: a shortest path may carry exactly **one** cover vertex,
        within ``h`` of both endpoints.  That certificate is the u == v
        self-handshake (weight 0), which the link-expansion caps cannot
        see, so the direct test must cover it: up to ``min(2h, k)`` hops.
        """
        reach = 2 * self.h if both_uncovered else self.h
        if self.k is None:
            return reach
        return min(reach, self.k)

    def _min_link_weight(self) -> int:
        """Smallest weight a (u != v) index edge can carry.

        Weights are ``max(distance, k-2h)`` and distinct cover vertices are
        at distance ≥ 1, so no link is cheaper than ``max(1, k-2h)``.  The
        expansion-depth caps below derive from this: expanding further than
        the cheapest link can pay off is pure waste — on hub-dominated
        graphs the difference is a ~1000x query-time cliff, since a 2-hop
        ball around a hub neighbor covers most of the graph.
        """
        assert self.k is not None
        return max(1, self.k - 2 * self.h)

    def _levels(
        self,
        v: int,
        limit: int,
        direction: str,
        memo: dict | None = None,
    ) -> list[list[int]]:
        """BFS levels 1..limit around ``v`` (level 0 = {v} omitted).

        ``memo`` (used by :meth:`query_batch`) caches expansions across a
        batch: random workloads repeat endpoints, and celebrity workloads
        repeat them heavily, so the per-vertex balls amortize.  The memo
        stops growing at :data:`_LEVEL_MEMO_CAP` entries so a huge batch
        of distinct endpoints cannot hold every ball in memory at once.
        """
        if limit <= 0:
            return []
        if memo is not None:
            key = (v, limit, direction)
            cached = memo.get(key)
            if cached is not None:
                return cached
        ball = bounded_neighborhood(self.graph, v, limit, direction=direction)
        levels: list[list[int]] = [[] for _ in range(limit)]
        for u, d in ball.items():
            if d >= 1:
                levels[d - 1].append(u)
        if memo is not None and len(memo) < _LEVEL_MEMO_CAP:
            memo[key] = levels
        return levels

    def query(self, s: int, t: int) -> bool:
        """Whether ``s →k t`` (``s → t`` when ``k`` is None)."""
        g = self.graph
        if not 0 <= s < g.n or not 0 <= t < g.n:
            raise ValueError(f"query vertex out of range [0, {g.n})")
        return self._query_impl(s, t, None)

    def _query_impl(self, s: int, t: int, memo: dict | None) -> bool:
        """Algorithm 3 for one validated pair (``memo``: see :meth:`_levels`)."""
        g, k, h = self.graph, self.k, self.h
        if s == t:
            return True
        if k == 0:
            return False
        s_in = bool(self._in_cover[s])
        t_in = bool(self._in_cover[t])

        if s_in and t_in:
            return self._link_within(s, t, k)

        in_cover = self._in_cover
        if s_in or t_in:
            # Cases 2/3: one uncovered endpoint.  Direct contact first
            # (meet-in-the-middle keeps hub balls unexpanded), then cover
            # links, nearest levels first — a level-i link needs budget
            # k-i ≥ min link weight, capping the expansion depth.
            limit = self._contact_limit(both_uncovered=False)
            contact = (
                reaches_within_small(g, s, t, limit)
                if limit <= 3
                else bidirectional_reaches_within(g, s, t, limit)
            )
            if contact:
                return True
            if k is None:
                link_limit = h
            else:
                link_limit = min(h, k - self._min_link_weight())
            if s_in:
                levels = self._levels(t, link_limit, "in", memo)
                for i, level in enumerate(levels, start=1):
                    budget = None if k is None else k - i
                    for v in level:
                        if in_cover[v] and self._link_within(s, v, budget):
                            return True
            else:
                levels = self._levels(s, link_limit, "out", memo)
                for i, level in enumerate(levels, start=1):
                    budget = None if k is None else k - i
                    for u in level:
                        if in_cover[u] and self._link_within(u, t, budget):
                            return True
            return False

        # Case 4: both endpoints uncovered.
        limit = self._contact_limit(both_uncovered=True)
        contact = (
            reaches_within_small(g, s, t, limit)
            if limit <= 3
            else bidirectional_reaches_within(g, s, t, limit)
        )
        if contact:
            return True
        if k is None:
            side_limit = h
        else:
            # i + j + min_weight <= k with i, j >= 1 bounds each side.
            side_limit = min(h, k - 1 - self._min_link_weight())
        if side_limit <= 0:
            return False
        fwd_levels = self._levels(s, side_limit, "out", memo)
        back_levels = self._levels(t, side_limit, "in", memo)
        fwd_cover = [
            (u, i)
            for i, level in enumerate(fwd_levels, start=1)
            for u in level
            if in_cover[u]
        ]
        if not fwd_cover:
            return False
        back_cover = [
            (v, j)
            for j, level in enumerate(back_levels, start=1)
            for v in level
            if in_cover[v]
        ]
        if not back_cover:
            return False
        # Nearest cover contacts first: they leave the largest budget.
        fwd_cover.sort(key=lambda p: p[1])
        back_cover.sort(key=lambda p: p[1])
        for u, i in fwd_cover:
            for v, j in back_cover:
                budget = None if k is None else k - i - j
                if self._link_within(u, v, budget):
                    return True
        return False

    def reaches(self, s: int, t: int) -> bool:
        """Classic-reachability alias (meaningful for ``k=None``)."""
        return self.query(s, t)

    # ------------------------------------------------------------------
    # Batch query processing
    # ------------------------------------------------------------------
    def _keyed(self) -> KeyedRowStore:
        """Sorted-key view for bulk Case-1 gathers (zero-copy from CSR)."""
        if self._keyed_rows is None:
            self._keyed_rows = KeyedRowStore(
                self._ig.keys(), self._ig.weights64(), self.graph.n
            )
        return self._keyed_rows

    def prepare_batch(self) -> "HKReachIndex":
        """Build the batch engine's lookup structures now (see
        :meth:`KReachIndex.prepare_batch
        <repro.core.kreach.KReachIndex.prepare_batch>`)."""
        self._keyed()
        return self

    def query_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query` over a batch of (s, t) pairs.

        Same contract as :meth:`KReachIndex.query_batch
        <repro.core.kreach.KReachIndex.query_batch>`: ``(m, 2)`` integer
        array-like in, ``(m,)`` bool array out, bit-identical to the
        scalar path, ``(0,)`` for empty input, :class:`ValueError` for
        out-of-range ids.

        Algorithm 3's case split is vectorized over the cover flags and
        Case 1 resolves through one bulk sorted-key gather.  Cases 2–4
        keep the scalar expansion walk (its contact tests and
        budget-capped level expansions are inherently early-exiting) but
        share a per-batch memo of level expansions, which pays off
        whenever endpoints repeat across the workload.
        """
        g, k = self.graph, self.k
        s, t = as_pair_arrays(pairs, g.n)
        m = len(s)
        out = np.zeros(m, dtype=bool)
        if m == 0:
            return out
        np.equal(s, t, out=out)
        if k == 0:
            return out
        s_in = self._in_cover[s]
        t_in = self._in_cover[t]
        undecided = ~out  # s != t

        # Case 1: one bulk weight gather.
        sel = np.flatnonzero(undecided & s_in & t_in)
        if len(sel):
            bk = UNBOUNDED_BUDGET if k is None else np.int64(k)
            out[sel] = self._keyed().lookup(s[sel], t[sel]) <= bk

        # Cases 2-4: scalar Algorithm-3 walk with shared level memo.
        memo: dict = {}
        sel = np.flatnonzero(undecided & ~(s_in & t_in))
        for j in sel.tolist():
            out[j] = self._query_impl(int(s[j]), int(t[j]), memo)
        return out

    def query_case_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`query_case`: an ``(m,)`` uint8 array of 1–4."""
        s, t = as_pair_arrays(pairs, self.graph.n)
        return case_codes(self._in_cover[s], self._in_cover[t])

    def query_case(self, s: int, t: int) -> int:
        """Which of Algorithm 3's four cases the query (s, t) falls into."""
        if not 0 <= s < self.graph.n or not 0 <= t < self.graph.n:
            raise ValueError("query vertex out of range")
        s_in = bool(self._in_cover[s])
        t_in = bool(self._in_cover[t])
        if s_in and t_in:
            return 1
        if s_in:
            return 2
        if t_in:
            return 3
        return 4

    def contains(self, v: int) -> bool:
        """Whether ``v`` is in the h-hop vertex cover."""
        return bool(self._in_cover[v])

    # ------------------------------------------------------------------
    # Introspection & storage model
    # ------------------------------------------------------------------
    @property
    def index_graph(self) -> IndexGraph:
        """The canonical CSR storage (§4.3 physical layout)."""
        return self._ig

    @property
    def cover_size(self) -> int:
        """``|V_H|``."""
        return len(self.cover)

    @property
    def edge_count(self) -> int:
        """``|E_H|``."""
        return self._ig.edge_count

    def weight(self, u: int, v: int) -> int | None:
        """The stored ``ω_H((u, v))``, or None if absent."""
        return self._ig.weight_of(u, v)

    def weighted_edges(self) -> list[tuple[int, int, int]]:
        """All index edges as sorted ``(u, v, weight)`` triples."""
        return self._ig.weighted_edges()

    def weight_bits(self) -> int:
        """Bits per edge weight: ``ceil(log2(2h+1))`` distinct values
        (fewer when ``k < 2h`` caps the quantization range)."""
        if self.k is None:
            return 0
        floor = max(self.k - 2 * self.h, 0)
        return bits_needed(self.k - floor + 1)

    def storage_bytes(self) -> int:
        """Modeled on-disk size, same scheme as k-reach but wider weights."""
        n_h, m_h = self.cover_size, self.edge_count
        id_bytes = 4 * n_h
        indptr_bytes = 4 * (n_h + 1)
        indices_bytes = 4 * m_h
        weight_bytes = (m_h * self.weight_bits() + 7) // 8
        bitmap_bytes = (self.graph.n + 7) // 8
        return id_bytes + indptr_bytes + indices_bytes + weight_bytes + bitmap_bytes

    def packed_weights(self) -> PackedIntArray:
        """Edge weights packed at ``weight_bits()`` bits (offset by k-2h).

        With the CSR-native storage this is the canonical weight array of
        the :class:`IndexGraph`, not a copy.
        """
        if self.k is None:
            raise ValueError("the unbounded mode stores no weights")
        return self._ig.packed

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        k = "inf" if self.k is None else self.k
        return (
            f"HKReachIndex(h={self.h}, k={k}, |V_H|={self.cover_size}, "
            f"|E_H|={self.edge_count})"
        )
