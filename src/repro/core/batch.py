"""Shared kernels for the vectorized batch query engine.

The paper times every index on 1M random vertex pairs (§6.2.2); answering
them one at a time through Python loops leaves an order of magnitude on
the table.  This module holds the numpy building blocks the batch paths of
:class:`~repro.core.kreach.KReachIndex`,
:class:`~repro.core.hkreach.HKReachIndex` and the general-k structures
share:

* :class:`KeyedRowStore` — the index's sorted ``u * n + v`` key array, so
  a *bulk* weight lookup is a single :func:`numpy.searchsorted` instead
  of per-pair dict probes.  It is taken zero-copy from the
  :class:`~repro.core.index_graph.IndexGraph` key/weight arrays; legacy
  nested-dict rows convert through :meth:`KeyedRowStore.from_rows`.
* :func:`gather_segments` — concatenate the CSR adjacency lists of a
  vertex array in O(f + t) numpy work, tagging every neighbor with the
  position of the query pair that owns it.  This is what replaces the
  per-pair Case-2/3 neighbor scans.
* :func:`case4_bitset_join` — the bitset-join Case-4 engine: both sides
  of the ``outNei(s) × inNei(t)`` bridge collapse to cover-position
  bitsets (``inNei(t)`` packed directly, ``outNei(s)`` OR-folded through
  the index's :meth:`~repro.core.index_graph.IndexGraph.link_matrix`
  rows), and the per-pair verdict is one word-wise AND-any.  Celebrity
  vertices cost their degree in word operations instead of a
  materialized cross product, so no pair ever needs a scalar spill.
* :func:`plan_cross_products` — chunked materialization of the per-pair
  ``outNei(s) × inNei(t)`` cross products Case 4 bridges over, with a
  bound on transient memory: pairs whose cross product alone exceeds the
  chunk budget are returned separately so callers can fall back to the
  scalar (early-exiting) path for those few hub×hub queries.  This is
  the fallback engine when the bitset matrix exceeds its memory budget.

All kernels operate on dense int64 vertex ids; booleans come back as
``np.ndarray[bool]`` aligned with the caller's pair order.
"""

from __future__ import annotations

from typing import Iterator, Mapping

import numpy as np

from repro import faults, native
from repro import native_kernels as _nk
from repro.bitsets.ops import and_any, bit_matrix, or_rows_segmented

__all__ = [
    "MISSING_WEIGHT",
    "UNBOUNDED_BUDGET",
    "KeyedRowStore",
    "as_pair_arrays",
    "coalesce_pairs",
    "gather_segments",
    "segment_any",
    "case4_bitset_join",
    "plan_cross_products",
    "edge_keys",
    "has_edge_batch",
    "case_codes",
]

#: Sentinel weight returned by :meth:`KeyedRowStore.lookup` for absent
#: edges.  Larger than any real weight *and* any budget (including
#: :data:`UNBOUNDED_BUDGET`), so ``weight <= budget`` is False for misses
#: without a separate mask.
MISSING_WEIGHT = np.int64(1) << 62

#: Budget standing in for "no hop bound" (the k=None modes).  Any stored
#: weight compares ``<=`` it; :data:`MISSING_WEIGHT` does not.
UNBOUNDED_BUDGET = np.int64(1) << 61


def as_pair_arrays(pairs: object, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Validate a batch of (s, t) pairs and split it into int64 columns.

    Accepts anything :func:`numpy.asarray` turns into an ``(m, 2)`` integer
    array (lists of tuples included).  Empty inputs yield two length-0
    arrays.  Raises :class:`ValueError` on malformed shapes or on any
    vertex id outside ``[0, n)`` — same contract as the scalar queries.
    """
    arr = np.asarray(pairs)
    if arr.size == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    if arr.dtype.kind not in "iu":
        raise ValueError(
            f"pairs must be integer vertex ids, got dtype {arr.dtype}"
        )
    arr = arr.astype(np.int64, copy=False)
    if arr.ndim != 2 or arr.shape[1] != 2:
        raise ValueError(f"pairs must be an (m, 2) array, got shape {arr.shape}")
    if int(arr.min()) < 0 or int(arr.max()) >= n:
        raise ValueError(f"query vertex out of range [0, {n})")
    return np.ascontiguousarray(arr[:, 0]), np.ascontiguousarray(arr[:, 1])


def coalesce_pairs(
    s: np.ndarray, t: np.ndarray, n: int, *, codes: np.ndarray | None = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Deduplicate aligned (s, t) pair columns, optionally case-grouping.

    Returns ``(us, ut, inverse)`` where ``(us, ut)`` lists each distinct
    pair once and ``(s[i], t[i]) == (us[inverse[i]], ut[inverse[i]])`` —
    so a batch engine runs its kernels over the distinct pairs and
    scatters the verdicts back to input order with one fancy index.
    Repeated-pair-heavy workloads (the §1 celebrity crossfire, where the
    same hub×hub pairs recur constantly) stop paying the kernels once per
    occurrence.

    ``codes`` (per-pair small non-negative ints, e.g. the Algorithm-2
    case codes) additionally orders the distinct pairs by code first, so
    each downstream per-case kernel reads one contiguous, cache-friendly
    block; the grouping rides the same single sort as the dedup.  It is
    skipped when ``code * n²`` could overflow the fused int64 sort key
    (graphs beyond ~10⁹ vertices).

    >>> s = np.array([3, 0, 3]); t = np.array([1, 2, 1])
    >>> us, ut, inv = coalesce_pairs(s, t, 4)
    >>> us.tolist(), ut.tolist(), inv.tolist()
    ([0, 3], [2, 1], [1, 0, 1])
    """
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    stride = np.int64(n) * np.int64(n)
    keys = s * np.int64(n) + t
    grouped = (
        codes is not None
        and len(s)
        and n
        and n * n * (int(np.max(codes)) + 1) < 2**63
    )
    if grouped:
        keys = np.asarray(codes, dtype=np.int64) * stride + keys
    uniq, inverse = np.unique(keys, return_inverse=True)
    if grouped:
        uniq = uniq % stride
    return uniq // np.int64(n), uniq % np.int64(n), inverse


class KeyedRowStore:
    """Sorted ``u * n + v`` key + weight arrays for bulk weight lookup.

    The canonical construction path is **zero-copy**: an
    :class:`~repro.core.index_graph.IndexGraph` hands its (already sorted)
    key and weight arrays straight in.  Unsorted inputs are argsorted
    once; :meth:`from_rows` converts legacy ``{u: {v: w}}`` mappings.

    Parameters
    ----------
    keys:
        int64 ``u * n + v`` edge keys.
    weights:
        int64 stored weights aligned with ``keys``.
    n:
        Vertex-id universe size (the key stride).

    Examples
    --------
    >>> store = KeyedRowStore.from_rows({0: {2: 1, 3: 2}, 3: {0: 1}}, n=4)
    >>> store.lookup(np.array([0, 0, 3]), np.array([3, 1, 0])).tolist()
    [2, 4611686018427387904, 1]
    """

    __slots__ = ("_keys", "_weights", "_n")

    def __init__(self, keys: np.ndarray, weights: np.ndarray, n: int) -> None:
        keys = np.asarray(keys, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        if len(keys) != len(weights):
            raise ValueError("keys and weights must be aligned")
        if len(keys) > 1 and not bool(np.all(keys[:-1] < keys[1:])):
            order = np.argsort(keys, kind="stable")
            keys = keys[order]
            weights = weights[order]
        self._keys = keys
        self._weights = weights
        self._n = n

    @classmethod
    def from_rows(cls, rows: Mapping[int, object], n: int) -> "KeyedRowStore":
        """Conversion helper: flatten legacy nested-dict rows.

        Each row is a plain ``{v: weight}`` dict or a
        :class:`~repro.core.rowstore.CompressedRow`; the per-edge
        flattening lives in :func:`~repro.core.rowstore.rows_to_arrays`.
        """
        from repro.core.rowstore import rows_to_arrays

        return cls(*rows_to_arrays(rows, n), n)

    def __len__(self) -> int:
        return len(self._keys)

    def lookup(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Stored weights for aligned (u, v) arrays.

        Returns int64 weights with :data:`MISSING_WEIGHT` where the index
        has no (u, v) edge.  One binary search per element, no Python loop.
        """
        if len(u) == 0:
            return np.empty(0, dtype=np.int64)
        if faults.ENABLED:
            faults.fire("batch.kernel_slow")
        keys = self._keys
        if len(keys) == 0:
            return np.full(len(u), MISSING_WEIGHT, dtype=np.int64)
        return native.kernel("keyed_lookup")(
            keys,
            self._weights,
            np.asarray(u, dtype=np.int64),
            np.asarray(v, dtype=np.int64),
            np.int64(self._n),
            MISSING_WEIGHT,
        )


def gather_segments(
    indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Concatenated adjacency lists of ``vertices`` with owner tags.

    Returns ``(neighbors, owner, counts)`` where ``neighbors[i]`` is a
    neighbor of ``vertices[owner[i]]`` and ``counts[j]`` is the degree of
    ``vertices[j]``.  Pure numpy: O(f + t) for f vertices with t adjacency
    entries in total.
    """
    starts = indptr[vertices].astype(np.int64)
    counts = (indptr[vertices + 1] - indptr[vertices]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), counts
    offsets = np.zeros(len(counts), dtype=np.int64)
    np.cumsum(counts[:-1], out=offsets[1:])
    positions = np.repeat(starts - offsets, counts) + np.arange(total, dtype=np.int64)
    owner = np.repeat(np.arange(len(vertices), dtype=np.int64), counts)
    return indices[positions].astype(np.int64), owner, counts


def segment_any(hits: np.ndarray, owner: np.ndarray, num_segments: int) -> np.ndarray:
    """Per-segment OR-reduction: ``out[j] = any(hits[owner == j])``."""
    out = np.zeros(num_segments, dtype=bool)
    if len(hits):
        out[:] = np.bincount(owner[hits], minlength=num_segments) > 0
    return out


def edge_keys(graph) -> np.ndarray:
    """The graph's edges flattened to sorted ``u * n + v`` int64 keys.

    Because ``out_indices`` is sorted within each vertex's CSR slice, the
    flattened keys are globally sorted with no extra sort.  O(n + m) to
    build — callers answering many edge batches against the same
    (immutable) graph should build once and pass the result to
    :func:`has_edge_batch`.
    """
    heads = np.repeat(
        np.arange(graph.n, dtype=np.int64),
        np.diff(graph.out_indptr).astype(np.int64),
    )
    return heads * graph.n + graph.out_indices.astype(np.int64)


def has_edge_batch(
    graph, s: np.ndarray, t: np.ndarray, *, keys: np.ndarray | None = None
) -> np.ndarray:
    """Vectorized :meth:`~repro.graph.digraph.DiGraph.has_edge`.

    One binary search over the sorted edge keys per probe.  ``keys`` is
    the cached result of :func:`edge_keys`; omitted, it is rebuilt here.
    """
    if len(s) == 0:
        return np.zeros(0, dtype=bool)
    if keys is None:
        keys = edge_keys(graph)
    if len(keys) == 0:
        return np.zeros(len(s), dtype=bool)
    probe = s * np.int64(graph.n) + t
    pos = np.searchsorted(keys, probe)
    pos_c = np.minimum(pos, len(keys) - 1)
    return keys[pos_c] == probe


def case_codes(s_in: np.ndarray, t_in: np.ndarray) -> np.ndarray:
    """Algorithm-2/3 case numbers (1–4) from aligned cover-flag arrays."""
    case = np.full(len(s_in), 4, dtype=np.uint8)
    case[t_in] = 3
    case[s_in] = 2
    case[s_in & t_in] = 1
    return case


def case4_bitset_join(
    graph,
    s: np.ndarray,
    t: np.ndarray,
    matrix: np.ndarray,
    row_pos: np.ndarray,
    *,
    max_words: int = 1 << 23,
    gather_out=None,
    gather_in=None,
) -> np.ndarray:
    """Case-4 verdicts for aligned uncovered (s, t) arrays via bitset join.

    ``matrix`` is a cover-local link matrix (see
    :meth:`~repro.core.index_graph.IndexGraph.link_matrix`) already
    thresholded at the caller's budget, with the diagonal set iff the
    ``u == v`` handshake satisfies that budget; ``row_pos`` maps vertex
    ids to cover positions (-1 outside the cover).  A WAH-compressed
    matrix (:class:`repro.bitsets.wah.WahBitMatrix`, the ``storage='wah'``
    backing) is accepted too: only the distinct link rows this batch
    touches are decompressed, and the same packed-word kernels run over
    the dense block.

    The identity this rides on: *some* out-neighbor ``u`` of ``s`` links
    to *some* in-neighbor ``v`` of ``t`` iff the union of the link rows
    of ``outNei(s)`` intersects the position set of ``inNei(t)`` — and
    both factors depend on one endpoint only, so they are computed once
    per **distinct** endpoint and shared across the batch.  Cost is
    O(deg) word operations per distinct endpoint plus one AND-any per
    pair; no cross product is ever materialized and no pair falls back
    to a scalar walk.  Self-loop neighbors of an uncovered endpoint are
    the only non-cover entries either list can contain and are skipped.

    Neighbor enumeration defaults to ``graph``'s CSR arrays; callers
    whose adjacency is *not* one immutable CSR (the dynamic engine's
    base-snapshot + overlay mix) pass ``gather_out`` / ``gather_in``
    instead — each takes a unique vertex array and returns
    ``(neighbors, owner)`` with ``owner`` sorted ascending, exactly the
    :func:`gather_segments` contract.  With both provided, ``graph`` may
    be ``None``.
    """
    out = np.zeros(len(s), dtype=bool)
    words = matrix.shape[1] if matrix.ndim == 2 else 0
    if len(s) == 0 or words == 0:
        return out
    if faults.ENABLED:
        faults.fire("batch.kernel_slow")
    cover_size = matrix.shape[0]
    uniq_s, s_inv = np.unique(s, return_inverse=True)
    uniq_t, t_inv = np.unique(t, return_inverse=True)

    if gather_in is None:
        nbrs, owner, _ = gather_segments(graph.in_indptr, graph.in_indices, uniq_t)
    else:
        nbrs, owner = gather_in(uniq_t)
    pos = row_pos[nbrs]
    keep = pos >= 0
    tbits = bit_matrix(owner[keep], pos[keep], len(uniq_t), cover_size)

    if gather_out is None:
        nbrs, owner, _ = gather_segments(graph.out_indptr, graph.out_indices, uniq_s)
    else:
        nbrs, owner = gather_out(uniq_s)
    pos = row_pos[nbrs]
    keep = pos >= 0
    if isinstance(matrix, np.ndarray):
        ubits = or_rows_segmented(
            matrix, pos[keep], owner[keep], len(uniq_s), max_words=max_words
        )
    else:
        # Compressed link rows: decompress the distinct rows once
        # (served from the matrix's hot-row FIFO on repeats) and OR-fold
        # the dense block exactly as above.
        uniq_rows, local = np.unique(pos[keep], return_inverse=True)
        ubits = or_rows_segmented(
            matrix.take(uniq_rows),
            local,
            owner[keep],
            len(uniq_s),
            max_words=max_words,
        )

    fn, tier = native.resolve("gather_and_any")
    if tier != "numpy":
        return fn(
            ubits,
            tbits,
            s_inv.astype(np.int64, copy=False),
            t_inv.astype(np.int64, copy=False),
        )
    # numpy tier: chunk the gathered (pairs, words) temporaries to max_words.
    step = max(1, max_words // max(1, words))
    for start in range(0, len(s), step):
        stop = start + step
        out[start:stop] = and_any(ubits[s_inv[start:stop]], tbits[t_inv[start:stop]])
    return out


def plan_cross_products(
    graph, s: np.ndarray, t: np.ndarray, *, chunk: int = 1 << 21
) -> tuple[np.ndarray, "Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]"]:
    """Chunk the per-pair ``outNei(s) × inNei(t)`` cross products.

    Returns ``(big, chunks)``:

    * ``big`` — positions (into ``s``/``t``) of pairs whose *single* cross
      product exceeds ``chunk`` elements.  Materializing a hub×hub product
      can dwarf the whole batch, so those pairs are left for the caller's
      scalar path (which short-circuits and never builds the product).
    * ``chunks`` — an iterator of ``(sel, u, v, owner)`` blocks covering
      every other pair with a non-empty product, where ``sel`` are pair
      positions, ``(u[i], v[i])`` enumerates the products and
      ``owner[i]`` indexes into ``sel``.  Each block holds at most about
      ``chunk`` product elements.
    """
    out_counts = (graph.out_indptr[s + 1] - graph.out_indptr[s]).astype(np.int64)
    in_counts = (graph.in_indptr[t + 1] - graph.in_indptr[t]).astype(np.int64)
    cross = out_counts * in_counts
    big = np.flatnonzero(cross > chunk)
    normal = np.flatnonzero((cross > 0) & (cross <= chunk))

    def chunks() -> Iterator[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]]:
        sizes = cross[normal]
        cum = np.cumsum(sizes)
        start = 0
        while start < len(normal):
            base = int(cum[start - 1]) if start else 0
            stop = int(np.searchsorted(cum, base + chunk, side="left")) + 1
            stop = min(len(normal), max(stop, start + 1))
            sel = normal[start:stop]
            yield (sel, *_cross_block(graph, s[sel], t[sel]))
            start = stop

    return big, chunks()


def _cross_block(
    graph, s: np.ndarray, t: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Materialize ``outNei(s[j]) × inNei(t[j])`` for every j, flattened.

    Every pair here is known to have a non-empty product.  For pair j with
    out-degree ``oc[j]`` and in-degree ``ic[j]``, the block lists each
    out-neighbor ``ic[j]`` times against the cycled in-neighbor list, so
    ``(u[i], v[i])`` ranges over the full product.
    """
    oc = (graph.out_indptr[s + 1] - graph.out_indptr[s]).astype(np.int64)
    ic = (graph.in_indptr[t + 1] - graph.in_indptr[t]).astype(np.int64)
    cross = oc * ic
    total = int(cross.sum())
    out_flat, _, _ = gather_segments(graph.out_indptr, graph.out_indices, s)
    u = np.repeat(out_flat, np.repeat(ic, oc))
    owner = np.repeat(np.arange(len(s), dtype=np.int64), cross)
    offsets = np.zeros(len(s), dtype=np.int64)
    np.cumsum(cross[:-1], out=offsets[1:])
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets, cross)
    in_starts = graph.in_indptr[t].astype(np.int64)
    v = graph.in_indices[
        np.repeat(in_starts, cross) + within % np.repeat(ic, cross)
    ].astype(np.int64)
    return u, v, owner


# ----------------------------------------------------------------------
# Native-tier registration (see repro.native).
# ----------------------------------------------------------------------

def _gather_and_any_numpy(
    ubits: np.ndarray, tbits: np.ndarray, s_idx: np.ndarray, t_idx: np.ndarray
) -> np.ndarray:
    """Numpy twin of :func:`repro.native_kernels.gather_and_any`."""
    if len(s_idx) == 0 or ubits.shape[1] == 0:
        return np.zeros(len(s_idx), dtype=bool)
    return np.any(ubits[s_idx] & tbits[t_idx], axis=1)


def _keyed_lookup_numpy(keys, weights, u, v, n, missing):
    """Numpy twin of :func:`repro.native_kernels.keyed_lookup`."""
    probe = u * n + v
    pos = np.searchsorted(keys, probe)
    pos_c = np.minimum(pos, len(keys) - 1)
    found = keys[pos_c] == probe
    return np.where(found, weights[pos_c], missing)


def _gather_and_any_sample():
    ubits = np.array([[0b0110, 0], [0, 1 << 9]], dtype=np.uint64)
    tbits = np.array([[0b0100, 0], [0b0001, 0], [0, 1 << 9]], dtype=np.uint64)
    s_idx = np.array([0, 0, 1, 1], dtype=np.int64)
    t_idx = np.array([0, 1, 1, 2], dtype=np.int64)  # hit, miss, miss, hit
    return ubits, tbits, s_idx, t_idx


def _keyed_lookup_sample():
    keys = np.array([2, 7, 11, 30], dtype=np.int64)  # u*n+v with n=6
    weights = np.array([1, 3, 2, 5], dtype=np.int64)
    u = np.array([0, 1, 1, 5, 3], dtype=np.int64)
    v = np.array([2, 1, 5, 0, 3], dtype=np.int64)  # hit, hit, hit, hit, miss
    return keys, weights, u, v, np.int64(6), MISSING_WEIGHT


native.register(
    "gather_and_any",
    numpy_impl=_gather_and_any_numpy,
    python_impl=_nk.gather_and_any,
    parallel=True,
    sample=_gather_and_any_sample,
)
native.register(
    "keyed_lookup",
    numpy_impl=_keyed_lookup_numpy,
    python_impl=_nk.keyed_lookup,
    parallel=True,
    sample=_keyed_lookup_sample,
)
