"""On-disk serialization of k-reach indexes.

§4.1.3: "the constructed index is then stored on disk."  This module
implements that step: a :class:`~repro.core.kreach.KReachIndex` is written
as a single compressed ``.npz`` holding the §4.3 physical layout — the
cover-id table, the index CSR (offsets + targets), the packed weight
values — together with the graph's own CSR so a load is self-contained.

Round-trip fidelity (identical query answers) is asserted in
``tests/core/test_serialize.py``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph

__all__ = ["save_kreach", "load_kreach"]

#: Stored sentinel for the unbounded (n-reach) mode.
_K_UNBOUNDED = -1

_FORMAT_VERSION = 1


def save_kreach(index: KReachIndex, path: str | os.PathLike) -> None:
    """Write ``index`` (and its graph) to ``path`` as compressed NPZ.

    Compressed-row indexes are materialized back to the CSR layout for
    storage — NPZ's deflate already compresses the arrays, and the loader
    can re-enable row compression via its ``compress_rows_at`` argument.
    """
    g = index.graph
    cover = np.asarray(sorted(index.cover), dtype=np.int64)
    heads: list[int] = []
    tails: list[int] = []
    weights: list[int] = []
    for u in cover.tolist():
        row = index._rows.get(u)
        if not row:
            continue
        for v, w in sorted(row.items()):
            heads.append(u)
            tails.append(v)
            weights.append(w)
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        k=np.int64(_K_UNBOUNDED if index.k is None else index.k),
        n=np.int64(g.n),
        graph_out_indptr=g.out_indptr,
        graph_out_indices=g.out_indices,
        graph_in_indptr=g.in_indptr,
        graph_in_indices=g.in_indices,
        cover=cover,
        edge_heads=np.asarray(heads, dtype=np.int64),
        edge_tails=np.asarray(tails, dtype=np.int64),
        edge_weights=np.asarray(weights, dtype=np.int64),
    )


def load_kreach(
    path: str | os.PathLike, *, compress_rows_at: int | None = None
) -> KReachIndex:
    """Load an index written by :func:`save_kreach`.

    The embedded graph is reconstructed directly from its CSR arrays (no
    re-parsing of edges), and the index rows are reassembled verbatim —
    no BFS runs at load time.
    """
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported k-reach file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        g = DiGraph(int(data["n"]))
        g.out_indptr = data["graph_out_indptr"]
        g.out_indices = data["graph_out_indices"]
        g.in_indptr = data["graph_in_indptr"]
        g.in_indices = data["graph_in_indices"]
        g.m = int(len(g.out_indices))
        k_raw = int(data["k"])
        k = None if k_raw == _K_UNBOUNDED else k_raw
        cover = frozenset(int(v) for v in data["cover"])
        rows: dict[int, dict[int, int]] = {}
        for u, v, w in zip(
            data["edge_heads"].tolist(),
            data["edge_tails"].tolist(),
            data["edge_weights"].tolist(),
        ):
            rows.setdefault(int(u), {})[int(v)] = int(w)
    return KReachIndex.from_parts(
        g, k, cover=cover, rows=rows, compress_rows_at=compress_rows_at
    )
