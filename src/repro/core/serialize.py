"""On-disk serialization of k-reach indexes.

§4.1.3: "the constructed index is then stored on disk."  This module
implements that step for all three tiers of the system:

* **v2 — static** (:func:`save_kreach` / :func:`load_kreach`): a
  :class:`~repro.core.kreach.KReachIndex` as a single compressed ``.npz``
  holding the §4.3 physical layout — which, with the CSR-native
  :class:`~repro.core.index_graph.IndexGraph` as the canonical in-memory
  representation, is a **straight array dump**: the cover-id table, the
  index CSR (offsets + targets), the packed weight words, and the graph's
  own dual CSR so a load is self-contained.
* **v3 — dynamic** (:func:`save_dynamic` / :func:`load_dynamic`): a
  :class:`~repro.core.dynamic.DynamicKReachIndex` as the same base-snapshot
  array dump **plus the pending delta log** — the ``(op, u, v)`` updates
  applied since the last compaction.  Loading validates the base arrays
  (CSR invariants via :meth:`IndexGraph.validate
  <repro.core.index_graph.IndexGraph.validate>` and
  :meth:`DiGraph.from_csr <repro.graph.digraph.DiGraph.from_csr>`), then
  replays the log through the ordinary maintenance path, reproducing the
  exact overlay state; corrupt or truncated dumps raise
  :class:`ValueError` with a diagnosis instead of deserializing garbage.
* **v4 — memory-mapped serving** (:func:`save_mmap` / :func:`load_mmap`):
  the same static payload as v2, laid out **uncompressed** in one flat
  file — a fixed magic/length prologue, a JSON section table, and every
  array at a 64-byte-aligned offset in its exact in-memory dtype.
  :func:`load_mmap` maps the file once and installs each array as a
  zero-copy view: open time is O(header), not O(index), the first query
  faults in only the pages it touches, and the OS page cache shares the
  clean bytes across every process serving the same file (the substrate
  :mod:`repro.core.serve` builds its worker pool on).  The derived
  sorted key / weight row-store arrays are precomputed into the file, so
  the batch engine's probe view is also zero-copy.  Arrays arrive
  read-only (``mode='r'``); the whole query path is audited to be
  copy-on-build on top of them.

No Python-level edge loop runs in any direction on the array payloads.
Round-trip fidelity (identical query answers) is asserted in
``tests/core/test_serialize.py`` and ``tests/core/test_serialize_mmap.py``.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.bitsets.ops import DEFAULT_MATRIX_BYTES
from repro.bitsets.packed import PackedIntArray
from repro.core.dynamic import OP_DELETE, OP_INSERT, DynamicKReachIndex
from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph

__all__ = [
    "save_kreach",
    "load_kreach",
    "save_dynamic",
    "load_dynamic",
    "save_mmap",
    "load_mmap",
]

#: Stored sentinel for the unbounded (n-reach) mode.
_K_UNBOUNDED = -1

#: Version 2: straight IndexGraph array dump (v1 stored per-edge triples
#: rebuilt through Python loops; no longer readable).
_FORMAT_VERSION = 2

#: Version 3: v2's base-snapshot arrays plus the pending delta log of a
#: dynamic index.
_DYNAMIC_FORMAT_VERSION = 3

#: Version 4: the flat memory-mappable layout (see module docstring).
_MMAP_FORMAT_VERSION = 4

#: v4 file magic (8 bytes) followed by a little-endian uint64 header length.
_MMAP_MAGIC = b"KREACH4\x00"
_MMAP_PROLOGUE = 16

#: Every v4 section starts at a multiple of this (cache-line alignment;
#: any multiple of the widest itemsize would do for the views).
_MMAP_ALIGN = 64

#: The v4 section table: name -> dtype each array is stored (and mapped)
#: in.  Dtypes match the in-memory representation exactly so every view
#: is zero-copy (`graph_*_indices` are the DiGraph's int32 id dtype).
_V4_SECTIONS = {
    "graph_out_indptr": np.dtype("<i8"),
    "graph_out_indices": np.dtype("<i4"),
    "graph_in_indptr": np.dtype("<i8"),
    "graph_in_indices": np.dtype("<i4"),
    "cover_ids": np.dtype("<i8"),
    "index_indptr": np.dtype("<i8"),
    "index_targets": np.dtype("<i8"),
    "weight_words": np.dtype("<u8"),
    "row_keys": np.dtype("<i8"),
    "row_weights": np.dtype("<i8"),
}


def _base_payload(index: KReachIndex) -> dict[str, np.ndarray]:
    """The v2/v3-shared array dump of an index and its graph."""
    g = index.graph
    ig = index.index_graph
    return {
        "k": np.int64(_K_UNBOUNDED if index.k is None else index.k),
        "n": np.int64(g.n),
        "graph_out_indptr": g.out_indptr,
        "graph_out_indices": g.out_indices,
        "graph_in_indptr": g.in_indptr,
        "graph_in_indices": g.in_indices,
        "cover": ig.cover_ids,
        "index_indptr": ig.indptr,
        "index_targets": ig.targets,
        "weight_words": ig.packed.words,
        "weight_bits": np.int64(ig.packed.bits),
        "weight_base": np.int64(ig.weight_base),
    }


def _load_base(data, **kreach_kwargs) -> KReachIndex:
    """Reassemble the v2/v3-shared base snapshot, validating invariants.

    The embedded graph is reconstructed directly from its CSR arrays
    (invariants checked by :meth:`DiGraph.from_csr`), and the index
    arrays are installed verbatim after :meth:`IndexGraph.validate` — no
    BFS and no per-edge Python work at load time.
    """
    g = DiGraph.from_csr(
        data["graph_out_indptr"],
        data["graph_out_indices"],
        in_indptr=data["graph_in_indptr"],
        in_indices=data["graph_in_indices"],
    )
    if g.n != int(data["n"]):
        raise ValueError("stored vertex count disagrees with the graph CSR")
    k_raw = int(data["k"])
    k = None if k_raw == _K_UNBOUNDED else k_raw
    cover_ids = data["cover"].astype(np.int64)
    targets = data["index_targets"].astype(np.int64)
    packed = PackedIntArray.from_words(
        data["weight_words"], len(targets), bits=int(data["weight_bits"])
    )
    ig = IndexGraph(
        g.n,
        cover_ids,
        data["index_indptr"].astype(np.int64),
        targets,
        packed,
        int(data["weight_base"]),
    ).validate()
    return KReachIndex.from_index_graph(
        g,
        k,
        cover=frozenset(cover_ids.tolist()),
        index_graph=ig,
        **kreach_kwargs,
    )


def save_kreach(index: KReachIndex, path: str | os.PathLike) -> None:
    """Write ``index`` (and its graph) to ``path`` as compressed NPZ.

    The canonical :class:`IndexGraph` arrays go to disk verbatim.  WAH
    row views are *derived* structures and are not stored; the loader
    re-enables row compression via its ``compress_rows_at`` argument.
    """
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        **_base_payload(index),
    )


def _reject_v4(path: Path) -> None:
    """Raise the diagnosed cross-version error when ``path`` is a v4 dump."""
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(_MMAP_MAGIC))
    except OSError:
        return  # let the npz loader produce its own error
    if magic == _MMAP_MAGIC:
        raise ValueError(
            f"{path} is a v{_MMAP_FORMAT_VERSION} memory-mapped dump; "
            "load it with load_mmap"
        )


def load_kreach(
    path: str | os.PathLike, *, compress_rows_at: int | None = None
) -> KReachIndex:
    """Load an index written by :func:`save_kreach`."""
    _reject_v4(Path(path))
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version == _DYNAMIC_FORMAT_VERSION:
            raise ValueError(
                f"{path} is a v{version} dynamic dump; load it with load_dynamic"
            )
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported k-reach file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return _load_base(data, compress_rows_at=compress_rows_at)


def save_dynamic(index: DynamicKReachIndex, path: str | os.PathLike) -> None:
    """Write a dynamic index as base snapshot + pending delta log (v3).

    The overlay itself is *not* flattened to disk: the base arrays plus
    the replayable log determine it exactly, and replaying through the
    ordinary maintenance path on load means the on-disk format never has
    to mirror the in-memory overlay layout.  Call
    :meth:`~repro.core.dynamic.DynamicKReachIndex.compact` first for a
    log-free dump of a settled index.
    """
    log = index.pending_log()
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_DYNAMIC_FORMAT_VERSION),
        **_base_payload(index.base),
        log=log,
        log_count=np.int64(len(log)),
        compaction_ratio=np.float64(index.compaction_ratio),
        compaction_min_rows=np.int64(index.compaction_min_rows),
        auto_compact=np.int64(index.auto_compact),
        bitset_matrix_bytes=np.int64(index.bitset_matrix_bytes),
    )


def load_dynamic(path: str | os.PathLike) -> DynamicKReachIndex:
    """Load a dynamic index written by :func:`save_dynamic`.

    The base snapshot's CSR invariants are re-validated before install
    (the arrays come from outside the process and a single unsorted row
    would silently corrupt every binary-search probe), then the pending
    delta log is checked — shape, declared length, op codes, vertex
    ranges — and replayed.  Any inconsistency, including a truncated or
    otherwise unreadable file, raises :class:`ValueError` describing
    what is wrong with the dump.
    """
    _reject_v4(Path(path))
    try:
        data_file = np.load(Path(path))
    except (BadZipFile, OSError, ValueError, EOFError) as exc:
        raise ValueError(
            f"corrupt or truncated k-reach dynamic dump {path}: {exc}"
        ) from exc
    try:
        with data_file as data:
            try:
                version = int(data["format_version"])
                if version == _FORMAT_VERSION:
                    raise ValueError(
                        f"{path} is a v{version} static dump; load it with "
                        "load_kreach"
                    )
                if version != _DYNAMIC_FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported dynamic k-reach file version {version} "
                        f"(expected {_DYNAMIC_FORMAT_VERSION})"
                    )
                base = _load_base(
                    data,
                    bitset_matrix_bytes=int(data["bitset_matrix_bytes"]),
                )
                log = np.asarray(data["log"], dtype=np.int64)
                log_count = int(data["log_count"])
                ratio = float(data["compaction_ratio"])
                min_rows = int(data["compaction_min_rows"])
                auto = bool(int(data["auto_compact"]))
            except KeyError as exc:
                raise ValueError(
                    f"corrupt k-reach dynamic dump {path}: missing field {exc}"
                ) from exc
    except (BadZipFile, zlib.error, EOFError, OSError) as exc:
        raise ValueError(
            f"corrupt or truncated k-reach dynamic dump {path}: {exc}"
        ) from exc
    _validate_log(log, log_count, base.graph.n)
    dyn = DynamicKReachIndex.from_base(
        base,
        compaction_ratio=ratio,
        compaction_min_rows=min_rows,
        auto_compact=auto,
    )
    dyn.replay(log)
    return dyn


def _validate_log(log: np.ndarray, declared: int, n: int) -> None:
    """Reject malformed delta logs with a diagnosis."""
    if log.ndim != 2 or (log.size and log.shape[1] != 3):
        raise ValueError(
            f"corrupt delta log: expected an (ops, 3) array, got shape {log.shape}"
        )
    if len(log) != declared:
        raise ValueError(
            f"truncated delta log: header declares {declared} ops, "
            f"payload holds {len(log)}"
        )
    if not log.size:
        return
    ops = log[:, 0]
    if not bool(np.isin(ops, (OP_INSERT, OP_DELETE)).all()):
        bad = ops[~np.isin(ops, (OP_INSERT, OP_DELETE))][0]
        raise ValueError(f"corrupt delta log: unknown op code {int(bad)}")
    endpoints = log[:, 1:]
    if int(endpoints.min()) < 0 or int(endpoints.max()) >= n:
        raise ValueError(
            f"corrupt delta log: vertex id out of range [0, {n})"
        )


# ----------------------------------------------------------------------
# v4: the flat memory-mapped serving format
# ----------------------------------------------------------------------
def _align(offset: int) -> int:
    """Round ``offset`` up to the v4 section alignment."""
    return (offset + _MMAP_ALIGN - 1) // _MMAP_ALIGN * _MMAP_ALIGN


def _v4_arrays(index: KReachIndex) -> dict[str, np.ndarray]:
    """The v4 payload in section order, coerced to the on-disk dtypes.

    For an index whose arrays already live in the canonical dtypes (every
    index this package builds) the coercions are no-ops; the derived
    sorted key / weight row-store arrays are materialized here so the
    loader never has to.
    """
    g = index.graph
    ig = index.index_graph
    arrays = {
        "graph_out_indptr": g.out_indptr,
        "graph_out_indices": g.out_indices,
        "graph_in_indptr": g.in_indptr,
        "graph_in_indices": g.in_indices,
        "cover_ids": ig.cover_ids,
        "index_indptr": ig.indptr,
        "index_targets": ig.targets,
        "weight_words": ig.packed.words,
        "row_keys": ig.keys(),
        "row_weights": ig.weights64(),
    }
    return {
        name: np.ascontiguousarray(arr, dtype=_V4_SECTIONS[name])
        for name, arr in arrays.items()
    }


def save_mmap(index: KReachIndex, path: str | os.PathLike) -> None:
    """Write ``index`` as a flat memory-mappable file (v4).

    Layout: an 8-byte magic, a little-endian uint64 header length, a JSON
    header carrying the scalars (``k``, ``n``, weight encoding) and the
    section table (relative offset, element count, dtype per array), then
    every array's raw bytes at a 64-byte-aligned offset.  Unlike the v2
    ``.npz`` the payload is **uncompressed** — the cost of a larger file
    buys :func:`load_mmap` the right to map it zero-copy and lets the OS
    page cache share the bytes across every serving process.
    """
    arrays = _v4_arrays(index)
    sections: dict[str, dict[str, object]] = {}
    offset = 0  # relative to the aligned payload base
    payload_bytes = 0  # true (unpadded) end of the last section
    for name, arr in arrays.items():
        sections[name] = {
            "offset": offset,
            "count": int(arr.size),
            "dtype": arr.dtype.str,
        }
        payload_bytes = offset + arr.nbytes
        offset = _align(payload_bytes)
    header = {
        "format_version": _MMAP_FORMAT_VERSION,
        "kind": "kreach",
        "k": None if index.k is None else int(index.k),
        "n": int(index.graph.n),
        "weight_bits": int(index.index_graph.packed.bits),
        "weight_base": int(index.index_graph.weight_base),
        "payload_bytes": payload_bytes,
        "sections": sections,
    }
    blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    base = _align(_MMAP_PROLOGUE + len(blob))
    with open(Path(path), "wb") as fh:
        fh.write(_MMAP_MAGIC)
        fh.write(len(blob).to_bytes(8, "little"))
        fh.write(blob)
        for name, arr in arrays.items():
            start = base + int(sections[name]["offset"])  # type: ignore[arg-type]
            fh.write(b"\x00" * (start - fh.tell()))
            fh.write(arr.data)


def _npz_version_hint(path: Path) -> str:
    """The cross-version message for a zip (npz) file handed to load_mmap."""
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
    except Exception:
        return (
            f"{path} is a zip archive, not a v4 memory-mapped dump "
            "(and not a readable k-reach npz either)"
        )
    loader = "load_dynamic" if version == _DYNAMIC_FORMAT_VERSION else "load_kreach"
    return (
        f"{path} is a v{version} compressed npz dump; load it with {loader}"
    )


def load_mmap(
    path: str | os.PathLike,
    *,
    mode: str = "r",
    validate: bool = False,
    compress_rows_at: int | None = None,
    bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
) -> KReachIndex:
    """Open an index written by :func:`save_mmap`, zero-copy.

    The file is mapped once (``mode='r'``: shared read-only pages;
    ``mode='c'``: copy-on-write, private) and every array is installed as
    a view into the mapping — open cost is parsing the header plus O(1)
    bounds checks per section, independent of index size.  Structural
    problems the header can reveal — bad magic, corrupt JSON, a missing /
    misaligned / out-of-bounds section, disagreeing array lengths — raise
    :class:`ValueError` naming the offending section.  ``validate=True``
    additionally runs the full O(index) integrity scan (CSR invariants,
    sorted keys, weight consistency) for arrays of uncertain provenance;
    the default trusts the header the same way every mmap-based store
    does, since a full scan would defeat the O(header) open.

    The returned :class:`KReachIndex` serves queries directly off the
    read-only pages; every cache it builds lazily (link matrices, scalar
    probe dicts, adjacency lists) is a private copy-on-build structure,
    so many processes can open the same file and share its clean pages.
    """
    path = Path(path)
    if mode not in ("r", "c"):
        raise ValueError(f"mode must be 'r' or 'c', got {mode!r}")
    try:
        file_size = path.stat().st_size
        with open(path, "rb") as fh:
            prologue = fh.read(_MMAP_PROLOGUE)
            if len(prologue) < _MMAP_PROLOGUE:
                raise ValueError(
                    f"corrupt v4 header in {path}: file shorter than the "
                    f"{_MMAP_PROLOGUE}-byte prologue"
                )
            if prologue[:2] == b"PK":  # a zip: some npz-format dump
                raise ValueError(_npz_version_hint(path))
            if prologue[:8] != _MMAP_MAGIC:
                raise ValueError(
                    f"{path} is not a v4 k-reach dump (bad magic)"
                )
            hlen = int.from_bytes(prologue[8:16], "little")
            if hlen <= 0 or _MMAP_PROLOGUE + hlen > file_size:
                raise ValueError(
                    f"corrupt v4 header in {path}: declared header length "
                    f"{hlen} does not fit the {file_size}-byte file"
                )
            blob = fh.read(hlen)
    except OSError as exc:
        raise ValueError(f"cannot read v4 dump {path}: {exc}") from exc
    try:
        header = json.loads(blob)
    except ValueError as exc:
        raise ValueError(
            f"corrupt v4 header in {path}: not valid JSON ({exc})"
        ) from exc
    version = header.get("format_version")
    if version != _MMAP_FORMAT_VERSION:
        raise ValueError(
            f"unsupported k-reach mmap file version {version} "
            f"(expected {_MMAP_FORMAT_VERSION})"
        )
    kind = header.get("kind")
    if kind != "kreach":
        raise ValueError(f"{path} holds a {kind!r} dump, not a k-reach index")
    try:
        n = int(header["n"])
        k_raw = header["k"]
        weight_bits = int(header["weight_bits"])
        weight_base = int(header["weight_base"])
        sections = header["sections"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"corrupt v4 header in {path}: missing or malformed field ({exc})"
        ) from exc
    if n < 0 or not 1 <= weight_bits <= 32:
        raise ValueError(
            f"corrupt v4 header in {path}: n={n}, weight_bits={weight_bits}"
        )
    k = None if k_raw is None else int(k_raw)
    if not isinstance(sections, dict):
        raise ValueError(f"corrupt v4 header in {path}: no section table")

    base = _align(_MMAP_PROLOGUE + hlen)
    # One shared mapping for the whole payload; every section is a view
    # into it.  The raw mmap module beats np.memmap's subclass machinery
    # by ~0.2 ms per open — which matters when open is the O(header)
    # operation the serving tier spins workers on.
    import mmap as mmap_mod

    with open(path, "rb") as fh:
        mapping = mmap_mod.mmap(
            fh.fileno(),
            0,
            access=(
                mmap_mod.ACCESS_READ if mode == "r" else mmap_mod.ACCESS_COPY
            ),
        )
    buf = np.frombuffer(mapping, dtype=np.uint8)
    views: dict[str, np.ndarray] = {}
    payload_end = 0
    for name, dtype in _V4_SECTIONS.items():
        entry = sections.get(name)
        if entry is None:
            raise ValueError(f"corrupt v4 dump {path}: missing section {name!r}")
        try:
            rel = int(entry["offset"])
            count = int(entry["count"])
            declared = np.dtype(entry["dtype"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ValueError(
                f"corrupt v4 dump {path}: malformed entry for section "
                f"{name!r} ({exc})"
            ) from exc
        if declared != dtype:
            raise ValueError(
                f"corrupt v4 dump {path}: section {name!r} declares dtype "
                f"{declared}, expected {dtype}"
            )
        if count < 0 or rel < 0 or rel % _MMAP_ALIGN:
            raise ValueError(
                f"corrupt v4 dump {path}: section {name!r} has a bad or "
                f"misaligned offset (offset={rel}, count={count})"
            )
        start = base + rel
        stop = start + count * dtype.itemsize
        if stop > file_size:
            raise ValueError(
                f"truncated v4 dump {path}: section {name!r} ends at byte "
                f"{stop} but the file holds only {file_size}"
            )
        payload_end = max(payload_end, rel + count * dtype.itemsize)
        views[name] = buf[start:stop].view(dtype)
    declared_payload = header.get("payload_bytes")
    if declared_payload != payload_end:
        raise ValueError(
            f"corrupt v4 header in {path}: payload_bytes "
            f"{declared_payload!r} disagrees with the section table end "
            f"{payload_end}"
        )

    def bad(section: str, msg: str) -> ValueError:
        return ValueError(f"corrupt v4 dump {path}: section {section!r} {msg}")

    # O(1) cross-section consistency — enough to make every later array
    # access in-bounds without scanning any payload.
    edges = len(views["index_targets"])
    if len(views["graph_out_indptr"]) != n + 1:
        raise bad("graph_out_indptr", f"must hold {n + 1} offsets")
    if len(views["graph_in_indptr"]) != n + 1:
        raise bad("graph_in_indptr", f"must hold {n + 1} offsets")
    if len(views["graph_out_indices"]) != len(views["graph_in_indices"]):
        raise bad("graph_in_indices", "disagrees with the out-direction on |E|")
    if len(views["index_indptr"]) != len(views["cover_ids"]) + 1:
        raise bad("index_indptr", "must hold cover size + 1 offsets")
    cover_ids = views["cover_ids"]
    if len(cover_ids):
        # O(|S|) — the open path already scatters over the cover, and a
        # bad id here would corrupt that scatter silently (negative ids
        # wrap) or crash it undiagnosed (ids >= n).
        if int(cover_ids.min()) < 0 or int(cover_ids.max()) >= n:
            raise bad("cover_ids", f"holds vertex ids outside [0, {n})")
        if len(cover_ids) > 1 and not bool(np.all(cover_ids[1:] > cover_ids[:-1])):
            raise bad("cover_ids", "must be strictly ascending")
    if int(views["index_indptr"][-1]) != edges:
        raise bad("index_indptr", f"must end at the {edges}-edge target count")
    if len(views["row_keys"]) != edges or len(views["row_weights"]) != edges:
        raise bad("row_keys", "must align with index_targets")
    expected_words = (edges * weight_bits + 63) // 64 + 1
    if len(views["weight_words"]) != expected_words:
        raise bad(
            "weight_words",
            f"must hold {expected_words} words for {edges} "
            f"{weight_bits}-bit weights",
        )

    g = DiGraph.from_csr(
        views["graph_out_indptr"],
        views["graph_out_indices"],
        in_indptr=views["graph_in_indptr"],
        in_indices=views["graph_in_indices"],
        validate=validate,
    )
    packed = PackedIntArray.from_words(
        views["weight_words"], edges, bits=weight_bits, copy=False
    )
    ig = IndexGraph.from_storage(
        n,
        views["cover_ids"],
        views["index_indptr"],
        views["index_targets"],
        packed,
        weight_base,
        keys=views["row_keys"],
        weights64=views["row_weights"],
    )
    if validate:
        ig.validate()
        keys = views["row_keys"]
        if len(keys) > 1 and not bool(np.all(keys[:-1] < keys[1:])):
            raise bad("row_keys", "must be strictly ascending")
        heads = np.repeat(views["cover_ids"], np.diff(views["index_indptr"]))
        if not np.array_equal(keys, heads * np.int64(n) + views["index_targets"]):
            raise bad("row_keys", "disagrees with the index CSR")
        if not np.array_equal(
            views["row_weights"], packed.as_numpy() + weight_base
        ):
            raise bad("row_weights", "disagrees with the packed weight words")
    return KReachIndex.from_index_graph(
        g,
        k,
        cover=frozenset(views["cover_ids"].tolist()),
        index_graph=ig,
        compress_rows_at=compress_rows_at,
        bitset_matrix_bytes=bitset_matrix_bytes,
    )
