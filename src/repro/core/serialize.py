"""On-disk serialization of k-reach indexes.

§4.1.3: "the constructed index is then stored on disk."  This module
implements that step for all three tiers of the system:

* **v2 — static** (:func:`save_kreach` / :func:`load_kreach`): a
  :class:`~repro.core.kreach.KReachIndex` as a single compressed ``.npz``
  holding the §4.3 physical layout — which, with the CSR-native
  :class:`~repro.core.index_graph.IndexGraph` as the canonical in-memory
  representation, is a **straight array dump**: the cover-id table, the
  index CSR (offsets + targets), the packed weight words, and the graph's
  own dual CSR so a load is self-contained.
* **v3 — dynamic** (:func:`save_dynamic` / :func:`load_dynamic`): a
  :class:`~repro.core.dynamic.DynamicKReachIndex` as the same base-snapshot
  array dump **plus the pending delta log** — the ``(op, u, v)`` updates
  applied since the last compaction.  Loading validates the base arrays
  (CSR invariants via :meth:`IndexGraph.validate
  <repro.core.index_graph.IndexGraph.validate>` and
  :meth:`DiGraph.from_csr <repro.graph.digraph.DiGraph.from_csr>`), then
  replays the log through the ordinary maintenance path, reproducing the
  exact overlay state; corrupt or truncated dumps raise
  :class:`ValueError` with a diagnosis instead of deserializing garbage.
* **v4 — memory-mapped serving** (:func:`save_mmap` / :func:`load_mmap`):
  the same static payload as v2, laid out **uncompressed** in one flat
  file — a fixed magic/length prologue, a JSON section table, and every
  array at a 64-byte-aligned offset in its exact in-memory dtype.
  :func:`load_mmap` maps the file once and installs each array as a
  zero-copy view: open time is O(header), not O(index), the first query
  faults in only the pages it touches, and the OS page cache shares the
  clean bytes across every process serving the same file (the substrate
  :mod:`repro.core.serve` builds its worker pool on).  The derived
  sorted key / weight row-store arrays are precomputed into the file, so
  the batch engine's probe view is also zero-copy.  Arrays arrive
  read-only (``mode='r'``); the whole query path is audited to be
  copy-on-build on top of them.

No Python-level edge loop runs in any direction on the array payloads.
Round-trip fidelity (identical query answers) is asserted in
``tests/core/test_serialize.py`` and ``tests/core/test_serialize_mmap.py``.

Durability & integrity
----------------------
Every saver in this module is **atomic**: the payload is written to a
temp file in the destination directory, flushed and ``fsync``-ed, then
``os.replace``-d over the target (and the directory entry synced) — a
crash mid-save leaves the previous snapshot byte-identical, never a torn
file under the expected name (chaos-tested through the
``serialize.v4_write_mid`` failpoint in :mod:`repro.faults`).

The mmap format is now **v5**: the prologue carries a CRC32 of the JSON
header (verified on every open — O(header), so the zero-copy open cost
is unchanged) and the section table carries a CRC32 per array payload,
verified by the opt-in ``verify=True`` full scan and by
``kreach-bench verify``.  v4 files written before checksums existed
still load (their header records no CRCs to check).  Integrity failures
raise :class:`IndexCorruptionError` — a :class:`ValueError` subclass
carrying the offending section and byte offset.

:class:`OpLog` is the crash-safe form of the v3 delta log: an
append-only journal of fixed-size framed ``(op, u, v)`` records, each
carrying its own CRC32.  A crash mid-append (the
``serialize.v3_log_tail`` failpoint) leaves a torn tail that the next
open silently truncates — acknowledged records replay exactly, garbage
never does.  :func:`recover_dynamic` = base snapshot + journal replay.
"""

from __future__ import annotations

import io
import json
import os
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro import faults
from repro.bitsets.ops import DEFAULT_MATRIX_BYTES
from repro.bitsets.packed import PackedIntArray
from repro.core.dynamic import OP_DELETE, OP_INSERT, DynamicKReachIndex
from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph

__all__ = [
    "IndexCorruptionError",
    "save_kreach",
    "load_kreach",
    "save_dynamic",
    "load_dynamic",
    "save_mmap",
    "load_mmap",
    "OpLog",
    "read_oplog",
    "recover_oplog",
    "recover_dynamic",
    "save_sharded",
    "load_sharded",
    "ShardManifest",
    "verify_file",
]

#: Stored sentinel for the unbounded (n-reach) mode.
_K_UNBOUNDED = -1

#: Version 2: straight IndexGraph array dump (v1 stored per-edge triples
#: rebuilt through Python loops; no longer readable).
_FORMAT_VERSION = 2

#: Version 3: v2's base-snapshot arrays plus the pending delta log of a
#: dynamic index.
_DYNAMIC_FORMAT_VERSION = 3

#: Version 5: the flat memory-mappable layout with an always-verified
#: header CRC32 and per-section payload CRC32s.  Version 4 (the same
#: layout, no checksums) still loads.
_MMAP_FORMAT_VERSION = 5
_MMAP_LEGACY_VERSION = 4

#: File magic (8 bytes).  v5 follows it with a little-endian uint64
#: header length and a little-endian uint32 CRC32 of the JSON header;
#: legacy v4 files have only the length.
_MMAP_MAGIC = b"KREACH5\x00"
_MMAP_MAGIC_V4 = b"KREACH4\x00"
_MMAP_PROLOGUE = 20
_MMAP_PROLOGUE_V4 = 16

#: Every v4 section starts at a multiple of this (cache-line alignment;
#: any multiple of the widest itemsize would do for the views).
_MMAP_ALIGN = 64

#: The v4 section table: name -> dtype each array is stored (and mapped)
#: in.  Dtypes match the in-memory representation exactly so every view
#: is zero-copy (`graph_*_indices` are the DiGraph's int32 id dtype).
_V4_SECTIONS = {
    "graph_out_indptr": np.dtype("<i8"),
    "graph_out_indices": np.dtype("<i4"),
    "graph_in_indptr": np.dtype("<i8"),
    "graph_in_indices": np.dtype("<i4"),
    "cover_ids": np.dtype("<i8"),
    "index_indptr": np.dtype("<i8"),
    "index_targets": np.dtype("<i8"),
    "weight_words": np.dtype("<u8"),
    "row_keys": np.dtype("<i8"),
    "row_weights": np.dtype("<i8"),
}

#: Sections replacing ``row_keys`` / ``row_weights`` when the header
#: declares ``storage='wah'``: the flat arrays of
#: :class:`~repro.core.rowstore.WahRowStore`, mapped zero-copy.
_WAH_SECTIONS = {
    "wah_row_indptr": np.dtype("<i8"),
    "wah_level_weights": np.dtype("<i8"),
    "wah_level_indptr": np.dtype("<i8"),
    "wah_words": np.dtype("<u4"),
}


def _mmap_sections(storage: str) -> dict[str, np.dtype]:
    """The section table for a v5 file with the given row storage."""
    if storage == "dense":
        return _V4_SECTIONS
    table = {
        name: dtype
        for name, dtype in _V4_SECTIONS.items()
        if name not in ("row_keys", "row_weights")
    }
    table.update(_WAH_SECTIONS)
    return table


class IndexCorruptionError(ValueError):
    """A stored index failed an integrity check.

    Subclasses :class:`ValueError`, so every pre-existing caller that
    catches the generic diagnosis keeps working; the typed form carries
    the file, the failing section (or ``None`` for whole-file problems),
    and the byte offset where the damage was detected (or ``None``).
    """

    def __init__(
        self,
        message: str,
        *,
        path: str | os.PathLike | None = None,
        section: str | None = None,
        offset: int | None = None,
    ) -> None:
        super().__init__(message)
        self.path = None if path is None else os.fspath(path)
        self.section = section
        self.offset = offset


def _fsync_dir(directory: Path) -> None:
    """fsync a directory entry so a rename survives power loss (POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return  # platforms without directory fds (Windows): best effort
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _atomic_write(path: Path, writer) -> None:
    """Write ``path`` atomically: temp file + fsync + rename + dir sync.

    ``writer(fh)`` produces the payload into the temp handle.  A crash
    (or an injected fault) at any point before the final ``os.replace``
    leaves the previous file under ``path`` byte-identical; the
    half-written temp is removed on an in-process failure and is inert
    litter (never loadable under the target name) after a hard kill.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as fh:
            writer(fh)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
    _fsync_dir(path.parent)


def _base_payload(index: KReachIndex) -> dict[str, np.ndarray]:
    """The v2/v3-shared array dump of an index and its graph."""
    g = index.graph
    ig = index.index_graph
    return {
        "k": np.int64(_K_UNBOUNDED if index.k is None else index.k),
        "n": np.int64(g.n),
        "graph_out_indptr": g.out_indptr,
        "graph_out_indices": g.out_indices,
        "graph_in_indptr": g.in_indptr,
        "graph_in_indices": g.in_indices,
        "cover": ig.cover_ids,
        "index_indptr": ig.indptr,
        "index_targets": ig.targets,
        "weight_words": ig.packed.words,
        "weight_bits": np.int64(ig.packed.bits),
        "weight_base": np.int64(ig.weight_base),
    }


def _load_base(data, **kreach_kwargs) -> KReachIndex:
    """Reassemble the v2/v3-shared base snapshot, validating invariants.

    The embedded graph is reconstructed directly from its CSR arrays
    (invariants checked by :meth:`DiGraph.from_csr`), and the index
    arrays are installed verbatim after :meth:`IndexGraph.validate` — no
    BFS and no per-edge Python work at load time.
    """
    g = DiGraph.from_csr(
        data["graph_out_indptr"],
        data["graph_out_indices"],
        in_indptr=data["graph_in_indptr"],
        in_indices=data["graph_in_indices"],
    )
    if g.n != int(data["n"]):
        raise ValueError("stored vertex count disagrees with the graph CSR")
    k_raw = int(data["k"])
    k = None if k_raw == _K_UNBOUNDED else k_raw
    cover_ids = data["cover"].astype(np.int64)
    targets = data["index_targets"].astype(np.int64)
    packed = PackedIntArray.from_words(
        data["weight_words"], len(targets), bits=int(data["weight_bits"])
    )
    ig = IndexGraph(
        g.n,
        cover_ids,
        data["index_indptr"].astype(np.int64),
        targets,
        packed,
        int(data["weight_base"]),
    ).validate()
    return KReachIndex.from_index_graph(
        g,
        k,
        cover=frozenset(cover_ids.tolist()),
        index_graph=ig,
        **kreach_kwargs,
    )


def save_kreach(index: KReachIndex, path: str | os.PathLike) -> None:
    """Write ``index`` (and its graph) to ``path`` as compressed NPZ.

    The canonical :class:`IndexGraph` arrays go to disk verbatim.  WAH
    row views are *derived* structures and are not stored; the loader
    re-enables row compression via its ``compress_rows_at`` argument.
    The write is atomic (temp + fsync + rename): a crash mid-save leaves
    any previous dump at ``path`` intact.
    """
    _atomic_write(
        Path(path),
        lambda fh: np.savez_compressed(
            fh,
            format_version=np.int64(_FORMAT_VERSION),
            **_base_payload(index),
        ),
    )


def _reject_v4(path: Path) -> None:
    """Raise the diagnosed cross-version error for a memory-mapped dump."""
    try:
        with open(path, "rb") as fh:
            magic = fh.read(len(_MMAP_MAGIC))
    except OSError:
        return  # let the npz loader produce its own error
    if magic == _MMAP_MAGIC or magic == _MMAP_MAGIC_V4:
        version = (
            _MMAP_FORMAT_VERSION if magic == _MMAP_MAGIC else _MMAP_LEGACY_VERSION
        )
        raise ValueError(
            f"{path} is a v{version} memory-mapped dump; load it with load_mmap"
        )


def load_kreach(
    path: str | os.PathLike, *, compress_rows_at: int | None = None
) -> KReachIndex:
    """Load an index written by :func:`save_kreach`."""
    _reject_v4(Path(path))
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version == _DYNAMIC_FORMAT_VERSION:
            raise ValueError(
                f"{path} is a v{version} dynamic dump; load it with load_dynamic"
            )
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported k-reach file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return _load_base(data, compress_rows_at=compress_rows_at)


def save_dynamic(index: DynamicKReachIndex, path: str | os.PathLike) -> None:
    """Write a dynamic index as base snapshot + pending delta log (v3).

    The overlay itself is *not* flattened to disk: the base arrays plus
    the replayable log determine it exactly, and replaying through the
    ordinary maintenance path on load means the on-disk format never has
    to mirror the in-memory overlay layout.  Call
    :meth:`~repro.core.dynamic.DynamicKReachIndex.compact` first for a
    log-free dump of a settled index.  The write is atomic (temp +
    fsync + rename): a crash mid-save leaves any previous dump intact.
    """
    log = index.pending_log()
    _atomic_write(
        Path(path),
        lambda fh: np.savez_compressed(
            fh,
            format_version=np.int64(_DYNAMIC_FORMAT_VERSION),
            **_base_payload(index.base),
            log=log,
            log_count=np.int64(len(log)),
            compaction_ratio=np.float64(index.compaction_ratio),
            compaction_min_rows=np.int64(index.compaction_min_rows),
            auto_compact=np.int64(index.auto_compact),
            bitset_matrix_bytes=np.int64(index.bitset_matrix_bytes),
        ),
    )


def load_dynamic(path: str | os.PathLike) -> DynamicKReachIndex:
    """Load a dynamic index written by :func:`save_dynamic`.

    The base snapshot's CSR invariants are re-validated before install
    (the arrays come from outside the process and a single unsorted row
    would silently corrupt every binary-search probe), then the pending
    delta log is checked — shape, declared length, op codes, vertex
    ranges — and replayed.  Any inconsistency, including a truncated or
    otherwise unreadable file, raises :class:`ValueError` describing
    what is wrong with the dump.
    """
    _reject_v4(Path(path))
    try:
        data_file = np.load(Path(path))
    except (BadZipFile, OSError, ValueError, EOFError) as exc:
        raise ValueError(
            f"corrupt or truncated k-reach dynamic dump {path}: {exc}"
        ) from exc
    try:
        with data_file as data:
            try:
                version = int(data["format_version"])
                if version == _FORMAT_VERSION:
                    raise ValueError(
                        f"{path} is a v{version} static dump; load it with "
                        "load_kreach"
                    )
                if version != _DYNAMIC_FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported dynamic k-reach file version {version} "
                        f"(expected {_DYNAMIC_FORMAT_VERSION})"
                    )
                base = _load_base(
                    data,
                    bitset_matrix_bytes=int(data["bitset_matrix_bytes"]),
                )
                log = np.asarray(data["log"], dtype=np.int64)
                log_count = int(data["log_count"])
                ratio = float(data["compaction_ratio"])
                min_rows = int(data["compaction_min_rows"])
                auto = bool(int(data["auto_compact"]))
            except KeyError as exc:
                raise ValueError(
                    f"corrupt k-reach dynamic dump {path}: missing field {exc}"
                ) from exc
    except (BadZipFile, zlib.error, EOFError, OSError) as exc:
        raise ValueError(
            f"corrupt or truncated k-reach dynamic dump {path}: {exc}"
        ) from exc
    _validate_log(log, log_count, base.graph.n)
    dyn = DynamicKReachIndex.from_base(
        base,
        compaction_ratio=ratio,
        compaction_min_rows=min_rows,
        auto_compact=auto,
    )
    dyn.replay(log)
    return dyn


def _validate_log(log: np.ndarray, declared: int, n: int) -> None:
    """Reject malformed delta logs with a diagnosis."""
    if log.ndim != 2 or (log.size and log.shape[1] != 3):
        raise ValueError(
            f"corrupt delta log: expected an (ops, 3) array, got shape {log.shape}"
        )
    if len(log) != declared:
        raise ValueError(
            f"truncated delta log: header declares {declared} ops, "
            f"payload holds {len(log)}"
        )
    if not log.size:
        return
    ops = log[:, 0]
    if not bool(np.isin(ops, (OP_INSERT, OP_DELETE)).all()):
        bad = ops[~np.isin(ops, (OP_INSERT, OP_DELETE))][0]
        raise ValueError(f"corrupt delta log: unknown op code {int(bad)}")
    endpoints = log[:, 1:]
    if int(endpoints.min()) < 0 or int(endpoints.max()) >= n:
        raise ValueError(
            f"corrupt delta log: vertex id out of range [0, {n})"
        )


# ----------------------------------------------------------------------
# v4: the flat memory-mapped serving format
# ----------------------------------------------------------------------
def _align(offset: int) -> int:
    """Round ``offset`` up to the v4 section alignment."""
    return (offset + _MMAP_ALIGN - 1) // _MMAP_ALIGN * _MMAP_ALIGN


def _v4_arrays(index: KReachIndex) -> dict[str, np.ndarray]:
    """The v4 payload in section order, coerced to the on-disk dtypes.

    For an index whose arrays already live in the canonical dtypes (every
    index this package builds) the coercions are no-ops; the derived
    sorted key / weight row-store arrays are materialized here so the
    loader never has to.  A ``storage='wah'`` index swaps those two
    (16 bytes/edge) for the four flat :class:`WahRowStore` arrays.
    """
    g = index.graph
    ig = index.index_graph
    arrays = {
        "graph_out_indptr": g.out_indptr,
        "graph_out_indices": g.out_indices,
        "graph_in_indptr": g.in_indptr,
        "graph_in_indices": g.in_indices,
        "cover_ids": ig.cover_ids,
        "index_indptr": ig.indptr,
        "index_targets": ig.targets,
        "weight_words": ig.packed.words,
    }
    if ig.storage == "wah":
        store = ig.wah_store()
        arrays["wah_row_indptr"] = store.row_indptr
        arrays["wah_level_weights"] = store.level_weights
        arrays["wah_level_indptr"] = store.level_indptr
        arrays["wah_words"] = store.words
    else:
        arrays["row_keys"] = ig.keys()
        arrays["row_weights"] = ig.weights64()
    table = _mmap_sections(ig.storage)
    return {
        name: np.ascontiguousarray(arr, dtype=table[name])
        for name, arr in arrays.items()
    }


def save_mmap(index: KReachIndex, path: str | os.PathLike) -> None:
    """Write ``index`` as a flat memory-mappable file (v5).

    Layout: an 8-byte magic, a little-endian uint64 header length, a
    little-endian uint32 CRC32 of the JSON header, the JSON header
    carrying the scalars (``k``, ``n``, weight encoding) and the section
    table (relative offset, element count, dtype, and payload CRC32 per
    array), then every array's raw bytes at a 64-byte-aligned offset.
    Unlike the v2 ``.npz`` the payload is **uncompressed** — the cost of
    a larger file buys :func:`load_mmap` the right to map it zero-copy
    and lets the OS page cache share the bytes across every serving
    process.

    The write is atomic: a crash mid-save (chaos-tested through the
    ``serialize.v4_write_mid`` failpoint) leaves any previous snapshot
    at ``path`` byte-identical.

    An index built with ``storage='wah'`` is saved in the compressed
    flavor: the header gains a ``"storage": "wah"`` field and the flat
    ``row_keys`` / ``row_weights`` sections (16 bytes per index edge)
    are replaced by the four :class:`WahRowStore` arrays.  Dense files
    carry no ``storage`` field and stay byte-compatible with older
    readers.
    """
    arrays = _v4_arrays(index)
    sections: dict[str, dict[str, object]] = {}
    offset = 0  # relative to the aligned payload base
    payload_bytes = 0  # true (unpadded) end of the last section
    for name, arr in arrays.items():
        sections[name] = {
            "offset": offset,
            "count": int(arr.size),
            "dtype": arr.dtype.str,
            "crc32": zlib.crc32(arr.data),
        }
        payload_bytes = offset + arr.nbytes
        offset = _align(payload_bytes)
    header = {
        "format_version": _MMAP_FORMAT_VERSION,
        "kind": "kreach",
        "k": None if index.k is None else int(index.k),
        "n": int(index.graph.n),
        "weight_bits": int(index.index_graph.packed.bits),
        "weight_base": int(index.index_graph.weight_base),
        "payload_bytes": payload_bytes,
        "sections": sections,
    }
    if index.index_graph.storage != "dense":
        # Absent field == dense, so dense files stay byte-compatible
        # with pre-wah readers.
        header["storage"] = index.index_graph.storage
    blob = json.dumps(header, separators=(",", ":")).encode("utf-8")
    base = _align(_MMAP_PROLOGUE + len(blob))

    def write(fh) -> None:
        fh.write(_MMAP_MAGIC)
        fh.write(len(blob).to_bytes(8, "little"))
        fh.write(zlib.crc32(blob).to_bytes(4, "little"))
        fh.write(blob)
        mid = len(arrays) // 2
        for i, (name, arr) in enumerate(arrays.items()):
            if i == mid and faults.ENABLED:
                # Torn-write chaos hook: everything written so far is on
                # its way to the temp file when the fault kills (or
                # aborts) the save mid-payload.
                fh.flush()
                faults.fire("serialize.v4_write_mid")
            start = base + int(sections[name]["offset"])  # type: ignore[arg-type]
            fh.write(b"\x00" * (start - fh.tell()))
            fh.write(arr.data)

    _atomic_write(Path(path), write)


def _npz_version_hint(path: Path) -> str:
    """The cross-version message for a zip (npz) file handed to load_mmap."""
    try:
        with np.load(path) as data:
            version = int(data["format_version"])
    except Exception:
        return (
            f"{path} is a zip archive, not a v4 memory-mapped dump "
            "(and not a readable k-reach npz either)"
        )
    loader = "load_dynamic" if version == _DYNAMIC_FORMAT_VERSION else "load_kreach"
    return (
        f"{path} is a v{version} compressed npz dump; load it with {loader}"
    )


def load_mmap(
    path: str | os.PathLike,
    *,
    mode: str = "r",
    validate: bool = False,
    verify: bool = False,
    compress_rows_at: int | None = None,
    bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
) -> KReachIndex:
    """Open an index written by :func:`save_mmap`, zero-copy.

    The file is mapped once (``mode='r'``: shared read-only pages;
    ``mode='c'``: copy-on-write, private) and every array is installed as
    a view into the mapping — open cost is parsing the header plus O(1)
    bounds checks per section, independent of index size.  On v5 files
    the JSON header's CRC32 is always verified (still O(header)), so a
    bit flip in the section table can never install a wrong view.
    Structural problems the header can reveal — bad magic, corrupt JSON,
    a missing / misaligned / out-of-bounds section, disagreeing array
    lengths — raise :class:`ValueError`
    (:class:`IndexCorruptionError` where a section is identifiable)
    naming the offending section.

    ``verify=True`` additionally checks every section's stored CRC32
    against its payload bytes (O(index) — opt in, the default preserves
    the O(header) open); a mismatch raises :class:`IndexCorruptionError`
    with the section and byte offset.  Legacy v4 files record no
    checksums, so ``verify=True`` refuses them explicitly rather than
    pretending to audit.  ``validate=True`` runs the full structural
    scan (CSR invariants, sorted keys, weight consistency) for arrays of
    uncertain provenance.

    The returned :class:`KReachIndex` serves queries directly off the
    read-only pages; every cache it builds lazily (link matrices, scalar
    probe dicts, adjacency lists) is a private copy-on-build structure,
    so many processes can open the same file and share its clean pages.
    """
    path = Path(path)
    if mode not in ("r", "c"):
        raise ValueError(f"mode must be 'r' or 'c', got {mode!r}")
    try:
        file_size = path.stat().st_size
        with open(path, "rb") as fh:
            prologue = fh.read(_MMAP_PROLOGUE)
            if len(prologue) < _MMAP_PROLOGUE_V4:
                raise ValueError(
                    f"corrupt header in {path}: file shorter than the "
                    f"{_MMAP_PROLOGUE_V4}-byte prologue"
                )
            if prologue[:2] == b"PK":  # a zip: some npz-format dump
                raise ValueError(_npz_version_hint(path))
            magic = prologue[:8]
            if magic == _MMAP_MAGIC:
                legacy = False
                plen = _MMAP_PROLOGUE
                if len(prologue) < _MMAP_PROLOGUE:
                    raise ValueError(
                        f"corrupt header in {path}: file shorter than the "
                        f"{_MMAP_PROLOGUE}-byte v5 prologue"
                    )
            elif magic == _MMAP_MAGIC_V4:
                legacy = True
                plen = _MMAP_PROLOGUE_V4
            else:
                raise ValueError(
                    f"{path} is not a k-reach mmap dump (bad magic)"
                )
            hlen = int.from_bytes(prologue[8:16], "little")
            if hlen <= 0 or plen + hlen > file_size:
                raise ValueError(
                    f"corrupt header in {path}: declared header length "
                    f"{hlen} does not fit the {file_size}-byte file"
                )
            fh.seek(plen)
            blob = fh.read(hlen)
    except OSError as exc:
        raise ValueError(f"cannot read mmap dump {path}: {exc}") from exc
    if not legacy:
        stored_crc = int.from_bytes(prologue[16:20], "little")
        actual_crc = zlib.crc32(blob)
        if actual_crc != stored_crc:
            raise IndexCorruptionError(
                f"corrupt header in {path}: header checksum mismatch "
                f"(stored 0x{stored_crc:08x}, computed 0x{actual_crc:08x})",
                path=path,
                offset=_MMAP_PROLOGUE,
            )
    try:
        header = json.loads(blob)
    except ValueError as exc:
        raise ValueError(
            f"corrupt header in {path}: not valid JSON ({exc})"
        ) from exc
    version = header.get("format_version")
    expected_version = _MMAP_LEGACY_VERSION if legacy else _MMAP_FORMAT_VERSION
    if version != expected_version:
        raise ValueError(
            f"unsupported k-reach mmap file version {version} "
            f"(expected {expected_version})"
        )
    if verify and legacy:
        raise ValueError(
            f"{path} is a legacy v{_MMAP_LEGACY_VERSION} dump with no stored "
            "checksums; re-save with save_mmap to make it verifiable"
        )
    kind = header.get("kind")
    if kind != "kreach":
        raise ValueError(f"{path} holds a {kind!r} dump, not a k-reach index")
    try:
        n = int(header["n"])
        k_raw = header["k"]
        weight_bits = int(header["weight_bits"])
        weight_base = int(header["weight_base"])
        sections = header["sections"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(
            f"corrupt v4 header in {path}: missing or malformed field ({exc})"
        ) from exc
    if n < 0 or not 1 <= weight_bits <= 32:
        raise ValueError(
            f"corrupt v4 header in {path}: n={n}, weight_bits={weight_bits}"
        )
    k = None if k_raw is None else int(k_raw)
    if not isinstance(sections, dict):
        raise ValueError(f"corrupt v4 header in {path}: no section table")
    storage = header.get("storage", "dense")
    if storage not in ("dense", "wah"):
        raise ValueError(
            f"corrupt header in {path}: unknown row storage {storage!r}"
        )
    section_table = _mmap_sections(storage)

    base = _align(plen + hlen)
    # One shared mapping for the whole payload; every section is a view
    # into it.  The raw mmap module beats np.memmap's subclass machinery
    # by ~0.2 ms per open — which matters when open is the O(header)
    # operation the serving tier spins workers on.
    import mmap as mmap_mod

    with open(path, "rb") as fh:
        mapping = mmap_mod.mmap(
            fh.fileno(),
            0,
            access=(
                mmap_mod.ACCESS_READ if mode == "r" else mmap_mod.ACCESS_COPY
            ),
        )
    buf = np.frombuffer(mapping, dtype=np.uint8)
    views: dict[str, np.ndarray] = {}
    section_starts: dict[str, int] = {}
    payload_end = 0
    for name, dtype in section_table.items():
        entry = sections.get(name)
        if entry is None:
            raise IndexCorruptionError(
                f"corrupt mmap dump {path}: missing section {name!r}",
                path=path,
                section=name,
            )
        try:
            rel = int(entry["offset"])
            count = int(entry["count"])
            declared = np.dtype(entry["dtype"])
        except (KeyError, TypeError, ValueError) as exc:
            raise IndexCorruptionError(
                f"corrupt mmap dump {path}: malformed entry for section "
                f"{name!r} ({exc})",
                path=path,
                section=name,
            ) from exc
        if declared != dtype:
            raise IndexCorruptionError(
                f"corrupt mmap dump {path}: section {name!r} declares dtype "
                f"{declared}, expected {dtype}",
                path=path,
                section=name,
            )
        if count < 0 or rel < 0 or rel % _MMAP_ALIGN:
            raise IndexCorruptionError(
                f"corrupt mmap dump {path}: section {name!r} has a bad or "
                f"misaligned offset (offset={rel}, count={count})",
                path=path,
                section=name,
                offset=rel,
            )
        start = base + rel
        stop = start + count * dtype.itemsize
        if stop > file_size:
            raise IndexCorruptionError(
                f"truncated mmap dump {path}: section {name!r} ends at byte "
                f"{stop} but the file holds only {file_size}",
                path=path,
                section=name,
                offset=start,
            )
        payload_end = max(payload_end, rel + count * dtype.itemsize)
        section_starts[name] = start
        views[name] = buf[start:stop].view(dtype)
    declared_payload = header.get("payload_bytes")
    if declared_payload != payload_end:
        raise ValueError(
            f"corrupt header in {path}: payload_bytes "
            f"{declared_payload!r} disagrees with the section table end "
            f"{payload_end}"
        )
    if verify:
        for name in section_table:
            stored = sections[name].get("crc32")
            if not isinstance(stored, int):
                raise IndexCorruptionError(
                    f"corrupt mmap dump {path}: section {name!r} records no "
                    "checksum",
                    path=path,
                    section=name,
                )
            actual = zlib.crc32(views[name])
            if actual != stored:
                raise IndexCorruptionError(
                    f"corrupt mmap dump {path}: section {name!r} checksum "
                    f"mismatch at byte {section_starts[name]} "
                    f"(stored 0x{stored:08x}, computed 0x{actual:08x})",
                    path=path,
                    section=name,
                    offset=section_starts[name],
                )

    def bad(section: str, msg: str) -> ValueError:
        return IndexCorruptionError(
            f"corrupt mmap dump {path}: section {section!r} {msg}",
            path=path,
            section=section,
        )

    # O(1) cross-section consistency — enough to make every later array
    # access in-bounds without scanning any payload.
    edges = len(views["index_targets"])
    if len(views["graph_out_indptr"]) != n + 1:
        raise bad("graph_out_indptr", f"must hold {n + 1} offsets")
    if len(views["graph_in_indptr"]) != n + 1:
        raise bad("graph_in_indptr", f"must hold {n + 1} offsets")
    if len(views["graph_out_indices"]) != len(views["graph_in_indices"]):
        raise bad("graph_in_indices", "disagrees with the out-direction on |E|")
    if len(views["index_indptr"]) != len(views["cover_ids"]) + 1:
        raise bad("index_indptr", "must hold cover size + 1 offsets")
    cover_ids = views["cover_ids"]
    if len(cover_ids):
        # O(|S|) — the open path already scatters over the cover, and a
        # bad id here would corrupt that scatter silently (negative ids
        # wrap) or crash it undiagnosed (ids >= n).
        if int(cover_ids.min()) < 0 or int(cover_ids.max()) >= n:
            raise bad("cover_ids", f"holds vertex ids outside [0, {n})")
        if len(cover_ids) > 1 and not bool(np.all(cover_ids[1:] > cover_ids[:-1])):
            raise bad("cover_ids", "must be strictly ascending")
    if int(views["index_indptr"][-1]) != edges:
        raise bad("index_indptr", f"must end at the {edges}-edge target count")
    if storage == "wah":
        if len(views["wah_row_indptr"]) != len(cover_ids) + 1:
            raise bad("wah_row_indptr", "must hold cover size + 1 offsets")
        levels = len(views["wah_level_weights"])
        if len(views["wah_level_indptr"]) != levels + 1:
            raise bad("wah_level_indptr", f"must hold {levels} + 1 offsets")
        if int(views["wah_row_indptr"][-1]) != levels:
            raise bad("wah_row_indptr", f"must end at the {levels}-level count")
        if int(views["wah_level_indptr"][-1]) != len(views["wah_words"]):
            raise bad(
                "wah_level_indptr",
                f"must end at the {len(views['wah_words'])}-word payload",
            )
    elif len(views["row_keys"]) != edges or len(views["row_weights"]) != edges:
        raise bad("row_keys", "must align with index_targets")
    expected_words = (edges * weight_bits + 63) // 64 + 1
    if len(views["weight_words"]) != expected_words:
        raise bad(
            "weight_words",
            f"must hold {expected_words} words for {edges} "
            f"{weight_bits}-bit weights",
        )

    g = DiGraph.from_csr(
        views["graph_out_indptr"],
        views["graph_out_indices"],
        in_indptr=views["graph_in_indptr"],
        in_indices=views["graph_in_indices"],
        validate=validate,
    )
    packed = PackedIntArray.from_words(
        views["weight_words"], edges, bits=weight_bits, copy=False
    )
    if storage == "wah":
        from repro.core.rowstore import WahRowStore

        store = WahRowStore(
            views["cover_ids"],
            n,
            views["wah_row_indptr"],
            views["wah_level_weights"],
            views["wah_level_indptr"],
            views["wah_words"],
            size=edges,
        )
        ig = IndexGraph.from_storage(
            n,
            views["cover_ids"],
            views["index_indptr"],
            views["index_targets"],
            packed,
            weight_base,
        ).use_storage("wah", store)
    else:
        ig = IndexGraph.from_storage(
            n,
            views["cover_ids"],
            views["index_indptr"],
            views["index_targets"],
            packed,
            weight_base,
            keys=views["row_keys"],
            weights64=views["row_weights"],
        )
    if validate:
        ig.validate()
        if storage == "wah":
            # Decode every WAH row and check it round-trips the CSR: the
            # compressed store must probe exactly the targets/weights the
            # index declares (rows are target-sorted, like the CSR).
            indptr = views["index_indptr"]
            weights64 = packed.as_numpy() + weight_base
            for r in range(len(cover_ids)):
                t, w = ig.wah_store()._row_arrays(r)
                lo, hi = int(indptr[r]), int(indptr[r + 1])
                if not np.array_equal(t, views["index_targets"][lo:hi]):
                    raise bad("wah_words", "disagrees with the index CSR")
                if not np.array_equal(w, weights64[lo:hi]):
                    raise bad(
                        "wah_level_weights",
                        "disagrees with the packed weight words",
                    )
        else:
            keys = views["row_keys"]
            if len(keys) > 1 and not bool(np.all(keys[:-1] < keys[1:])):
                raise bad("row_keys", "must be strictly ascending")
            heads = np.repeat(
                views["cover_ids"], np.diff(views["index_indptr"])
            )
            if not np.array_equal(
                keys, heads * np.int64(n) + views["index_targets"]
            ):
                raise bad("row_keys", "disagrees with the index CSR")
            if not np.array_equal(
                views["row_weights"], packed.as_numpy() + weight_base
            ):
                raise bad(
                    "row_weights", "disagrees with the packed weight words"
                )
    return KReachIndex.from_index_graph(
        g,
        k,
        cover=frozenset(views["cover_ids"].tolist()),
        index_graph=ig,
        compress_rows_at=compress_rows_at,
        bitset_matrix_bytes=bitset_matrix_bytes,
    )


# ----------------------------------------------------------------------
# Crash-safe framed op log (the durable form of the v3 delta log)
# ----------------------------------------------------------------------
#: Op-log file magic (8 bytes).
_OPLOG_MAGIC = b"KRLOG1\x00\x00"

#: Record framing: <u4 payload length> <i8 op, i8 u, i8 v> <u4 crc32>,
#: where the CRC covers the length prefix and the payload.  Fixed-size
#: frames mean a crashed append can tear at most the trailing record.
_OPLOG_PAYLOAD = 24
_OPLOG_RECORD = 4 + _OPLOG_PAYLOAD + 4


def _oplog_frame(op: int, u: int, v: int) -> bytes:
    body = _OPLOG_PAYLOAD.to_bytes(4, "little") + struct.pack(
        "<3q", int(op), int(u), int(v)
    )
    return body + zlib.crc32(body).to_bytes(4, "little")


def _oplog_scan(data: bytes, path) -> tuple[np.ndarray, int]:
    """Decode framed records; returns ``(ops, torn_tail_bytes)``.

    A *partial* trailing frame is a torn tail — the signature of a crash
    mid-append — and is reported for truncation.  A *complete* frame
    whose CRC fails is bit corruption of an acknowledged record and
    raises :class:`IndexCorruptionError` with its byte offset: silently
    dropping it (and everything after it) would un-acknowledge durable
    writes.
    """
    if data[: len(_OPLOG_MAGIC)] != _OPLOG_MAGIC:
        raise IndexCorruptionError(
            f"{path} is not a k-reach op log (bad magic)", path=path, offset=0
        )
    size = len(data)
    off = len(_OPLOG_MAGIC)
    rows: list[tuple[int, int, int]] = []
    while off < size:
        if size - off < _OPLOG_RECORD:
            return _oplog_rows(rows), size - off  # torn tail
        frame = data[off : off + _OPLOG_RECORD]
        length = int.from_bytes(frame[:4], "little")
        stored = int.from_bytes(frame[-4:], "little")
        if length != _OPLOG_PAYLOAD or zlib.crc32(frame[:-4]) != stored:
            raise IndexCorruptionError(
                f"corrupt op log {path}: record frame at byte {off} fails "
                "its checksum",
                path=path,
                offset=off,
            )
        rows.append(struct.unpack("<3q", frame[4:-4]))
        off += _OPLOG_RECORD
    return _oplog_rows(rows), 0


def _oplog_rows(rows: list[tuple[int, int, int]]) -> np.ndarray:
    if not rows:
        return np.empty((0, 3), dtype=np.int64)
    return np.asarray(rows, dtype=np.int64)


def read_oplog(path: str | os.PathLike) -> np.ndarray:
    """Decode an :class:`OpLog` file to an ``(ops, 3)`` int64 array.

    A torn tail (crash mid-append) is ignored — only whole, checksummed
    records are returned; the file itself is left untouched (use
    :func:`recover_oplog` to also truncate the tail in place).
    """
    return _oplog_scan(Path(path).read_bytes(), path)[0]


def recover_oplog(path: str | os.PathLike) -> tuple[np.ndarray, int]:
    """Read an op log, truncating any torn tail in place.

    Returns ``(ops, truncated_bytes)``; after it, the file ends on a
    record boundary and is safe to append to again.
    """
    path = Path(path)
    data = path.read_bytes()
    ops, torn = _oplog_scan(data, path)
    if torn:
        with open(path, "r+b") as fh:
            fh.truncate(len(data) - torn)
            fh.flush()
            os.fsync(fh.fileno())
    return ops, torn


class OpLog:
    """Append-only crash-safe journal of dynamic ``(op, u, v)`` updates.

    The durable transport form of the v3 delta log: each record is a
    fixed 32-byte frame carrying a checksummed length prefix, so a crash
    mid-append — the ``serialize.v3_log_tail`` failpoint — leaves at
    most one torn trailing frame, which the next :class:`OpLog` open (or
    :func:`recover_oplog`) silently truncates.  Acknowledged records
    replay exactly; garbage never does.

    Attach one to a live :class:`~repro.core.dynamic.DynamicKReachIndex`
    via :meth:`~repro.core.dynamic.DynamicKReachIndex.attach_journal` so
    every accepted update is journaled; rebuild after a crash with
    :func:`recover_dynamic`.

    ``fsync=True`` (default) syncs every append — the journal is the
    durability story, so it does not buffer acknowledged ops.  Pass
    ``fsync=False`` for tests or bulk loads where the tradeoff is
    explicit.

    If an append *raises* (injected fault, disk full), the handle must
    be considered torn: reopen the path — the constructor runs recovery
    — before appending again.
    """

    def __init__(self, path: str | os.PathLike, *, fsync: bool = True) -> None:
        self.path = Path(path)
        self.fsync = bool(fsync)
        self.recovered_bytes = 0
        if self.path.exists() and self.path.stat().st_size > 0:
            ops, self.recovered_bytes = recover_oplog(self.path)
            self._count = len(ops)
            self._fh = open(self.path, "ab")
        else:
            self._count = 0
            self._fh = open(self.path, "wb")
            self._fh.write(_OPLOG_MAGIC)
            self._sync()

    def _sync(self) -> None:
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())

    def append(self, op: int, u: int, v: int) -> None:
        """Durably append one record (fsync-ed unless ``fsync=False``)."""
        frame = _oplog_frame(op, u, v)
        if faults.ENABLED and faults.armed("serialize.v3_log_tail"):
            # Torn-append chaos hook: half the frame reaches the disk
            # before the fault kills (or aborts) the writer.
            cut = len(frame) // 2
            self._fh.write(frame[:cut])
            self._fh.flush()
            os.fsync(self._fh.fileno())
            faults.fire("serialize.v3_log_tail")
            self._fh.write(frame[cut:])
        else:
            self._fh.write(frame)
        self._sync()
        self._count += 1

    def extend(self, log) -> None:
        """Append every ``(op, u, v)`` row of an array or iterable."""
        for op, u, v in np.asarray(log, dtype=np.int64).reshape(-1, 3).tolist():
            self.append(op, u, v)

    @property
    def op_count(self) -> int:
        """Records known durable (recovered at open + appended since)."""
        return self._count

    def __len__(self) -> int:
        return self._count

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._sync()
            finally:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "OpLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._fh is None else "open"
        return f"OpLog({str(self.path)!r}, ops={self._count}, {state})"


def recover_dynamic(
    base_path: str | os.PathLike,
    log_path: str | os.PathLike,
    **from_base_options,
) -> DynamicKReachIndex:
    """Rebuild a dynamic index from a base snapshot plus its journal.

    ``base_path`` may be a v2 npz (:func:`save_kreach`) or a v4/v5 mmap
    dump (:func:`save_mmap`; opened copy-on-write so the overlay never
    touches the shared pages).  The journal's torn tail, if any, is
    truncated (see :func:`recover_oplog`), the surviving records are
    validated against the base's vertex range, and the log is replayed
    through the ordinary maintenance path — exactly what
    :func:`load_dynamic` does for the embedded v3 log, but driven from
    the crash-safe framed journal.  Attach a fresh (or the recovered)
    journal afterwards to keep journaling.
    """
    base_path = Path(base_path)
    with open(base_path, "rb") as fh:
        magic = fh.read(8)
    if magic in (_MMAP_MAGIC, _MMAP_MAGIC_V4):
        base = load_mmap(base_path, mode="c")
    else:
        base = load_kreach(base_path)
    ops, _ = recover_oplog(log_path)
    _validate_log(ops, len(ops), base.graph.n)
    dyn = DynamicKReachIndex.from_base(base, **from_base_options)
    dyn.replay(ops)
    return dyn


# ----------------------------------------------------------------------
# Checksum audit (the `kreach-bench verify` backend)
# ----------------------------------------------------------------------
def _audit_mmap(path: Path, report: dict) -> None:
    raw = path.read_bytes()
    legacy = raw[:8] == _MMAP_MAGIC_V4
    plen = _MMAP_PROLOGUE_V4 if legacy else _MMAP_PROLOGUE
    report["format"] = f"v{_MMAP_LEGACY_VERSION if legacy else _MMAP_FORMAT_VERSION} mmap index"
    if len(raw) < plen:
        report["detail"] = "file shorter than its prologue"
        return
    hlen = int.from_bytes(raw[8:16], "little")
    if hlen <= 0 or plen + hlen > len(raw):
        report["detail"] = f"declared header length {hlen} does not fit the file"
        return
    blob = raw[plen : plen + hlen]
    if legacy:
        report["sections"].append(
            {"name": "<header>", "bytes": hlen, "status": "no-crc"}
        )
    else:
        stored = int.from_bytes(raw[16:20], "little")
        computed = zlib.crc32(blob)
        report["sections"].append(
            {
                "name": "<header>",
                "bytes": hlen,
                "stored": stored,
                "computed": computed,
                "status": "ok" if stored == computed else "mismatch",
            }
        )
    try:
        header = json.loads(blob)
        sections = header["sections"]
    except (ValueError, KeyError, TypeError):
        report["detail"] = "header is not parseable JSON with a section table"
        return
    base = _align(plen + hlen)
    for name, entry in sections.items():
        try:
            start = base + int(entry["offset"])
            nbytes = int(entry["count"]) * np.dtype(entry["dtype"]).itemsize
        except (KeyError, TypeError, ValueError):
            report["sections"].append({"name": name, "status": "malformed"})
            continue
        row = {"name": name, "bytes": nbytes, "offset": start}
        if start + nbytes > len(raw):
            row["status"] = "truncated"
        else:
            stored = entry.get("crc32")
            if not isinstance(stored, int):
                row["status"] = "no-crc"
            else:
                computed = zlib.crc32(raw[start : start + nbytes])
                row.update(
                    stored=stored,
                    computed=computed,
                    status="ok" if stored == computed else "mismatch",
                )
        report["sections"].append(row)


def _audit_npz(path: Path, report: dict) -> None:
    import zipfile

    try:
        with np.load(path) as data:
            version = int(data["format_version"])
        report["format"] = f"v{version} npz ({'dynamic' if version == _DYNAMIC_FORMAT_VERSION else 'static'})"
    except Exception:
        report["format"] = "npz"
    try:
        with zipfile.ZipFile(path) as zf:
            for info in zf.infolist():
                row = {"name": info.filename, "bytes": info.file_size}
                try:
                    with zf.open(info) as member:  # read checks the zip CRC
                        while member.read(1 << 20):
                            pass
                    row["status"] = "ok"
                except Exception:
                    row["status"] = "mismatch"
                report["sections"].append(row)
    except Exception as exc:
        report["detail"] = f"unreadable zip archive: {exc}"


def _audit_oplog(path: Path, report: dict) -> None:
    report["format"] = "framed op log"
    try:
        ops, torn = _oplog_scan(path.read_bytes(), path)
        report["sections"].append(
            {
                "name": "records",
                "bytes": len(ops) * _OPLOG_RECORD,
                "count": len(ops),
                "status": "ok",
            }
        )
        if torn:
            report["sections"].append(
                {"name": "torn tail", "bytes": torn, "status": "torn-tail"}
            )
    except IndexCorruptionError as exc:
        report["sections"].append(
            {"name": "records", "offset": exc.offset, "status": "mismatch"}
        )


def verify_file(path: str | os.PathLike) -> dict:
    """Audit the checksums of any on-disk artifact this module writes.

    Accepts a v4/v5 mmap index, a v2/v3 npz dump, or a framed op log,
    and returns a report dict: ``format``, a ``sections`` list (name,
    size, stored/computed CRC32, per-section ``status``), and ``ok`` —
    ``True`` iff nothing is corrupt.  Statuses: ``ok``, ``mismatch``,
    ``truncated``, ``malformed``, ``no-crc`` (recorded before checksums
    existed — not an error), and ``torn-tail`` (an op log's recoverable
    crashed append — not an error).  This is the backend of
    ``kreach-bench verify``.
    """
    path = Path(path)
    report: dict = {
        "path": str(path),
        "format": None,
        "sections": [],
        "detail": "",
        "ok": False,
    }
    if path.is_dir():  # a sharded-manifest directory
        if (path / _SHARD_MANIFEST_NAME).exists():
            _audit_sharded(path, report)
        else:
            report["detail"] = (
                f"directory without a {_SHARD_MANIFEST_NAME}"
            )
            return report
    else:
        try:
            with open(path, "rb") as fh:
                magic = fh.read(8)
        except OSError as exc:
            report["detail"] = f"unreadable: {exc}"
            return report
        if magic in (_MMAP_MAGIC, _MMAP_MAGIC_V4):
            _audit_mmap(path, report)
        elif magic[:2] == b"PK":
            _audit_npz(path, report)
        elif magic == _OPLOG_MAGIC:
            _audit_oplog(path, report)
        elif magic[:1] == b"{" and path.name == _SHARD_MANIFEST_NAME:
            _audit_sharded(path.parent, report)
        else:
            report["detail"] = "not a k-reach index, dump, or op log"
            return report
    bad_statuses = {"mismatch", "truncated", "malformed"}
    report["ok"] = not report["detail"] and bool(report["sections"]) and not any(
        row["status"] in bad_statuses for row in report["sections"]
    )
    return report


# ---------------------------------------------------------------------------
# Sharded manifest (directory of per-shard v5 files + boundary index)
# ---------------------------------------------------------------------------

#: Sharded-manifest directory format: ``manifest.json`` + N per-shard v5
#: index files + the routing/boundary arrays, each independently
#: loadable and individually CRC32'd by the manifest.
_SHARD_FORMAT = "kreach-shards"
_SHARD_FORMAT_VERSION = 1
_SHARD_MANIFEST_NAME = "manifest.json"


def _npy_payload(arr: np.ndarray) -> bytes:
    """An array serialized in ``.npy`` v1 format, in memory (for CRCs)."""
    buf = io.BytesIO()
    np.lib.format.write_array(buf, np.ascontiguousarray(arr), version=(1, 0))
    return buf.getvalue()


def _file_crc32(path: Path) -> tuple[int, int]:
    """Streamed ``(crc32, size)`` of an on-disk file."""
    crc = 0
    size = 0
    with open(path, "rb") as fh:
        while True:
            chunk = fh.read(1 << 20)
            if not chunk:
                return crc, size
            crc = zlib.crc32(chunk, crc)
            size += len(chunk)


def _manifest_digest(payload: dict) -> int:
    """CRC32 of the manifest's canonical JSON, ``crc32`` field excluded."""
    body = {key: value for key, value in payload.items() if key != "crc32"}
    canonical = json.dumps(body, sort_keys=True, separators=(",", ":"))
    return zlib.crc32(canonical.encode("utf-8"))


def shard_index_name(shard: int) -> str:
    """File name of shard ``shard``'s v5 index inside a manifest dir."""
    return f"shard-{shard:03d}.kr5"


@dataclass
class ShardManifest:
    """A loaded sharded-manifest directory.

    ``indexes[i]`` is shard ``i``'s :class:`KReachIndex` (each opened
    zero-copy via :func:`load_mmap` from ``shard_paths[i]``); the
    routing arrays (``boundary``, ``shard_of``, ``closure``) and the
    per-shard portal tables are ``.npy``-memory-mapped.  Feed the whole
    object to
    :meth:`repro.core.partition.ShardedKReach.from_manifest`.
    """

    directory: Path
    k: int | None
    n: int
    num_shards: int
    boundary: np.ndarray
    shard_of: np.ndarray
    closure: np.ndarray
    shard_paths: list[Path]
    indexes: list[KReachIndex]
    vertex_maps: list[np.ndarray]
    entries: list[np.ndarray]
    exit_closures: list[np.ndarray]
    meta: dict = field(default_factory=dict)


def save_sharded(sharded, directory: str | os.PathLike) -> Path:
    """Persist a :class:`~repro.core.partition.ShardedKReach` to a directory.

    Layout: one ``manifest.json`` (atomic-written, carrying a CRC32 of
    its own canonical body plus per-file byte counts and CRC32s), N
    ``shard-%03d.kr5`` v5 files — each independently
    :func:`load_mmap`-able — and ``.npy`` routing/portal arrays.  Every
    file is written through the same temp+fsync+rename discipline as
    v5, and the manifest is written **last**, so a crash mid-save never
    leaves a manifest naming files that do not match it.
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files: dict[str, dict] = {}

    def put_npy(name: str, arr: np.ndarray, role: str, shard: int | None) -> None:
        payload = _npy_payload(arr)
        _atomic_write(directory / name, lambda fh: fh.write(payload))
        files[name] = {
            "bytes": len(payload),
            "crc32": zlib.crc32(payload),
            "role": role,
            "shard": shard,
        }

    put_npy("boundary.npy", np.asarray(sharded.boundary, np.int64), "boundary", None)
    put_npy("shard_of.npy", np.asarray(sharded.shard_of, np.int64), "shard_of", None)
    put_npy("closure.npy", np.asarray(sharded.closure, np.int32), "closure", None)
    for i, shard in enumerate(sharded.shards):
        index_name = shard_index_name(i)
        save_mmap(shard.index, directory / index_name)
        crc, size = _file_crc32(directory / index_name)
        files[index_name] = {
            "bytes": size,
            "crc32": crc,
            "role": "index",
            "shard": i,
        }
        put_npy(f"vmap-{i:03d}.npy", np.asarray(shard.vertex_map, np.int64),
                "vertex_map", i)
        put_npy(f"entry-{i:03d}.npy", np.asarray(shard.entry, np.int32),
                "entry", i)
        put_npy(f"exitc-{i:03d}.npy", np.asarray(shard.exit_closure, np.int32),
                "exit_closure", i)

    manifest = {
        "format": _SHARD_FORMAT,
        "format_version": _SHARD_FORMAT_VERSION,
        "k": _K_UNBOUNDED if sharded.k is None else int(sharded.k),
        "n": int(sharded.n),
        "num_shards": int(sharded.num_shards),
        "boundary_size": int(len(sharded.boundary)),
        "files": files,
    }
    manifest["crc32"] = _manifest_digest(manifest)
    blob = json.dumps(manifest, indent=1, sort_keys=True).encode("utf-8")
    _atomic_write(directory / _SHARD_MANIFEST_NAME, lambda fh: fh.write(blob))
    return directory


def _read_manifest(directory: Path) -> dict:
    manifest_path = directory / _SHARD_MANIFEST_NAME
    try:
        with open(manifest_path, "rb") as fh:
            manifest = json.loads(fh.read().decode("utf-8"))
    except OSError as exc:
        raise IndexCorruptionError(
            f"unreadable sharded manifest: {exc}", path=manifest_path
        ) from exc
    except (ValueError, UnicodeDecodeError) as exc:
        raise IndexCorruptionError(
            f"malformed sharded manifest: {exc}", path=manifest_path
        ) from exc
    if manifest.get("format") != _SHARD_FORMAT:
        raise IndexCorruptionError(
            f"not a {_SHARD_FORMAT} manifest", path=manifest_path
        )
    if manifest.get("format_version") != _SHARD_FORMAT_VERSION:
        raise IndexCorruptionError(
            f"unsupported manifest version {manifest.get('format_version')!r}",
            path=manifest_path,
        )
    if _manifest_digest(manifest) != manifest.get("crc32"):
        raise IndexCorruptionError(
            "manifest CRC32 mismatch", path=manifest_path, section="manifest"
        )
    return manifest


def load_sharded(
    directory: str | os.PathLike,
    *,
    mode: str = "r",
    verify: bool = False,
) -> ShardManifest:
    """Open a :func:`save_sharded` directory; every shard zero-copy.

    ``verify=True`` additionally CRC32-checks every listed file against
    the manifest (O(bytes) — opt in; the default only validates the
    manifest's own checksum and each file's presence and size).  A
    missing, resized, or corrupt file raises
    :class:`IndexCorruptionError` naming it.
    """
    directory = Path(directory)
    manifest = _read_manifest(directory)
    for name, entry in manifest["files"].items():
        path = directory / name
        try:
            size = path.stat().st_size
        except OSError as exc:
            raise IndexCorruptionError(
                f"missing shard file: {exc}", path=path
            ) from exc
        if size != entry["bytes"]:
            raise IndexCorruptionError(
                f"size mismatch: manifest says {entry['bytes']} B, "
                f"found {size} B",
                path=path,
                section=name,
            )
        if verify:
            crc, _ = _file_crc32(path)
            if crc != entry["crc32"]:
                raise IndexCorruptionError(
                    "file CRC32 mismatch", path=path, section=name
                )

    def load_npy(name: str) -> np.ndarray:
        return np.load(directory / name, mmap_mode="r")

    num_shards = int(manifest["num_shards"])
    stored_k = int(manifest["k"])
    shard_paths = [directory / shard_index_name(i) for i in range(num_shards)]
    return ShardManifest(
        directory=directory,
        k=None if stored_k == _K_UNBOUNDED else stored_k,
        n=int(manifest["n"]),
        num_shards=num_shards,
        boundary=load_npy("boundary.npy"),
        shard_of=load_npy("shard_of.npy"),
        closure=load_npy("closure.npy"),
        shard_paths=shard_paths,
        indexes=[load_mmap(path, mode=mode) for path in shard_paths],
        vertex_maps=[load_npy(f"vmap-{i:03d}.npy") for i in range(num_shards)],
        entries=[load_npy(f"entry-{i:03d}.npy") for i in range(num_shards)],
        exit_closures=[
            load_npy(f"exitc-{i:03d}.npy") for i in range(num_shards)
        ],
        meta=manifest,
    )


def _audit_sharded(directory: Path, report: dict) -> None:
    """Per-file CRC audit of a sharded manifest directory."""
    report["format"] = f"{_SHARD_FORMAT}(v{_SHARD_FORMAT_VERSION})"
    manifest_path = directory / _SHARD_MANIFEST_NAME
    try:
        with open(manifest_path, "rb") as fh:
            blob = fh.read()
        manifest = json.loads(blob.decode("utf-8"))
        stored = int(manifest.get("crc32", -1))
        computed = _manifest_digest(manifest)
        wrong_shape = (
            manifest.get("format") != _SHARD_FORMAT
            or manifest.get("format_version") != _SHARD_FORMAT_VERSION
        )
    except OSError as exc:
        report["detail"] = f"unreadable manifest: {exc}"
        return
    except (ValueError, UnicodeDecodeError, TypeError):
        report["sections"].append(
            {"name": "manifest.json", "bytes": len(blob), "status": "malformed"}
        )
        return
    if wrong_shape:
        report["sections"].append(
            {"name": "manifest.json", "bytes": len(blob), "status": "malformed"}
        )
        return
    report["sections"].append(
        {
            "name": "manifest.json",
            "bytes": len(blob),
            "stored": stored,
            "computed": computed,
            "status": "ok" if stored == computed else "mismatch",
        }
    )
    for name, entry in manifest.get("files", {}).items():
        path = directory / name
        row = {"name": name, "bytes": int(entry["bytes"])}
        try:
            size = path.stat().st_size
        except OSError:
            row["status"] = "truncated"  # listed in the manifest, not on disk
            report["sections"].append(row)
            continue
        if size != entry["bytes"]:
            row["bytes"] = size
            row["status"] = "truncated"
            report["sections"].append(row)
            continue
        crc, _ = _file_crc32(path)
        row["stored"] = int(entry["crc32"])
        row["computed"] = crc
        row["status"] = "ok" if crc == int(entry["crc32"]) else "mismatch"
        report["sections"].append(row)
