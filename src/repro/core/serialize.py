"""On-disk serialization of k-reach indexes.

§4.1.3: "the constructed index is then stored on disk."  This module
implements that step: a :class:`~repro.core.kreach.KReachIndex` is written
as a single compressed ``.npz`` holding the §4.3 physical layout — which,
with the CSR-native :class:`~repro.core.index_graph.IndexGraph` as the
canonical in-memory representation, is a **straight array dump**: the
cover-id table, the index CSR (offsets + targets), the packed weight
words, and the graph's own dual CSR so a load is self-contained.  No
Python-level edge loop runs in either direction; loading reassembles the
graph through :meth:`DiGraph.from_csr
<repro.graph.digraph.DiGraph.from_csr>` (which validates the CSR
invariants) and wraps the arrays back into an ``IndexGraph`` verbatim.

Round-trip fidelity (identical query answers) is asserted in
``tests/core/test_serialize.py``.
"""

from __future__ import annotations

import os
from pathlib import Path

import numpy as np

from repro.bitsets.packed import PackedIntArray
from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph

__all__ = ["save_kreach", "load_kreach"]

#: Stored sentinel for the unbounded (n-reach) mode.
_K_UNBOUNDED = -1

#: Version 2: straight IndexGraph array dump (v1 stored per-edge triples
#: rebuilt through Python loops; no longer readable).
_FORMAT_VERSION = 2


def save_kreach(index: KReachIndex, path: str | os.PathLike) -> None:
    """Write ``index`` (and its graph) to ``path`` as compressed NPZ.

    The canonical :class:`IndexGraph` arrays go to disk verbatim.  WAH
    row views are *derived* structures and are not stored; the loader
    re-enables row compression via its ``compress_rows_at`` argument.
    """
    g = index.graph
    ig = index.index_graph
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        k=np.int64(_K_UNBOUNDED if index.k is None else index.k),
        n=np.int64(g.n),
        graph_out_indptr=g.out_indptr,
        graph_out_indices=g.out_indices,
        graph_in_indptr=g.in_indptr,
        graph_in_indices=g.in_indices,
        cover=ig.cover_ids,
        index_indptr=ig.indptr,
        index_targets=ig.targets,
        weight_words=ig.packed.words,
        weight_bits=np.int64(ig.packed.bits),
        weight_base=np.int64(ig.weight_base),
    )


def load_kreach(
    path: str | os.PathLike, *, compress_rows_at: int | None = None
) -> KReachIndex:
    """Load an index written by :func:`save_kreach`.

    The embedded graph is reconstructed directly from its CSR arrays (no
    re-parsing of edges, invariants validated), and the index arrays are
    installed verbatim — no BFS and no per-edge Python work at load time.
    """
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported k-reach file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        g = DiGraph.from_csr(
            data["graph_out_indptr"],
            data["graph_out_indices"],
            in_indptr=data["graph_in_indptr"],
            in_indices=data["graph_in_indices"],
        )
        if g.n != int(data["n"]):
            raise ValueError("stored vertex count disagrees with the graph CSR")
        k_raw = int(data["k"])
        k = None if k_raw == _K_UNBOUNDED else k_raw
        cover_ids = data["cover"].astype(np.int64)
        targets = data["index_targets"].astype(np.int64)
        packed = PackedIntArray.from_words(
            data["weight_words"], len(targets), bits=int(data["weight_bits"])
        )
        ig = IndexGraph(
            g.n,
            cover_ids,
            data["index_indptr"].astype(np.int64),
            targets,
            packed,
            int(data["weight_base"]),
        ).validate()
    return KReachIndex.from_index_graph(
        g,
        k,
        cover=frozenset(cover_ids.tolist()),
        index_graph=ig,
        compress_rows_at=compress_rows_at,
    )
