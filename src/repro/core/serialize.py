"""On-disk serialization of k-reach indexes.

§4.1.3: "the constructed index is then stored on disk."  This module
implements that step for both tiers of the system:

* **v2 — static** (:func:`save_kreach` / :func:`load_kreach`): a
  :class:`~repro.core.kreach.KReachIndex` as a single compressed ``.npz``
  holding the §4.3 physical layout — which, with the CSR-native
  :class:`~repro.core.index_graph.IndexGraph` as the canonical in-memory
  representation, is a **straight array dump**: the cover-id table, the
  index CSR (offsets + targets), the packed weight words, and the graph's
  own dual CSR so a load is self-contained.
* **v3 — dynamic** (:func:`save_dynamic` / :func:`load_dynamic`): a
  :class:`~repro.core.dynamic.DynamicKReachIndex` as the same base-snapshot
  array dump **plus the pending delta log** — the ``(op, u, v)`` updates
  applied since the last compaction.  Loading validates the base arrays
  (CSR invariants via :meth:`IndexGraph.validate
  <repro.core.index_graph.IndexGraph.validate>` and
  :meth:`DiGraph.from_csr <repro.graph.digraph.DiGraph.from_csr>`), then
  replays the log through the ordinary maintenance path, reproducing the
  exact overlay state; corrupt or truncated dumps raise
  :class:`ValueError` with a diagnosis instead of deserializing garbage.

No Python-level edge loop runs in either direction on the array payload.
Round-trip fidelity (identical query answers) is asserted in
``tests/core/test_serialize.py``.
"""

from __future__ import annotations

import os
import zlib
from pathlib import Path
from zipfile import BadZipFile

import numpy as np

from repro.bitsets.packed import PackedIntArray
from repro.core.dynamic import OP_DELETE, OP_INSERT, DynamicKReachIndex
from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph

__all__ = ["save_kreach", "load_kreach", "save_dynamic", "load_dynamic"]

#: Stored sentinel for the unbounded (n-reach) mode.
_K_UNBOUNDED = -1

#: Version 2: straight IndexGraph array dump (v1 stored per-edge triples
#: rebuilt through Python loops; no longer readable).
_FORMAT_VERSION = 2

#: Version 3: v2's base-snapshot arrays plus the pending delta log of a
#: dynamic index.
_DYNAMIC_FORMAT_VERSION = 3


def _base_payload(index: KReachIndex) -> dict[str, np.ndarray]:
    """The v2/v3-shared array dump of an index and its graph."""
    g = index.graph
    ig = index.index_graph
    return {
        "k": np.int64(_K_UNBOUNDED if index.k is None else index.k),
        "n": np.int64(g.n),
        "graph_out_indptr": g.out_indptr,
        "graph_out_indices": g.out_indices,
        "graph_in_indptr": g.in_indptr,
        "graph_in_indices": g.in_indices,
        "cover": ig.cover_ids,
        "index_indptr": ig.indptr,
        "index_targets": ig.targets,
        "weight_words": ig.packed.words,
        "weight_bits": np.int64(ig.packed.bits),
        "weight_base": np.int64(ig.weight_base),
    }


def _load_base(data, **kreach_kwargs) -> KReachIndex:
    """Reassemble the v2/v3-shared base snapshot, validating invariants.

    The embedded graph is reconstructed directly from its CSR arrays
    (invariants checked by :meth:`DiGraph.from_csr`), and the index
    arrays are installed verbatim after :meth:`IndexGraph.validate` — no
    BFS and no per-edge Python work at load time.
    """
    g = DiGraph.from_csr(
        data["graph_out_indptr"],
        data["graph_out_indices"],
        in_indptr=data["graph_in_indptr"],
        in_indices=data["graph_in_indices"],
    )
    if g.n != int(data["n"]):
        raise ValueError("stored vertex count disagrees with the graph CSR")
    k_raw = int(data["k"])
    k = None if k_raw == _K_UNBOUNDED else k_raw
    cover_ids = data["cover"].astype(np.int64)
    targets = data["index_targets"].astype(np.int64)
    packed = PackedIntArray.from_words(
        data["weight_words"], len(targets), bits=int(data["weight_bits"])
    )
    ig = IndexGraph(
        g.n,
        cover_ids,
        data["index_indptr"].astype(np.int64),
        targets,
        packed,
        int(data["weight_base"]),
    ).validate()
    return KReachIndex.from_index_graph(
        g,
        k,
        cover=frozenset(cover_ids.tolist()),
        index_graph=ig,
        **kreach_kwargs,
    )


def save_kreach(index: KReachIndex, path: str | os.PathLike) -> None:
    """Write ``index`` (and its graph) to ``path`` as compressed NPZ.

    The canonical :class:`IndexGraph` arrays go to disk verbatim.  WAH
    row views are *derived* structures and are not stored; the loader
    re-enables row compression via its ``compress_rows_at`` argument.
    """
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_FORMAT_VERSION),
        **_base_payload(index),
    )


def load_kreach(
    path: str | os.PathLike, *, compress_rows_at: int | None = None
) -> KReachIndex:
    """Load an index written by :func:`save_kreach`."""
    with np.load(Path(path)) as data:
        version = int(data["format_version"])
        if version == _DYNAMIC_FORMAT_VERSION:
            raise ValueError(
                f"{path} is a v{version} dynamic dump; load it with load_dynamic"
            )
        if version != _FORMAT_VERSION:
            raise ValueError(
                f"unsupported k-reach file version {version} "
                f"(expected {_FORMAT_VERSION})"
            )
        return _load_base(data, compress_rows_at=compress_rows_at)


def save_dynamic(index: DynamicKReachIndex, path: str | os.PathLike) -> None:
    """Write a dynamic index as base snapshot + pending delta log (v3).

    The overlay itself is *not* flattened to disk: the base arrays plus
    the replayable log determine it exactly, and replaying through the
    ordinary maintenance path on load means the on-disk format never has
    to mirror the in-memory overlay layout.  Call
    :meth:`~repro.core.dynamic.DynamicKReachIndex.compact` first for a
    log-free dump of a settled index.
    """
    log = index.pending_log()
    np.savez_compressed(
        Path(path),
        format_version=np.int64(_DYNAMIC_FORMAT_VERSION),
        **_base_payload(index.base),
        log=log,
        log_count=np.int64(len(log)),
        compaction_ratio=np.float64(index.compaction_ratio),
        compaction_min_rows=np.int64(index.compaction_min_rows),
        auto_compact=np.int64(index.auto_compact),
        bitset_matrix_bytes=np.int64(index.bitset_matrix_bytes),
    )


def load_dynamic(path: str | os.PathLike) -> DynamicKReachIndex:
    """Load a dynamic index written by :func:`save_dynamic`.

    The base snapshot's CSR invariants are re-validated before install
    (the arrays come from outside the process and a single unsorted row
    would silently corrupt every binary-search probe), then the pending
    delta log is checked — shape, declared length, op codes, vertex
    ranges — and replayed.  Any inconsistency, including a truncated or
    otherwise unreadable file, raises :class:`ValueError` describing
    what is wrong with the dump.
    """
    try:
        data_file = np.load(Path(path))
    except (BadZipFile, OSError, ValueError, EOFError) as exc:
        raise ValueError(
            f"corrupt or truncated k-reach dynamic dump {path}: {exc}"
        ) from exc
    try:
        with data_file as data:
            try:
                version = int(data["format_version"])
                if version == _FORMAT_VERSION:
                    raise ValueError(
                        f"{path} is a v{version} static dump; load it with "
                        "load_kreach"
                    )
                if version != _DYNAMIC_FORMAT_VERSION:
                    raise ValueError(
                        f"unsupported dynamic k-reach file version {version} "
                        f"(expected {_DYNAMIC_FORMAT_VERSION})"
                    )
                base = _load_base(
                    data,
                    bitset_matrix_bytes=int(data["bitset_matrix_bytes"]),
                )
                log = np.asarray(data["log"], dtype=np.int64)
                log_count = int(data["log_count"])
                ratio = float(data["compaction_ratio"])
                min_rows = int(data["compaction_min_rows"])
                auto = bool(int(data["auto_compact"]))
            except KeyError as exc:
                raise ValueError(
                    f"corrupt k-reach dynamic dump {path}: missing field {exc}"
                ) from exc
    except (BadZipFile, zlib.error, EOFError, OSError) as exc:
        raise ValueError(
            f"corrupt or truncated k-reach dynamic dump {path}: {exc}"
        ) from exc
    _validate_log(log, log_count, base.graph.n)
    dyn = DynamicKReachIndex.from_base(
        base,
        compaction_ratio=ratio,
        compaction_min_rows=min_rows,
        auto_compact=auto,
    )
    dyn.replay(log)
    return dyn


def _validate_log(log: np.ndarray, declared: int, n: int) -> None:
    """Reject malformed delta logs with a diagnosis."""
    if log.ndim != 2 or (log.size and log.shape[1] != 3):
        raise ValueError(
            f"corrupt delta log: expected an (ops, 3) array, got shape {log.shape}"
        )
    if len(log) != declared:
        raise ValueError(
            f"truncated delta log: header declares {declared} ops, "
            f"payload holds {len(log)}"
        )
    if not log.size:
        return
    ops = log[:, 0]
    if not bool(np.isin(ops, (OP_INSERT, OP_DELETE)).all()):
        bad = ops[~np.isin(ops, (OP_INSERT, OP_DELETE))][0]
        raise ValueError(f"corrupt delta log: unknown op code {int(bad)}")
    endpoints = log[:, 1:]
    if int(endpoints.min()) < 0 or int(endpoints.max()) >= n:
        raise ValueError(
            f"corrupt delta log: vertex id out of range [0, {n})"
        )
