"""Compressed storage for high-degree index rows (§4.3).

The paper notes that high-degree vertices of ``G`` tend to be high-degree
in the index graph ``I`` too, inflating both storage and Case-2/3/4 scan
cost, and proposes storing their neighbor sets "in a more compact way,
such as interval lists or partitioned word aligned hybrid compression …
we only need to locate the corresponding interval or bits for query
processing, instead of searching the list of neighbors."

:class:`CompressedRow` implements exactly that: one WAH bitmap per weight
level over the vertex-id space.  Because a k-reach row has at most three
weight levels (``k-2``, ``k-1``, ``k``), membership-with-budget reduces to
at most three compressed bit probes.  The class quacks like the plain
``dict`` rows (:meth:`get`, ``in``, ``len``, :meth:`items`), so the query
algorithms in :mod:`repro.core.kreach` are storage-agnostic.
"""

from __future__ import annotations

import collections
from typing import Iterator

import numpy as np

from repro import faults
from repro.bitsets.wah import WahBitVector, decode_indices, encode_bits

__all__ = ["CompressedRow", "WahRowStore", "compress_rows", "rows_to_arrays"]


class CompressedRow:
    """A k-reach index row stored as per-weight-level WAH bitmaps.

    Parameters
    ----------
    row:
        The plain ``{target: weight}`` dict to compress.
    universe:
        Vertex-id universe size (bitmap width).

    Examples
    --------
    >>> row = CompressedRow({2: 1, 5: 3, 9: 1}, universe=16)
    >>> row.get(5), row.get(4)
    (3, None)
    >>> 2 in row, len(row)
    (True, 3)
    """

    __slots__ = ("_levels", "_size", "universe")

    def __init__(self, row: dict[int, int], universe: int) -> None:
        by_weight: dict[int, list[int]] = {}
        for v, w in row.items():
            by_weight.setdefault(w, []).append(v)
        self._levels: list[tuple[int, WahBitVector]] = [
            (w, WahBitVector.from_indices(universe, sorted(targets)))
            for w, targets in sorted(by_weight.items())
        ]
        self._size = len(row)
        self.universe = universe

    @classmethod
    def from_arrays(
        cls, targets: np.ndarray, weights: np.ndarray, universe: int
    ) -> "CompressedRow":
        """Build from aligned (targets, weights) arrays without a dict.

        The vectorized construction path for the CSR-native index: one
        bitmap per distinct weight level, targets split by boolean mask.
        """
        self = object.__new__(cls)
        targets = np.asarray(targets, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        self._levels = [
            (
                int(w),
                WahBitVector.from_indices(
                    universe, np.sort(targets[weights == w]).tolist()
                ),
            )
            for w in np.unique(weights).tolist()
        ]
        self._size = len(targets)
        self.universe = universe
        return self

    def get(self, v: int, default: int | None = None) -> int | None:
        """The stored weight for target ``v`` (bit probes, low level first)."""
        if not 0 <= v < self.universe:
            return default
        for weight, bitmap in self._levels:
            if bitmap.test(v):
                return weight
        return default

    def __contains__(self, v: int) -> bool:
        return self.get(v) is not None

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(target, weight)`` pairs (decompresses; not a hot path)."""
        for weight, bitmap in self._levels:
            for v in np.flatnonzero(bitmap.decompress()):
                yield int(v), weight

    def keys(self) -> Iterator[int]:
        """Iterate target ids."""
        for v, _ in self.items():
            yield v

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The row as parallel ``(targets, weights)`` int64 arrays.

        Vectorized per-level bitmap decode — this is how the batch query
        engine (:mod:`repro.core.batch`) bulk-loads compressed hub rows
        into its keyed lookup structure without a Python-level loop over
        the row's entries.
        """
        targets: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for weight, bitmap in self._levels:
            hit = np.flatnonzero(bitmap.decompress()).astype(np.int64)
            targets.append(hit)
            weights.append(np.full(len(hit), weight, dtype=np.int64))
        if not targets:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(targets), np.concatenate(weights)

    def weight_levels(self) -> list[int]:
        """The distinct weights present (≤ 3 for a fixed-k index)."""
        return [w for w, _ in self._levels]

    def storage_bytes(self) -> int:
        """Compressed words across all levels (4 bytes each)."""
        return sum(bitmap.storage_bytes() for _, bitmap in self._levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompressedRow(size={self._size}, levels={self.weight_levels()})"


class WahRowStore:
    """WAH-compressed row store — the ``storage='wah'`` batch probe view.

    The drop-in compressed alternative to
    :class:`~repro.core.batch.KeyedRowStore`: where the dense store holds
    16 bytes per index edge (flat int64 keys + weights), this one holds a
    WAH bitmap per ``(cover row, weight level)`` over the vertex-id
    universe — a k-reach row has at most three levels (§4.3), and sparse
    or clustered rows compress to a fraction of the dense bytes.

    :meth:`lookup` keeps the same contract (aligned ``(u, v)`` arrays →
    int64 weights, ``MISSING_WEIGHT`` on absence) so every batch engine
    runs unchanged; rows decompress **on touch** into a small FIFO of hot
    uncompressed ``(targets, weights)`` pairs, which a batch grouped by
    source row (the common Case-2/3 shape) hits repeatedly.

    Layout (four flat arrays, each a zero-copy mmap section in the v5
    format's ``storage='wah'`` flavor):

    * ``row_indptr``  — int64, ``|S| + 1``: level span of each cover row;
    * ``level_weights`` — int64 per level: the stored weight;
    * ``level_indptr`` — int64, levels + 1: word span of each level;
    * ``words`` — uint32 WAH payload.
    """

    __slots__ = (
        "cover_ids",
        "n",
        "row_indptr",
        "level_weights",
        "level_indptr",
        "words",
        "_size",
        "_hot",
        "_hot_cap",
    )

    def __init__(
        self,
        cover_ids: np.ndarray,
        n: int,
        row_indptr: np.ndarray,
        level_weights: np.ndarray,
        level_indptr: np.ndarray,
        words: np.ndarray,
        *,
        size: int | None = None,
        hot_rows: int = 32,
    ) -> None:
        self.cover_ids = np.asarray(cover_ids, dtype=np.int64)
        self.n = int(n)
        self.row_indptr = np.asarray(row_indptr, dtype=np.int64)
        self.level_weights = np.asarray(level_weights, dtype=np.int64)
        self.level_indptr = np.asarray(level_indptr, dtype=np.int64)
        self.words = np.asarray(words, dtype=np.uint32)
        if len(self.row_indptr) != len(self.cover_ids) + 1:
            raise ValueError("row_indptr must have |cover| + 1 entries")
        if len(self.level_indptr) != len(self.level_weights) + 1:
            raise ValueError("level_indptr must have levels + 1 entries")
        self._size = size  # total stored edges; counted on demand
        self._hot: "collections.OrderedDict[int, tuple[np.ndarray, np.ndarray]]" = (
            collections.OrderedDict()
        )
        self._hot_cap = max(1, int(hot_rows))

    @classmethod
    def from_index_graph(cls, ig, *, hot_rows: int = 32) -> "WahRowStore":
        """Compress an :class:`~repro.core.index_graph.IndexGraph`'s rows."""
        weights = ig.weights64()
        targets = ig.targets
        n_rows = len(ig.cover_ids)
        row_indptr = np.zeros(n_rows + 1, dtype=np.int64)
        level_weights: list[int] = []
        level_sizes: list[int] = []
        word_parts: list[np.ndarray] = []
        bits = np.zeros(ig.n, dtype=bool)
        for r in range(n_rows):
            lo, hi = int(ig.indptr[r]), int(ig.indptr[r + 1])
            row_t = targets[lo:hi]
            row_w = weights[lo:hi]
            for w in np.unique(row_w).tolist():
                hit = row_t[row_w == w]
                bits[hit] = True
                part = encode_bits(bits)
                bits[hit] = False
                word_parts.append(part)
                level_weights.append(int(w))
                level_sizes.append(part.size)
            row_indptr[r + 1] = len(level_weights)
        level_indptr = np.zeros(len(level_weights) + 1, dtype=np.int64)
        np.cumsum(np.asarray(level_sizes, dtype=np.int64), out=level_indptr[1:])
        words = (
            np.concatenate(word_parts)
            if word_parts
            else np.empty(0, dtype=np.uint32)
        )
        return cls(
            ig.cover_ids,
            ig.n,
            row_indptr,
            np.asarray(level_weights, dtype=np.int64),
            level_indptr,
            words,
            size=len(targets),
            hot_rows=hot_rows,
        )

    def __len__(self) -> int:
        if self._size is None:
            total = 0
            for r in range(len(self.cover_ids)):
                total += len(self._row_arrays(r)[0])
            self._size = total
        return self._size

    def _row_arrays(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """Row ``r`` decoded to sorted ``(targets, weights)`` (FIFO-cached)."""
        cached = self._hot.get(r)
        if cached is not None:
            self._hot.move_to_end(r)
            return cached
        t_parts: list[np.ndarray] = []
        w_parts: list[np.ndarray] = []
        for li in range(int(self.row_indptr[r]), int(self.row_indptr[r + 1])):
            wlo, whi = int(self.level_indptr[li]), int(self.level_indptr[li + 1])
            hit = decode_indices(self.words[wlo:whi], self.n)
            t_parts.append(hit)
            w_parts.append(
                np.full(len(hit), int(self.level_weights[li]), dtype=np.int64)
            )
        if t_parts:
            targets = np.concatenate(t_parts)
            weights = np.concatenate(w_parts)
            order = np.argsort(targets, kind="stable")
            pair = (targets[order], weights[order])
        else:
            pair = (np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        self._hot[r] = pair
        if len(self._hot) > self._hot_cap:
            self._hot.popitem(last=False)
        return pair

    def lookup(self, u: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Stored weights for aligned (u, v) arrays — the
        :meth:`~repro.core.batch.KeyedRowStore.lookup` contract, served
        from decompress-on-touch rows."""
        from repro.core.batch import MISSING_WEIGHT

        u = np.asarray(u, dtype=np.int64)
        v = np.asarray(v, dtype=np.int64)
        if len(u) == 0:
            return np.empty(0, dtype=np.int64)
        if faults.ENABLED:
            faults.fire("batch.kernel_slow")
        out = np.full(len(u), MISSING_WEIGHT, dtype=np.int64)
        n_rows = len(self.cover_ids)
        if n_rows == 0:
            return out
        ri = np.minimum(np.searchsorted(self.cover_ids, u), n_rows - 1)
        vi = np.flatnonzero(self.cover_ids[ri] == u)
        if vi.size == 0:
            return out
        vi = vi[np.argsort(ri[vi], kind="stable")]  # group probes by row
        uniq_rows, starts = np.unique(ri[vi], return_index=True)
        bounds = np.append(starts, vi.size)
        for j, r in enumerate(uniq_rows.tolist()):
            sel = vi[bounds[j] : bounds[j + 1]]
            targets, weights = self._row_arrays(r)
            if targets.size == 0:
                continue
            pos = np.minimum(
                np.searchsorted(targets, v[sel]), targets.size - 1
            )
            hit = targets[pos] == v[sel]
            out[sel[hit]] = weights[pos[hit]]
        return out

    def weight_of(self, u: int, v: int) -> int | None:
        """Scalar probe (the compressed scalar-view backend)."""
        from repro.core.batch import MISSING_WEIGHT

        w = self.lookup(
            np.asarray([u], dtype=np.int64), np.asarray([v], dtype=np.int64)
        )[0]
        return None if w == MISSING_WEIGHT else int(w)

    def storage_bytes(self) -> int:
        """Compressed payload + offsets + the cover-id table."""
        return int(
            self.words.nbytes
            + self.level_indptr.nbytes
            + self.level_weights.nbytes
            + self.row_indptr.nbytes
            + self.cover_ids.nbytes
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"WahRowStore(rows={len(self.cover_ids)}, "
            f"levels={len(self.level_weights)}, words={len(self.words)})"
        )


def rows_to_arrays(rows: dict, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a legacy ``{u: row}`` mapping to ``(u * n + v, weight)`` arrays.

    Conversion helper for code that still holds nested-dict rows (tests,
    tools, the dynamic index): plain dict rows flatten through chained
    ``fromiter`` columns, :class:`CompressedRow` values through their
    vectorized :meth:`CompressedRow.arrays` decode.  Keys come back sorted
    when the input rows list their targets in ascending order (the common
    case); callers that cannot guarantee it should sort.
    """
    from itertools import chain

    key_parts: list[np.ndarray] = []
    weight_parts: list[np.ndarray] = []
    plain: list[tuple[int, dict]] = []
    compressed: list[tuple[int, CompressedRow]] = []
    for u, row in rows.items():
        if isinstance(row, dict):
            plain.append((u, row))
        else:
            compressed.append((u, row))
    plain.sort(key=lambda item: item[0])
    if plain:
        counts = np.fromiter(
            (len(row) for _, row in plain), dtype=np.int64, count=len(plain)
        )
        total = int(counts.sum())
        targets = np.fromiter(
            chain.from_iterable(row.keys() for _, row in plain),
            dtype=np.int64,
            count=total,
        )
        weights = np.fromiter(
            chain.from_iterable(row.values() for _, row in plain),
            dtype=np.int64,
            count=total,
        )
        sources = np.repeat(
            np.fromiter((u for u, _ in plain), dtype=np.int64, count=len(plain)),
            counts,
        )
        key_parts.append(sources * n + targets)
        weight_parts.append(weights)
    for u, row in compressed:  # vectorized per-level bitmap decode
        targets, weights = row.arrays()
        key_parts.append(np.int64(u) * n + targets)
        weight_parts.append(weights)
    if not key_parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    keys = np.concatenate(key_parts) if len(key_parts) > 1 else key_parts[0]
    weights = (
        np.concatenate(weight_parts) if len(weight_parts) > 1 else weight_parts[0]
    )
    return keys, weights


def compress_rows(
    rows: dict[int, dict[int, int]], universe: int, threshold: int
) -> dict[int, "dict[int, int] | CompressedRow"]:
    """Compress every row with at least ``threshold`` entries.

    Small rows stay plain dicts (a bitmap would cost more than it saves and
    dict probes are faster); hub rows become :class:`CompressedRow`.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    out: dict[int, dict[int, int] | CompressedRow] = {}
    for u, row in rows.items():
        if len(row) >= threshold:
            out[u] = CompressedRow(row, universe)
        else:
            out[u] = row
    return out
