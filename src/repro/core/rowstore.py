"""Compressed storage for high-degree index rows (§4.3).

The paper notes that high-degree vertices of ``G`` tend to be high-degree
in the index graph ``I`` too, inflating both storage and Case-2/3/4 scan
cost, and proposes storing their neighbor sets "in a more compact way,
such as interval lists or partitioned word aligned hybrid compression …
we only need to locate the corresponding interval or bits for query
processing, instead of searching the list of neighbors."

:class:`CompressedRow` implements exactly that: one WAH bitmap per weight
level over the vertex-id space.  Because a k-reach row has at most three
weight levels (``k-2``, ``k-1``, ``k``), membership-with-budget reduces to
at most three compressed bit probes.  The class quacks like the plain
``dict`` rows (:meth:`get`, ``in``, ``len``, :meth:`items`), so the query
algorithms in :mod:`repro.core.kreach` are storage-agnostic.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.bitsets.wah import WahBitVector

__all__ = ["CompressedRow", "compress_rows", "rows_to_arrays"]


class CompressedRow:
    """A k-reach index row stored as per-weight-level WAH bitmaps.

    Parameters
    ----------
    row:
        The plain ``{target: weight}`` dict to compress.
    universe:
        Vertex-id universe size (bitmap width).

    Examples
    --------
    >>> row = CompressedRow({2: 1, 5: 3, 9: 1}, universe=16)
    >>> row.get(5), row.get(4)
    (3, None)
    >>> 2 in row, len(row)
    (True, 3)
    """

    __slots__ = ("_levels", "_size", "universe")

    def __init__(self, row: dict[int, int], universe: int) -> None:
        by_weight: dict[int, list[int]] = {}
        for v, w in row.items():
            by_weight.setdefault(w, []).append(v)
        self._levels: list[tuple[int, WahBitVector]] = [
            (w, WahBitVector.from_indices(universe, sorted(targets)))
            for w, targets in sorted(by_weight.items())
        ]
        self._size = len(row)
        self.universe = universe

    @classmethod
    def from_arrays(
        cls, targets: np.ndarray, weights: np.ndarray, universe: int
    ) -> "CompressedRow":
        """Build from aligned (targets, weights) arrays without a dict.

        The vectorized construction path for the CSR-native index: one
        bitmap per distinct weight level, targets split by boolean mask.
        """
        self = object.__new__(cls)
        targets = np.asarray(targets, dtype=np.int64)
        weights = np.asarray(weights, dtype=np.int64)
        self._levels = [
            (
                int(w),
                WahBitVector.from_indices(
                    universe, np.sort(targets[weights == w]).tolist()
                ),
            )
            for w in np.unique(weights).tolist()
        ]
        self._size = len(targets)
        self.universe = universe
        return self

    def get(self, v: int, default: int | None = None) -> int | None:
        """The stored weight for target ``v`` (bit probes, low level first)."""
        if not 0 <= v < self.universe:
            return default
        for weight, bitmap in self._levels:
            if bitmap.test(v):
                return weight
        return default

    def __contains__(self, v: int) -> bool:
        return self.get(v) is not None

    def __len__(self) -> int:
        return self._size

    def items(self) -> Iterator[tuple[int, int]]:
        """Iterate ``(target, weight)`` pairs (decompresses; not a hot path)."""
        for weight, bitmap in self._levels:
            for v in np.flatnonzero(bitmap.decompress()):
                yield int(v), weight

    def keys(self) -> Iterator[int]:
        """Iterate target ids."""
        for v, _ in self.items():
            yield v

    def arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """The row as parallel ``(targets, weights)`` int64 arrays.

        Vectorized per-level bitmap decode — this is how the batch query
        engine (:mod:`repro.core.batch`) bulk-loads compressed hub rows
        into its keyed lookup structure without a Python-level loop over
        the row's entries.
        """
        targets: list[np.ndarray] = []
        weights: list[np.ndarray] = []
        for weight, bitmap in self._levels:
            hit = np.flatnonzero(bitmap.decompress()).astype(np.int64)
            targets.append(hit)
            weights.append(np.full(len(hit), weight, dtype=np.int64))
        if not targets:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
        return np.concatenate(targets), np.concatenate(weights)

    def weight_levels(self) -> list[int]:
        """The distinct weights present (≤ 3 for a fixed-k index)."""
        return [w for w, _ in self._levels]

    def storage_bytes(self) -> int:
        """Compressed words across all levels (4 bytes each)."""
        return sum(bitmap.storage_bytes() for _, bitmap in self._levels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CompressedRow(size={self._size}, levels={self.weight_levels()})"


def rows_to_arrays(rows: dict, n: int) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a legacy ``{u: row}`` mapping to ``(u * n + v, weight)`` arrays.

    Conversion helper for code that still holds nested-dict rows (tests,
    tools, the dynamic index): plain dict rows flatten through chained
    ``fromiter`` columns, :class:`CompressedRow` values through their
    vectorized :meth:`CompressedRow.arrays` decode.  Keys come back sorted
    when the input rows list their targets in ascending order (the common
    case); callers that cannot guarantee it should sort.
    """
    from itertools import chain

    key_parts: list[np.ndarray] = []
    weight_parts: list[np.ndarray] = []
    plain: list[tuple[int, dict]] = []
    compressed: list[tuple[int, CompressedRow]] = []
    for u, row in rows.items():
        if isinstance(row, dict):
            plain.append((u, row))
        else:
            compressed.append((u, row))
    plain.sort(key=lambda item: item[0])
    if plain:
        counts = np.fromiter(
            (len(row) for _, row in plain), dtype=np.int64, count=len(plain)
        )
        total = int(counts.sum())
        targets = np.fromiter(
            chain.from_iterable(row.keys() for _, row in plain),
            dtype=np.int64,
            count=total,
        )
        weights = np.fromiter(
            chain.from_iterable(row.values() for _, row in plain),
            dtype=np.int64,
            count=total,
        )
        sources = np.repeat(
            np.fromiter((u for u, _ in plain), dtype=np.int64, count=len(plain)),
            counts,
        )
        key_parts.append(sources * n + targets)
        weight_parts.append(weights)
    for u, row in compressed:  # vectorized per-level bitmap decode
        targets, weights = row.arrays()
        key_parts.append(np.int64(u) * n + targets)
        weight_parts.append(weights)
    if not key_parts:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    keys = np.concatenate(key_parts) if len(key_parts) > 1 else key_parts[0]
    weights = (
        np.concatenate(weight_parts) if len(weight_parts) > 1 else weight_parts[0]
    )
    return keys, weights


def compress_rows(
    rows: dict[int, dict[int, int]], universe: int, threshold: int
) -> dict[int, "dict[int, int] | CompressedRow"]:
    """Compress every row with at least ``threshold`` entries.

    Small rows stay plain dicts (a bitmap would cost more than it saves and
    dict probes are faster); hub rows become :class:`CompressedRow`.
    """
    if threshold < 1:
        raise ValueError(f"threshold must be >= 1, got {threshold}")
    out: dict[int, dict[int, int] | CompressedRow] = {}
    for u, row in rows.items():
        if len(row) >= threshold:
            out[u] = CompressedRow(row, universe)
        else:
            out[u] = row
    return out
