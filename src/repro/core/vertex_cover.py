"""Vertex covers and h-hop (path) vertex covers.

The k-reach index (§4.1) rests on a small vertex cover ``S`` of the input
graph: every edge has an endpoint in ``S``, hence every vertex is within one
hop of ``S``.  The (h,k)-reach variant (§5.1) generalizes this to an *h-hop
vertex cover*: every directed simple path of length ``h`` meets ``S``, hence
every vertex lies within ``h`` hops of ``S`` along any sufficiently long
path.

Implemented algorithms:

* :func:`vertex_cover_2approx` — the classic matching-based 2-approximation
  (§4.1.1), with the paper's §4.3 twist: edges incident to high-degree
  vertices are picked first, so "celebrity" vertices land in the cover.
* :func:`greedy_vertex_cover` — the max-degree greedy heuristic, used as an
  ablation (usually smaller covers, no approximation guarantee).
* :func:`hhop_vertex_cover` — the (h+1)-approximate minimum h-hop vertex
  cover of §5.1.1: repeatedly find a simple directed path of length ``h``,
  take all its vertices, delete them.
* :func:`is_vertex_cover` / :func:`is_hhop_vertex_cover` — verifiers used by
  the test suite.

Direction is ignored for the 1-hop cover (the paper notes this explicitly);
the h-hop cover covers *directed* paths, matching Definition 2's usage.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "vertex_cover_2approx",
    "greedy_vertex_cover",
    "hhop_vertex_cover",
    "is_vertex_cover",
    "is_hhop_vertex_cover",
    "cover_from_strategy",
    "COVER_STRATEGIES",
]


def vertex_cover_2approx(
    g: DiGraph,
    *,
    order: str = "degree",
    rng: np.random.Generator | None = None,
    include_degree_at_least: int | None = None,
) -> frozenset[int]:
    """A 2-approximate minimum vertex cover by maximal matching (§4.1.1).

    Picks edges one by one, adds both endpoints to the cover, and discards
    all edges they cover, until no edge remains.  Whatever the edge order,
    the picked edges form a matching, so the result is at most twice the
    minimum cover.

    Parameters
    ----------
    order:
        ``'degree'`` (default) processes edges by decreasing maximum
        endpoint degree — the §4.3 strategy that pulls high-degree
        ("celebrity") vertices into the cover and empirically shrinks it.
        ``'random'`` is the paper's baseline random pick.  ``'input'``
        follows CSR order (deterministic, for tests).
    rng:
        Randomness source for ``order='random'``.
    include_degree_at_least:
        If given, *all* vertices with ``in+out`` degree at least this
        threshold are seeded into the cover before the matching runs
        (§4.3: "we can easily include all such vertices in the vertex
        cover").  The threshold is typically the graph's h-index.
    """
    if order not in ("degree", "random", "input"):
        raise ValueError(f"unknown edge order {order!r}")

    edges = g.edge_array()
    if len(edges) == 0:
        return frozenset()

    covered = np.zeros(g.n, dtype=bool)
    cover: list[int] = []

    if include_degree_at_least is not None:
        degrees = g.degrees()
        seeded = np.flatnonzero(degrees >= include_degree_at_least)
        covered[seeded] = True
        cover.extend(int(v) for v in seeded)

    if order == "degree":
        degrees = g.degrees()
        key = np.maximum(degrees[edges[:, 0]], degrees[edges[:, 1]])
        edge_order = np.argsort(-key, kind="stable")
    elif order == "random":
        rng = rng or np.random.default_rng(0)
        edge_order = rng.permutation(len(edges))
    else:
        edge_order = np.arange(len(edges))

    for idx in edge_order:
        u, v = int(edges[idx, 0]), int(edges[idx, 1])
        if covered[u] or covered[v]:
            continue
        covered[u] = covered[v] = True
        cover.append(u)
        cover.append(v)
    return frozenset(cover)


def _symmetric_adjacency(g: DiGraph) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated undirected CSR (self-loops dropped), fully vectorized.

    Both edge directions are merged via one ``np.unique`` over flattened
    ``u * n + v`` keys — no Python-level edge loop and no dict-of-sets.
    """
    heads = np.repeat(
        np.arange(g.n, dtype=np.int64), np.diff(g.out_indptr).astype(np.int64)
    )
    tails = g.out_indices.astype(np.int64)
    u = np.concatenate([heads, tails])
    v = np.concatenate([tails, heads])
    keep = u != v
    keys = np.unique(u[keep] * np.int64(g.n) + v[keep])
    adj_indptr = np.zeros(g.n + 1, dtype=np.int64)
    np.cumsum(np.bincount(keys // g.n, minlength=g.n), out=adj_indptr[1:])
    return adj_indptr, keys % g.n


def greedy_vertex_cover(g: DiGraph) -> frozenset[int]:
    """Greedy max-degree vertex cover (ablation baseline).

    Repeatedly adds a vertex covering the most remaining edges.  Often
    smaller than the 2-approximation in practice but its worst-case ratio is
    Θ(log n); the paper uses the matching algorithm for its guarantee.

    The adjacency is built vectorized (:func:`_symmetric_adjacency`) and
    the selection runs on array-backed degree buckets — per-degree stacks
    with lazily invalidated entries, O(n + m) pushes in total — instead
    of the former dict-of-sets residual graph.  Output is deterministic:
    ties on residual degree break toward the vertex most recently moved
    into the bucket (initially the highest vertex id).
    """
    if g.n == 0:
        return frozenset()
    adj_indptr, adj_indices = _symmetric_adjacency(g)
    indptr = adj_indptr.tolist()
    neighbors = adj_indices.tolist()
    degree = np.diff(adj_indptr).tolist()
    max_deg = max(degree, default=0)
    if max_deg == 0:
        return frozenset()
    buckets: list[list[int]] = [[] for _ in range(max_deg + 1)]
    for vertex in range(g.n):
        if degree[vertex]:
            buckets[degree[vertex]].append(vertex)
    cover: list[int] = []
    current = max_deg
    while current > 0:
        bucket = buckets[current]
        if not bucket:
            current -= 1
            continue
        u = bucket.pop()
        if degree[u] != current:
            continue  # stale entry: u moved to a lower bucket
        cover.append(u)
        degree[u] = 0
        for w in neighbors[indptr[u] : indptr[u + 1]]:
            dw = degree[w]
            if dw:  # edge (u, w) was uncovered until now
                dw -= 1
                degree[w] = dw
                if dw:
                    buckets[dw].append(w)
    return frozenset(cover)


def hhop_vertex_cover(
    g: DiGraph,
    h: int,
    *,
    order: str = "degree",
    prune: bool = True,
    rng: np.random.Generator | None = None,
) -> frozenset[int]:
    """An (h+1)-approximate minimum h-hop vertex cover (§5.1.1).

    Repeatedly finds a simple directed path ``⟨v0, …, vh⟩`` of length ``h``
    in the residual graph, adds all ``h+1`` vertices to the cover, and
    deletes them.  Any minimum h-hop cover must contain at least one vertex
    of each picked (vertex-disjoint) path, giving the (h+1) ratio.

    ``h=1`` delegates to :func:`vertex_cover_2approx` (a 1-hop vertex cover
    *is* a vertex cover).

    Parameters
    ----------
    order:
        Start-vertex priority: ``'degree'`` tries high-degree vertices
        first (the §4.3 preference carried over), ``'random'`` shuffles,
        ``'input'`` is id order.
    prune:
        Run a redundancy-elimination pass after the greedy collection
        (default).  The naive pick keeps all ``h+1`` vertices of every
        path even when one of them covers everything the others do — on
        hub/star structures that wastes a factor ``h+1``.  Pruning drops
        any vertex with no uncovered length-h path through it; the result
        is still an h-hop cover (checked property in the tests) and never
        larger, so the (h+1) guarantee is preserved.  The paper's Table 9
        cover sizes (20-45% below the vertex cover) are only reachable
        with this pass.
    """
    if h < 1:
        raise ValueError(f"h must be >= 1, got {h}")
    if order not in ("degree", "random", "input"):
        raise ValueError(f"unknown start order {order!r}")
    if h == 1:
        cover = vertex_cover_2approx(g, order=order, rng=rng)
        return _prune_hhop_cover(g, cover, h) if prune else cover

    alive = np.ones(g.n, dtype=bool)
    cover_list: list[int] = []

    if order == "degree":
        starts = list(np.argsort(-g.degrees(), kind="stable"))
    elif order == "random":
        rng = rng or np.random.default_rng(0)
        starts = list(rng.permutation(g.n))
    else:
        starts = list(range(g.n))

    # A vertex that cannot start a length-h simple path now never can later
    # (removals only destroy paths), so each failed start is final.
    for start in starts:
        start = int(start)
        while alive[start]:
            path = _find_simple_path(g, alive, start, h)
            if path is None:
                break
            for v in path:
                alive[v] = False
                cover_list.append(v)
    cover = frozenset(cover_list)
    return _prune_hhop_cover(g, cover, h) if prune else cover


def _prune_hhop_cover(g: DiGraph, cover: frozenset[int], h: int) -> frozenset[int]:
    """Drop cover vertices with no uncovered length-h path through them.

    Processes candidates in ascending degree order (cheap, peripheral
    vertices first) so that structural centers — which many paths route
    through — are retained.  Each removal keeps the invariant "every
    length-h simple path meets the cover", so the result is a valid h-hop
    cover of possibly smaller size.
    """
    kept = set(cover)
    candidates = sorted(cover, key=lambda v: g.degree(v))
    for v in candidates:
        kept.discard(v)
        if _exists_uncovered_path_through(g, kept, v, h):
            kept.add(v)
    return frozenset(kept)


def _exists_uncovered_path_through(
    g: DiGraph, covered: set[int], v: int, h: int
) -> bool:
    """Whether some simple length-h path contains ``v`` and avoids ``covered``.

    Splits the path at ``v``: a backward simple path of length ``p`` into
    ``v`` plus a forward simple path of length ``h - p`` out of ``v``,
    vertex-disjoint, for some ``0 ≤ p ≤ h``.  All path vertices (other than
    ``v`` itself) must be uncovered.  Early-exits on the first witness.
    """
    for back_len in range(h + 1):
        fwd_len = h - back_len
        for back_path in _simple_paths(g, covered, v, back_len, direction="in"):
            used = set(back_path)
            for fwd_path in _simple_paths(
                g, covered, v, fwd_len, direction="out", blocked=used
            ):
                return True
    return False


def _simple_paths(
    g: DiGraph,
    covered: set[int],
    start: int,
    length: int,
    *,
    direction: str,
    blocked: set[int] | None = None,
):
    """Yield simple paths of exactly ``length`` edges from ``start``
    (following ``direction``), avoiding covered and blocked vertices.

    Paths are yielded as vertex lists excluding ``start``.
    """
    if length == 0:
        yield []
        return
    neighbors = g.out_neighbors if direction == "out" else g.in_neighbors
    blocked = blocked or set()
    path: list[int] = []
    on_path = {start} | blocked

    def extend(u: int, remaining: int):
        for w in neighbors(u):
            w = int(w)
            if w in on_path or w in covered:
                continue
            path.append(w)
            on_path.add(w)
            if remaining == 1:
                yield list(path)
            else:
                yield from extend(w, remaining - 1)
            on_path.discard(w)
            path.pop()

    yield from extend(start, length)


def _find_simple_path(
    g: DiGraph, alive: np.ndarray, start: int, h: int
) -> list[int] | None:
    """A simple directed path of exactly ``h`` edges from ``start`` within
    the alive subgraph, or None.  Iterative DFS with on-path marking."""
    if not alive[start]:
        return None
    on_path = {start}
    path = [start]
    iters = [iter(g.out_neighbors(start))]
    while iters:
        if len(path) == h + 1:
            return path
        found_child = False
        for v in iters[-1]:
            v = int(v)
            if alive[v] and v not in on_path:
                on_path.add(v)
                path.append(v)
                iters.append(iter(g.out_neighbors(v)))
                found_child = True
                break
        if not found_child:
            iters.pop()
            on_path.discard(path.pop())
    return None


def is_vertex_cover(g: DiGraph, cover: Iterable[int]) -> bool:
    """Whether every edge of ``g`` has an endpoint in ``cover``.

    Vectorized over the CSR: one flag gather per edge endpoint — this
    runs on every externally-supplied cover, so it must not cost a Python
    loop over the edges.
    """
    flags = np.zeros(g.n, dtype=bool)
    ids = np.fromiter((int(v) for v in cover), dtype=np.int64)
    if len(ids):
        if int(ids.min()) < 0 or int(ids.max()) >= g.n:
            return False
        flags[ids] = True
    heads = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.out_indptr))
    tails = g.out_indices
    keep = heads != tails  # self-loops never need covering
    return bool(np.all(flags[heads[keep]] | flags[tails[keep]]))


def is_hhop_vertex_cover(g: DiGraph, cover: Iterable[int], h: int) -> bool:
    """Whether every simple directed path of length ``h`` meets ``cover``.

    Exhaustive check (exponential in ``h``); intended for the test suite on
    small graphs only.
    """
    if h < 1:
        raise ValueError(f"h must be >= 1, got {h}")
    s = set(cover)
    alive = np.array([v not in s for v in range(g.n)], dtype=bool)
    for start in range(g.n):
        if alive[start] and _find_simple_path(g, alive, start, h) is not None:
            return False
    return True


#: Named cover strategies accepted by the index constructors.
COVER_STRATEGIES = ("degree", "random", "input", "greedy")


def cover_from_strategy(
    g: DiGraph,
    strategy: str,
    *,
    rng: np.random.Generator | None = None,
    include_degree_at_least: int | None = None,
) -> frozenset[int]:
    """Dispatch helper mapping a strategy name to a 1-hop cover."""
    if strategy == "greedy":
        return greedy_vertex_cover(g)
    if strategy in ("degree", "random", "input"):
        return vertex_cover_2approx(
            g,
            order=strategy,
            rng=rng,
            include_degree_at_least=include_degree_at_least,
        )
    raise ValueError(f"unknown cover strategy {strategy!r}; choose from {COVER_STRATEGIES}")
