"""The paper's contribution: k-reach, (h,k)-reach, and general-k support."""

from repro.core.condensed import CondensedKReach
from repro.core.dynamic import DynamicKReachIndex
from repro.core.general_k import (
    INFINITE_DISTANCE,
    CoverDistanceOracle,
    ExactKFamily,
    GeometricKReachFamily,
    KHopAnswer,
)
from repro.core.hkreach import HKReachIndex
from repro.core.index_graph import (
    IndexGraph,
    cover_triples_blocked,
    cover_triples_serial,
)
from repro.core.kreach import KReachIndex
from repro.core.parallel import build_kreach_parallel, parallel_khop_triples
from repro.core.partition import (
    Shard,
    ShardedKReach,
    default_hub_count,
    partition_kreach,
)
from repro.core.rowstore import CompressedRow, compress_rows
from repro.core.serialize import (
    IndexCorruptionError,
    OpLog,
    ShardManifest,
    load_dynamic,
    load_kreach,
    load_mmap,
    load_sharded,
    read_oplog,
    recover_dynamic,
    recover_oplog,
    save_dynamic,
    save_kreach,
    save_mmap,
    save_sharded,
    verify_file,
)
from repro.core.serve import (
    QueryServer,
    QueryTimeout,
    ThreadQueryServer,
    UnknownTicketError,
)
from repro.core.sharded import ShardedQueryServer
from repro.core.vertex_cover import (
    COVER_STRATEGIES,
    cover_from_strategy,
    greedy_vertex_cover,
    hhop_vertex_cover,
    is_hhop_vertex_cover,
    is_vertex_cover,
    vertex_cover_2approx,
)

__all__ = [
    "KReachIndex",
    "CondensedKReach",
    "HKReachIndex",
    "DynamicKReachIndex",
    "IndexGraph",
    "cover_triples_blocked",
    "cover_triples_serial",
    "CompressedRow",
    "compress_rows",
    "build_kreach_parallel",
    "parallel_khop_triples",
    "save_kreach",
    "load_kreach",
    "save_dynamic",
    "load_dynamic",
    "save_mmap",
    "load_mmap",
    "save_sharded",
    "load_sharded",
    "ShardManifest",
    "IndexCorruptionError",
    "OpLog",
    "read_oplog",
    "recover_oplog",
    "recover_dynamic",
    "verify_file",
    "QueryServer",
    "ThreadQueryServer",
    "QueryTimeout",
    "UnknownTicketError",
    "ShardedQueryServer",
    "ShardedKReach",
    "Shard",
    "partition_kreach",
    "default_hub_count",
    "CoverDistanceOracle",
    "GeometricKReachFamily",
    "ExactKFamily",
    "KHopAnswer",
    "INFINITE_DISTANCE",
    "COVER_STRATEGIES",
    "cover_from_strategy",
    "greedy_vertex_cover",
    "hhop_vertex_cover",
    "is_hhop_vertex_cover",
    "is_vertex_cover",
    "vertex_cover_2approx",
]
