"""Support for k-hop queries with arbitrary k (§4.4 of the paper).

A single k-reach index answers queries only for the ``k`` it was built for.
The paper sketches three ways to serve a *general* k, all implemented here:

* :class:`CoverDistanceOracle` — keep the **exact** distance between every
  pair of cover vertices (full BFS instead of k-hop BFS in Algorithm 1,
  ``⌈log2 d⌉`` bits per entry).  Answers ``s →k t`` exactly for every k and
  doubles as a shortest-path-distance oracle.  The paper notes the index
  graph becomes dense; this is the price of generality.
* :class:`GeometricKReachFamily` — ``log2 d`` k-reach indexes for
  ``k = 2, 4, 8, …, 2^⌈lg d⌉``.  A query with hop budget k probes the
  ``2^⌈lg k⌉`` index: *yes within* ``2^⌈lg k⌉`` and *no* are exact, and in
  between the family answers "reachable within some ``k' ≤ 2^⌈lg k⌉``" —
  the paper's approximation band, surfaced here as a structured
  :class:`KHopAnswer` instead of a bare bool.
* :class:`ExactKFamily` — one k-reach index per ``k = 2 … d`` (plus the
  n-reach index for ``k > d``), exact for every k at ``(d-1)×`` the space.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.bitsets.ops import DEFAULT_MATRIX_BYTES
from repro.core.batch import (
    MISSING_WEIGHT,
    UNBOUNDED_BUDGET,
    KeyedRowStore,
    as_pair_arrays,
    case4_bitset_join,
    edge_keys,
    gather_segments,
    has_edge_batch,
    plan_cross_products,
)
from repro.core.index_graph import IndexGraph, cover_triples_blocked
from repro.core.kreach import KReachIndex
from repro.core.vertex_cover import cover_from_strategy, is_vertex_cover
from repro.graph.digraph import DiGraph

__all__ = [
    "INFINITE_DISTANCE",
    "CoverDistanceOracle",
    "KHopAnswer",
    "GeometricKReachFamily",
    "ExactKFamily",
]

#: Sentinel distance for unreachable pairs.
INFINITE_DISTANCE = float("inf")


class CoverDistanceOracle:
    """Exact cover-pair distances → exact k-hop answers for every k.

    Construction is Algorithm 1 with the k-hop BFS replaced by a full BFS
    (§4.4, first approach).  Queries follow the same four cases, but
    instead of comparing a quantized weight against a budget they combine
    exact distances:

    * Case 1: ``d(s, t)``;
    * Case 2: ``min_v d(s, v) + 1`` over in-neighbors ``v`` of ``t``;
    * Case 3: ``min_u d(u, t) + 1`` over out-neighbors ``u`` of ``s``;
    * Case 4: ``min_{u,v} d(u, v) + 2``.

    The same minimization yields :meth:`distance`, making this a full
    shortest-path-distance oracle — the paper's observation that a
    general-k index "is essentially an index for shortest-path distance
    queries".
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        cover: frozenset[int] | None = None,
        cover_strategy: str = "degree",
        bitset_matrix_bytes: int = DEFAULT_MATRIX_BYTES,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.graph = graph
        self.bitset_matrix_bytes = int(bitset_matrix_bytes)
        if cover is None:
            cover = cover_from_strategy(graph, cover_strategy, rng=rng)
        else:
            cover = frozenset(int(v) for v in cover)
            if not is_vertex_cover(graph, cover):
                raise ValueError("provided vertex set is not a vertex cover")
        self.cover = cover
        self._in_cover = np.zeros(graph.n, dtype=bool)
        if cover:
            self._in_cover[list(cover)] = True
        # Exact cover-pair distances in the canonical CSR storage, fed by
        # the blocked multi-source BFS (full sweeps: k=None, no floor).
        triples = cover_triples_blocked(graph, cover, None)
        self._ig = IndexGraph.from_triples(graph.n, cover, *triples)
        weights = self._ig.weights64()
        self._max_distance = int(weights.max()) if len(weights) else 0
        self._flat: dict[int, int] | None = None
        self._keyed_rows: KeyedRowStore | None = None

    @property
    def index_graph(self) -> IndexGraph:
        """The canonical CSR storage (§4.3 physical layout)."""
        return self._ig

    def _keyed(self) -> KeyedRowStore:
        """Sorted-key view of the distances (zero-copy from the CSR)."""
        if self._keyed_rows is None:
            self._keyed_rows = KeyedRowStore(
                self._ig.keys(), self._ig.weights64(), self.graph.n
            )
        return self._keyed_rows

    def prepare_batch(self) -> "CoverDistanceOracle":
        """Build the batch engine's lookup structures now (see
        :meth:`KReachIndex.prepare_batch
        <repro.core.kreach.KReachIndex.prepare_batch>`)."""
        self._keyed()
        return self

    def _pair_distance(self, u: int, v: int) -> float:
        if u == v:
            return 0
        flat = self._flat
        if flat is None:
            flat = self._flat = self._ig.flat()
        w = flat.get(u * self.graph.n + v)
        return INFINITE_DISTANCE if w is None else w

    def distance(self, s: int, t: int) -> float:
        """Exact shortest-path distance (``INFINITE_DISTANCE`` if unreachable)."""
        g = self.graph
        if not 0 <= s < g.n or not 0 <= t < g.n:
            raise ValueError(f"query vertex out of range [0, {g.n})")
        if s == t:
            return 0
        s_in = bool(self._in_cover[s])
        t_in = bool(self._in_cover[t])
        if s_in and t_in:
            return self._pair_distance(s, t)
        if s_in:
            best = INFINITE_DISTANCE
            for v in self.graph.in_neighbors(t):
                best = min(best, self._pair_distance(s, int(v)) + 1)
            return best
        if t_in:
            best = INFINITE_DISTANCE
            for u in self.graph.out_neighbors(s):
                best = min(best, self._pair_distance(int(u), t) + 1)
            return best
        best = INFINITE_DISTANCE
        preds = [int(v) for v in self.graph.in_neighbors(t)]
        for u in self.graph.out_neighbors(s):
            u = int(u)
            for v in preds:
                best = min(best, self._pair_distance(u, v) + 2)
        return best

    def distance_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`distance`: an ``(m,)`` float64 array.

        Entries are exact shortest-path distances, with
        :data:`INFINITE_DISTANCE` for unreachable pairs.  Same case split
        as the scalar path, but the per-case minimizations run as bulk
        sorted-key gathers plus segmented ``minimum`` reductions; only
        hub×hub Case-4 pairs whose neighbor cross product would dominate
        memory fall back to the scalar loop.
        """
        g = self.graph
        s, t = as_pair_arrays(pairs, g.n)
        m = len(s)
        if m == 0:
            return np.empty(0, dtype=np.float64)
        dist = np.full(m, MISSING_WEIGHT, dtype=np.int64)
        dist[s == t] = 0
        store = self._keyed()
        s_in = self._in_cover[s]
        t_in = self._in_cover[t]
        undecided = s != t

        # Case 1: direct cover-pair distance.
        sel = np.flatnonzero(undecided & s_in & t_in)
        if len(sel):
            dist[sel] = store.lookup(s[sel], t[sel])

        # Case 2: min over in-neighbors v of t of d(s, v) + 1 (d(s, s) = 0).
        sel = np.flatnonzero(undecided & s_in & ~t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.in_indptr, g.in_indices, t[sel])
            src = s[sel][owner]
            cand = np.where(nbrs == src, 0, store.lookup(src, nbrs)) + 1
            best = np.full(len(sel), MISSING_WEIGHT, dtype=np.int64)
            np.minimum.at(best, owner, cand)
            dist[sel] = best

        # Case 3: min over out-neighbors u of s of d(u, t) + 1.
        sel = np.flatnonzero(undecided & ~s_in & t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.out_indptr, g.out_indices, s[sel])
            dst = t[sel][owner]
            cand = np.where(nbrs == dst, 0, store.lookup(nbrs, dst)) + 1
            best = np.full(len(sel), MISSING_WEIGHT, dtype=np.int64)
            np.minimum.at(best, owner, cand)
            dist[sel] = best

        # Case 4: min over outNei(s) × inNei(t) of d(u, v) + 2.
        sel = np.flatnonzero(undecided & ~s_in & ~t_in)
        if len(sel):
            s4, t4 = s[sel], t[sel]
            best = np.full(len(sel), MISSING_WEIGHT, dtype=np.int64)
            big, chunks = plan_cross_products(g, s4, t4)
            for sub, u, v, owner in chunks:
                cand = np.where(u == v, 0, store.lookup(u, v)) + 2
                cur = np.full(len(sub), MISSING_WEIGHT, dtype=np.int64)
                np.minimum.at(cur, owner, cand)
                best[sub] = np.minimum(best[sub], cur)
            for j in big.tolist():
                d = self.distance(int(s4[j]), int(t4[j]))
                if d != INFINITE_DISTANCE:
                    best[j] = int(d)
            dist[sel] = best

        out = dist.astype(np.float64)
        out[dist >= MISSING_WEIGHT] = INFINITE_DISTANCE
        return out

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """Exact ``s →k t`` for any non-negative k."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self.distance(s, t) <= k

    def reaches_within_batch(self, pairs, k: int) -> np.ndarray:
        """Vectorized :meth:`reaches_within`: an ``(m,)`` bool array.

        Boolean verdicts do not need the per-pair minimum distance
        :meth:`distance_batch` computes, so this runs the cheaper
        threshold path: per-case bulk gathers against ``d <= budget``,
        with Case 4 resolved by the bitset join against the exact-weight
        :meth:`~repro.core.index_graph.IndexGraph.link_matrix` at budget
        ``k - 2`` (chunked cross products when a matrix would exceed
        :attr:`bitset_matrix_bytes`).  Answers equal
        ``distance_batch(pairs) <= k`` exactly.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        return self._bool_batch(pairs, k)

    def reaches(self, s: int, t: int) -> bool:
        """Classic reachability."""
        return self.distance(s, t) < INFINITE_DISTANCE

    def reaches_batch(self, pairs) -> np.ndarray:
        """Vectorized :meth:`reaches`: an ``(m,)`` bool array (the
        unbounded-budget threshold path; see :meth:`reaches_within_batch`)."""
        return self._bool_batch(pairs, None)

    def _bool_batch(self, pairs, k: int | None) -> np.ndarray:
        """``d(s, t) <= k`` over a batch (``k=None`` = finite distance)."""
        g = self.graph
        s, t = as_pair_arrays(pairs, g.n)
        m = len(s)
        out = np.zeros(m, dtype=bool)
        if m == 0:
            return out
        np.equal(s, t, out=out)
        if k == 0:
            return out
        store = self._keyed()
        s_in = self._in_cover[s]
        t_in = self._in_cover[t]
        undecided = ~out
        b0 = UNBOUNDED_BUDGET if k is None else np.int64(k)
        b1 = UNBOUNDED_BUDGET if k is None else np.int64(k - 1)
        b2 = UNBOUNDED_BUDGET if k is None else np.int64(k - 2)

        # Case 1: direct cover-pair distance against the full budget.
        sel = np.flatnonzero(undecided & s_in & t_in)
        if len(sel):
            out[sel] = store.lookup(s[sel], t[sel]) <= b0

        # Case 2: some in-neighbor v of t with v == s or d(s, v) <= k-1.
        sel = np.flatnonzero(undecided & s_in & ~t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.in_indptr, g.in_indices, t[sel])
            src = s[sel][owner]
            hit = store.lookup(src, nbrs) <= b1
            if k is None or k >= 1:
                hit |= nbrs == src
            out[sel] = np.bincount(owner[hit], minlength=len(sel)) > 0

        # Case 3: mirror over out-neighbors of s.
        sel = np.flatnonzero(undecided & ~s_in & t_in)
        if len(sel):
            nbrs, owner, _ = gather_segments(g.out_indptr, g.out_indices, s[sel])
            dst = t[sel][owner]
            hit = store.lookup(nbrs, dst) <= b1
            if k is None or k >= 1:
                hit |= nbrs == dst
            out[sel] = np.bincount(owner[hit], minlength=len(sel)) > 0

        # Case 4: bitset join at budget k-2 (diagonal = the u == v
        # handshake, a 2-hop bridge), chunked products as the fallback.
        sel = np.flatnonzero(undecided & ~s_in & ~t_in)
        if len(sel):
            s4, t4 = s[sel], t[sel]
            ig = self._ig
            if k is not None and k < 2:
                pass  # no 2-hop bridge fits the budget
            elif ig.link_matrix_bytes() <= self.bitset_matrix_bytes:
                matrix = ig.link_matrix(
                    None if k is None else k - 2, diagonal=True
                )
                out[sel] = case4_bitset_join(g, s4, t4, matrix, ig.row_pos())
            else:
                res = np.zeros(len(sel), dtype=bool)
                big, chunks = plan_cross_products(g, s4, t4)
                for sub, u, v, owner in chunks:
                    hit = (store.lookup(u, v) <= b2) | (u == v)
                    res[sub] |= np.bincount(owner[hit], minlength=len(sub)) > 0
                for j in big.tolist():
                    d = self.distance(int(s4[j]), int(t4[j]))
                    res[j] = d < INFINITE_DISTANCE if k is None else d <= k
                out[sel] = res
        return out

    @property
    def cover_size(self) -> int:
        """``|V_I|``."""
        return len(self.cover)

    @property
    def edge_count(self) -> int:
        """Number of stored finite cover-pair distances."""
        return self._ig.edge_count

    def weight_bits(self) -> int:
        """Bits per stored distance: ``⌈log2 d⌉`` (§4.4)."""
        return max(1, int(self._max_distance).bit_length())

    def storage_bytes(self) -> int:
        """Same CSR storage model as k-reach, with ``⌈lg d⌉``-bit weights."""
        n_i, m_i = self.cover_size, self.edge_count
        return (
            4 * n_i
            + 4 * (n_i + 1)
            + 4 * m_i
            + (m_i * self.weight_bits() + 7) // 8
            + (self.graph.n + 7) // 8
        )


@dataclass(frozen=True)
class KHopAnswer:
    """A possibly-approximate answer from :class:`GeometricKReachFamily`.

    Attributes
    ----------
    reachable:
        The index's verdict (for approximate answers: reachable within
        ``upper_bound`` hops, but possibly not within the asked ``k``).
    exact:
        Whether the verdict is exact for the asked ``k``.
    upper_bound:
        When ``reachable`` and not ``exact``: the certified hop bound
        ``k'`` with ``k < k' ≤ 2^⌈lg k⌉``.
    """

    reachable: bool
    exact: bool
    upper_bound: int | None = None

    def __bool__(self) -> bool:
        return self.reachable


class GeometricKReachFamily:
    """The paper's ``lg d`` family of ``2^i``-reach indexes (§4.4).

    Parameters
    ----------
    graph:
        Input digraph.
    max_k:
        Largest hop budget to cover.  The paper sets this to the graph
        diameter ``d`` (known for its datasets); the safe default here is
        ``n - 1``, which no simple path can exceed.  Indexes are built for
        ``k = 2, 4, …, 2^⌈lg max_k⌉``.
    max_k_covers_diameter:
        Whether ``max_k`` is ≥ the true diameter, making "not reachable
        within the top level" equivalent to "not reachable at all" (and
        hence queries with ``k`` beyond the top level exact).  Defaults to
        an automatic check (``True`` when the rounded ``max_k ≥ n - 1``);
        pass ``True`` explicitly when supplying a measured diameter.
    share_cover:
        Build every member on the same vertex cover (default) so the family
        differs only in BFS depth — this is what makes the total size
        "approximately lg d times the space of a single k-reach".
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        max_k: int | None = None,
        max_k_covers_diameter: bool | None = None,
        cover_strategy: str = "degree",
        share_cover: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.graph = graph
        if max_k is None:
            max_k = max(2, graph.n - 1)
        if max_k < 2:
            max_k = 2
        self.max_k = 1 << (max_k - 1).bit_length()  # 2^ceil(lg max_k)
        if max_k_covers_diameter is None:
            max_k_covers_diameter = self.max_k >= graph.n - 1
        self._covers_diameter = bool(max_k_covers_diameter)
        cover = (
            cover_from_strategy(graph, cover_strategy, rng=rng)
            if share_cover
            else None
        )
        self.indexes: dict[int, KReachIndex] = {}
        k = 2
        while k <= self.max_k:
            self.indexes[k] = KReachIndex(
                graph, k, cover=cover, cover_strategy=cover_strategy, rng=rng
            )
            k *= 2
        self.levels = sorted(self.indexes)
        self._edge_keys: np.ndarray | None = None

    def _edges(self) -> np.ndarray:
        """Sorted edge keys for the batch k=1 path, built once."""
        if self._edge_keys is None:
            self._edge_keys = edge_keys(self.graph)
        return self._edge_keys

    def query(self, s: int, t: int, k: int, *, refine: bool = False) -> KHopAnswer:
        """Answer ``s →k t`` with the paper's approximation semantics.

        With ``refine=False`` (the paper's behavior) only the ``2^⌈lg k⌉``
        index is probed.  ``refine=True`` additionally walks down the
        family to tighten the certified bound — answers become exact
        whenever some smaller index already certifies the pair.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if s == t:
            return KHopAnswer(True, True)
        if k == 0:
            return KHopAnswer(False, True)
        if k == 1:
            return KHopAnswer(self.graph.has_edge(s, t), True)
        level = min(1 << (k - 1).bit_length(), self.max_k)
        idx = self.indexes[level]
        hit = idx.query(s, t)
        if not hit:
            # Not within `level >= min(k, max_k)` hops.  Exact "no" when
            # level >= k, or when the top level provably bounds the diameter
            # (then "not within max_k" means "not reachable at all").
            return KHopAnswer(False, k <= level or self._covers_diameter)
        if level <= k:
            return KHopAnswer(True, True)
        if refine:
            # Find the smallest family member that certifies the pair.
            tightest = level
            for smaller in self.levels:
                if smaller >= level:
                    break
                if self.indexes[smaller].query(s, t):
                    tightest = smaller
                    break
            if tightest <= k:
                return KHopAnswer(True, True)
            return KHopAnswer(True, False, upper_bound=tightest)
        return KHopAnswer(True, False, upper_bound=level)

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """Boolean view of :meth:`query` (approximate answers count as True)."""
        return self.query(s, t, k).reachable

    def reaches_within_batch(self, pairs, k: int) -> np.ndarray:
        """Vectorized :meth:`reaches_within`: an ``(m,)`` bool array.

        Same verdicts as the scalar path (``refine=False`` semantics):
        ``k >= 2`` delegates to the ``2^⌈lg k⌉`` member's
        :meth:`~repro.core.kreach.KReachIndex.query_batch`; ``k <= 1``
        resolves with a vectorized identity/edge test.
        """
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        s, t = as_pair_arrays(pairs, self.graph.n)
        if len(s) == 0:
            return np.zeros(0, dtype=bool)
        if k == 0:
            return s == t
        if k == 1:
            return (s == t) | has_edge_batch(self.graph, s, t, keys=self._edges())
        level = min(1 << (k - 1).bit_length(), self.max_k)
        return self.indexes[level].query_batch(np.stack([s, t], axis=1))

    def storage_bytes(self) -> int:
        """Total modeled size across the family."""
        return sum(ix.storage_bytes() for ix in self.indexes.values())

    @property
    def num_levels(self) -> int:
        """How many indexes the family holds (≈ lg d)."""
        return len(self.indexes)


class ExactKFamily:
    """One k-reach index per ``k = 2 … d`` → exact answers for every k (§4.4).

    ``d`` defaults to the exact diameter (max finite shortest-path length).
    Queries with ``k ≥ d`` are served by the n-reach member, since within-d
    reachability coincides with reachability.
    """

    def __init__(
        self,
        graph: DiGraph,
        *,
        diameter: int | None = None,
        cover_strategy: str = "degree",
        rng: np.random.Generator | None = None,
    ) -> None:
        self.graph = graph
        if diameter is None:
            from repro.graph.stats import shortest_path_stats

            diameter, _ = shortest_path_stats(graph)
        self.diameter = max(2, diameter)
        cover = cover_from_strategy(graph, cover_strategy, rng=rng)
        self.indexes: dict[int, KReachIndex] = {
            k: KReachIndex(graph, k, cover=cover) for k in range(2, self.diameter + 1)
        }
        self.reachability = KReachIndex(graph, None, cover=cover)
        self._edge_keys: np.ndarray | None = None

    def _edges(self) -> np.ndarray:
        """Sorted edge keys for the batch k=1 path, built once."""
        if self._edge_keys is None:
            self._edge_keys = edge_keys(self.graph)
        return self._edge_keys

    def reaches_within(self, s: int, t: int, k: int) -> bool:
        """Exact ``s →k t`` for any non-negative k."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        if s == t:
            return True
        if k == 0:
            return False
        if k == 1:
            return self.graph.has_edge(s, t)
        if k >= self.diameter:
            return self.reachability.query(s, t)
        return self.indexes[k].query(s, t)

    def reaches_within_batch(self, pairs, k: int) -> np.ndarray:
        """Vectorized :meth:`reaches_within`: an ``(m,)`` bool array."""
        if k < 0:
            raise ValueError(f"k must be non-negative, got {k}")
        s, t = as_pair_arrays(pairs, self.graph.n)
        if len(s) == 0:
            return np.zeros(0, dtype=bool)
        if k == 0:
            return s == t
        if k == 1:
            return (s == t) | has_edge_batch(self.graph, s, t, keys=self._edges())
        member = self.reachability if k >= self.diameter else self.indexes[k]
        return member.query_batch(np.stack([s, t], axis=1))

    def storage_bytes(self) -> int:
        """Total modeled size across all members."""
        return self.reachability.storage_bytes() + sum(
            ix.storage_bytes() for ix in self.indexes.values()
        )
