"""SCC condensation as a first-class k-reach preprocessing pass.

The paper's own evaluation setting is DAGs: every comparator it measures
against (PTree, 3-hop, GRAIL, PWAH — §3.1) condenses strongly connected
components into super-vertices before indexing, and Table 2 reports the
condensed ``|V_DAG|`` / ``|E_DAG|`` sizes.  :class:`CondensedKReach`
brings the same pass to this reproduction's index: build the
:class:`~repro.core.kreach.KReachIndex` on the condensation DAG (often
dramatically smaller on graphs with large SCCs) and translate queries
through component ids with one vectorized gather.

k-semantics
-----------
Let ``c(v)`` be the SCC of ``v``.  ``CondensedKReach`` answers a query
``(s, t)`` as ``KReach_dag(c(s), c(t))`` (with ``c(s) == c(t)`` true
immediately — vertices in one SCC reach each other).

* ``k is None`` (n-reach / plain reachability): **exact**.  ``s`` reaches
  ``t`` iff ``c(s)`` reaches ``c(t)`` in the condensation — this is the
  classical reduction every DAG-based scheme uses.
* finite ``k``: the answer is **SCC-hop reachability** — true iff there
  is a path from ``s`` to ``t`` using at most ``k`` edges that *cross an
  SCC boundary*, with edges inside an SCC free.  On a DAG every SCC is a
  single vertex, so this coincides with true k-reach (pinned by the
  differential tests); on a cyclic graph it is a superset of true
  k-reach (never a false negative: collapsing SCCs only shortens paths).
  That is the semantics one usually wants after declaring "everyone in a
  tight community is mutually close", and it is what the paper's DAG
  preprocessing implies; when exact hop counts through cycles matter,
  build :class:`~repro.core.kreach.KReachIndex` directly.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph
from repro.graph.scc import Condensation, condensation

__all__ = ["CondensedKReach"]


class CondensedKReach:
    """A :class:`~repro.core.kreach.KReachIndex` over the SCC condensation.

    Parameters
    ----------
    graph:
        The original (possibly cyclic) graph.
    k:
        Hop budget; ``None`` means plain reachability (n-reach).  See
        the module docstring for what finite ``k`` means across SCCs.
    cond:
        A precomputed :class:`~repro.graph.scc.Condensation` of
        ``graph`` (e.g. from a streamed-ingest pipeline that already
        condensed); computed here when omitted.
    kwargs:
        Forwarded to :class:`~repro.core.kreach.KReachIndex` (cover
        strategy, ``storage=``, builder, ...).

    Examples
    --------
    >>> from repro.graph.generators import cycle_graph
    >>> idx = CondensedKReach(cycle_graph(5), 2)
    >>> idx.query(0, 3)   # same SCC: mutually reachable
    True
    """

    __slots__ = ("graph", "k", "cond", "index")

    def __init__(
        self,
        graph: DiGraph,
        k: int | None,
        *,
        cond: Condensation | None = None,
        **kwargs,
    ) -> None:
        from repro.core.kreach import KReachIndex

        if cond is None:
            cond = condensation(graph)
        elif len(cond.component_of) != graph.n:
            raise ValueError(
                f"condensation covers {len(cond.component_of)} vertices, "
                f"graph has {graph.n}"
            )
        self.graph = graph
        self.k = k
        self.cond = cond
        self.index = KReachIndex(cond.dag, k, **kwargs)

    @property
    def num_components(self) -> int:
        return self.cond.num_components

    def query(self, s: int, t: int) -> bool:
        """Scalar query through the component mapping."""
        cs = int(self.cond.component_of[s])
        ct = int(self.cond.component_of[t])
        if cs == ct:
            return True
        return self.index.query(cs, ct)

    def query_batch(self, pairs: np.ndarray, *, engine: str = "auto") -> np.ndarray:
        """Vectorized batch query; same engines as ``KReachIndex``."""
        pairs = np.asarray(pairs, dtype=np.int64)
        if pairs.size == 0:
            return np.zeros(0, dtype=bool)
        mapped = self.cond.map_pairs(pairs)
        out = self.index.query_batch(mapped, engine=engine)
        same = mapped[:, 0] == mapped[:, 1]
        if same.any():
            out = out | same
        return out

    def prepare_batch(self) -> "CondensedKReach":
        self.index.prepare_batch()
        return self

    def storage_bytes(self) -> int:
        """Index bytes plus the vertex → component mapping."""
        return int(self.index.storage_bytes()) + self.cond.component_of.nbytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CondensedKReach(n={self.graph.n}, "
            f"components={self.num_components}, k={self.k})"
        )
