"""Parallel k-reach construction (§4.1.3).

The paper notes that Algorithm 1 "is straightforward to parallelize if
more machines or CPU cores are available": the k-hop BFS sweeps from the
cover vertices are independent.  :func:`parallel_khop_rows` fans the cover
out over a process pool and merges the per-worker row dicts.

On fork-capable platforms the graph is shared copy-on-write through a
module-level global, so workers pay no serialization cost for the CSR
arrays; on spawn platforms the graph is pickled once per worker.  The
result is bit-identical to the serial build (asserted in the tests), so
:class:`~repro.core.kreach.KReachIndex` exposes it as the ``workers``
argument of :func:`build_kreach_parallel`.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Iterable

import numpy as np

from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import UNREACHED, bfs_distances

__all__ = ["parallel_khop_rows", "build_kreach_parallel"]

# Worker-global state, installed by the pool initializer.
_worker_graph: DiGraph | None = None
_worker_cover_flags: np.ndarray | None = None
_worker_k: int | None = None
_worker_floor: int = 0


def _init_worker(graph: DiGraph, cover_flags: np.ndarray, k: int | None, floor: int) -> None:
    global _worker_graph, _worker_cover_flags, _worker_k, _worker_floor
    _worker_graph = graph
    _worker_cover_flags = cover_flags
    _worker_k = k
    _worker_floor = floor


def _rows_for_chunk(chunk: list[int]) -> dict[int, dict[int, int]]:
    """One worker's share of Algorithm 1's BFS sweeps."""
    assert _worker_graph is not None and _worker_cover_flags is not None
    g = _worker_graph
    unbounded = _worker_k is None
    rows: dict[int, dict[int, int]] = {}
    for u in chunk:
        dist = bfs_distances(g, u, k=_worker_k)
        hit = np.flatnonzero((dist != UNREACHED) & _worker_cover_flags)
        row: dict[int, int] = {}
        for v in hit.tolist():
            if v != u:
                if unbounded:
                    row[v] = 0  # n-reach stores no distance information
                else:
                    d = int(dist[v])
                    row[v] = d if d > _worker_floor else _worker_floor
        if row:
            rows[u] = row
    return rows


def parallel_khop_rows(
    graph: DiGraph,
    cover: Iterable[int],
    k: int | None,
    *,
    workers: int = 2,
) -> dict[int, dict[int, int]]:
    """Compute the k-reach row dicts with a process pool.

    Equivalent to the serial Algorithm 1 loop; raises for ``workers < 1``.
    ``workers=1`` runs inline (useful for tests and as a spawn-cost-free
    fallback).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cover_list = sorted(int(v) for v in cover)
    floor = (k - 2) if k is not None else 0
    flags = np.zeros(graph.n, dtype=bool)
    if cover_list:
        flags[cover_list] = True

    if workers == 1 or len(cover_list) < 2 * workers:
        _init_worker(graph, flags, k, floor)
        try:
            return _rows_for_chunk(cover_list)
        finally:
            _init_worker(None, None, None, 0)  # type: ignore[arg-type]

    chunks = [cover_list[i::workers] for i in range(workers)]
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    with ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(graph, flags, k, floor),
    ) as pool:
        results = pool.map(_rows_for_chunk, chunks)
    merged: dict[int, dict[int, int]] = {}
    for part in results:
        merged.update(part)
    return merged


def build_kreach_parallel(
    graph: DiGraph,
    k: int | None,
    *,
    workers: int = 2,
    cover: frozenset[int] | None = None,
    cover_strategy: str = "degree",
    compress_rows_at: int | None = None,
) -> KReachIndex:
    """Build a :class:`KReachIndex` with parallel BFS sweeps.

    The cover is computed serially (it is a linear-time pass), the rows in
    parallel, and the result is identical to the serial constructor.
    """
    from repro.core.vertex_cover import cover_from_strategy

    if cover is None:
        cover = cover_from_strategy(graph, cover_strategy)
    rows = parallel_khop_rows(graph, cover, k, workers=workers)
    return KReachIndex.from_parts(
        graph, k, cover=cover, rows=rows, compress_rows_at=compress_rows_at
    )
