"""Parallel k-reach construction (§4.1.3).

The paper notes that Algorithm 1 "is straightforward to parallelize if
more machines or CPU cores are available": the BFS sweeps from the cover
vertices are independent.  :func:`parallel_khop_triples` fans contiguous
chunks of the sorted cover out over a process pool; each worker runs the
bit-parallel blocked multi-source BFS over its chunk and sends back plain
``(src, dst, dist)`` numpy arrays, which the parent merges with one
concatenate (the final lexsort happens inside
:meth:`IndexGraph.from_triples <repro.core.index_graph.IndexGraph.from_triples>`)
— no per-entry dict merging anywhere.

On fork-capable platforms the graph is shared copy-on-write through a
module-level global, so workers pay no serialization cost for the CSR
arrays; on spawn platforms the graph is pickled once per worker.  The
result is bit-identical to both single-process builders (asserted in the
differential tests), so :func:`build_kreach_parallel` is a drop-in
constructor.

This pool is a **one-shot construction** tool: it spins up, sweeps, and
tears down, so a per-start pickle (on spawn) is immaterial.  Query
*serving* has the opposite profile — a long-lived pool answering many
batches — and lives in :class:`repro.core.serve.QueryServer`, where
workers share a :func:`~repro.core.serialize.save_mmap` file zero-copy
and nothing graph-sized ever crosses a process boundary.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Iterable

import numpy as np

from repro.core.index_graph import IndexGraph
from repro.core.kreach import KReachIndex
from repro.graph.digraph import DiGraph
from repro.graph.traversal import bfs_distances_blocked

__all__ = ["parallel_khop_triples", "build_kreach_parallel"]

# Worker-global state, installed by the pool initializer: the shared
# graph, the full-cover emit mask, and the hop budget.
_worker_graph: DiGraph | None = None
_worker_emit: np.ndarray | None = None
_worker_k: int | None = None


def _init_worker(graph: DiGraph, emit: np.ndarray, k: int | None) -> None:
    global _worker_graph, _worker_emit, _worker_k
    _worker_graph = graph
    _worker_emit = emit
    _worker_k = k


def _chunk_task(chunk: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One worker's share of Algorithm 1's sweeps, as triple arrays.

    Sources are this chunk only; the emit mask is the *full* cover, so
    targets span every cover vertex.
    """
    assert _worker_graph is not None and _worker_emit is not None
    return bfs_distances_blocked(
        _worker_graph, chunk, k=_worker_k, emit=_worker_emit
    )


def parallel_khop_triples(
    graph: DiGraph,
    cover: Iterable[int],
    k: int | None,
    *,
    workers: int = 2,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Compute the Algorithm-1 ``(src, dst, dist)`` triples with a pool.

    Equivalent to the single-process builders; raises for ``workers < 1``.
    ``workers=1`` runs inline (useful for tests and as a spawn-cost-free
    fallback).  Triples come back unsorted; feed them to
    :meth:`IndexGraph.from_triples
    <repro.core.index_graph.IndexGraph.from_triples>`.
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    cover_arr = np.unique(np.fromiter((int(v) for v in cover), dtype=np.int64))
    in_cover = np.zeros(graph.n, dtype=bool)
    if len(cover_arr):
        in_cover[cover_arr] = True

    if workers == 1 or len(cover_arr) < 2 * workers:
        return bfs_distances_blocked(graph, cover_arr, k=k, emit=in_cover)

    # Contiguous chunks keep each worker's 64-source blocks dense.
    chunks = [c for c in np.array_split(cover_arr, workers) if len(c)]
    ctx = mp.get_context("fork" if "fork" in mp.get_all_start_methods() else "spawn")
    with ctx.Pool(
        processes=workers,
        initializer=_init_worker,
        initargs=(graph, in_cover, k),
    ) as pool:
        results = pool.map(_chunk_task, chunks)
    if not results:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return (
        np.concatenate([r[0] for r in results]),
        np.concatenate([r[1] for r in results]),
        np.concatenate([r[2] for r in results]),
    )


def build_kreach_parallel(
    graph: DiGraph,
    k: int | None,
    *,
    workers: int = 2,
    cover: frozenset[int] | None = None,
    cover_strategy: str = "degree",
    compress_rows_at: int | None = None,
) -> KReachIndex:
    """Build a :class:`KReachIndex` with parallel blocked-BFS sweeps.

    The cover is computed serially (it is a linear-time pass), the triples
    in parallel, and the resulting :class:`IndexGraph` is bit-identical to
    the single-process builders'.
    """
    from repro.core.vertex_cover import cover_from_strategy

    if cover is None:
        cover = cover_from_strategy(graph, cover_strategy)
    cover = frozenset(int(v) for v in cover)
    src, dst, dist = parallel_khop_triples(graph, cover, k, workers=workers)
    ig = IndexGraph.for_kreach(graph.n, cover, src, dst, dist, k)
    return KReachIndex.from_index_graph(
        graph, k, cover=cover, index_graph=ig, compress_rows_at=compress_rows_at
    )
