"""CSR-native physical storage for cover-pair indexes (§4.3).

Every index the paper describes — k-reach, (h,k)-reach, the general-k
oracle — stores the same thing: a weighted digraph over a vertex cover.
§4.3 spells out the physical layout: a cover-id table, a CSR of offsets
and targets, and a packed small-integer weight array.  :class:`IndexGraph`
makes that layout the *single canonical in-memory representation*:

* ``cover_ids`` — the sorted cover-vertex table (``V_I``);
* ``indptr`` / ``targets`` — the index CSR, targets ascending per row;
* weights — a :class:`~repro.bitsets.packed.PackedIntArray` of
  ``w - weight_base`` values at the §4.3 bit width (2 bits for fixed-k).

Everything downstream is a *view* of these arrays: the scalar query path
reads weights through one flat probe dict, the batch engine's
:class:`~repro.core.batch.KeyedRowStore` takes the sorted
``u * n + v`` key array zero-copy, serialization dumps the arrays
verbatim, and the parallel builder merges per-worker triple arrays with
one concatenate + lexsort.  The ``{u: {v: w}}`` dict-of-dicts that three
layers used to re-flatten independently no longer exists on the core
path.

Construction feeds the structure from ``(src, dst, dist)`` triple arrays
— produced either by the per-source BFS loop (:func:`cover_triples_serial`,
the pre-refactor Algorithm-1 inner loop, kept as the differential and
benchmark baseline) or by the bit-parallel blocked multi-source BFS
(:func:`cover_triples_blocked`, the default).
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.bitsets.ops import bit_matrix, matrix_bytes, set_bits
from repro.bitsets.packed import PackedIntArray, bits_needed
from repro.graph.digraph import DiGraph, validate_csr
from repro.graph.traversal import (
    UNREACHED,
    bfs_distances,
    bfs_distances_blocked,
    bfs_distances_scalar,
)

__all__ = [
    "IndexGraph",
    "LINK_MATRIX_CACHE_CAP",
    "cover_triples_serial",
    "cover_triples_blocked",
]

#: Entries the per-IndexGraph :meth:`IndexGraph.link_matrix` FIFO cache
#: retains.  Engines that join against a *stack* of budgets (the
#: (h,k)-reach batch path) must fit their whole stack inside this cap or
#: fall back, so a cached view is never silently rebuilt per batch.
LINK_MATRIX_CACHE_CAP = 16

# Below this k a scalar sparse BFS beats the vectorized full-array BFS
# for the per-source serial builder (tiny k-hop balls).
_SCALAR_BFS_MAX_K = 3


class IndexGraph:
    """Immutable CSR index graph — the §4.3 physical layout in memory.

    Use the classmethods (:meth:`from_triples`, :meth:`from_rows`) rather
    than the low-level constructor; they sort, quantize, and validate.

    Examples
    --------
    >>> ig = IndexGraph.from_rows(6, [1, 4], {1: {4: 2}, 4: {1: 3, 5: 1}})
    >>> ig.cover_size, ig.edge_count
    (2, 3)
    >>> ig.weight_of(4, 1), ig.weight_of(4, 2)
    (3, None)
    >>> ig.weighted_edges()
    [(1, 4, 2), (4, 1, 3), (4, 5, 1)]
    """

    __slots__ = (
        "n",
        "cover_ids",
        "indptr",
        "targets",
        "packed",
        "weight_base",
        "_weights64",
        "_keys",
        "_row_pos",
        "_flat",
        "_matrices",
        "storage",
        "_wah_store",
    )

    def __init__(
        self,
        n: int,
        cover_ids: np.ndarray,
        indptr: np.ndarray,
        targets: np.ndarray,
        packed: PackedIntArray,
        weight_base: int,
    ) -> None:
        self.n = int(n)
        self.cover_ids = cover_ids
        self.indptr = indptr
        self.targets = targets
        self.packed = packed
        self.weight_base = int(weight_base)
        self._weights64: np.ndarray | None = None
        self._keys: np.ndarray | None = None
        self._row_pos: np.ndarray | None = None
        self._flat: dict[int, int] | None = None
        self._matrices: dict[tuple[int | None, bool], np.ndarray] = {}
        self.storage: str = "dense"
        self._wah_store = None

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_triples(
        cls,
        n: int,
        cover: Iterable[int],
        src: np.ndarray,
        dst: np.ndarray,
        dist: np.ndarray,
        *,
        floor: int | None = None,
        zero_weights: bool = False,
        weight_bits: int | None = None,
    ) -> "IndexGraph":
        """Build from parallel ``(src, dst, dist)`` arrays.

        ``floor`` applies the paper's quantization ``w = max(dist, floor)``
        (pass None to store distances exactly, as the general-k oracle
        does); ``zero_weights`` discards distances entirely (the n-reach
        mode stores no distance information).  ``weight_bits`` pins the
        packed width (§4.3 mandates 2 bits for fixed-k regardless of the
        weights actually observed); by default the minimum width is used.
        """
        cover_ids = np.unique(np.fromiter((int(v) for v in cover), dtype=np.int64))
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        dist = np.asarray(dist, dtype=np.int64)
        if not (len(src) == len(dst) == len(dist)):
            raise ValueError("src/dst/dist arrays must be aligned")
        if len(dst) and (int(dst.min()) < 0 or int(dst.max()) >= n):
            raise ValueError(f"target vertex out of range [0, {n})")
        if 0 < n < (1 << 31):
            # One radix pass over the fused u * n + v key instead of
            # lexsort's two — measurably cheaper on merge-compaction and
            # blocked-build hot paths (the key also feeds the dup check).
            keys = src * np.int64(n) + dst
            order = np.argsort(keys, kind="stable")
            src, dst, w = src[order], dst[order], dist[order]
            keys = keys[order]
            dup = len(keys) > 1 and bool(np.any(keys[1:] == keys[:-1]))
        else:
            order = np.lexsort((dst, src))
            src, dst, w = src[order], dst[order], dist[order]
            dup = len(src) > 1 and bool(
                np.any((src[1:] == src[:-1]) & (dst[1:] == dst[:-1]))
            )
        if dup:
            # Silent last-wins merging would let weight_of (binary
            # search) and flat() (hash) disagree; fail loudly instead.
            raise ValueError("duplicate (src, dst) triples")
        pos = np.searchsorted(cover_ids, src)
        if len(src) and (
            int(pos.max(initial=0)) >= len(cover_ids)
            or not bool(np.all(cover_ids[np.minimum(pos, len(cover_ids) - 1)] == src))
        ):
            raise ValueError("triple source outside the cover")
        if zero_weights:
            w = np.zeros(len(w), dtype=np.int64)
            base = 0
        elif floor is not None:
            w = np.maximum(w, floor)
            base = floor
        else:
            base = 0
        if weight_bits is None:
            span = int(w.max()) - base + 1 if len(w) else 1
            weight_bits = bits_needed(span)
        counts = np.bincount(pos, minlength=len(cover_ids)) if len(src) else (
            np.zeros(len(cover_ids), dtype=np.int64)
        )
        indptr = np.zeros(len(cover_ids) + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        packed = PackedIntArray.from_numpy(w - base, bits=weight_bits)
        ig = cls(n, cover_ids, indptr, dst, packed, base)
        ig._weights64 = w
        return ig

    @classmethod
    def for_kreach(
        cls,
        n: int,
        cover: Iterable[int],
        src: np.ndarray,
        dst: np.ndarray,
        dist: np.ndarray,
        k: int | None,
    ) -> "IndexGraph":
        """The k-reach weight encoding, in one place.

        Finite ``k``: weights quantized to ``max(dist, k-2)`` and packed
        at the §4.3 2-bit width.  ``k=None`` (n-reach): no distance
        information, 1-bit zeros.  Every k-reach builder — serial,
        blocked, process-parallel, dynamic freeze — must dispatch through
        here so their encodings can never drift apart.
        """
        if k is None:
            return cls.from_triples(
                n, cover, src, dst, dist, zero_weights=True, weight_bits=1
            )
        return cls.from_triples(
            n, cover, src, dst, dist, floor=k - 2, weight_bits=2
        )

    @classmethod
    def from_storage(
        cls,
        n: int,
        cover_ids: np.ndarray,
        indptr: np.ndarray,
        targets: np.ndarray,
        packed: PackedIntArray,
        weight_base: int,
        *,
        keys: np.ndarray | None = None,
        weights64: np.ndarray | None = None,
    ) -> "IndexGraph":
        """Install pre-built storage arrays verbatim (the zero-copy loader).

        Unlike :meth:`from_triples` nothing is sorted, quantized, or
        checked here — the caller (the v4 memory-mapped loader) owns the
        arrays' integrity, typically via a format header plus optional
        :meth:`validate`.  ``keys`` / ``weights64`` pre-install the
        derived views the batch engine reads, so a query never has to
        materialize them from the packed words; all arrays may be
        read-only (memory-mapped) — every derived structure built later
        is copy-on-build.
        """
        ig = cls(n, cover_ids, indptr, targets, packed, int(weight_base))
        if keys is not None:
            ig._keys = keys
        if weights64 is not None:
            ig._weights64 = weights64
        return ig

    @classmethod
    def from_rows(
        cls,
        n: int,
        cover: Iterable[int],
        rows: Mapping[int, object],
        *,
        weight_bits: int | None = None,
        weight_base: int | None = None,
    ) -> "IndexGraph":
        """Conversion helper: build from legacy ``{u: {v: w}}`` mappings.

        Accepts plain dict rows and
        :class:`~repro.core.rowstore.CompressedRow` values (anything with
        ``.items()``).  Only tests, tools, and the dynamic index's freeze
        path should need this; construction proper goes through
        :meth:`from_triples`.
        """
        srcs: list[int] = []
        dsts: list[int] = []
        ws: list[int] = []
        for u, row in rows.items():
            for v, w in row.items():
                srcs.append(int(u))
                dsts.append(int(v))
                ws.append(int(w))
        return cls.from_triples(
            n,
            cover,
            np.asarray(srcs, dtype=np.int64),
            np.asarray(dsts, dtype=np.int64),
            np.asarray(ws, dtype=np.int64),
            floor=weight_base,
            weight_bits=weight_bits,
        )

    # ------------------------------------------------------------------
    # Row-store backing (dense keyed arrays vs WAH-compressed bitmaps)
    # ------------------------------------------------------------------
    def use_storage(self, storage: str, store=None) -> "IndexGraph":
        """Select the row-store backing for the batch engine.

        ``'dense'`` (the default) probes the flat sorted key/weight
        arrays (:meth:`keys` / :meth:`weights64`); ``'wah'`` probes
        per-row WAH bitmaps (:class:`~repro.core.rowstore.WahRowStore`)
        that decompress on touch — a fraction of the dense bytes at a
        per-query decompression cost.  ``store`` pre-installs a built
        store (the zero-copy loader's path); otherwise it is built
        lazily from the CSR arrays on first :meth:`wah_store` call.
        Answers are bit-identical either way.  Returns ``self``.
        """
        if storage not in ("dense", "wah"):
            raise ValueError(f"storage must be 'dense' or 'wah', got {storage!r}")
        if store is not None and storage != "wah":
            raise ValueError("a pre-built store requires storage='wah'")
        self.storage = storage
        self._wah_store = store
        return self

    def wah_store(self):
        """The WAH row store (built from the CSR on first use)."""
        if self._wah_store is None:
            from repro.core.rowstore import WahRowStore

            self._wah_store = WahRowStore.from_index_graph(self)
        return self._wah_store

    # ------------------------------------------------------------------
    # Derived views (each built once, on first use)
    # ------------------------------------------------------------------
    def weights64(self) -> np.ndarray:
        """All edge weights as an int64 array aligned with :attr:`targets`."""
        if self._weights64 is None:
            self._weights64 = self.packed.as_numpy() + self.weight_base
        return self._weights64

    def keys(self) -> np.ndarray:
        """Sorted ``u * n + v`` int64 keys — the batch engine's probe array.

        Globally sorted by construction (ascending cover rows, ascending
        targets within each row), so
        :class:`~repro.core.batch.KeyedRowStore` takes it zero-copy.
        """
        if self._keys is None:
            heads = np.repeat(self.cover_ids, np.diff(self.indptr))
            self._keys = heads * np.int64(self.n) + self.targets
        return self._keys

    def row_pos(self) -> np.ndarray:
        """Dense vertex-id → row-index map (-1 for non-cover vertices)."""
        if self._row_pos is None:
            pos = np.full(self.n, -1, dtype=np.int64)
            pos[self.cover_ids] = np.arange(len(self.cover_ids), dtype=np.int64)
            self._row_pos = pos
        return self._row_pos

    def flat(self) -> dict[int, int]:
        """One flat ``{u * n + v: w}`` probe dict for the scalar query path.

        A single hash probe per weight lookup — the scalar-speed view of
        the CSR, built in one pass over the arrays (no nested dicts).
        """
        if self._flat is None:
            self._flat = dict(
                zip(self.keys().tolist(), self.weights64().tolist())
            )
        return self._flat

    def link_matrix(
        self, budget: int | None = None, *, diagonal: bool = False
    ) -> np.ndarray:
        """Cover-local bitset link matrix — the bitset-join probe view.

        A ``(|V_I|, ceil(|V_I| / 64))`` uint64 matrix in *cover
        positions*: bit ``j`` of row ``i`` is set iff the index stores an
        edge ``(cover_ids[i], cover_ids[j])`` with weight ``<= budget``
        (``budget=None`` means any stored edge counts — the n-reach
        presence semantics).  With ``diagonal=True`` bit ``i`` of row
        ``i`` is additionally set, encoding the ``u == v``
        self-handshake as a zero-weight link; callers pass it only when
        a zero distance satisfies their budget.  Targets outside the
        cover (legal in hand-built graphs) are ignored.

        Each distinct ``(budget, diagonal)`` view is built once and
        cached (a small FIFO keeps the cache from growing without bound
        when a general-k oracle probes many budgets); size one view with
        :meth:`link_matrix_bytes` before building.
        """
        key = (None if budget is None else int(budget), bool(diagonal))
        mat = self._matrices.get(key)
        if mat is not None:
            return mat
        size = len(self.cover_ids)
        tpos = self.row_pos()[self.targets]
        keep = tpos >= 0
        if budget is not None:
            keep &= self.packed.leq_mask(int(budget) - self.weight_base)
        heads = np.repeat(
            np.arange(size, dtype=np.int64), np.diff(self.indptr)
        )
        mat = bit_matrix(heads[keep], tpos[keep], size, size)
        if diagonal and size:
            diag = np.arange(size, dtype=np.int64)
            set_bits(mat, diag, diag)
        if self.storage == "wah":
            # Compressed cold rows: the Case-4 join decompresses just
            # the rows a batch touches (WahBitMatrix.take), keeping the
            # resident footprint at the compressed size.
            from repro.bitsets.wah import WahBitMatrix

            mat = WahBitMatrix.from_dense(mat, size)
        while len(self._matrices) >= LINK_MATRIX_CACHE_CAP:
            self._matrices.pop(next(iter(self._matrices)))
        self._matrices[key] = mat
        return mat

    def link_matrix_bytes(self) -> int:
        """Bytes one :meth:`link_matrix` view occupies (``~|V_I|² / 8``)."""
        return matrix_bytes(self.cover_size, self.cover_size)

    # ------------------------------------------------------------------
    # Point access
    # ------------------------------------------------------------------
    def row_bounds(self, u: int) -> tuple[int, int]:
        """``[start, stop)`` of ``u``'s slice in :attr:`targets` (empty if
        ``u`` is not a cover vertex)."""
        p = int(self.row_pos()[u])
        if p < 0:
            return 0, 0
        return int(self.indptr[p]), int(self.indptr[p + 1])

    def row_dict(self, u: int) -> dict[int, int]:
        """One row as a mutable ``{target: weight}`` dict (empty if ``u``
        has no row).

        This is the copy-on-write seed of the dynamic engine's delta
        overlay: the first update touching a cover row materializes
        exactly that row from the immutable arrays, leaving every clean
        row on the zero-copy base path.
        """
        lo, hi = self.row_bounds(u)
        if lo == hi:
            return {}
        return dict(
            zip(
                self.targets[lo:hi].tolist(),
                self.weights64()[lo:hi].tolist(),
            )
        )

    def triples(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All edges as aligned ``(src, dst, weight)`` int64 arrays.

        The sorted-triple view :meth:`from_triples` consumes — letting a
        compaction merge clean base rows with overlay rows by masking and
        concatenating arrays, never looping per edge.
        """
        heads = np.repeat(self.cover_ids, np.diff(self.indptr))
        return heads, self.targets, self.weights64()

    def weight_of(self, u: int, v: int) -> int | None:
        """The stored weight of edge ``(u, v)``, or None if absent.

        One ``row_pos`` load plus one binary search over the row slice.
        """
        if not 0 <= u < self.n:
            return None
        lo, hi = self.row_bounds(u)
        if lo == hi:
            return None
        row = self.targets[lo:hi]
        i = int(np.searchsorted(row, v))
        if i < len(row) and int(row[i]) == v:
            return int(self.weights64()[lo + i])
        return None

    # ------------------------------------------------------------------
    # Introspection & conversion
    # ------------------------------------------------------------------
    @property
    def cover_size(self) -> int:
        """``|V_I|``."""
        return len(self.cover_ids)

    @property
    def edge_count(self) -> int:
        """``|E_I|``."""
        return len(self.targets)

    def weighted_edges(self) -> list[tuple[int, int, int]]:
        """All edges as ``(u, v, w)`` triples in sorted order."""
        heads = np.repeat(self.cover_ids, np.diff(self.indptr))
        return list(
            zip(heads.tolist(), self.targets.tolist(), self.weights64().tolist())
        )

    def rows_dict(self) -> dict[int, dict[int, int]]:
        """Conversion helper: the legacy nested-dict view (tests/tools only)."""
        out: dict[int, dict[int, int]] = {}
        indptr = self.indptr.tolist()
        targets = self.targets.tolist()
        weights = self.weights64().tolist()
        for i, u in enumerate(self.cover_ids.tolist()):
            lo, hi = indptr[i], indptr[i + 1]
            if hi > lo:
                out[u] = dict(zip(targets[lo:hi], weights[lo:hi]))
        return out

    def validate(self) -> "IndexGraph":
        """Check the structural invariants; raise :class:`ValueError` if broken.

        The binary searches in :meth:`weight_of` and the batch engine's
        ``searchsorted`` silently miss edges when rows are unsorted, so
        anything installing externally-sourced arrays (the on-disk
        loader) must call this instead of trusting them.  The CSR checks
        are shared with :meth:`DiGraph.from_csr
        <repro.graph.digraph.DiGraph.from_csr>` via
        :func:`~repro.graph.digraph.validate_csr`.  Returns ``self`` for
        chaining.
        """
        cover = self.cover_ids
        if len(cover):
            if int(cover.min()) < 0 or int(cover.max()) >= self.n:
                raise ValueError(f"cover id out of range [0, {self.n})")
            if not bool(np.all(cover[1:] > cover[:-1])):
                raise ValueError("cover ids must be strictly ascending")
        if len(self.indptr) != len(cover) + 1:
            raise ValueError("indptr length must be cover size + 1")
        validate_csr("index", self.n, self.indptr, self.targets)
        if len(self.packed) != len(self.targets):
            raise ValueError("weight array length must match the target count")
        return self

    def csr_storage_bytes(self, *, edges: int | None = None) -> int:
        """§4.3 on-disk model for ``edges`` CSR-stored edges (default all):
        4-byte cover ids and offsets, 4-byte targets, packed weights."""
        if edges is None:
            edges = self.edge_count
        n_i = self.cover_size
        return (
            4 * n_i
            + 4 * (n_i + 1)
            + 4 * edges
            + (edges * self.packed.bits + 7) // 8
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexGraph):
            return NotImplemented
        return (
            self.n == other.n
            and np.array_equal(self.cover_ids, other.cover_ids)
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.targets, other.targets)
            and np.array_equal(self.weights64(), other.weights64())
        )

    def __hash__(self) -> int:  # immutable; allow use as dict key
        return hash((self.n, self.edge_count, self.targets.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"IndexGraph(n={self.n}, |V_I|={self.cover_size}, "
            f"|E_I|={self.edge_count}, bits={self.packed.bits})"
        )


# ----------------------------------------------------------------------
# Triple producers (Algorithm 1's BFS sweeps)
# ----------------------------------------------------------------------
def cover_triples_serial(
    graph: DiGraph, cover: Iterable[int], k: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Per-source BFS triples — the pre-refactor Algorithm-1 inner loop.

    One (scalar for small k, else vectorized) BFS per cover vertex.  Kept
    as the differential-test baseline and the benchmark reference the
    blocked builder is measured against.
    """
    cover_arr = np.unique(np.fromiter((int(v) for v in cover), dtype=np.int64))
    in_cover = np.zeros(graph.n, dtype=bool)
    in_cover[cover_arr] = True
    srcs: list[np.ndarray] = []
    dsts: list[np.ndarray] = []
    dists: list[np.ndarray] = []
    use_scalar = k is not None and k <= _SCALAR_BFS_MAX_K
    for u in cover_arr.tolist():
        if use_scalar:
            ball = bfs_distances_scalar(graph, u, k=k)
            hit = [(v, d) for v, d in ball.items() if v != u and in_cover[v]]
            if not hit:
                continue
            dst = np.fromiter((v for v, _ in hit), dtype=np.int64, count=len(hit))
            dist = np.fromiter((d for _, d in hit), dtype=np.int64, count=len(hit))
        else:
            all_dist = bfs_distances(graph, u, k=k)
            dst = np.flatnonzero((all_dist != UNREACHED) & in_cover)
            dst = dst[dst != u].astype(np.int64)
            if not len(dst):
                continue
            dist = all_dist[dst].astype(np.int64)
        srcs.append(np.full(len(dst), u, dtype=np.int64))
        dsts.append(dst)
        dists.append(dist)
    if not srcs:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty.copy(), empty.copy()
    return np.concatenate(srcs), np.concatenate(dsts), np.concatenate(dists)


def cover_triples_blocked(
    graph: DiGraph, cover: Iterable[int], k: int | None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Blocked bit-parallel MS-BFS triples (the default builder).

    Wraps :func:`~repro.graph.traversal.bfs_distances_blocked` with the
    cover as both source set and emit mask — exactly the (src, dst, dist)
    stream Algorithm 1 needs, 64 sources per sweep.
    """
    cover_arr = np.unique(np.fromiter((int(v) for v in cover), dtype=np.int64))
    in_cover = np.zeros(graph.n, dtype=bool)
    if len(cover_arr):
        in_cover[cover_arr] = True
    return bfs_distances_blocked(graph, cover_arr, k=k, emit=in_cover)
