"""The 15-dataset registry mirroring the paper's Table 2.

Each :class:`DatasetSpec` carries the *published* statistics of the real
graph and a calibrated synthetic generator (see
:mod:`repro.datasets.synthetic`).  :func:`load` materializes the stand-in
at any scale; ``scale=1.0`` matches the paper's vertex counts exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets import synthetic
from repro.graph.digraph import DiGraph

__all__ = ["DatasetSpec", "DATASETS", "DATASET_NAMES", "load", "spec"]


@dataclass(frozen=True)
class DatasetSpec:
    """One dataset: published Table-2 row + synthetic stand-in generator."""

    name: str
    family: str
    n: int
    m: int
    n_dag: int
    m_dag: int
    deg_max: int
    diameter: int
    mu: int
    generator: Callable[[int, int, int], DiGraph]  # (n, m, seed) -> graph

    def build(self, *, scale: float = 1.0, seed: int | None = None) -> DiGraph:
        """Materialize the stand-in at the given scale (1.0 = paper-sized)."""
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        n = max(16, int(self.n * scale))
        m = max(16, int(self.m * scale))
        if seed is None:
            seed = _stable_seed(self.name)
        return self.generator(n, m, seed)


def _stable_seed(name: str) -> int:
    """Deterministic per-dataset seed (stable across runs and processes)."""
    return sum(ord(c) * (i + 1) for i, c in enumerate(name)) % (2**31)


def _metabolic(hub_frac: float, scc_frac: float, chain_len: int):
    def gen(n: int, m: int, seed: int) -> DiGraph:
        return synthetic.metabolic_graph(
            n,
            m,
            hub_degree_fraction=hub_frac,
            scc_vertex_fraction=scc_frac,
            chain_length=chain_len,
            seed=seed,
        )

    return gen


def _metabolic_core(core_frac: float, hub_frac: float, tail_len: int):
    def gen(n: int, m: int, seed: int) -> DiGraph:
        return synthetic.metabolic_core_graph(
            n,
            m,
            core_fraction=core_frac,
            hub_degree_fraction=hub_frac,
            tail_length=tail_len,
            seed=seed,
        )

    return gen


def _citation(window_frac: float, preferential: float):
    def gen(n: int, m: int, seed: int) -> DiGraph:
        return synthetic.citation_graph(
            n, m, window_fraction=window_frac, preferential=preferential, seed=seed
        )

    return gen


def _xml(branching: int, trunk_depth: int | None, chain_len: int, num_chains: int, hub_frac: float):
    def gen(n: int, m: int, seed: int) -> DiGraph:
        return synthetic.xml_graph(
            n,
            m,
            branching=branching,
            trunk_depth=trunk_depth,
            chain_length=chain_len,
            num_chains=num_chains,
            hub_fraction=hub_frac,
            seed=seed,
        )

    return gen


def _semantic(levels: int, top_frac: float, skew: float, spine: int):
    def gen(n: int, m: int, seed: int) -> DiGraph:
        return synthetic.semantic_graph(
            n,
            m,
            levels=levels,
            top_fraction=top_frac,
            hub_skew=skew,
            spine_length=spine,
            seed=seed,
        )

    return gen


#: Published Table-2 rows with calibrated generators, keyed by dataset name.
DATASETS: dict[str, DatasetSpec] = {
    s.name: s
    for s in [
        DatasetSpec("AgroCyc", "metabolic", 13969, 17694, 12684, 13657, 5488, 10, 2, _metabolic(0.39, 0.092, 6)),
        DatasetSpec("aMaze", "metabolic-core", 11877, 28700, 3710, 3947, 3097, 11, 2, _metabolic_core(0.69, 0.26, 4)),
        DatasetSpec("Anthra", "metabolic", 13766, 17307, 12499, 13327, 5401, 10, 2, _metabolic(0.39, 0.092, 6)),
        DatasetSpec("ArXiv", "citation", 6000, 66707, 6000, 66707, 700, 20, 4, _citation(0.06, 0.75)),
        DatasetSpec("CiteSeer", "citation", 10720, 44258, 10720, 44258, 192, 18, 3, _citation(0.09, 0.35)),
        DatasetSpec("Ecoo", "metabolic", 13800, 17308, 12620, 13575, 5435, 10, 2, _metabolic(0.39, 0.085, 6)),
        DatasetSpec("GO", "ontology", 6793, 13361, 6793, 13361, 71, 11, 3, _semantic(11, 0.0005, 0.0, 0)),
        DatasetSpec("Human", "metabolic", 40051, 43879, 38811, 39816, 28571, 10, 2, _metabolic(0.71, 0.031, 6)),
        DatasetSpec("Kegg", "metabolic-core", 14271, 35170, 3617, 4395, 3282, 16, 2, _metabolic_core(0.75, 0.23, 7)),
        DatasetSpec("Mtbrv", "metabolic", 10697, 13922, 9602, 10438, 4005, 12, 2, _metabolic(0.37, 0.102, 8)),
        DatasetSpec("Nasa", "xml", 5704, 7942, 5605, 6538, 32, 22, 7, _xml(2, 22, 4, 2, 0.0)),
        DatasetSpec("PubMed", "citation", 9000, 40028, 9000, 40028, 432, 11, 4, _citation(0.40, 0.50)),
        DatasetSpec("Vchocyc", "metabolic", 10694, 14207, 9491, 10345, 3917, 10, 2, _metabolic(0.37, 0.112, 6)),
        DatasetSpec("Xmark", "xml", 6483, 7654, 6080, 7051, 887, 24, 5, _xml(10, None, 20, 3, 0.75)),
        DatasetSpec("YAGO", "semantic", 6642, 42392, 6642, 42392, 2371, 9, 1, _semantic(2, 0.01, 1.05, 9)),
    ]
}

#: Dataset names in the paper's (alphabetical) Table-2 order.
DATASET_NAMES: tuple[str, ...] = tuple(DATASETS)


def spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    for key, value in DATASETS.items():
        if key.lower() == name.lower():
            return value
    raise KeyError(f"unknown dataset {name!r}; choose from {DATASET_NAMES}")


def load(name: str, *, scale: float = 1.0, seed: int | None = None) -> DiGraph:
    """Materialize a dataset stand-in by name."""
    return spec(name).build(scale=scale, seed=seed)
