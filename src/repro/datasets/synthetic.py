"""Calibrated synthetic stand-ins for the paper's 15 real datasets.

The paper's datasets (EcoCyc metabolic networks, citation graphs, XML
documents, ontologies — Table 2) cannot be downloaded in this offline
environment, so each is replaced by a generator from the matching graph
family, parameterized to hit the published ``(|V|, |E|, Degmax, d, µ,
|V_DAG|/|V|)`` profile.  What k-reach interacts with — vertex-cover size
relative to n, degree skew, SCC structure, diameter, and the typical
distance µ — is what the generators reproduce; see DESIGN.md §4.

Five families:

* :func:`metabolic_graph` — hub-dominated near-DAGs (AgroCyc, Anthra,
  Ecoo, Human, Mtbrv, Vchocyc): Degmax ≈ 0.3–0.7 n, µ = 2, a sprinkle of
  reciprocal reaction pairs producing small SCCs.
* :func:`metabolic_core_graph` — aMaze, Kegg: a giant strongly connected
  reaction core swallows most vertices (``|V_DAG| ≪ |V|``).
* :func:`citation_graph` — ArXiv, CiteSeer, PubMed: pure DAGs, edges from
  newer to older, preferential attachment with a recency window.
* :func:`xml_graph` — Nasa, Xmark: deep document trees plus reference
  edges, diameters in the twenties.
* :func:`semantic_graph` — GO, YAGO: shallow multi-parent ontology DAGs.

All generators are deterministic in ``seed`` and honor exact ``n``; edge
counts land within a few percent of ``m`` (duplicates are collapsed).

Structure drivers, shared across the family generators:

* **µ (median distance)** is pinned by making one structural motif dominate
  the finite-distance histogram (hub-mediated 2-hop pairs for metabolic,
  direct fact→category edges for YAGO, …).
* **d (diameter)** is realized by a dedicated *chain zone*: a few directed
  paths of the target length, vertex-disjoint from the hub spokes so no
  shortcut collapses them.
* **|V_DAG|** is controlled by explicitly placed 2-cycles (or a designed
  giant core), never by accidental cycles: all "filler" edges are oriented
  low-id → high-id, which keeps them acyclic by construction.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import DiGraph

__all__ = [
    "metabolic_graph",
    "metabolic_core_graph",
    "citation_graph",
    "xml_graph",
    "semantic_graph",
]


def metabolic_graph(
    n: int,
    m: int,
    *,
    hub_degree_fraction: float = 0.35,
    num_hubs: int = 6,
    scc_vertex_fraction: float = 0.09,
    loop_size: int = 12,
    chain_length: int = 9,
    num_chains: int = 6,
    seed: int = 0,
) -> DiGraph:
    """Hub-dominated metabolic-style network (EcoCyc family).

    Layout (disjoint vertex zones): ``[hubs | chains | loops | spokes]``.

    * The dominant "currency metabolite" hub 0 has
      ``hub_degree_fraction · n`` spokes, half inbound and half outbound,
      so in-spoke → hub → out-spoke pairs put the median finite distance
      at 2; minor hubs decay geometrically.
    * ``num_chains`` reaction chains of ``chain_length`` edges realize the
      published diameter.
    * The ``|V_DAG|`` deficit comes from **reaction loops**: star-shaped
      SCCs of ``loop_size`` vertices cycling through a loop center
      (center → member → center).  Every loop edge is incident to its
      center, so a loop costs one cover vertex while merging
      ``loop_size`` vertices in the condensation — this is what keeps the
      vertex cover at the few-percent level the paper reports (Table 9:
      AgroCyc's cover is 2.8% of |V|) while ``|V_DAG|/|V|`` ≈ 0.91.
    * Leftover edge budget becomes extra spokes on the minor hubs
      (hub-incident, hence cover-free).
    """
    num_loops = max(0, int(scc_vertex_fraction * n) // max(1, loop_size - 1))
    chain_zone = num_chains * (chain_length + 1)
    loop_zone = num_loops * loop_size
    if n < num_hubs + chain_zone + loop_zone + 8:
        raise ValueError(f"n={n} too small for the metabolic shape")
    rng = np.random.default_rng(seed)
    edges: list[tuple[int, int]] = []
    chain_lo = num_hubs
    loop_lo = chain_lo + chain_zone
    spoke_lo = loop_lo + loop_zone
    # Fixed substrate/product roles keep the hub region acyclic: substrates
    # (first half of the spoke zone) only feed hubs, products only drain
    # them, and hubs never link to each other.
    pool = np.arange(spoke_lo, n)
    substrates = pool[: len(pool) // 2]
    products = pool[len(pool) // 2 :]

    # --- dominant hub spokes: substrates -> hub0 -> products.
    spokes = min(int(hub_degree_fraction * n), len(pool))
    half = spokes // 2
    ins = rng.choice(substrates, size=min(half, len(substrates)), replace=False)
    outs = rng.choice(products, size=min(spokes - half, len(products)), replace=False)
    edges.extend((int(v), 0) for v in ins)
    edges.extend((0, int(v)) for v in outs)

    # --- reaction chains: the diameter driver.
    for c in range(num_chains):
        base = chain_lo + c * (chain_length + 1)
        for i in range(chain_length):
            edges.append((base + i, base + i + 1))
        # Anchor chains to the hub system so they join the giant component.
        edges.append((0, base))
        edges.append((base + chain_length, 1 if num_hubs > 1 else 0))

    # --- reaction loops: star SCCs (center <-> members).
    for l in range(num_loops):
        center = loop_lo + l * loop_size
        for off in range(1, loop_size):
            member = center + off
            edges.append((center, member))
            edges.append((member, center))

    # --- minor hubs with geometrically decaying spoke counts; the leftover
    # edge budget tops up the smallest hub (all hub-incident, cover-free).
    budget = m - len(edges)
    for h in range(1, num_hubs):
        deg = max(4, int(spokes * (0.4**h)))
        if h == num_hubs - 1:
            deg = max(deg, budget)
        deg = min(deg, max(0, budget))
        if deg == 0:
            break
        ins = rng.choice(substrates, size=min(deg // 2, len(substrates)), replace=False)
        outs = rng.choice(products, size=min(deg - deg // 2, len(products)), replace=False)
        edges.extend((int(v), h) for v in ins)
        edges.extend((h, int(v)) for v in outs)
        budget -= deg
    return DiGraph(n, edges)


def metabolic_core_graph(
    n: int,
    m: int,
    *,
    core_fraction: float = 0.7,
    hub_degree_fraction: float = 0.25,
    tail_length: int = 5,
    seed: int = 0,
) -> DiGraph:
    """Metabolic network with a giant strongly connected core (aMaze, Kegg).

    ``core_fraction · n`` vertices form one SCC, *hub-mediated* the way
    real metabolic cores are: a handful of fully interconnected reaction
    hubs, with every other core vertex exchanging with at least one hub in
    both directions (so ``u → hub_i → hub_j → v`` strongly connects the
    whole core at distance ≤ 3, giving the published µ = 2).  Because all
    core edges touch a hub, the vertex cover of the region stays tiny —
    matching the paper's Table 9, where aMaze's cover is only 4% of |V|.
    The remaining vertices form inbound/outbound periphery, including
    chains of ``tail_length`` that stretch the diameter to the published
    11–16.
    """
    if n < 20:
        raise ValueError(f"n={n} too small for the core shape")
    rng = np.random.default_rng(seed)
    core_size = max(10, int(core_fraction * n))
    edges: list[tuple[int, int]] = []

    # Fully interconnected reaction hubs.
    num_hubs = 3
    for a in range(num_hubs):
        for b in range(num_hubs):
            if a != b:
                edges.append((a, b))
    # Every core vertex exchanges with a primary hub (both directions) —
    # this alone makes the core one SCC with all edges hub-incident.
    members = np.arange(num_hubs, core_size)
    primary = rng.integers(0, num_hubs, size=len(members))
    for v, h in zip(members, primary):
        edges.append((int(v), int(h)))
        edges.append((int(h), int(v)))
    # Extra exchanges with secondary hubs spend the remaining budget while
    # keeping Deg(hub) near the published Degmax (each hub's degree is its
    # member slice, ~core/3 ~ hub_degree_fraction * n for these datasets).
    periphery = np.arange(core_size, n)
    budget = m - len(edges) - len(periphery)
    if budget > 0:
        extra_v = rng.choice(members, size=budget)
        extra_h = rng.integers(0, num_hubs, size=budget)
        for v, h in zip(extra_v, extra_h):
            if rng.random() < 0.5:
                edges.append((int(v), int(h)))
            else:
                edges.append((int(h), int(v)))

    # Periphery: almost all vertices hang directly off a hub (their edges
    # are hub-covered, keeping the vertex cover tiny — the paper's aMaze
    # cover is 4% of |V|).  A handful of chains of `tail_length` realize
    # the published diameter: in-tail -> core -> out-tail.
    num_tails = 8
    tail_budget = num_tails * tail_length
    for i, v in enumerate(periphery[: len(periphery) - tail_budget]):
        h = int(rng.integers(0, num_hubs))
        if i % 2 == 0:
            edges.append((int(v), h))
        else:
            edges.append((h, int(v)))
    tail_zone = periphery[len(periphery) - tail_budget :]
    for tail_i in range(num_tails):
        block = [int(p) for p in tail_zone[tail_i * tail_length : (tail_i + 1) * tail_length]]
        if not block:
            continue
        h = int(rng.integers(0, num_hubs))
        if tail_i % 2 == 0:
            # chain feeding the core: p0 -> p1 -> ... -> hub
            for a, b in zip(block, block[1:]):
                edges.append((a, b))
            edges.append((block[-1], h))
        else:
            # chain draining the core: hub -> p0 -> p1 -> ...
            edges.append((h, block[0]))
            for a, b in zip(block, block[1:]):
                edges.append((a, b))
    return DiGraph(n, edges)


def citation_graph(
    n: int,
    m: int,
    *,
    window_fraction: float = 0.05,
    preferential: float = 0.3,
    seed: int = 0,
) -> DiGraph:
    """Citation network: a pure DAG, newer papers cite older ones.

    Each paper cites ``m/n`` references on average: with probability
    ``preferential`` a recently *cited* paper (degree-proportional — the
    rich-get-richer skew of real citation data), otherwise a uniformly
    random paper inside the recency window (``window_fraction · n`` most
    recent).  The preferential pool is windowed as well, so no citation
    jumps far back in time; smaller windows therefore force long paths
    through many "generations", producing the published diameters (11–20).
    """
    if n < 3:
        raise ValueError(f"n={n} too small for a citation graph")
    rng = np.random.default_rng(seed)
    window = max(2, int(window_fraction * n))
    per_vertex = max(1, round(m / max(1, n - 1)))
    pool_size = window * per_vertex
    edges: list[tuple[int, int]] = []
    cited: list[int] = []  # ring buffer of recent citation endpoints
    pool_head = 0
    for i in range(1, n):
        lo = max(0, i - window)
        for _ in range(per_vertex):
            j = -1
            if cited and rng.random() < preferential:
                j = cited[int(rng.integers(0, len(cited)))]
                if j < lo:
                    j = -1  # pool entry has aged out of the window
            if j < 0:
                j = int(rng.integers(lo, i))
            edges.append((i, j))
            if len(cited) < pool_size:
                cited.append(j)
            else:
                cited[pool_head] = j
                pool_head = (pool_head + 1) % pool_size
    return DiGraph(n, edges)


def xml_graph(
    n: int,
    m: int,
    *,
    branching: int = 6,
    trunk_depth: int | None = None,
    chain_length: int = 17,
    num_chains: int = 3,
    hub_fraction: float = 0.0,
    seed: int = 0,
) -> DiGraph:
    """XML document graph: an element tree plus deep runs and idrefs.

    Layout: ``[tree | chain zone]``.  Two tree shapes:

    * ``trunk_depth=None`` (default): a complete ``branching``-ary tree
      (parent of element ``i`` is ``(i-1) // branching``) — wide documents
      like Xmark, vertex cover near ``2n/branching``.
    * ``trunk_depth=D``: a *caterpillar forest* — trunks of ``D`` nested
      elements hanging off the root, each trunk element carrying
      ``branching`` leaf children.  Deep documents like Nasa: typical
      distances ≈ D/2 (the published µ = 7) while the cover stays at the
      trunk fraction ``1/(branching+1)`` ≈ the paper's 32%.

    ``num_chains`` runs of ``chain_length`` single-child elements hang off
    the deepest element, realizing the published diameters (22–24).  Edges
    beyond the tree become cross-references pointing forward in document
    order (acyclic); ``hub_fraction`` of them emanate from the root
    catalog element, modeling Xmark's high-degree node.
    """
    chain_zone = num_chains * chain_length
    if n < chain_zone + branching + (trunk_depth or 0) + 2:
        raise ValueError(f"n={n} too small for the XML shape")
    rng = np.random.default_rng(seed)
    tree_size = n - chain_zone
    edges: list[tuple[int, int]] = []
    anchor = tree_size - 1  # deepest id in the b-ary layout
    trunks: list[int] = []
    run_end_of: dict[int, int] = {}
    if trunk_depth is None:
        for i in range(1, tree_size):
            edges.append(((i - 1) // branching, i))
    else:
        # Caterpillar forest: blocks of (1 trunk element + `branching`
        # leaves); trunks chained in runs of `trunk_depth`.  Runs hang off
        # a thin layer of section elements so no single element's degree
        # explodes (Nasa's Degmax is only 32).
        block = branching + 1
        num_sections = max(1, round((tree_size / block / max(1, trunk_depth)) ** 0.5))
        sections = list(range(1, 1 + num_sections))
        for sec in sections:
            edges.append((0, sec))
        trunk_pos = 0
        prev_trunk = 0
        run_index = 0
        run_start_pos = 0
        first_base = 1 + num_sections
        for base in range(first_base, tree_size - block + 1, block):
            trunk = base
            if trunk_pos == 0:
                parent = sections[run_index % num_sections]
                run_index += 1
                run_start_pos = len(trunks)
            else:
                parent = prev_trunk
            edges.append((parent, trunk))
            trunks.append(trunk)
            for leaf in range(base + 1, base + block):
                edges.append((trunk, leaf))
            prev_trunk = trunk
            trunk_pos = (trunk_pos + 1) % trunk_depth
            if trunk_pos == 0:
                anchor = trunk
                # Record, for every trunk of the finished run, the run tail.
                for position in range(run_start_pos, len(trunks)):
                    run_end_of[trunks[position]] = trunk
        # Stragglers become section children.
        first_straggler = first_base + ((tree_size - first_base) // block) * block
        for v in range(first_straggler, tree_size):
            edges.append((sections[v % num_sections], v))
    # Nested element runs anchored at the deepest tree element.
    for c in range(num_chains):
        base = tree_size + c * chain_length
        edges.append((anchor, base))
        for i in range(chain_length - 1):
            edges.append((base + i, base + i + 1))
    # Cross-references (idrefs), forward in document order.  They emanate
    # from container (trunk/internal) elements — which the tree matching
    # already covers, so idrefs do not inflate the vertex cover — and in
    # the caterpillar layout they stay *inside their own run*, shortening
    # within-document distances without stitching runs into artificial
    # long paths.
    extra = max(0, m - len(edges))
    hub_edges = int(hub_fraction * extra)
    for _ in range(hub_edges):
        edges.append((0, int(rng.integers(1, tree_size))))
    refs = extra - hub_edges
    if trunk_depth is None:
        internal_count = max(1, (tree_size - 2) // branching)
        heads = rng.integers(0, internal_count, size=refs)
        for u in heads:
            v = int(rng.integers(int(u) + 1, tree_size))
            edges.append((int(u), v))
    elif trunks:
        # Short-range references: at most two blocks ahead, clamped to the
        # run tail, so documents keep their published depth profile.
        block = branching + 1
        span = 3 * block
        made = 0
        attempts = 0
        while made < refs and attempts < 20 * refs:
            attempts += 1
            u = trunks[int(rng.integers(0, len(trunks)))]
            hi = min(run_end_of.get(u, trunks[-1]), u + span)
            if hi > u:
                v = int(rng.integers(u + 1, hi + 1))
                edges.append((u, v))
                made += 1
    return DiGraph(n, edges)


def semantic_graph(
    n: int,
    m: int,
    *,
    levels: int = 10,
    top_fraction: float = 0.05,
    hub_skew: float = 0.0,
    spine_length: int = 0,
    seed: int = 0,
) -> DiGraph:
    """Multi-parent ontology DAG (GO, YAGO).

    Vertices are split into ``levels`` strata of geometrically decreasing
    size (instances at the bottom, broad categories at the top); every
    edge points from a stratum to the one above, targeting parents with a
    Zipf-like skew (``hub_skew = 0`` is uniform — GO's flat degrees;
    large skew concentrates edges on a few categories — YAGO's hubs).
    ``spine_length`` adds one thin chain at the top to realize diameters
    beyond the level count.
    """
    if n < levels + spine_length + 1:
        raise ValueError(f"n={n} too small for {levels} levels")
    rng = np.random.default_rng(seed)
    sizes = np.array(
        [
            top_fraction * n * (1 / top_fraction) ** (i / max(1, levels - 1))
            for i in range(levels)
        ]
    )
    sizes = np.maximum(1, (sizes / sizes.sum() * (n - spine_length))).astype(np.int64)
    while sizes.sum() > n - spine_length:
        sizes[np.argmax(sizes)] -= 1
    while sizes.sum() < n - spine_length:
        sizes[np.argmax(sizes)] += 1
    order = np.argsort(-sizes)
    sizes = sizes[order]  # level 0 = bottom (largest) ... levels-1 = top
    bounds = np.concatenate(([0], np.cumsum(sizes)))

    def pick_parent(lo: int, hi: int, count: int) -> np.ndarray:
        width = hi - lo
        if hub_skew <= 0:
            return lo + rng.integers(0, width, size=count)
        weights = 1.0 / np.arange(1, width + 1) ** hub_skew
        weights /= weights.sum()
        return lo + rng.choice(width, size=count, p=weights)

    edges: list[tuple[int, int]] = []
    # Mandatory parent per vertex keeps the DAG connected level-to-level.
    mandatory = int(bounds[-1] - bounds[1])
    extra = max(0, m - mandatory - spine_length)
    level_weights = np.asarray(sizes[:-1], dtype=np.float64)
    level_extra = (level_weights / level_weights.sum() * extra).astype(np.int64)
    for lvl in range(levels - 1):
        lo, hi = int(bounds[lvl]), int(bounds[lvl + 1])
        nlo, nhi = int(bounds[lvl + 1]), int(bounds[lvl + 2])
        for u in range(lo, hi):
            edges.append((u, int(pick_parent(nlo, nhi, 1)[0])))
        count = int(level_extra[lvl])
        if count:
            heads = rng.integers(lo, hi, size=count)
            tails = pick_parent(nlo, nhi, count)
            edges.extend((int(u), int(v)) for u, v in zip(heads, tails))
    # Optional spine: a thin chain hanging off the top stratum.
    if spine_length:
        spine = list(range(int(bounds[-1]), int(bounds[-1]) + spine_length))
        top_anchor = int(bounds[-1]) - 1
        edges.append((spine[0], top_anchor))
        for a, b in zip(spine, spine[1:]):
            edges.append((b, a))
    return DiGraph(n, edges)
