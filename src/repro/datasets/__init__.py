"""Calibrated synthetic stand-ins for the paper's 15 datasets + published numbers."""

from repro.datasets import paper_tables
from repro.datasets.registry import DATASET_NAMES, DATASETS, DatasetSpec, load, spec

__all__ = ["DATASETS", "DATASET_NAMES", "DatasetSpec", "load", "spec", "paper_tables"]
