"""The paper's published evaluation numbers (Tables 3–5, 7–9).

Stored verbatim so the benchmark harness can print paper-vs-measured
columns and EXPERIMENTS.md can record the comparison.  ``None`` encodes
the paper's "-" entries (3-hop failing to build within time/memory).

All times are in **milliseconds** as published (the paper's hardware: one
core of an Intel Q9400 @ 2.66 GHz, C++); sizes are in **MB**.  Absolute
magnitudes are not comparable to this pure-Python reproduction — the
harness compares *ratios and rankings*.
"""

from __future__ import annotations

__all__ = [
    "CONSTRUCTION_MS",
    "INDEX_SIZE_MB",
    "QUERY_MS_1M",
    "KREACH_QUERY_MS_1M",
    "MU_BFS_MS_1M",
    "MU_DIST_MS_1M",
    "CASE_PERCENTAGES",
    "COVER_SIZES",
    "RANKINGS",
]

#: Table 3 — index construction time (ms): {dataset: {index: ms}}.
CONSTRUCTION_MS: dict[str, dict[str, float | None]] = {
    "AgroCyc": {"n-reach": 27.71, "PTree": 129.14, "3-hop": None, "GRAIL": 10.86, "PWAH": 4.40},
    "aMaze": {"n-reach": 18.09, "PTree": 476.69, "3-hop": 959821, "GRAIL": 2.92, "PWAH": 7.01},
    "Anthra": {"n-reach": 24.08, "PTree": 123.43, "3-hop": None, "GRAIL": 10.74, "PWAH": 3.90},
    "ArXiv": {"n-reach": 352.51, "PTree": 6319.66, "3-hop": None, "GRAIL": 10.58, "PWAH": 111.00},
    "CiteSeer": {"n-reach": 245.46, "PTree": 403.35, "3-hop": 44328, "GRAIL": 16.04, "PWAH": 93.26},
    "Ecoo": {"n-reach": 26.70, "PTree": 129.74, "3-hop": None, "GRAIL": 10.88, "PWAH": 4.47},
    "GO": {"n-reach": 106.84, "PTree": 110.83, "3-hop": 11914, "GRAIL": 6.50, "PWAH": 19.57},
    "Human": {"n-reach": 67.78, "PTree": 397.05, "3-hop": None, "GRAIL": 41.45, "PWAH": 6.71},
    "Kegg": {"n-reach": 21.01, "PTree": 537.17, "3-hop": None, "GRAIL": 2.92, "PWAH": 6.77},
    "Mtbrv": {"n-reach": 20.24, "PTree": 98.13, "3-hop": None, "GRAIL": 7.92, "PWAH": 3.86},
    "Nasa": {"n-reach": 57.93, "PTree": 62.22, "3-hop": 13739, "GRAIL": 4.51, "PWAH": 10.54},
    "PubMed": {"n-reach": 166.23, "PTree": 437.16, "3-hop": 73243, "GRAIL": 11.63, "PWAH": 70.63},
    "Vchocyc": {"n-reach": 19.77, "PTree": 97.34, "3-hop": None, "GRAIL": 7.60, "PWAH": 4.00},
    "Xmark": {"n-reach": 44.50, "PTree": 136.87, "3-hop": 68219, "GRAIL": 4.96, "PWAH": 11.53},
    "YAGO": {"n-reach": 32.47, "PTree": 282.45, "3-hop": 5006, "GRAIL": 9.47, "PWAH": 36.49},
}

#: Table 4 — index size (MB): {dataset: {index: MB}}.
INDEX_SIZE_MB: dict[str, dict[str, float | None]] = {
    "AgroCyc": {"n-reach": 0.39, "PTree": 0.29, "3-hop": None, "GRAIL": 0.19, "PWAH": 0.44},
    "aMaze": {"n-reach": 0.13, "PTree": 0.09, "3-hop": 5.41, "GRAIL": 0.06, "PWAH": 0.22},
    "Anthra": {"n-reach": 0.36, "PTree": 0.29, "3-hop": None, "GRAIL": 0.19, "PWAH": 0.42},
    "ArXiv": {"n-reach": 1.61, "PTree": 0.38, "3-hop": None, "GRAIL": 0.09, "PWAH": 2.46},
    "CiteSeer": {"n-reach": 3.17, "PTree": 0.45, "3-hop": 0.20, "GRAIL": 0.16, "PWAH": 3.08},
    "Ecoo": {"n-reach": 0.40, "PTree": 0.29, "3-hop": None, "GRAIL": 0.19, "PWAH": 0.43},
    "GO": {"n-reach": 1.28, "PTree": 0.20, "3-hop": 0.11, "GRAIL": 0.10, "PWAH": 0.63},
    "Human": {"n-reach": 1.17, "PTree": 0.89, "3-hop": None, "GRAIL": 0.59, "PWAH": 1.25},
    "Kegg": {"n-reach": 0.16, "PTree": 0.08, "3-hop": None, "GRAIL": 0.06, "PWAH": 0.23},
    "Mtbrv": {"n-reach": 0.29, "PTree": 0.22, "3-hop": None, "GRAIL": 0.15, "PWAH": 0.34},
    "Nasa": {"n-reach": 0.66, "PTree": 0.13, "3-hop": 0.06, "GRAIL": 0.09, "PWAH": 0.40},
    "PubMed": {"n-reach": 2.03, "PTree": 0.50, "3-hop": 0.29, "GRAIL": 0.14, "PWAH": 2.80},
    "Vchocyc": {"n-reach": 0.28, "PTree": 0.22, "3-hop": None, "GRAIL": 0.14, "PWAH": 0.33},
    "Xmark": {"n-reach": 0.49, "PTree": 0.13, "3-hop": 0.43, "GRAIL": 0.09, "PWAH": 0.45},
    "YAGO": {"n-reach": 0.48, "PTree": 0.22, "3-hop": 0.09, "GRAIL": 0.10, "PWAH": 0.96},
}

#: Table 5 — total time for 1M random reachability queries (ms).
QUERY_MS_1M: dict[str, dict[str, float | None]] = {
    "AgroCyc": {"n-reach": 5.50, "PTree": 17.74, "3-hop": None, "GRAIL": 135.14, "PWAH": 15.68},
    "aMaze": {"n-reach": 14.39, "PTree": 20.68, "3-hop": 28404.20, "GRAIL": 2982.61, "PWAH": 39.71},
    "Anthra": {"n-reach": 5.39, "PTree": 17.66, "3-hop": None, "GRAIL": 121.12, "PWAH": 14.92},
    "ArXiv": {"n-reach": 87.86, "PTree": 75.28, "3-hop": None, "GRAIL": 2032.96, "PWAH": 311.55},
    "CiteSeer": {"n-reach": 115.64, "PTree": 58.28, "3-hop": 1225.25, "GRAIL": 268.33, "PWAH": 339.23},
    "Ecoo": {"n-reach": 5.47, "PTree": 17.73, "3-hop": None, "GRAIL": 154.41, "PWAH": 15.77},
    "GO": {"n-reach": 27.00, "PTree": 35.77, "3-hop": 455.83, "GRAIL": 113.46, "PWAH": 59.10},
    "Human": {"n-reach": 5.95, "PTree": 28.48, "3-hop": None, "GRAIL": 300.23, "PWAH": 13.35},
    "Kegg": {"n-reach": 16.27, "PTree": 22.51, "3-hop": None, "GRAIL": 4030.89, "PWAH": 44.52},
    "Mtbrv": {"n-reach": 5.47, "PTree": 17.48, "3-hop": None, "GRAIL": 104.15, "PWAH": 16.12},
    "Nasa": {"n-reach": 18.26, "PTree": 23.62, "3-hop": 359.16, "GRAIL": 64.27, "PWAH": 43.94},
    "PubMed": {"n-reach": 39.31, "PTree": 103.44, "3-hop": 1198.70, "GRAIL": 239.40, "PWAH": 368.44},
    "Vchocyc": {"n-reach": 5.49, "PTree": 17.72, "3-hop": None, "GRAIL": 103.23, "PWAH": 16.13},
    "Xmark": {"n-reach": 14.49, "PTree": 22.02, "3-hop": 491.44, "GRAIL": 245.11, "PWAH": 69.78},
    "YAGO": {"n-reach": 106.25, "PTree": 42.32, "3-hop": 705.09, "GRAIL": 116.43, "PWAH": 137.09},
}

#: Table 7 — k-reach total query time (ms, 1M queries) for k = 2,4,6,µ,n.
KREACH_QUERY_MS_1M: dict[str, dict[str, float]] = {
    "AgroCyc": {"2": 5.47, "4": 5.49, "6": 5.47, "mu": 5.56, "n": 5.50},
    "aMaze": {"2": 14.38, "4": 14.42, "6": 14.40, "mu": 14.39, "n": 14.39},
    "Anthra": {"2": 5.43, "4": 5.36, "6": 5.36, "mu": 5.33, "n": 5.39},
    "ArXiv": {"2": 90.08, "4": 84.64, "6": 87.66, "mu": 88.84, "n": 87.86},
    "CiteSeer": {"2": 116.44, "4": 117.08, "6": 107.72, "mu": 116.50, "n": 115.64},
    "Ecoo": {"2": 5.48, "4": 5.47, "6": 5.50, "mu": 5.43, "n": 5.47},
    "GO": {"2": 26.99, "4": 27.00, "6": 26.97, "mu": 27.00, "n": 27.00},
    "Human": {"2": 5.98, "4": 6.02, "6": 6.09, "mu": 6.03, "n": 5.95},
    "Kegg": {"2": 16.16, "4": 16.32, "6": 16.22, "mu": 16.12, "n": 16.27},
    "Mtbrv": {"2": 5.49, "4": 5.48, "6": 5.47, "mu": 5.46, "n": 5.46},
    "Nasa": {"2": 18.26, "4": 18.30, "6": 18.24, "mu": 18.23, "n": 18.26},
    "PubMed": {"2": 39.25, "4": 39.37, "6": 39.52, "mu": 39.36, "n": 39.31},
    "Vchocyc": {"2": 5.49, "4": 5.48, "6": 5.50, "mu": 5.46, "n": 5.49},
    "Xmark": {"2": 14.38, "4": 14.41, "6": 14.46, "mu": 14.42, "n": 14.49},
    "YAGO": {"2": 113.01, "4": 106.41, "6": 105.85, "mu": 101.67, "n": 106.25},
}

#: Table 7 — µ-BFS total query time (ms, 1M queries).
MU_BFS_MS_1M: dict[str, float] = {
    "AgroCyc": 6666.61, "aMaze": 9145.64, "Anthra": 6662.71, "ArXiv": 17645.10,
    "CiteSeer": 7016.10, "Ecoo": 6667.16, "GO": 6794.95, "Human": 6756.70,
    "Kegg": 9525.80, "Mtbrv": 6656.73, "Nasa": 6852.91, "PubMed": 7301.46,
    "Vchocyc": 6678.73, "Xmark": 7145.60, "YAGO": 6723.07,
}

#: Table 7 — µ-dist total query time (ms, 1M queries).
MU_DIST_MS_1M: dict[str, float] = {
    "AgroCyc": 81.32, "aMaze": 193.71, "Anthra": 73.47, "ArXiv": 30391.09,
    "CiteSeer": 1392.21, "Ecoo": 78.18, "GO": 673.48, "Human": 45.42,
    "Kegg": 206.25, "Mtbrv": 90.73, "Nasa": 554.70, "PubMed": 1079.70,
    "Vchocyc": 90.62, "Xmark": 132.90, "YAGO": 586.10,
}

#: Table 8 — percentage of 1M random queries per Algorithm-2 case.
CASE_PERCENTAGES: dict[str, tuple[float, float, float, float]] = {
    "AgroCyc": (0.10, 2.98, 2.96, 93.97),
    "aMaze": (1.65, 11.19, 11.23, 75.93),
    "Anthra": (0.08, 2.73, 2.79, 94.40),
    "ArXiv": (41.94, 22.79, 22.88, 12.38),
    "CiteSeer": (19.15, 24.62, 24.62, 31.61),
    "Ecoo": (0.10, 3.02, 3.05, 93.83),
    "GO": (19.18, 24.63, 24.66, 31.53),
    "Human": (0.01, 0.94, 0.96, 98.09),
    "Kegg": (2.92, 14.17, 14.21, 68.71),
    "Mtbrv": (0.15, 3.66, 3.67, 92.52),
    "Nasa": (10.80, 22.12, 22.03, 45.05),
    "PubMed": (15.12, 23.77, 23.71, 37.40),
    "Vchocyc": (0.15, 3.65, 3.68, 92.53),
    "Xmark": (4.06, 16.08, 16.10, 63.75),
    "YAGO": (1.55, 10.96, 10.89, 76.60),
}

#: Table 9 — vertex-cover vs 2-hop-cover sizes and query times (ms, 1M).
#: {dataset: (|VC|, |2-hop VC|, µ-reach ms, (2,µ)-reach ms)}
COVER_SIZES: dict[str, tuple[int, int, float, float]] = {
    "AgroCyc": (389, 298, 5.56, 21.55),
    "aMaze": (477, 272, 14.39, 38.70),
    "Anthra": (357, 278, 5.33, 21.32),
    "Ecoo": (396, 302, 5.43, 21.56),
    "Kegg": (618, 343, 16.12, 41.55),
    "Mtbrv": (367, 287, 5.46, 21.66),
    "Nasa": (1841, 1223, 18.23, 39.48),
    "Vchocyc": (362, 277, 5.46, 21.71),
}

#: Table 6 — overall 1-to-5 rankings (1 best).
RANKINGS: dict[str, dict[str, int]] = {
    "indexing_time": {"n-reach": 3, "PTree": 4, "3-hop": 5, "GRAIL": 1, "PWAH": 2},
    "index_size": {"n-reach": 3, "PTree": 2, "3-hop": 5, "GRAIL": 1, "PWAH": 4},
    "query_time": {"n-reach": 1, "PTree": 2, "3-hop": 5, "GRAIL": 4, "PWAH": 3},
}
