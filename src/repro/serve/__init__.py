"""Network-facing serving layer (asyncio front door over the pools)."""

from repro.serve.frontdoor import (
    FrontDoor,
    FrontDoorOverloaded,
    http_request,
)

__all__ = ["FrontDoor", "FrontDoorOverloaded", "http_request"]
