"""An asyncio batching front door for the k-reach serving pools.

Many concurrent clients each hold a handful of ``(s, t)`` pairs; the
pools underneath (:class:`~repro.core.sharded.ShardedQueryServer`,
:class:`~repro.core.serve.QueryServer`, or
:class:`~repro.core.serve.ThreadQueryServer`) are happiest with large
batches.  :class:`FrontDoor` bridges the two:

* **Micro-batching.**  Requests land on an asyncio queue; a batcher
  task opens a window (``window_ms``) on the first arrival and flushes
  when the window closes or the accumulated batch reaches
  ``max_batch`` pairs, whichever comes first.  The flush runs
  ``submit``/``collect`` in a worker thread so the event loop keeps
  accepting clients while the pools compute.
* **Hot-pair answer cache.**  An LRU of recent verdicts
  (``cache_pairs`` entries) short-circuits repeat queries — social
  workloads hit the same celebrity pairs constantly.  The cache is
  generation-stamped: :meth:`FrontDoor.invalidate_cache` bumps the
  generation (call it after graph churn), and in-flight requests from
  an old generation never write stale verdicts back.
* **Admission control.**  When the uncollected backlog exceeds
  ``max_backlog`` pairs, new work is refused with
  :class:`FrontDoorOverloaded` (HTTP 503 on the wire) instead of
  growing the queue without bound.
* **Observability.**  ``GET /healthz`` reports pool health;
  ``GET /metrics`` returns structured counters — qps, batch occupancy,
  cache hit rate, p50/p99 latency, admission rejects, and the
  per-shard pool stats (including per-worker restart counts) straight
  from ``server.stats()``.

The HTTP surface is a deliberately minimal HTTP/1.1 implementation on
``asyncio.start_server`` — three JSON routes, connection-close
semantics — so the serving tier stays dependency-free.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import OrderedDict, deque

import numpy as np

__all__ = ["FrontDoor", "FrontDoorOverloaded", "http_request"]


class FrontDoorOverloaded(RuntimeError):
    """Admission control refused a request: backlog over ``max_backlog``."""

    def __init__(self, backlog: int, limit: int) -> None:
        super().__init__(
            f"front door overloaded: {backlog} pairs queued (limit {limit})"
        )
        self.backlog = backlog
        self.limit = limit


class _Request:
    """One client's uncached pairs awaiting a batched flush."""

    __slots__ = ("pairs", "future", "born", "generation")

    def __init__(self, pairs, future, generation: int) -> None:
        self.pairs = pairs
        self.future = future
        self.born = time.monotonic()
        self.generation = generation


class FrontDoor:
    """Aggregate concurrent async clients into batched pool queries.

    Parameters
    ----------
    server:
        Any pool with ``query_batch(pairs, engine=...)`` and
        ``stats()`` — sharded or single.
    window_ms:
        Micro-batch window: how long the batcher waits after the first
        request for more riders before flushing.
    max_batch:
        Flush immediately once this many pairs have accumulated.
    cache_pairs:
        LRU answer-cache capacity in pairs (0 disables caching).
    max_backlog:
        Admission-control bound on enqueued-but-unflushed pairs.
    engine:
        Engine override forwarded to the pool.
    """

    def __init__(
        self,
        server,
        *,
        window_ms: float = 2.0,
        max_batch: int = 8192,
        cache_pairs: int = 65536,
        max_backlog: int = 65536,
        engine: str | None = None,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._server = server
        self._window = max(0.0, window_ms) / 1000.0
        self._max_batch = int(max_batch)
        self._cache_cap = int(cache_pairs)
        self._max_backlog = int(max_backlog)
        self._engine = engine
        self._queue: asyncio.Queue = asyncio.Queue()
        self._batcher_task: asyncio.Task | None = None
        self._http_server: asyncio.AbstractServer | None = None
        self._closed = False
        self._born = time.monotonic()

        self._cache: OrderedDict[tuple[int, int], bool] = OrderedDict()
        self._cache_generation = 0
        self._backlog_pairs = 0

        # Counters and reservoirs for /metrics.
        self.requests = 0
        self.pairs_served = 0
        self.batches = 0
        self.batched_pairs = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.admission_rejects = 0
        self._latencies: deque[float] = deque(maxlen=4096)  # seconds
        self._qps_window: deque[tuple[float, int]] = deque()

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> "FrontDoor":
        """Spawn the batcher task (idempotent)."""
        if self._batcher_task is None:
            self._batcher_task = asyncio.ensure_future(self._batcher())
        return self

    async def start_http(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Start the HTTP listener; returns the bound ``(host, port)``."""
        await self.start()
        self._http_server = await asyncio.start_server(
            self._handle_connection, host, port
        )
        bound = self._http_server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def close(self) -> None:
        """Graceful shutdown: drain queued requests, stop the listener.

        The underlying pool is **not** closed — the caller owns it.
        """
        if self._closed:
            return
        self._closed = True
        if self._http_server is not None:
            self._http_server.close()
            await self._http_server.wait_closed()
        if self._batcher_task is not None:
            await self._queue.put(None)  # sentinel: flush then exit
            await self._batcher_task
            self._batcher_task = None

    async def __aenter__(self) -> "FrontDoor":
        return await self.start()

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # ------------------------------------------------------------- serving

    async def query(self, pairs) -> list[bool]:
        """Answer a client's pairs (cache first, batched pool second)."""
        if self._closed:
            raise RuntimeError("front door is closed")
        arr = np.asarray(pairs, dtype=np.int64).reshape(-1, 2)
        self.requests += 1
        born = time.monotonic()
        out = np.zeros(len(arr), dtype=bool)
        missing: list[int] = []
        if self._cache_cap > 0:
            for i, (s, t) in enumerate(arr.tolist()):
                hit = self._cache.get((s, t))
                if hit is None:
                    missing.append(i)
                else:
                    self._cache.move_to_end((s, t))
                    out[i] = hit
            self.cache_hits += len(arr) - len(missing)
            self.cache_misses += len(missing)
        else:
            missing = list(range(len(arr)))
            self.cache_misses += len(arr)

        if missing:
            if self._backlog_pairs + len(missing) > self._max_backlog:
                self.admission_rejects += 1
                raise FrontDoorOverloaded(self._backlog_pairs, self._max_backlog)
            await self.start()
            request = _Request(
                arr[missing],
                asyncio.get_running_loop().create_future(),
                self._cache_generation,
            )
            self._backlog_pairs += len(missing)
            await self._queue.put(request)
            verdicts = await request.future
            out[missing] = verdicts
            if self._cache_cap > 0 and request.generation == self._cache_generation:
                for (s, t), v in zip(arr[missing].tolist(), verdicts.tolist()):
                    self._cache[(s, t)] = v
                    self._cache.move_to_end((s, t))
                while len(self._cache) > self._cache_cap:
                    self._cache.popitem(last=False)

        now = time.monotonic()
        self._latencies.append(now - born)
        self.pairs_served += len(arr)
        self._qps_window.append((now, len(arr)))
        while self._qps_window and now - self._qps_window[0][0] > 10.0:
            self._qps_window.popleft()
        return out.tolist()

    def invalidate_cache(self) -> None:
        """Drop every cached verdict (call after graph churn).

        Requests already in flight carry the old generation and will
        not re-populate the cache with pre-churn answers.
        """
        self._cache_generation += 1
        self._cache.clear()

    # ------------------------------------------------------------ batching

    async def _batcher(self) -> None:
        loop = asyncio.get_running_loop()
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is None:
                break
            batch = [first]
            total = len(first.pairs)
            flush_at = loop.time() + self._window
            while total < self._max_batch:
                remaining = flush_at - loop.time()
                if remaining <= 0:
                    break
                try:
                    item = await asyncio.wait_for(
                        self._queue.get(), timeout=remaining
                    )
                except asyncio.TimeoutError:
                    break
                if item is None:
                    stopping = True
                    break
                batch.append(item)
                total += len(item.pairs)
            await self._flush(batch, total)

    async def _flush(self, batch: list[_Request], total: int) -> None:
        pairs = np.concatenate([req.pairs for req in batch])
        self.batches += 1
        self.batched_pairs += total
        try:
            verdicts = await asyncio.to_thread(
                self._server.query_batch, pairs, engine=self._engine
            )
        except BaseException as exc:  # propagate to every rider
            for req in batch:
                if not req.future.done():
                    req.future.set_exception(
                        exc if isinstance(exc, Exception) else RuntimeError(str(exc))
                    )
            self._backlog_pairs -= total
            if not isinstance(exc, Exception):
                raise
            return
        offset = 0
        for req in batch:
            span = verdicts[offset : offset + len(req.pairs)]
            offset += len(req.pairs)
            if not req.future.done():
                req.future.set_result(span)
        self._backlog_pairs -= total

    # ------------------------------------------------------------- metrics

    def metrics(self) -> dict:
        """Structured serving metrics plus the pool's own ``stats()``."""
        latencies = np.array(self._latencies, dtype=np.float64)
        now = time.monotonic()
        window = [n for ts, n in self._qps_window if now - ts <= 10.0]
        span = 10.0 if len(self._qps_window) else 1.0
        total_cache = self.cache_hits + self.cache_misses
        return {
            "uptime_s": round(now - self._born, 3),
            "requests": self.requests,
            "pairs_served": self.pairs_served,
            "qps": round(sum(window) / span, 2),
            "batches": self.batches,
            "batch_occupancy": round(
                self.batched_pairs / (self.batches * self._max_batch), 4
            )
            if self.batches
            else 0.0,
            "mean_batch_pairs": round(self.batched_pairs / self.batches, 1)
            if self.batches
            else 0.0,
            "backlog_pairs": self._backlog_pairs,
            "admission_rejects": self.admission_rejects,
            "cache": {
                "entries": len(self._cache),
                "capacity": self._cache_cap,
                "hits": self.cache_hits,
                "misses": self.cache_misses,
                "hit_rate": round(self.cache_hits / total_cache, 4)
                if total_cache
                else 0.0,
                "generation": self._cache_generation,
            },
            "latency_ms": {
                "p50": round(float(np.percentile(latencies, 50)) * 1000, 3)
                if len(latencies)
                else None,
                "p99": round(float(np.percentile(latencies, 99)) * 1000, 3)
                if len(latencies)
                else None,
            },
            "server": self._server.stats(),
        }

    def healthz(self) -> dict:
        health = self._server.stats().get("health", "ok")
        return {
            "status": health,
            "backlog_pairs": self._backlog_pairs,
            "uptime_s": round(time.monotonic() - self._born, 3),
        }

    # ----------------------------------------------------------------- HTTP

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, path = parts[0].upper(), parts[1]
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            body = await reader.readexactly(content_length) if content_length else b""
            status, payload = await self._dispatch(method, path, body)
        except (asyncio.IncompleteReadError, ConnectionError, ValueError):
            return
        except Exception as exc:  # never kill the listener on one request
            status, payload = 500, {"error": str(exc)}
        try:
            blob = json.dumps(payload).encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      503: "Service Unavailable", 500: "Internal Server Error"}
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason.get(status, 'OK')}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(blob)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + blob
            )
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _dispatch(self, method: str, path: str, body: bytes):
        if method == "GET" and path == "/healthz":
            report = self.healthz()
            return (200 if report["status"] == "ok" else 503), report
        if method == "GET" and path == "/metrics":
            return 200, self.metrics()
        if method == "POST" and path == "/query":
            try:
                pairs = json.loads(body.decode("utf-8"))["pairs"]
                if not isinstance(pairs, list):
                    raise ValueError("pairs must be a list")
            except (ValueError, KeyError, UnicodeDecodeError) as exc:
                return 400, {"error": f"bad request: {exc}"}
            try:
                verdicts = await self.query(pairs) if pairs else []
            except FrontDoorOverloaded as exc:
                return 503, {"error": str(exc)}
            except (ValueError, TypeError) as exc:
                return 400, {"error": str(exc)}
            return 200, {"verdicts": verdicts}
        return 404, {"error": f"no route for {method} {path}"}


async def http_request(
    host: str, port: int, method: str, path: str, payload: dict | None = None
) -> tuple[int, dict]:
    """Tiny JSON-over-HTTP client for tests, examples, and CI smoke.

    Returns ``(status_code, decoded_json_body)``.
    """
    reader, writer = await asyncio.open_connection(host, port)
    try:
        body = b"" if payload is None else json.dumps(payload).encode("utf-8")
        writer.write(
            (
                f"{method} {path} HTTP/1.1\r\n"
                f"Host: {host}:{port}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("latin-1")
            + body
        )
        await writer.drain()
        raw = await reader.read()
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass
    head, _, rest = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, json.loads(rest.decode("utf-8")) if rest else {}
