"""Process-wide failpoint registry for fault-injection testing.

Durable formats and supervised serving are only trustworthy if their
failure paths actually run.  This module gives the persistence layer
(:mod:`repro.core.serialize`) and the serving tier
(:mod:`repro.core.serve`) named **injection sites** — places where a
chaos test can make the process crash mid-write, a worker hang
mid-shard, or a kernel crawl — without any test-only branches living in
the production code itself.

Sites (see :data:`SITES` for the authoritative list):

``serialize.v4_write_mid``
    Fires halfway through the section payload of a
    :func:`~repro.core.serialize.save_mmap` write, after the bytes so
    far are flushed.  With mode ``exit`` this leaves a torn temp file on
    disk and kills the process — the atomic-rename save must leave the
    previous snapshot untouched.
``serialize.v3_log_tail``
    Fires inside :meth:`~repro.core.serialize.OpLog.append` after only
    part of a framed record reached the file — a torn tail the next
    open must recover from by truncation, never by replaying garbage.
``serve.worker_hang``
    Fires in a query-server worker between receiving a shard and
    computing it; mode ``hang`` parks the worker so the parent's
    watchdog (or a ``collect`` timeout) has something real to detect.
``serve.worker_exit``
    Same place, but the worker dies instantly (``os._exit``), exactly
    like an OOM kill — supervision must re-dispatch its shards.
``batch.kernel_slow``
    Fires at the head of the hot batch kernels
    (:meth:`~repro.core.batch.KeyedRowStore.lookup`,
    :func:`~repro.core.batch.case4_bitset_join`); mode ``sleep`` delays
    them, turning fast tests into slow-consumer/deadline tests.
``ingest.spill_write``
    Fires in :func:`~repro.graph.ingest.ingest_edge_list` immediately
    before a sorted run buffer is written to its spill file — the
    external sort must leave no orphan run files behind when the write
    raises or the process dies mid-spill.

Arming
------
Two ways, composable:

* **Environment** — ``KREACH_FAULTS=site:mode[:prob][,site:mode[:prob]...]``
  parsed at import time, so worker subprocesses (fork *and* spawn) come
  up armed identically to the parent::

      KREACH_FAULTS="serve.worker_exit:exit:0.2" pytest tests/core/test_serve.py

* **Context manager** — :func:`inject` arms a site for a ``with`` block
  and restores the previous state on exit::

      with faults.inject("serialize.v4_write_mid", "error"):
          save_mmap(index, path)   # raises FaultInjected mid-write

Modes: ``error`` raises :class:`FaultInjected`; ``exit`` calls
``os._exit`` (no cleanup, no atexit — the closest a test can get to
``kill -9`` from inside); ``hang`` sleeps for ``seconds`` (default 1
hour); ``sleep`` sleeps briefly (default 5 ms) and continues.

``max_fires`` bounds how many times a site triggers.  With ``token=``
(a filesystem path prefix) the bound is **cross-process**: each fire
atomically claims ``{token}.{i}`` via ``O_CREAT | O_EXCL``, so "exactly
one worker in the pool dies, whichever gets there first — and its
respawned replacement does not" is expressible even though every forked
child inherits the armed registry.

Cost when disarmed
------------------
Call sites guard every :func:`fire` with ``if faults.ENABLED:`` —
:data:`ENABLED` is a module-level boolean kept in sync with the
registry, so an unarmed process pays one attribute load and a falsy
check per site, nothing else.  No site allocates, formats, or looks up
anything until something is actually armed.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager

__all__ = [
    "SITES",
    "MODES",
    "ENABLED",
    "FaultInjected",
    "arm",
    "disarm",
    "reset",
    "armed",
    "fire",
    "inject",
    "arm_from_env",
    "describe",
]

#: Registered injection sites — arming an unknown name is an error so a
#: typo in KREACH_FAULTS fails loudly instead of silently never firing.
SITES = {
    "serialize.v4_write_mid": "mid-payload of a save_mmap section write",
    "serialize.v3_log_tail": "after a partial OpLog record hit the file",
    "serve.worker_hang": "query-server worker, before computing a shard",
    "serve.worker_exit": "query-server worker, before computing a shard",
    "batch.kernel_slow": "head of the hot batch kernels",
    "ingest.spill_write": "before an external-sort run spills to disk",
}

MODES = ("error", "exit", "hang", "sleep")

#: Exit code used by mode ``exit`` — distinctive, so crash-recovery
#: tests can tell an injected crash from an ordinary failure.
EXIT_CODE = 86

#: Default sleep lengths per mode (seconds).
_HANG_SECONDS = 3600.0
_SLEEP_SECONDS = 0.005


class FaultInjected(RuntimeError):
    """Raised by a failpoint armed with mode ``error``."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected fault at failpoint {site!r}")
        self.site = site


class _Fault:
    __slots__ = ("site", "mode", "prob", "seconds", "max_fires", "token", "fires")

    def __init__(self, site, mode, prob, seconds, max_fires, token):
        self.site = site
        self.mode = mode
        self.prob = prob
        self.seconds = seconds
        self.max_fires = max_fires
        self.token = token
        self.fires = 0


_armed: dict[str, _Fault] = {}
_rng = random.Random()

#: True iff at least one site is armed.  Call sites check this before
#: calling :func:`fire` so the disarmed cost is one boolean test.
ENABLED = False


def _refresh() -> None:
    global ENABLED
    ENABLED = bool(_armed)


def _validate(site: str, mode: str, prob: float) -> None:
    if site not in SITES:
        raise ValueError(
            f"unknown failpoint {site!r}; known sites: {', '.join(sorted(SITES))}"
        )
    if mode not in MODES:
        raise ValueError(f"unknown fault mode {mode!r}; modes: {MODES}")
    if not 0.0 <= prob <= 1.0:
        raise ValueError(f"fault probability must be in [0, 1], got {prob}")


def arm(
    site: str,
    mode: str,
    *,
    prob: float = 1.0,
    seconds: float | None = None,
    max_fires: int | None = None,
    token: str | None = None,
) -> None:
    """Arm ``site`` with ``mode``; replaces any previous arming."""
    _validate(site, mode, prob)
    if token is not None and max_fires is None:
        max_fires = 1
    _armed[site] = _Fault(site, mode, float(prob), seconds, max_fires, token)
    _refresh()


def disarm(site: str | None = None) -> None:
    """Disarm one site, or every site when ``site`` is ``None``."""
    if site is None:
        _armed.clear()
    else:
        _armed.pop(site, None)
    _refresh()


def reset() -> None:
    """Disarm everything (alias kept for test teardown readability)."""
    disarm(None)


def armed(site: str) -> bool:
    """Whether ``site`` is currently armed (fires may still be spent)."""
    return site in _armed


def _claim_token(fault: _Fault) -> bool:
    """Atomically claim one cross-process fire slot; False when spent."""
    for i in range(fault.max_fires or 1):
        try:
            fd = os.open(
                f"{fault.token}.{i}",
                os.O_CREAT | os.O_EXCL | os.O_WRONLY,
            )
        except FileExistsError:
            continue
        except OSError:
            return False  # unreachable token dir: treat as spent
        os.close(fd)
        return True
    return False


def fire(site: str) -> bool:
    """Trigger ``site`` if armed; returns whether the fault fired.

    Mode ``error`` raises and mode ``exit`` never returns; ``hang`` and
    ``sleep`` return ``True`` after their delay so torn-write sites can
    resume and finish the operation when the fault chose not to kill it.
    """
    fault = _armed.get(site)
    if fault is None:
        return False
    if fault.prob < 1.0 and _rng.random() >= fault.prob:
        return False
    if fault.token is not None:
        if not _claim_token(fault):
            return False
    elif fault.max_fires is not None and fault.fires >= fault.max_fires:
        return False
    fault.fires += 1
    if fault.mode == "error":
        raise FaultInjected(site)
    if fault.mode == "exit":
        os._exit(EXIT_CODE)
    if fault.mode == "hang":
        time.sleep(_HANG_SECONDS if fault.seconds is None else fault.seconds)
    elif fault.mode == "sleep":
        time.sleep(_SLEEP_SECONDS if fault.seconds is None else fault.seconds)
    return True


@contextmanager
def inject(
    site: str,
    mode: str,
    *,
    prob: float = 1.0,
    seconds: float | None = None,
    max_fires: int | None = None,
    token: str | None = None,
):
    """Arm ``site`` for the duration of a ``with`` block.

    Restores whatever arming (or none) the site had before, so chaos
    tests compose with an environment-armed registry.  Yields the
    internal fault record; its ``fires`` counter tells the test whether
    (and how often) the site actually triggered in this process.
    """
    previous = _armed.get(site)
    arm(
        site,
        mode,
        prob=prob,
        seconds=seconds,
        max_fires=max_fires,
        token=token,
    )
    try:
        yield _armed[site]
    finally:
        if previous is None:
            _armed.pop(site, None)
        else:
            _armed[site] = previous
        _refresh()


def arm_from_env(spec: str | None = None) -> int:
    """Parse a ``KREACH_FAULTS`` spec and arm it; returns sites armed.

    Syntax: ``site:mode[:prob]`` joined by commas.  Called once at
    import time with the real environment, so any process that imports
    :mod:`repro` (including spawned worker subprocesses) comes up with
    the same faults armed.
    """
    if spec is None:
        spec = os.environ.get("KREACH_FAULTS", "")
    count = 0
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        pieces = part.split(":")
        if len(pieces) not in (2, 3):
            raise ValueError(
                f"bad KREACH_FAULTS entry {part!r}: expected site:mode[:prob]"
            )
        site, mode = pieces[0], pieces[1]
        try:
            prob = float(pieces[2]) if len(pieces) == 3 else 1.0
        except ValueError:
            raise ValueError(
                f"bad KREACH_FAULTS probability in {part!r}"
            ) from None
        arm(site, mode, prob=prob)
        count += 1
    return count


def describe() -> dict[str, dict[str, object]]:
    """The armed registry as plain data (for logs and BENCH provenance)."""
    return {
        site: {
            "mode": f.mode,
            "prob": f.prob,
            "seconds": f.seconds,
            "max_fires": f.max_fires,
            "fires": f.fires,
        }
        for site, f in sorted(_armed.items())
    }


arm_from_env()
