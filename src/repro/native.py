"""Dispatch registry for the native (JIT-compiled) kernel tier.

The hot query/build kernels — bitset joins, the blocked MS-BFS frontier
expansion, the sorted-key gather — exist in two implementations: the
vectorized numpy path (always available, the differential baseline) and
a loop-level body in :mod:`repro.native_kernels` that `numba`_ compiles
to GIL-releasing machine code.  This module owns the choice between
them:

* **Tier selection.**  The ``KREACH_NATIVE`` environment variable picks
  the process-wide tier: ``auto`` (default — numba when importable,
  numpy otherwise), ``numba`` (require the compiled tier; raise if numba
  is missing), ``numpy`` (pin the baseline), or ``python`` (run the
  kernel bodies uncompiled — the tier the differential tests use to pin
  the exact code numba would compile, without needing numba).  Per call,
  ``query_batch(..., engine='native')`` prefers the compiled tier for
  that batch regardless of the environment via :func:`use`.
* **Fail-safe compilation.**  Kernels compile lazily, once, on first use
  of the numba tier — and every compiled kernel is validated against its
  numpy twin on a smoke input before it is ever trusted.  A kernel whose
  compile or validation fails silently degrades to numpy and records the
  reason (visible in :func:`describe`), so a numba/LLVM quirk can cost
  speed but never correctness.
* **Thread budgeting.**  :func:`thread_budget` / :func:`pin_kernel_threads`
  implement the serving tier's oversubscription policy (see
  :mod:`repro.core.serve`): with N pool workers each allowed M kernel
  threads, N x M must not exceed the host, so workers pin
  ``NUMBA_NUM_THREADS`` / ``OMP_NUM_THREADS`` to ``cpu_count // N``.

Registration happens at import time of the module that owns each numpy
implementation (:mod:`repro.bitsets.ops`, :mod:`repro.core.batch`,
:mod:`repro.graph.traversal`); this module never imports them, so there
are no cycles.

.. _numba: https://numba.pydata.org
"""

from __future__ import annotations

import contextlib
import os
import sys
import threading

import numpy as np

__all__ = [
    "ENV_VAR",
    "TIERS",
    "register",
    "kernel",
    "resolve",
    "kernel_names",
    "available",
    "requested",
    "active",
    "use",
    "refresh",
    "describe",
    "thread_budget",
    "pin_kernel_threads",
]

#: Environment variable selecting the process-wide tier.
ENV_VAR = "KREACH_NATIVE"

#: Accepted values of :data:`ENV_VAR` (and of :func:`use`).
TIERS = ("auto", "numba", "numpy", "python")

_PENDING = "pending"
_COMPILED = "compiled"


class _Kernel:
    """One registered kernel: its numpy twin, jit-able body, and state."""

    __slots__ = (
        "name",
        "numpy_impl",
        "python_impl",
        "parallel",
        "sample",
        "compiled",
        "status",
    )

    def __init__(self, name, numpy_impl, python_impl, parallel, sample):
        self.name = name
        self.numpy_impl = numpy_impl
        self.python_impl = python_impl
        self.parallel = parallel
        self.sample = sample
        self.compiled = None
        self.status = _PENDING  # 'pending' | 'compiled' | 'failed: ...'


_REGISTRY: dict[str, _Kernel] = {}
_AVAILABLE: bool | None = None
_COMPILE_LOCK = threading.Lock()
_TLS = threading.local()


def register(
    name: str,
    *,
    numpy_impl,
    python_impl,
    parallel: bool = False,
    sample=None,
) -> None:
    """Register a dispatchable kernel.

    ``numpy_impl`` and ``python_impl`` must share one positional
    signature.  ``parallel`` opts the numba compile into
    ``parallel=True`` (the body uses ``prange``).  ``sample`` is a
    zero-argument callable returning a fresh argument tuple; when given,
    the first numba compile is validated by running both implementations
    on (independent) sample inputs and comparing results — the
    fail-safe that keeps an untrusted compile from ever answering a real
    query.  Re-registering a name is a no-op (module reloads).
    """
    if name not in _REGISTRY:
        _REGISTRY[name] = _Kernel(name, numpy_impl, python_impl, parallel, sample)


def kernel_names() -> tuple[str, ...]:
    """Registered kernel names, sorted."""
    _ensure_registrations()
    return tuple(sorted(_REGISTRY))


def _ensure_registrations() -> None:
    """Import the modules whose import-time side effect is registration."""
    import repro.bitsets.ops  # noqa: F401
    import repro.core.batch  # noqa: F401
    import repro.graph.traversal  # noqa: F401


def available() -> bool:
    """Whether the numba tier can be activated (numba imports cleanly).

    Cached — tests that mask numba in ``sys.modules`` must call
    :func:`refresh` after (un)masking.
    """
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            import numba  # noqa: F401

            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


def requested() -> str:
    """The tier requested via :data:`ENV_VAR` (default ``'auto'``)."""
    tier = os.environ.get(ENV_VAR, "auto").strip().lower() or "auto"
    if tier not in TIERS:
        raise ValueError(
            f"{ENV_VAR} must be one of {TIERS}, got {tier!r}"
        )
    return tier


def active() -> str:
    """The tier that will actually serve the next kernel call.

    Resolves the innermost :func:`use` override (thread-local), else the
    environment request; ``'auto'`` becomes ``'numba'`` when available
    and ``'numpy'`` otherwise.  An explicit ``KREACH_NATIVE=numba`` with
    no numba installed raises — silent fallback is only for ``'auto'``.
    """
    stack = getattr(_TLS, "stack", None)
    forced = bool(stack)
    tier = stack[-1] if forced else requested()
    if tier == "auto":
        return "numba" if available() else "numpy"
    if tier == "numba" and not available():
        if forced:
            return "numpy"
        raise RuntimeError(
            f"{ENV_VAR}=numba but numba is not importable; install the "
            "'native' extra (pip install repro[native]) or unset the "
            "variable for the numpy fallback"
        )
    return tier


@contextlib.contextmanager
def use(tier: str):
    """Force a tier for the current thread within a ``with`` block.

    ``use('auto')`` is how ``engine='native'`` prefers the compiled tier
    for one batch regardless of the environment; ``use('numpy')`` /
    ``use('python')`` pin a baseline (the differential tests and the
    benchmark's numpy column).  A forced ``'numba'`` without numba falls
    back to numpy instead of raising — per-call preference is advisory,
    only the environment variable is a hard requirement.

        >>> from repro import native
        >>> with native.use("numpy"):
        ...     native.active()
        'numpy'
        >>> with native.use("python"):
        ...     native.active()
        'python'
    """
    if tier not in TIERS:
        raise ValueError(f"tier must be one of {TIERS}, got {tier!r}")
    stack = getattr(_TLS, "stack", None)
    if stack is None:
        stack = _TLS.stack = []
    stack.append(tier)
    try:
        yield
    finally:
        stack.pop()


def refresh() -> None:
    """Drop the availability cache and all compiled kernels.

    For tests that mask numba out of ``sys.modules`` (and for unmasking
    afterwards): the next :func:`available` re-probes the import and the
    next numba-tier call recompiles.
    """
    global _AVAILABLE
    _AVAILABLE = None
    for k in _REGISTRY.values():
        k.compiled = None
        k.status = _PENDING


def _results_match(a, b) -> bool:
    """Structural equality of kernel results (arrays or tuples of them)."""
    if isinstance(a, tuple) or isinstance(b, tuple):
        return (
            isinstance(a, tuple)
            and isinstance(b, tuple)
            and len(a) == len(b)
            and all(_results_match(x, y) for x, y in zip(a, b))
        )
    return bool(np.array_equal(np.asarray(a), np.asarray(b)))


def _ensure_compiled(k: _Kernel):
    """Compile (and smoke-validate) ``k`` once; None if it must fall back."""
    if k.status == _COMPILED:
        return k.compiled
    if k.status != _PENDING:
        return None
    with _COMPILE_LOCK:
        if k.status == _COMPILED:
            return k.compiled
        if k.status != _PENDING:
            return None
        try:
            import numba

            fn = numba.njit(nogil=True, parallel=k.parallel, cache=False)(
                k.python_impl
            )
            if k.sample is not None:
                expected = k.numpy_impl(*k.sample())
                got = fn(*k.sample())  # fresh args: in-place kernels mutate
                if not _results_match(expected, got):
                    raise RuntimeError(
                        "compiled kernel disagrees with the numpy twin on "
                        "the smoke input"
                    )
            k.compiled = fn
            k.status = _COMPILED
            return fn
        except Exception as exc:  # fall back to numpy, remember why
            k.compiled = None
            k.status = f"failed: {type(exc).__name__}: {exc}"[:300]
            return None


def resolve(name: str):
    """The implementation serving ``name`` right now, as ``(fn, tier)``.

    ``tier`` is the tier the returned callable belongs to —
    ``'numba'``/``'python'``/``'numpy'`` — which may differ from
    :func:`active` when a compile failed.  Call sites whose numpy path
    is inlined (chunked loops with keyword knobs) branch on the tier;
    everyone else just calls :func:`kernel`.
    """
    k = _REGISTRY[name]
    tier = active()
    if tier == "python":
        return k.python_impl, "python"
    if tier == "numba":
        fn = _ensure_compiled(k)
        if fn is not None:
            return fn, "numba"
    return k.numpy_impl, "numpy"


def kernel(name: str):
    """The callable serving ``name`` under the active tier."""
    return resolve(name)[0]


# ----------------------------------------------------------------------
# Thread budgeting (the serving tier's oversubscription policy)
# ----------------------------------------------------------------------

def thread_budget(workers: int) -> int:
    """Kernel threads each of ``workers`` pool members may use.

    ``max(1, cpu_count // workers)`` — so a W-worker pool whose members
    each run parallel kernels at this budget occupies at most
    ``cpu_count`` threads in total, instead of ``W x cpu_count``.

        >>> from repro import native
        >>> native.thread_budget(10**9)  # never rounds down to zero
        1
    """
    cpus = os.cpu_count() or 1
    return max(1, cpus // max(1, int(workers)))


def pin_kernel_threads(count: int) -> int:
    """Pin the per-process kernel thread pools to ``count`` threads.

    Sets ``NUMBA_NUM_THREADS`` and ``OMP_NUM_THREADS`` (effective for
    any library loaded after this call) and, when numba is already
    imported, also applies :func:`numba.set_num_threads` (which can only
    lower the launch-time maximum — hence serving pools pin *before*
    first kernel use).  Returns the pinned count.
    """
    count = max(1, int(count))
    os.environ["NUMBA_NUM_THREADS"] = str(count)
    os.environ["OMP_NUM_THREADS"] = str(count)
    numba = sys.modules.get("numba")
    if numba is not None and hasattr(numba, "set_num_threads"):
        try:
            ceiling = int(numba.config.NUMBA_NUM_THREADS)
            numba.set_num_threads(max(1, min(count, ceiling)))
        except Exception:
            pass
    return count


# ----------------------------------------------------------------------
# Introspection
# ----------------------------------------------------------------------

def describe() -> dict:
    """Provenance snapshot of the native tier — what would actually run.

    Embedded in ``kreach-bench --json`` ``meta`` blocks and printed by
    the CLI, so a benchmark artifact records whether its numbers came
    from compiled or numpy kernels.  Keys: ``requested`` (env value),
    ``available`` (numba importable), ``active`` (resolved tier, or an
    ``error: ...`` string when ``KREACH_NATIVE=numba`` is unsatisfiable),
    ``numba_version`` / ``threading_layer`` / ``num_threads`` (None
    without numba; the layer is only known once a parallel kernel ran),
    and ``kernels`` — ``{name: 'pending' | 'compiled' | 'failed: ...'}``.
    """
    _ensure_registrations()
    try:
        tier = active()
    except (RuntimeError, ValueError) as exc:
        tier = f"error: {exc}"
    version = layer = threads = None
    if available():
        try:
            import numba

            version = numba.__version__
            threads = int(numba.get_num_threads())
            try:
                layer = numba.threading_layer()
            except Exception:
                layer = None  # unknown until a parallel kernel has run
        except Exception:
            pass
    return {
        "requested": os.environ.get(ENV_VAR, "auto"),
        "available": available(),
        "active": tier,
        "numba_version": version,
        "threading_layer": layer,
        "num_threads": threads,
        "kernels": {name: _REGISTRY[name].status for name in sorted(_REGISTRY)},
    }


def describe_line() -> str:
    """One human line for CLI output: tier, numba facts, kernel count."""
    info = describe()
    numba_bit = (
        f"numba {info['numba_version']}"
        + (f"/{info['threading_layer']}" if info["threading_layer"] else "")
        + (f" x{info['num_threads']}" if info["num_threads"] else "")
        if info["available"]
        else "numba absent"
    )
    return (
        f"native tier: requested={info['requested']} active={info['active']} "
        f"({numba_bit}, {len(info['kernels'])} kernels)"
    )
