"""Legacy setuptools shim (the runtime environment lacks the `wheel` package,
so PEP-517 editable builds are unavailable; metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
