"""Legacy setuptools shim (the runtime environment lacks the `wheel` package,
so PEP-517 editable builds are unavailable; metadata lives here)."""
from setuptools import find_packages, setup

setup(
    name="kreach-repro",
    description="Reproduction of K-Reach: who is in your small world (VLDB'12)",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        # Optional compiled kernel tier (repro/native.py).  Everything
        # works without it on the numpy fallback; with it the hot
        # bitset/BFS/join kernels JIT to GIL-releasing machine code:
        #   pip install kreach-repro[native]
        "native": ["numba>=0.59"],
    },
    entry_points={
        "console_scripts": ["kreach-bench=repro.cli:main"],
    },
)
