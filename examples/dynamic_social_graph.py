#!/usr/bin/env python
"""Evolving social graph: incremental k-reach maintenance.

The paper indexes a static graph; real social networks gain (and lose)
edges constantly.  This example streams follow/unfollow events into a
:class:`repro.DynamicKReachIndex` and compares, at checkpoints:

* the dynamic index's answers against a from-scratch rebuild (equal);
* the cumulative maintenance cost against repeated rebuilding.

Run:  python examples/dynamic_social_graph.py [--fast]
"""

import argparse
import time

import numpy as np

from repro.core import DynamicKReachIndex, KReachIndex
from repro.graph.generators import power_law_digraph
from repro.workloads import random_pairs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller graph")
    args = parser.parse_args()

    n = 800 if args.fast else 5_000
    events = 150 if args.fast else 1_000
    k = 4
    g = power_law_digraph(n, 3 * n, exponent=2.2, seed=11)
    print(f"initial network: n={g.n}, m={g.m}; k = {k}")

    dyn = DynamicKReachIndex(g, k)
    print(f"dynamic index: cover {dyn.cover_size}, {dyn.edge_count} index edges")

    rng = np.random.default_rng(5)
    live_edges = list(g.edges())
    maintain_s = 0.0
    rebuild_s = 0.0
    checks = 0

    for step in range(1, events + 1):
        if live_edges and rng.random() < 0.25:
            u, v = live_edges.pop(int(rng.integers(0, len(live_edges))))
            t0 = time.perf_counter()
            dyn.delete_edge(u, v)
            maintain_s += time.perf_counter() - t0
        else:
            u, v = int(rng.integers(0, n)), int(rng.integers(0, n))
            if u == v:
                continue
            t0 = time.perf_counter()
            dyn.insert_edge(u, v)
            maintain_s += time.perf_counter() - t0
            live_edges.append((u, v))

        if step % (events // 3) == 0:
            snapshot = dyn.to_digraph()
            t0 = time.perf_counter()
            fresh = KReachIndex(snapshot, k)
            rebuild_s += time.perf_counter() - t0
            pairs = random_pairs(n, 400, rng=rng)
            mismatches = sum(
                dyn.query(int(s), int(t)) != fresh.query(int(s), int(t))
                for s, t in pairs
            )
            checks += 1
            print(f"  after {step:5d} events: m={snapshot.m}, cover={dyn.cover_size}, "
                  f"{mismatches} mismatches vs rebuild on 400 queries")
            assert mismatches == 0

    print(f"\nmaintenance total: {1e3 * maintain_s:8.1f} ms "
          f"({1e3 * maintain_s / events:.2f} ms/event)")
    print(f"{checks} full rebuilds:   {1e3 * rebuild_s:8.1f} ms "
          f"({1e3 * rebuild_s / checks:.0f} ms each) — the cost the dynamic "
          f"index avoids paying per event")


if __name__ == "__main__":
    main()
