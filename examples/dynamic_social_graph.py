#!/usr/bin/env python
"""Evolving social graph: the snapshot + delta-overlay dynamic engine.

The paper indexes a static graph; real social networks gain (and lose)
edges constantly.  This example streams follow/unfollow events into a
:class:`repro.DynamicKReachIndex` in *bursts* and, while the overlay is
still carrying the churn of each burst, serves batches of reachability
queries through the vectorized four-case engine:

* batch answers during a write burst are cross-checked against the
  per-pair scalar loop (equal, always);
* the overlay's lifecycle (dirty rows, pending log, compactions) is
  printed at each checkpoint;
* the cumulative update+query cost is compared against rebuilding the
  static index from scratch at every read point;
* the final state round-trips through the v3 on-disk format (base
  snapshot + replayable delta log).

Run:  python examples/dynamic_social_graph.py [--fast]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import DynamicKReachIndex, KReachIndex, load_dynamic, save_dynamic
from repro.graph.generators import power_law_digraph
from repro.workloads import churn_trace, random_pairs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller graph")
    args = parser.parse_args()

    n = 800 if args.fast else 5_000
    events = 24 if args.fast else 60
    batch = 500 if args.fast else 2_000
    k = 4
    g = power_law_digraph(n, 3 * n, exponent=2.2, seed=11)
    print(f"initial network: n={g.n}, m={g.m}; k = {k}")

    dyn = DynamicKReachIndex(g, k).prepare_batch()
    print(
        f"dynamic index: cover {dyn.cover_size}, {dyn.edge_count} index edges, "
        f"compaction threshold {dyn.compaction_threshold} dirty rows"
    )

    # A read-heavy trace with bursty ingestion: each write event is a
    # burst of 6 follow/unfollow edges, every read a batch of queries.
    trace = churn_trace(
        g,
        events,
        read_fraction=2 / 3,
        batch_size=batch,
        write_burst=6,
        rng=np.random.default_rng(5),
    )

    overlay_s = 0.0
    rebuild_s = 0.0
    writes = queries = 0
    in_burst = False

    for op in trace:
        if op[0] != "query":
            t0 = time.perf_counter()
            if op[0] == "insert":
                dyn.insert_edge(op[1], op[2])
            else:
                dyn.delete_edge(op[1], op[2])
            overlay_s += time.perf_counter() - t0
            writes += 1
            in_burst = True
            continue

        # Serve a batch mid-churn through the overlay engine.
        pairs = op[1]
        t0 = time.perf_counter()
        answers = dyn.query_batch(pairs)
        overlay_s += time.perf_counter() - t0
        queries += len(pairs)

        # What a no-maintenance deployment pays for the same read:
        # rebuild the static index from scratch, then answer.
        t0 = time.perf_counter()
        fresh = KReachIndex(dyn.to_digraph(), k).prepare_batch()
        fresh_answers = fresh.query_batch(pairs)
        rebuild_s += time.perf_counter() - t0
        assert np.array_equal(answers, fresh_answers), "overlay != fresh build"

        if in_burst:  # first read after a write burst: report + verify
            in_burst = False
            scalar = dyn.query_batch(pairs, engine="scalar")
            assert np.array_equal(answers, scalar), "engines disagree"
            print(
                f"  after {writes:3d} writes: {int(answers.sum()):5d}/{len(pairs)} "
                f"positive, overlay {dyn.overlay_rows:4d} rows / "
                f"{dyn.pending_ops:3d} pending ops, "
                f"{dyn.compactions} compactions"
            )

    print(
        f"\noverlay engine total (updates + {queries} queries): "
        f"{1e3 * overlay_s:8.1f} ms"
    )
    print(
        f"rebuild-per-batch baseline:                           "
        f"{1e3 * rebuild_s:8.1f} ms "
        f"-> {rebuild_s / max(overlay_s, 1e-9):.1f}x the overlay cost"
    )

    # The v3 on-disk format: base snapshot + replayable delta log.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "social.kreach.npz"
        save_dynamic(dyn, path)
        loaded = load_dynamic(path)
        probe = random_pairs(n, 1_000, rng=np.random.default_rng(99))
        assert np.array_equal(loaded.query_batch(probe), dyn.query_batch(probe))
        print(
            f"\nv3 round-trip: {path.stat().st_size / 1024:.0f} KiB on disk, "
            f"{loaded.pending_ops} logged ops replayed, answers identical"
        )


if __name__ == "__main__":
    main()
