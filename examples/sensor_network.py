#!/usr/bin/env python
"""Sensor-network broadcast: k-hop reachability as delivery probability.

The paper's first motivating application (§1): in a wireless/sensor
network a message survives each hop with probability p, so the chance a
broadcast from s ever reaches t decays like p^hops — classic reachability
is meaningless, k-hop reachability is the question that matters.

This example builds a layered relay network, uses the §4.4 *geometric
family* of k-reach indexes to answer "which sensors hear a broadcast
within k hops" for every k, and derives delivery probabilities.

Run:  python examples/sensor_network.py [--fast]
"""

import argparse

import numpy as np

from repro.core import CoverDistanceOracle, GeometricKReachFamily
from repro.graph.generators import layered_dag
from repro.graph.stats import shortest_path_stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller network")
    parser.add_argument("--hop-survival", type=float, default=0.8,
                        help="per-hop delivery probability (default 0.8)")
    args = parser.parse_args()

    layers = 12 if args.fast else 24
    width = 20 if args.fast else 60
    g = layered_dag(layers, width, p=0.18, seed=3)
    d, mu = shortest_path_stats(g, sample_size=min(g.n, 400))
    print(f"relay network: n={g.n}, m={g.m}, diameter≈{d}, µ={mu}")

    # ------------------------------------------------------------------
    # 1. Geometric k-reach family: lg d indexes, banded answers (§4.4).
    # ------------------------------------------------------------------
    family = GeometricKReachFamily(g, max_k=d, max_k_covers_diameter=True)
    print(f"geometric family: levels {family.levels}, "
          f"{family.storage_bytes()/1e6:.2f} MB total")

    base = 0
    sink = g.n - 1
    print(f"\nbroadcast from sensor {base} to sensor {sink}:")
    for k in (2, 4, 8, d):
        ans = family.query(base, sink, k, refine=True)
        band = "exact" if ans.exact else f"within ≤{ans.upper_bound} hops"
        print(f"  hearable within {k:3d} hops? {str(ans.reachable):5s}  ({band})")

    # ------------------------------------------------------------------
    # 2. Delivery probability via the distance oracle.
    # ------------------------------------------------------------------
    oracle = CoverDistanceOracle(g)
    p = args.hop_survival
    rng = np.random.default_rng(0)
    targets = rng.choice(g.n, size=8, replace=False)
    print(f"\ndelivery probability from sensor {base} (per-hop survival {p}):")
    for t in sorted(int(t) for t in targets):
        dist = oracle.distance(base, t)
        if dist == float("inf"):
            print(f"  sensor {t:5d}: unreachable")
        else:
            print(f"  sensor {t:5d}: {int(dist):2d} hops -> P(delivery) ≈ "
                  f"{p ** dist:.3f}")

    # ------------------------------------------------------------------
    # 3. Coverage curve: how many sensors hear the broadcast per budget.
    # ------------------------------------------------------------------
    print("\ncoverage within k hops (P >= 0.1 needs k <= "
          f"{int(np.log(0.1) / np.log(p))}):")
    sample = rng.choice(g.n, size=min(g.n, 400), replace=False)
    for k in (1, 2, 4, 8):
        heard = sum(family.reaches_within(base, int(t), k) for t in sample)
        print(f"  k={k:2d}: {100 * heard / len(sample):5.1f}% of sampled sensors")


if __name__ == "__main__":
    main()
