#!/usr/bin/env python
"""The "Lady Gaga" scenario: k-hop reachability around celebrities.

The paper's introduction motivates k-reach with social networks: a BFS from
a celebrity covers a huge slice of the graph within 3 hops, so online BFS
is hopeless exactly for the queries people actually ask.  This example:

1. builds a power-law social graph with a few celebrity hubs;
2. measures how much of the network a celebrity covers per hop (the
   "sphere of influence" the paper describes);
3. compares per-query latency of 6-hop BFS, bidirectional BFS, and
   k-reach on celebrity-biased workloads;
4. shows that the §4.3 degree-first cover puts all celebrities in the
   cover, turning their queries into the cheap Cases 1-3.

Run:  python examples/social_influence.py [--fast]
"""

import argparse
import time

import numpy as np

from repro.baselines import BfsIndex, BidirectionalBfsIndex
from repro.core import KReachIndex
from repro.graph.generators import power_law_digraph
from repro.graph.traversal import bfs_distances
from repro.workloads import celebrity_pairs, random_pairs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller graph")
    args = parser.parse_args()

    n = 2_000 if args.fast else 20_000
    g = power_law_digraph(n, 6 * n, exponent=2.1, seed=42)
    degrees = g.degrees()
    celebrity = int(np.argmax(degrees))
    print(f"social graph: n={g.n}, m={g.m}, top degree={int(degrees[celebrity])} "
          f"({100 * degrees[celebrity] / g.n:.1f}% of the network)")

    # ------------------------------------------------------------------
    # 1. The celebrity's sphere of influence per hop.
    # ------------------------------------------------------------------
    dist = bfs_distances(g, celebrity)
    print("\nsphere of influence of the top celebrity:")
    for k in range(1, 7):
        covered = int(((dist >= 0) & (dist <= k)).sum())
        print(f"  within {k} hops: {covered:7d} vertices "
              f"({100 * covered / g.n:5.1f}%)")

    # ------------------------------------------------------------------
    # 2. Latency: BFS vs bidirectional BFS vs k-reach, k = 6.
    # ------------------------------------------------------------------
    k = 6
    rng = np.random.default_rng(7)
    workloads = {
        "uniform": random_pairs(g.n, 300, rng=rng),
        "celebrity": celebrity_pairs(g, 300, rng=rng),
    }
    t0 = time.perf_counter()
    idx = KReachIndex(g, k)
    build_s = time.perf_counter() - t0
    print(f"\nk-reach (k={k}): built in {build_s*1e3:.0f} ms, "
          f"cover {idx.cover_size} ({100*idx.cover_size/g.n:.1f}%), "
          f"{idx.storage_bytes()/1e6:.2f} MB")

    bfs, bibfs = BfsIndex(g), BidirectionalBfsIndex(g)
    engines = {
        "6-hop BFS": lambda s, t: bfs.reaches_within(s, t, k),
        "bidi BFS": lambda s, t: bibfs.reaches_within(s, t, k),
        "k-reach": idx.query,
    }
    print(f"\n{'workload':10s} {'engine':10s} {'µs/query':>10s}")
    for wl_name, pairs in workloads.items():
        for engine_name, fn in engines.items():
            start = time.perf_counter()
            for s, t in pairs:
                fn(int(s), int(t))
            per = 1e6 * (time.perf_counter() - start) / len(pairs)
            print(f"{wl_name:10s} {engine_name:10s} {per:10.1f}")

    # ------------------------------------------------------------------
    # 3. Where do celebrity queries land? (§4.3)
    # ------------------------------------------------------------------
    top100 = np.argsort(-degrees)[:100]
    in_cover = sum(1 for v in top100 if idx.contains(int(v)))
    print(f"\n{in_cover}/100 highest-degree vertices are in the vertex cover "
          f"(degree-first pick, §4.3) — their queries use the cheap cases.")


if __name__ == "__main__":
    main()
