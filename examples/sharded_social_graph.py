#!/usr/bin/env python
"""Sharded serving end to end: partition → manifest → scatter-gather → async front door.

The ROADMAP's "millions of users" story: one index outgrows one box, so
the graph is hub-aware partitioned (celebrity vertices replicated into
every shard as the boundary set), persisted as a sharded manifest
directory, served by a :class:`ShardedQueryServer` (one pool per
shard), and fronted by an asyncio batching layer that aggregates many
small concurrent client requests into few large pool batches — with an
LRU hot-pair cache, admission control, and live ``/healthz`` +
``/metrics``.

Every verdict below is checked bit-for-bit against the single global
index.  Exits non-zero on any disagreement (CI runs this with --fast).

Run:  python examples/sharded_social_graph.py [--fast] [--shards N] [--clients N]
"""

import argparse
import asyncio
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import (
    KReachIndex,
    ShardedQueryServer,
    partition_kreach,
    save_sharded,
    verify_file,
)
from repro.graph.digraph import DiGraph
from repro.serve import FrontDoor, http_request


def community_hub_graph(communities: int, size: int, hubs: int, seed: int) -> DiGraph:
    """Follower communities whose cross-community paths run through hubs.

    The shape sharding is made for: each community is a dense local DAG,
    the first half feed the celebrity hubs, the hubs feed the second
    half — so SCC condensation keeps communities apart, the partitioner
    spreads them across shards, and the hubs (which every
    cross-community path crosses) land in the replicated boundary set.
    """
    rng = np.random.default_rng(seed)
    n = communities * size + hubs
    edges = []
    for c in range(communities):
        lo = c * size
        dense = np.triu(rng.random((size, size)) < (8.0 / size), k=1)
        u, v = np.nonzero(dense)
        edges.append(np.stack([u + lo, v + lo], axis=1))
    fan = max(6, size // 10)
    feeders = (communities // 2) * size  # first half feed, second half follow
    for h in range(communities * size, n):
        sources = rng.choice(feeders, size=fan, replace=False)
        targets = feeders + rng.choice(n - hubs - feeders, size=fan, replace=False)
        edges.append(np.stack([sources, np.full(fan, h)], axis=1))
        edges.append(np.stack([np.full(fan, h), targets], axis=1))
    return DiGraph(n, np.concatenate(edges))


async def run_front_door(server, reference, n, clients: int, requests: int) -> bool:
    """Hammer the HTTP front door with concurrent clients; verify live."""
    door = FrontDoor(server, window_ms=3, max_batch=8192, cache_pairs=16384)
    host, port = await door.start_http()
    print(f"  front door listening on http://{host}:{port}")

    async def client(cid: int) -> bool:
        rng = np.random.default_rng(1000 + cid)
        ok = True
        for _ in range(requests):
            pairs = rng.integers(0, n, size=(16, 2))
            status, body = await http_request(
                host, port, "POST", "/query", {"pairs": pairs.tolist()}
            )
            ok &= status == 200
            ok &= body["verdicts"] == reference.query_batch(pairs).tolist()
        return ok

    t0 = time.perf_counter()
    results = await asyncio.gather(*[client(i) for i in range(clients)])
    elapsed = time.perf_counter() - t0

    _, health = await http_request(host, port, "GET", "/healthz")
    _, metrics = await http_request(host, port, "GET", "/metrics")
    await door.close()  # graceful: drains the queue, stops the listener
    print(f"  {clients} concurrent clients x {requests} requests: "
          f"{elapsed*1e3:.1f} ms, all agree: {all(results)}")
    print(f"  /healthz: {health['status']}  qps={metrics['qps']}  "
          f"batches={metrics['batches']} "
          f"(mean {metrics['mean_batch_pairs']} pairs)  "
          f"cache hit rate={metrics['cache']['hit_rate']}  "
          f"p50={metrics['latency_ms']['p50']} ms "
          f"p99={metrics['latency_ms']['p99']} ms")
    return all(results) and health["status"] == "ok"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller graph")
    parser.add_argument("--shards", type=int, default=2, help="shard count")
    parser.add_argument("--clients", type=int, default=64,
                        help="concurrent async clients")
    args = parser.parse_args()

    communities, size, hubs = (4, 120, 8) if args.fast else (8, 600, 24)
    g = community_hub_graph(communities, size, hubs, seed=7)
    k = 6
    print(f"social graph: n={g.n}, m={g.m}; "
          f"building + partitioning {k}-reach into {args.shards} shards …")
    reference = KReachIndex(g, k).prepare_batch()

    t0 = time.perf_counter()
    sharded = partition_kreach(g, k, args.shards)
    part_s = time.perf_counter() - t0
    summary = sharded.summary()
    print(f"  partition: {part_s*1e3:.1f} ms — boundary |B|="
          f"{summary['boundary_size']}, shard sizes {summary['shard_sizes']}")

    with tempfile.TemporaryDirectory() as tmp:
        manifest_dir = Path(tmp) / "social-shards"
        save_sharded(sharded, manifest_dir)
        files = sorted(p.name for p in manifest_dir.iterdir())
        total_mb = sum(p.stat().st_size for p in manifest_dir.iterdir()) / 1e6
        print(f"  manifest: {len(files)} files, {total_mb:.2f} MB "
              f"({', '.join(files[:4])}, …)")
        report = verify_file(manifest_dir)
        print(f"  checksum audit: {'OK' if report['ok'] else 'CORRUPT'} "
              f"({len(report['sections'])} sections)")
        if not report["ok"]:
            return 1

        pairs = np.random.default_rng(7).integers(
            0, g.n, size=(20_000 if args.fast else 100_000, 2)
        )
        expected = reference.query_batch(pairs)
        with ShardedQueryServer(manifest_dir, workers=1,
                                backend="process") as server:
            server.query_batch(pairs[:1024])  # warm the pools
            t0 = time.perf_counter()
            served = server.query_batch(pairs)
            served_s = time.perf_counter() - t0
            identical = bool(np.array_equal(served, expected))
            stats = server.stats()
            print(f"  scatter-gather: {served_s*1e3:.1f} ms for "
                  f"{len(pairs)} pairs across {stats['num_shards']} shards "
                  f"({stats['cross_pairs']} stitched cross-shard) — "
                  f"identical: {identical}")
            if not identical:
                return 1

            ok = asyncio.run(run_front_door(
                server, reference, g.n, args.clients, requests=3
            ))
            if not ok:
                return 1
        print("  pools shut down cleanly ✓")
    return 0


if __name__ == "__main__":
    sys.exit(main())
