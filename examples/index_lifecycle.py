#!/usr/bin/env python
"""Index lifecycle: parallel build, compressed hub rows, disk round-trip.

Exercises the three operational features around the core index:

* §4.1.3 — "it is straightforward to parallelize this process if more
  machines or CPU cores are available": `build_kreach_parallel`;
* §4.3 — compact WAH storage for high-degree rows: `compress_rows_at`;
* §4.1.3 — "the constructed index is then stored on disk":
  `save_kreach` / `load_kreach`.

Run:  python examples/index_lifecycle.py [--fast]
"""

import argparse
import tempfile
import time
from pathlib import Path

from repro.core import KReachIndex, build_kreach_parallel, load_kreach, save_kreach
from repro.datasets import load


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller dataset")
    args = parser.parse_args()

    scale = 0.05 if args.fast else 0.3
    g = load("CiteSeer", scale=scale)
    k = 6
    print(f"CiteSeer stand-in: n={g.n}, m={g.m}; building {k}-reach …")

    # ------------------------------------------------------------------
    # 1. Serial vs parallel construction (§4.1.3).
    # ------------------------------------------------------------------
    t0 = time.perf_counter()
    serial = KReachIndex(g, k)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = build_kreach_parallel(g, k, workers=2, cover=serial.cover)
    parallel_s = time.perf_counter() - t0
    assert serial.weighted_edges() == parallel.weighted_edges()
    print(f"  serial build:   {serial_s*1e3:7.1f} ms")
    print(f"  parallel build: {parallel_s*1e3:7.1f} ms (2 workers, identical rows ✓)")

    # ------------------------------------------------------------------
    # 2. Compressed hub rows (§4.3).
    # ------------------------------------------------------------------
    compressed = KReachIndex(g, k, cover=serial.cover, compress_rows_at=32)
    print(f"  plain rows:      {serial.storage_bytes()/1e6:6.2f} MB")
    print(f"  compressed rows: {compressed.storage_bytes()/1e6:6.2f} MB "
          f"(threshold 32 edges/row)")
    sample = [(s % g.n, (s * 13 + 5) % g.n) for s in range(500)]
    assert all(serial.query(s, t) == compressed.query(s, t) for s, t in sample)
    print("  answers identical on 500 sampled queries ✓")

    # ------------------------------------------------------------------
    # 3. Disk round-trip (§4.1.3).
    # ------------------------------------------------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "citeseer-6reach.npz"
        save_kreach(serial, path)
        on_disk = path.stat().st_size
        t0 = time.perf_counter()
        loaded = load_kreach(path)
        load_s = time.perf_counter() - t0
        assert all(serial.query(s, t) == loaded.query(s, t) for s, t in sample)
        print(f"  on disk: {on_disk/1e6:.2f} MB (npz), reloaded in "
              f"{load_s*1e3:.1f} ms, answers identical ✓")


if __name__ == "__main__":
    main()
