#!/usr/bin/env python
"""Serving tier end to end: save_mmap → QueryServer / ThreadQueryServer.

The §1 story at serving scale: a social graph where a few celebrity
accounts dominate the query stream.  The index is built once, written as
a v4 memory-mapped file, and served by a persistent multi-process pool —
every worker maps the same file (the OS shares the clean pages), query
pairs travel through shared-memory slots, and results come back in input
order.

Run:  python examples/serve_social_graph.py [--fast] [--workers N]
"""

import argparse
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import native
from repro.core import (
    KReachIndex,
    QueryServer,
    ThreadQueryServer,
    load_mmap,
    save_kreach,
    save_mmap,
)
from repro.core.serialize import load_kreach
from repro.graph.generators import celebrity_crossfire_digraph
from repro.workloads import random_pairs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller graph")
    parser.add_argument("--workers", type=int, default=2, help="pool size")
    args = parser.parse_args()

    brokers, celebs = (400, 40) if args.fast else (3000, 300)
    g = celebrity_crossfire_digraph(brokers, celebs, brokers // 2, seed=7)
    k = 6
    print(f"social graph: n={g.n}, m={g.m}; building {k}-reach …")
    index = KReachIndex(g, k).prepare_batch()
    pairs = random_pairs(g.n, 20_000 if args.fast else 200_000,
                         rng=np.random.default_rng(7))

    with tempfile.TemporaryDirectory() as tmp:
        # --------------------------------------------------------------
        # 1. One file, two open paths: v2 eager vs v4 zero-copy.
        # --------------------------------------------------------------
        v2_path = Path(tmp) / "social.npz"
        v4_path = Path(tmp) / "social.kr4"
        save_kreach(index, v2_path)
        save_mmap(index, v4_path)
        t0 = time.perf_counter()
        load_kreach(v2_path)
        v2_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        load_mmap(v4_path)
        v4_s = time.perf_counter() - t0
        print(f"  v2 eager load: {v2_s*1e3:8.2f} ms "
              f"({v2_path.stat().st_size/1e6:.2f} MB compressed)")
        print(f"  v4 mmap open:  {v4_s*1e3:8.3f} ms "
              f"({v4_path.stat().st_size/1e6:.2f} MB flat, "
              f"{v2_s/max(v4_s, 1e-9):.0f}x faster)")

        # --------------------------------------------------------------
        # 2. Serve: a worker pool sharing the file's pages.
        # --------------------------------------------------------------
        t0 = time.perf_counter()
        inproc = index.query_batch(pairs)
        inproc_s = time.perf_counter() - t0
        with QueryServer(v4_path, workers=args.workers) as server:
            server.query_batch(pairs[:1024])  # warm the pool
            t0 = time.perf_counter()
            served = server.query_batch(pairs)
            served_s = time.perf_counter() - t0
            assert np.array_equal(served, inproc)
            print(f"  in-process:     {inproc_s*1e3:8.2f} ms "
                  f"for {len(pairs)} pairs")
            print(f"  {args.workers}-worker pool:  {served_s*1e3:8.2f} ms "
                  f"(answers identical ✓)")

            # ----------------------------------------------------------
            # 3. Pipelined mode: the next shard transfers while workers
            #    compute the previous one.
            # ----------------------------------------------------------
            shards = np.array_split(pairs, 4 * args.workers)
            t0 = time.perf_counter()
            tickets = [server.submit(shard) for shard in shards]
            parts = [server.collect(ticket) for ticket in tickets]
            pipe_s = time.perf_counter() - t0
            assert np.array_equal(np.concatenate(parts), inproc)
            print(f"  pipelined:      {pipe_s*1e3:8.2f} ms "
                  f"({len(shards)} tickets, input order preserved ✓)")
            print(f"  server stats:   {server.stats()}")
        print("  pool shut down cleanly ✓")

        # --------------------------------------------------------------
        # 4. Thread pool: the zero-IPC sibling.  One address space, no
        #    pickling, no shared-memory slots — with compiled nogil
        #    kernels (pip install kreach-repro[native]) the workers run
        #    truly in parallel; on the numpy tier it is a low-overhead
        #    single-core server.
        # --------------------------------------------------------------
        print(f"  {native.describe_line()}")
        with ThreadQueryServer(v4_path, workers=args.workers) as tserver:
            tserver.query_batch(pairs[:1024])  # warm the pool (JIT compile)
            t0 = time.perf_counter()
            threaded = tserver.query_batch(pairs)
            thread_s = time.perf_counter() - t0
            assert np.array_equal(threaded, inproc)
            print(f"  {args.workers}-thread pool:  {thread_s*1e3:8.2f} ms "
                  f"(answers identical ✓, "
                  f"{tserver.kernel_threads} kernel threads/worker)")
            print(f"  thread stats:   {tserver.stats()}")
        print("  thread pool shut down cleanly ✓")


if __name__ == "__main__":
    main()
