#!/usr/bin/env python
"""The paper's Figures 1-4 and Examples 1-4, executed and asserted.

Reconstructs the worked-example graph G (Figure 1 / Figure 3), builds the
3-reach index (Figure 2) and the (2,5)-reach index (Figure 4), prints both
index graphs, and asserts every claim the paper makes in Examples 1-4.
Exits non-zero if any claim fails — this script *is* the paper's worked
section, runnable.

Run:  python examples/paper_walkthrough.py [--fast]
"""

import argparse

from repro.core import HKReachIndex, KReachIndex
from repro.core.vertex_cover import is_hhop_vertex_cover, is_vertex_cover
from repro.graph.generators import paper_example_graph


def show_index(graph, index, title: str) -> None:
    print(f"\n{title}")
    print(f"  vertices: {sorted(graph.vertex_label(v) for v in index.cover)}")
    for u, v, w in index.weighted_edges():
        print(f"  {graph.vertex_label(u)} -> {graph.vertex_label(v)}  ω = {w}")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="no-op (kept for harness uniformity)")
    parser.parse_args()

    g = paper_example_graph()
    V = {lab: g.vertex_id(lab) for lab in "abcdefghij"}
    print("Figure 1 — the example graph G:")
    for u, v in g.edges():
        print(f"  {g.vertex_label(u)} -> {g.vertex_label(v)}")

    # ------------------------------------------------------------------
    # Example 1: vertex cover {b, d, g, i}, k-reach graph for k = 3.
    # ------------------------------------------------------------------
    cover = frozenset(V[x] for x in "bdgi")
    assert is_vertex_cover(g, cover)
    k3 = KReachIndex(g, 3, cover=cover)
    show_index(g, k3, "Figure 2 — the 3-reach graph I = (V_I, E_I, ω_I):")
    expected = {("b", "d"): 1, ("b", "g"): 3, ("d", "g"): 2, ("d", "i"): 3, ("g", "i"): 1}
    got = {(g.vertex_label(u), g.vertex_label(v)): w for u, v, w in k3.weighted_edges()}
    assert got == expected, got

    # Example 2 — the four query cases.
    print("\nExample 2 (k = 3):")
    checks = [
        ("b", "g", True, 1), ("b", "i", False, 1),
        ("d", "h", True, 2), ("d", "j", False, 2),
        ("a", "d", True, 3), ("a", "g", False, 3),
        ("c", "f", True, 4), ("c", "h", False, 4),
    ]
    for s, t, expect, case in checks:
        got_ans = k3.query(V[s], V[t])
        assert got_ans is expect, (s, t)
        assert k3.query_case(V[s], V[t]) == case
        arrow = "->3" if expect else "-/->3"
        print(f"  Case {case}: {s} {arrow} {t}  ✓")

    # ------------------------------------------------------------------
    # Example 3: 2-hop vertex cover {d, e, g}, (2,5)-reach graph.
    # ------------------------------------------------------------------
    hcover = frozenset(V[x] for x in "deg")
    assert is_hhop_vertex_cover(g, hcover, 2)
    hk = HKReachIndex(g, 2, 5, cover=hcover)
    show_index(g, hk, "Figure 4 — the (2,5)-reach graph H = (V_H, E_H, ω_H):")
    expected_h = {("d", "e"): 1, ("d", "g"): 2, ("e", "g"): 1}
    got_h = {(g.vertex_label(u), g.vertex_label(v)): w for u, v, w in hk.weighted_edges()}
    assert got_h == expected_h, got_h

    # Example 4 — the four query cases with h-hop expansion.
    print("\nExample 4 (h = 2, k = 5):")
    hchecks = [
        ("e", "g", True, 1), ("e", "d", False, 1),
        ("d", "h", True, 2), ("d", "a", False, 2),
        ("a", "g", True, 3),
        ("a", "i", True, 4), ("a", "j", False, 4),
    ]
    for s, t, expect, case in hchecks:
        assert hk.query(V[s], V[t]) is expect, (s, t)
        assert hk.query_case(V[s], V[t]) == case
        arrow = "->5" if expect else "-/->5"
        print(f"  Case {case}: {s} {arrow} {t}  ✓")

    print("\nAll of the paper's Examples 1-4 hold. ✓")


if __name__ == "__main__":
    main()
