#!/usr/bin/env python
"""Ingest at scale, end to end — no download required.

The full large-graph pipeline on a generated SNAP-style edge list:

1. write a gzip'd edge list with comments, duplicates, and self-loops
   (the shape of a real SNAP dump);
2. stream it through :func:`~repro.graph.ingest.ingest_edge_list` —
   chunked vectorized parsing, spill-to-disk external merge sort under
   a fixed memory budget, direct dual-CSR emission;
3. SCC-condense and build a :class:`~repro.core.CondensedKReach`
   (the paper's own setting is DAGs; cyclic inputs map through the
   condensation);
4. save the condensation-DAG index with
   :func:`~repro.core.serialize.save_mmap` (``storage='wah'``
   compressed rows) and serve queries from the file through a
   :class:`~repro.core.QueryServer` pool.

Every stage prints wall time and its tracemalloc peak, so you can watch
the streamed path hold its budget while the eager reader's peak scales
with the file.

Run:  python examples/ingest_snap.py [--fast] [--budget-mb 16]
"""

import argparse
import gzip
import tempfile
import time
import tracemalloc
from pathlib import Path

import numpy as np

from repro.core import CondensedKReach, QueryServer, load_mmap, save_mmap
from repro.graph.ingest import IngestStats, ingest_edge_list
from repro.graph.io import read_edge_list
from repro.workloads import random_pairs


def stage(label: str, fn):
    """Run ``fn`` and report wall time + tracemalloc peak."""
    tracemalloc.start()
    t0 = time.perf_counter()
    out = fn()
    seconds = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    print(f"  {label:<28s} {seconds:7.2f}s   peak {peak / 2**20:8.1f} MB")
    return out


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller graph")
    parser.add_argument(
        "--budget-mb", type=int, default=16, help="streamed sort budget (MB)"
    )
    args = parser.parse_args()
    edges = 100_000 if args.fast else 1_000_000
    n = edges // 8
    rng = np.random.default_rng(7)

    with tempfile.TemporaryDirectory(prefix="kreach-ingest-demo-") as tmp:
        path = Path(tmp) / "snap.txt.gz"
        print(f"generating {edges} edges over {n} vertices -> {path.name}")
        u = rng.integers(0, n, size=edges)
        v = rng.integers(0, n, size=edges)
        body = "\n".join(f"{a}\t{b}" for a, b in zip(u.tolist(), v.tolist()))
        with gzip.open(path, "wb", compresslevel=1) as fh:
            fh.write(b"# Directed graph: generated SNAP-style dump\n")
            fh.write(b"# FromNodeId\tToNodeId\n")
            fh.write(body.encode() + b"\n")
        del u, v, body

        print(f"\npipeline (budget {args.budget_mb} MB):")
        stats = IngestStats()
        g = stage(
            "1. streamed ingest",
            lambda: ingest_edge_list(path, memory_mb=args.budget_mb, stats=stats),
        )
        print(
            f"       {stats.lines_parsed} lines -> {stats.edges} unique edges, "
            f"{stats.spill_runs} spill runs, "
            f"buffer peak {stats.max_buffered_bytes / 2**20:.2f} MB "
            f"(budget {stats.budget_bytes / 2**20:.0f} MB)"
        )
        eager = stage("   (eager read, compare)", lambda: read_edge_list(path))
        assert np.array_equal(g.out_indptr, eager.out_indptr)
        assert np.array_equal(g.out_indices, eager.out_indices)
        print("       streamed CSR bit-identical to eager ✓")
        del eager

        cond = stage(
            "2. condense + build n-reach",
            lambda: CondensedKReach(g, None, storage="wah").prepare_batch(),
        )
        print(
            f"       {g.n} vertices -> {cond.num_components} SCCs, "
            f"index {cond.storage_bytes() / 2**20:.2f} MB (wah rows)"
        )

        index_path = Path(tmp) / "cond.kr5"
        stage(
            "3. save_mmap (storage=wah)",
            lambda: save_mmap(cond.index, index_path),
        )
        print(f"       file {index_path.stat().st_size / 2**20:.2f} MB")

        # Serve the condensation-DAG index from the file; map the random
        # vertex workload through component ids exactly like
        # CondensedKReach.query_batch does.
        pairs = random_pairs(g.n, 20_000, rng=rng)
        mapped = cond.cond.map_pairs(pairs)
        same = mapped[:, 0] == mapped[:, 1]
        expect = cond.query_batch(pairs)

        def serve():
            with QueryServer(index_path, workers=2) as server:
                return server.query_batch(mapped)

        served = stage("4. QueryServer (2 workers)", serve)
        assert np.array_equal(served | same, expect)
        print(f"       {len(pairs)} served verdicts match the in-process build ✓")

        loaded = load_mmap(index_path, verify=True)
        assert loaded.index_graph.storage == "wah"
        print("\nround-trip verified (checksums + wah storage) — done.")


if __name__ == "__main__":
    main()
