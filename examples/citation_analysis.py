#!/usr/bin/env python
"""Citation-lineage analysis: classic reachability on a citation DAG.

Uses the ArXiv stand-in (a pure DAG, like the paper's Table 2 row) to ask
lineage questions — "does paper A transitively build on paper B, and
within how many citation generations?" — and compares n-reach with the
re-implemented comparators (GRAIL, PWAH, tree cover, chain cover) on the
same workload, echoing the paper's Tables 3-5 in miniature.

Run:  python examples/citation_analysis.py [--fast]
"""

import argparse
import time

import numpy as np

from repro.baselines import ChainCoverIndex, GrailIndex, PathTreeIndex, PwahIndex
from repro.core import CoverDistanceOracle, KReachIndex
from repro.datasets import load
from repro.workloads import random_pairs


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller dataset")
    args = parser.parse_args()

    scale = 0.05 if args.fast else 0.25
    g = load("ArXiv", scale=scale)
    print(f"ArXiv stand-in: n={g.n}, m={g.m} (pure DAG, newer cites older)")

    # ------------------------------------------------------------------
    # 1. Lineage depth distribution for one recent paper.
    # ------------------------------------------------------------------
    oracle = CoverDistanceOracle(g)
    recent = g.n - 1
    depths: dict[int, int] = {}
    for old in range(0, g.n, max(1, g.n // 500)):
        d = oracle.distance(recent, old)
        if d != float("inf"):
            depths[int(d)] = depths.get(int(d), 0) + 1
    print(f"\nlineage of paper #{recent} (sampled ancestors by citation depth):")
    for depth in sorted(depths):
        print(f"  {depth:2d} generations back: {depths[depth]:5d} papers")

    # ------------------------------------------------------------------
    # 2. Compare the index field on the same random workload.
    # ------------------------------------------------------------------
    queries = 2_000 if args.fast else 10_000
    pairs = random_pairs(g.n, queries, rng=np.random.default_rng(5))
    contenders = {
        "n-reach": lambda: KReachIndex(g, None),
        "GRAIL": lambda: GrailIndex(g, num_labels=3, seed=5),
        "PWAH": lambda: PwahIndex(g),
        "PTree (tree cover)": lambda: PathTreeIndex(g),
        "3-hop (chain cover)": lambda: ChainCoverIndex(g),
    }
    print(f"\n{'index':20s} {'build ms':>9s} {'size MB':>8s} {'µs/query':>9s} {'positives':>9s}")
    reference: set[int] | None = None
    for name, factory in contenders.items():
        t0 = time.perf_counter()
        index = factory()
        build_ms = 1e3 * (time.perf_counter() - t0)
        query = index.query if name == "n-reach" else index.reaches
        t0 = time.perf_counter()
        answers = [query(int(s), int(t)) for s, t in pairs]
        per_query = 1e6 * (time.perf_counter() - t0) / len(pairs)
        positives = sum(answers)
        print(f"{name:20s} {build_ms:9.1f} {index.storage_bytes()/1e6:8.2f} "
              f"{per_query:9.2f} {positives:9d}")
        mask = {i for i, a in enumerate(answers) if a}
        if reference is None:
            reference = mask
        else:
            assert mask == reference, f"{name} disagrees with n-reach!"
    print("\nall five indexes agree on every query ✓")


if __name__ == "__main__":
    main()
