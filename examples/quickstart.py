#!/usr/bin/env python
"""Quickstart: build a k-reach index and answer k-hop reachability queries.

Covers the whole public API surface in under a minute:

* build a graph (from edges, a generator, or a dataset stand-in);
* build :class:`repro.KReachIndex` for a fixed k and for k = ∞;
* query, inspect the index, check the storage model;
* general-k queries with :class:`repro.ExactKFamily`.

Run:  python examples/quickstart.py [--fast]
"""

import argparse

from repro import DiGraph, ExactKFamily, KReachIndex
from repro.datasets import load
from repro.graph.stats import summarize


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="smaller dataset")
    args = parser.parse_args()

    # ------------------------------------------------------------------
    # 1. A graph from explicit edges.
    # ------------------------------------------------------------------
    g = DiGraph(6, [(0, 1), (1, 2), (2, 3), (3, 4), (1, 5), (5, 3)])
    print(f"toy graph: {g}")

    idx3 = KReachIndex(g, k=3)
    print(f"3-reach index: cover={sorted(idx3.cover)}, edges={idx3.edge_count}")
    print(f"  0 ->3 3?  {idx3.query(0, 3)}   (path 0-1-5-3 has 3 hops)")
    print(f"  0 ->3 4?  {idx3.query(0, 4)}   (4 is 4 hops away)")

    # k = None builds the n-reach classic-reachability index.
    inf = KReachIndex(g, k=None)
    print(f"  0 -> 4?   {inf.query(0, 4)}   (reachable, just not in 3 hops)")

    # ------------------------------------------------------------------
    # 2. A dataset stand-in from the paper's Table 2.
    # ------------------------------------------------------------------
    scale = 0.02 if args.fast else 0.1
    graph = load("GO", scale=scale)
    stats = summarize(graph, sample_size=min(graph.n, 300))
    print(f"\nGO stand-in at scale {scale}: n={stats.n} m={stats.m} "
          f"d={stats.diameter} µ={stats.mu}")

    idx = KReachIndex(graph, k=stats.mu)
    print(f"µ-reach index: |V_I|={idx.cover_size} ({100*idx.cover_size/graph.n:.1f}% "
          f"of vertices), |E_I|={idx.edge_count}, "
          f"{idx.storage_bytes()/1024:.1f} KiB on the §4.3 storage model")

    sample = min(200, graph.n)
    hits = sum(
        idx.query(s % graph.n, (s * 7 + 3) % graph.n) for s in range(sample)
    )
    print(f"{sample} sample µ-hop queries -> {hits} reachable")

    # ------------------------------------------------------------------
    # 3. Arbitrary k via the exact per-k family (§4.4).
    # ------------------------------------------------------------------
    family = ExactKFamily(graph, diameter=stats.diameter)
    s, t = 0, graph.n - 1
    for k in (1, 2, stats.mu, stats.diameter):
        print(f"  {s} ->{k} {t}? {family.reaches_within(s, t, k)}")


if __name__ == "__main__":
    main()
