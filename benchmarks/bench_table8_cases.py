"""Table 8 bench: the per-case query mix and per-case cost.

Table 8 reports how random queries distribute over Algorithm 2's four
cases; §6.3.2 adds that Case 4 costs ~12x Case 1.  The benches time
(a) case classification of a whole workload and (b) query batches
restricted to each case.
"""

import pytest

from repro.workloads import case_distribution

from conftest import graph_for, kreach_for, pairs_for


def test_case_classification(benchmark, dataset_name):
    """Classifying the whole workload by case (pure cover lookups)."""
    index = kreach_for(dataset_name, 6)
    pairs = pairs_for(dataset_name)
    dist = benchmark(case_distribution, index, pairs)
    for case in (1, 2, 3, 4):
        benchmark.extra_info[f"case{case}_pct"] = round(100 * dist[case], 2)


@pytest.mark.parametrize("case", [1, 2, 3, 4])
def test_per_case_query_cost(benchmark, dataset_name, case):
    """Query batches restricted to one case (the 12x claim of §6.3.2)."""
    index = kreach_for(dataset_name, 6)
    bucket = [
        (int(s), int(t))
        for s, t in pairs_for(dataset_name)
        if index.query_case(int(s), int(t)) == case
    ]
    if len(bucket) < 5:
        pytest.skip(f"case {case} has too few queries on {dataset_name}")

    def run():
        for s, t in bucket:
            index.query(s, t)

    benchmark(run)
    benchmark.extra_info["bucket_size"] = len(bucket)
