"""Ablation benches (ours; motivated by §1, §4.3 and §4.4).

* cover strategies: degree-first vs random vs greedy (size & build time);
* online search vs index on celebrity workloads (the "Lady Gaga" story);
* general-k designs: geometric family vs exact family vs distance oracle.
"""

import numpy as np
import pytest

from repro.baselines import BfsIndex, BidirectionalBfsIndex
from repro.core import (
    CoverDistanceOracle,
    ExactKFamily,
    GeometricKReachFamily,
)
from repro.core.vertex_cover import greedy_vertex_cover, vertex_cover_2approx
from repro.workloads import celebrity_pairs

from conftest import SLOW_QUERIES, cached_index, graph_for, kreach_for, pairs_for

ABLATION_DATASETS = ("AgroCyc", "ArXiv")


# ----------------------------------------------------------------------
# Cover strategies (§4.3)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ABLATION_DATASETS)
@pytest.mark.parametrize("strategy", ["degree", "random", "input"])
def test_cover_strategy(benchmark, name, strategy):
    g = graph_for(name)
    rng = np.random.default_rng(13)
    cover = benchmark(lambda: vertex_cover_2approx(g, order=strategy, rng=rng))
    benchmark.extra_info["cover_size"] = len(cover)


@pytest.mark.parametrize("name", ABLATION_DATASETS)
def test_cover_greedy(benchmark, name):
    g = graph_for(name)
    cover = benchmark(lambda: greedy_vertex_cover(g))
    benchmark.extra_info["cover_size"] = len(cover)


# ----------------------------------------------------------------------
# Online search vs index on celebrity workloads (§1)
# ----------------------------------------------------------------------
def _celebrity_workload(name):
    g = graph_for(name)
    return [
        (int(s), int(t))
        for s, t in celebrity_pairs(g, SLOW_QUERIES, rng=np.random.default_rng(3))
    ]


@pytest.mark.parametrize("name", ABLATION_DATASETS)
@pytest.mark.parametrize("engine", ["bfs", "bibfs", "kreach"])
def test_celebrity_queries(benchmark, name, engine):
    g = graph_for(name)
    k = 6
    pairs = cached_index(("celebrity", name), lambda: _celebrity_workload(name))
    if engine == "bfs":
        bfs = BfsIndex(g)
        fn = lambda s, t: bfs.reaches_within(s, t, k)
    elif engine == "bibfs":
        bibfs = BidirectionalBfsIndex(g)
        fn = lambda s, t: bibfs.reaches_within(s, t, k)
    else:
        fn = kreach_for(name, k).query

    def run():
        for s, t in pairs:
            fn(s, t)

    benchmark(run)


# ----------------------------------------------------------------------
# General-k designs (§4.4)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ("Nasa",))
@pytest.mark.parametrize("design", ["geometric", "exact-family", "oracle"])
def test_general_k_construction(benchmark, name, design):
    g = graph_for(name)
    if design == "geometric":
        factory = lambda: GeometricKReachFamily(
            g, max_k=16, max_k_covers_diameter=False
        )
    elif design == "exact-family":
        factory = lambda: ExactKFamily(g, diameter=16)
    else:
        factory = lambda: CoverDistanceOracle(g)
    index = benchmark(factory)
    benchmark.extra_info["storage_bytes"] = index.storage_bytes()


@pytest.mark.parametrize("name", ("Nasa",))
@pytest.mark.parametrize("design", ["geometric", "exact-family", "oracle"])
def test_general_k_queries(benchmark, name, design):
    g = graph_for(name)
    if design == "geometric":
        index = cached_index(
            ("geo", name),
            lambda: GeometricKReachFamily(g, max_k=16, max_k_covers_diameter=False),
        )
        fn = lambda s, t, k: index.reaches_within(s, t, k)
    elif design == "exact-family":
        index = cached_index(("fam", name), lambda: ExactKFamily(g, diameter=16))
        fn = index.reaches_within
    else:
        index = cached_index(("oracle", name), lambda: CoverDistanceOracle(g))
        fn = index.reaches_within
    rng = np.random.default_rng(4)
    pairs = [(int(s), int(t)) for s, t in pairs_for(name, 500)]
    ks = [int(k) for k in rng.integers(1, 16, size=len(pairs))]

    def run():
        for (s, t), k in zip(pairs, ks):
            fn(s, t, k)

    benchmark(run)


# ----------------------------------------------------------------------
# Compressed hub rows (§4.3)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ABLATION_DATASETS)
@pytest.mark.parametrize("storage", ["plain", "compressed"])
def test_row_storage_queries(benchmark, name, storage):
    """6-reach query batches with dict rows vs WAH-compressed hub rows."""
    from repro.core import KReachIndex

    g = graph_for(name)
    if storage == "plain":
        index = kreach_for(name, 6)
    else:
        index = cached_index(
            ("kreach-compressed", name),
            lambda: KReachIndex(
                g, 6, cover=kreach_for(name, 6).cover, compress_rows_at=32
            ),
        )
    pairs = [(int(s), int(t)) for s, t in pairs_for(name)]

    def run():
        for s, t in pairs:
            index.query(s, t)

    benchmark(run)
    benchmark.extra_info["storage_bytes"] = index.storage_bytes()


# ----------------------------------------------------------------------
# Incremental maintenance (our extension; cf. the paper's related work [3])
# ----------------------------------------------------------------------
@pytest.mark.parametrize("name", ("GO",))
def test_dynamic_insertions(benchmark, name):
    """Cost of 50 edge insertions into a maintained 4-reach index."""
    from repro.core import DynamicKReachIndex

    g = graph_for(name)
    rng = np.random.default_rng(21)
    updates = [
        (int(u), int(v))
        for u, v in rng.integers(0, g.n, size=(50, 2))
        if int(u) != int(v)
    ]

    def run():
        dyn = DynamicKReachIndex(g, 4)
        for u, v in updates:
            dyn.insert_edge(u, v)
        return dyn

    dyn = benchmark(run)
    benchmark.extra_info["cover_size"] = dyn.cover_size


@pytest.mark.parametrize("name", ("GO",))
def test_rebuild_per_batch(benchmark, name):
    """The naive alternative: rebuild the 4-reach index from scratch."""
    from repro.core import KReachIndex

    g = graph_for(name)
    index = benchmark(lambda: KReachIndex(g, 4))
    benchmark.extra_info["cover_size"] = index.cover_size
