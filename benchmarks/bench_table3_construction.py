"""Table 3 bench: index construction time for n-reach vs the comparators.

Paper shape: GRAIL and PWAH build fastest, n-reach beats PTree everywhere,
and the chain-cover (3-hop) blows its budget on the hub-heavy metabolic
datasets (rendered as '-' in the paper, a skip here).
"""

import pytest

from repro.baselines import ChainCoverIndex, GrailIndex, PathTreeIndex, PwahIndex
from repro.baselines.base import IndexBudgetExceeded
from repro.core import KReachIndex

from conftest import graph_for

INDEX_FACTORIES = {
    "n-reach": lambda g: KReachIndex(g, None),
    "PTree": PathTreeIndex,
    "3-hop": lambda g: ChainCoverIndex(g, max_label_entries=64 * g.n),
    "GRAIL": lambda g: GrailIndex(g, num_labels=3, seed=11),
    "PWAH": PwahIndex,
}


@pytest.mark.parametrize("index_name", INDEX_FACTORIES)
def test_construction(benchmark, dataset_name, index_name):
    """One full index build (the paper's Table 3 cell)."""
    g = graph_for(dataset_name)
    factory = INDEX_FACTORIES[index_name]
    try:
        index = benchmark(lambda: factory(g))
    except IndexBudgetExceeded as exc:
        pytest.skip(f"budget exceeded (paper's '-'): {exc}")
    benchmark.extra_info["storage_bytes"] = index.storage_bytes()
