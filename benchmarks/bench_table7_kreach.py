"""Table 7 bench: k-reach across k = 2, 4, 6, µ, n vs µ-BFS and µ-dist.

Paper shape: k-reach's query time is flat in k; µ-BFS is 2-3 orders of
magnitude slower; the distance index (µ-dist, here PLL) sits 1-2 orders
above k-reach.  µ is each stand-in's measured median shortest-path length.
"""

import numpy as np
import pytest

from repro.baselines import BfsIndex, PrunedLandmarkIndex
from repro.graph.stats import shortest_path_stats

from conftest import SLOW_QUERIES, cached_index, graph_for, kreach_for, pairs_for

#: A metabolic, a giant-SCC, and a citation dataset keep this bench short.
T7_DATASETS = ("AgroCyc", "aMaze", "ArXiv")


def mu_for(name: str) -> int:
    def compute():
        g = graph_for(name)
        _, mu = shortest_path_stats(
            g, sample_size=min(g.n, 200), rng=np.random.default_rng(5)
        )
        return max(2, mu)

    return cached_index(("mu", name), compute)


def _run_batch(query, pairs):
    for s, t in pairs:
        query(s, t)


@pytest.mark.parametrize("name", T7_DATASETS)
@pytest.mark.parametrize("k_label", ["2", "4", "6", "mu", "n"])
def test_kreach_query_flat_in_k(benchmark, name, k_label):
    """k-reach query batch for one k (the Table 7 row cells)."""
    k = {"2": 2, "4": 4, "6": 6, "mu": mu_for(name), "n": None}[k_label]
    index = kreach_for(name, k)
    pairs = [(int(s), int(t)) for s, t in pairs_for(name)]
    benchmark(_run_batch, index.query, pairs)
    benchmark.extra_info["k"] = "inf" if k is None else k


@pytest.mark.parametrize("name", T7_DATASETS)
def test_mu_bfs(benchmark, name):
    """µ-hop BFS — the index-free baseline (subsampled workload)."""
    g = graph_for(name)
    mu = mu_for(name)
    bfs = BfsIndex(g)
    pairs = [(int(s), int(t)) for s, t in pairs_for(name, SLOW_QUERIES)]
    benchmark(_run_batch, lambda s, t: bfs.reaches_within(s, t, mu), pairs)
    benchmark.extra_info["queries"] = len(pairs)


@pytest.mark.parametrize("name", T7_DATASETS)
def test_mu_dist(benchmark, name):
    """µ-dist — the distance-index route (PLL stand-in, §3.5)."""
    g = graph_for(name)
    mu = mu_for(name)
    dist = cached_index(("pll", name), lambda: PrunedLandmarkIndex(g))
    pairs = [(int(s), int(t)) for s, t in pairs_for(name, SLOW_QUERIES)]
    benchmark(_run_batch, lambda s, t: dist.reaches_within(s, t, mu), pairs)
    benchmark.extra_info["queries"] = len(pairs)
