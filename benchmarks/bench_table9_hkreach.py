"""Table 9 bench: the (h,k)-reach indexing/querying tradeoff.

Paper shape: the 2-hop vertex cover is 20-45% smaller than the vertex
cover, shrinking the index, while (2,µ)-reach queries run ~3-4x slower
than µ-reach — the §5 tradeoff.
"""

import numpy as np
import pytest

from repro.core import HKReachIndex, KReachIndex
from repro.core.vertex_cover import hhop_vertex_cover, vertex_cover_2approx
from repro.graph.stats import shortest_path_stats

from conftest import cached_index, graph_for, pairs_for

#: Table 9's datasets intersected with our per-family picks.
T9_DATASETS = ("AgroCyc", "aMaze", "Nasa")


def mu_for(name: str) -> int:
    def compute():
        g = graph_for(name)
        _, mu = shortest_path_stats(
            g, sample_size=min(g.n, 200), rng=np.random.default_rng(5)
        )
        return max(2, mu)

    return cached_index(("mu", name), compute)


@pytest.mark.parametrize("name", T9_DATASETS)
def test_vertex_cover_construction(benchmark, name):
    """The 2-approximate vertex cover (k-reach's substrate)."""
    g = graph_for(name)
    cover = benchmark(lambda: vertex_cover_2approx(g))
    benchmark.extra_info["cover_size"] = len(cover)


@pytest.mark.parametrize("name", T9_DATASETS)
def test_2hop_cover_construction(benchmark, name):
    """The 3-approximate 2-hop vertex cover ((2,k)-reach's substrate)."""
    g = graph_for(name)
    cover = benchmark(lambda: hhop_vertex_cover(g, 2))
    benchmark.extra_info["cover_size"] = len(cover)


def _run_batch(query, pairs):
    for s, t in pairs:
        query(s, t)


@pytest.mark.parametrize("name", T9_DATASETS)
def test_mu_reach_queries(benchmark, name):
    """µ-reach query batch (the baseline side of Table 9)."""
    g = graph_for(name)
    index = cached_index(("t9-kreach", name), lambda: KReachIndex(g, mu_for(name)))
    pairs = [(int(s), int(t)) for s, t in pairs_for(name)]
    benchmark(_run_batch, index.query, pairs)
    benchmark.extra_info["cover_size"] = index.cover_size


@pytest.mark.parametrize("name", T9_DATASETS)
def test_2mu_reach_queries(benchmark, name):
    """(2,µ)-reach query batch (the tradeoff side of Table 9)."""
    g = graph_for(name)
    index = cached_index(
        ("t9-hkreach", name),
        lambda: HKReachIndex(g, 2, mu_for(name), strict=False),
    )
    pairs = [(int(s), int(t)) for s, t in pairs_for(name)]
    benchmark(_run_batch, index.query, pairs)
    benchmark.extra_info["cover_size"] = index.cover_size
