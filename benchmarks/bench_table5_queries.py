"""Table 5 bench: classic-reachability query throughput per index.

The paper's headline: n-reach answers fastest on almost every dataset,
with GRAIL orders of magnitude behind on its bad datasets (aMaze, Kegg).
Each benchmark pushes the same pre-generated random workload through one
index, timing the whole batch.
"""

import pytest

from repro.baselines import ChainCoverIndex, GrailIndex, PathTreeIndex, PwahIndex
from repro.baselines.base import IndexBudgetExceeded

from conftest import QUERIES, cached_index, graph_for, kreach_for, pairs_for

COMPARATORS = {
    "GRAIL": lambda g: GrailIndex(g, num_labels=3, seed=11),
    "PWAH": PwahIndex,
    "PTree": PathTreeIndex,
    "3-hop": lambda g: ChainCoverIndex(g, max_label_entries=64 * g.n),
}


def _run_batch(query, pairs):
    hits = 0
    for s, t in pairs:
        if query(s, t):
            hits += 1
    return hits


def test_nreach_queries(benchmark, dataset_name):
    """n-reach (ours) on the Table 5 workload."""
    index = kreach_for(dataset_name, None)
    pairs = [(int(s), int(t)) for s, t in pairs_for(dataset_name)]
    hits = benchmark(_run_batch, index.query, pairs)
    benchmark.extra_info["queries"] = QUERIES
    benchmark.extra_info["positives"] = hits


@pytest.mark.parametrize("index_name", COMPARATORS)
def test_comparator_queries(benchmark, dataset_name, index_name):
    """Each comparator on the identical workload."""
    g = graph_for(dataset_name)
    try:
        index = cached_index(
            ("t5", index_name, dataset_name), lambda: COMPARATORS[index_name](g)
        )
    except IndexBudgetExceeded as exc:
        pytest.skip(f"budget exceeded (paper's '-'): {exc}")
    pairs = [(int(s), int(t)) for s, t in pairs_for(dataset_name)]
    hits = benchmark(_run_batch, index.reaches, pairs)
    benchmark.extra_info["positives"] = hits
