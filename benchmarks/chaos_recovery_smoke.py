"""Chaos recovery smoke: kill -9 a QueryServer worker mid-benchmark.

The CI-gated end-to-end version of the serving acceptance criterion:
while a pool is streaming pipelined batches, a worker process is killed
with SIGKILL from the outside (no failpoint, no cooperation from the
victim — exactly the OOM-killer scenario), and every batch must still
collect **bit-identical** to the in-process engine.  Exits non-zero on
any divergence, unrecovered pool, or missing restart.

Usage::

    PYTHONPATH=src python benchmarks/chaos_recovery_smoke.py
    PYTHONPATH=src python benchmarks/chaos_recovery_smoke.py \
        --rounds 8 --kills 3 --workers 4

``--kills 0`` runs the same traffic with no chaos (a control run for
debugging the smoke itself).
"""

import argparse
import os
import signal
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.kreach import KReachIndex
from repro.core.serialize import save_mmap
from repro.core.serve import QueryServer
from repro.graph.generators import gnp_digraph
from repro.workloads import random_pairs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--rounds", type=int, default=6, help="pipelined batches")
    parser.add_argument("--kills", type=int, default=2, help="workers to SIGKILL")
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--vertices", type=int, default=300)
    parser.add_argument("--pairs", type=int, default=60_000, help="per round")
    parser.add_argument("--seed", type=int, default=23)
    args = parser.parse_args(argv)

    rng = np.random.default_rng(args.seed)
    graph = gnp_digraph(args.vertices, 4.0 / args.vertices, seed=args.seed)
    index = KReachIndex(graph, 3)
    batches = [
        random_pairs(graph.n, args.pairs, rng=rng) for _ in range(args.rounds)
    ]
    expected = [index.query_batch(b) for b in batches]

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "index.kr4"
        save_mmap(index, path)
        failures = 0
        with QueryServer(
            path, workers=args.workers, slot_pairs=4096, hang_timeout=10.0
        ) as server:
            # Pipeline everything, then murder workers while it streams.
            tickets = [server.submit(b) for b in batches]
            victims = [
                w.process.pid
                for w in server._workers[: max(0, args.kills)]
                if w.process is not None
            ]
            for pid in victims:
                os.kill(pid, signal.SIGKILL)
                print(f"killed worker pid {pid} (SIGKILL)")
                time.sleep(0.05)
            for i, ticket in enumerate(tickets):
                got = server.collect(ticket, timeout=120.0)
                ok = np.array_equal(got, expected[i])
                failures += not ok
                print(f"round {i}: {'exact' if ok else 'DIVERGED'}")
            stats = server.stats()
        print(
            f"stats: restarts={stats['restarts']} hangs={stats['hangs']} "
            f"timeouts={stats['timeouts']} health={stats['health']}"
        )
        if failures:
            print(f"FAIL: {failures} diverged batch(es)")
            return 1
        if args.kills and stats["restarts"] < 1:
            print("FAIL: workers were killed but no restart was recorded")
            return 1
        if stats["health"] != "ok":
            print("FAIL: pool did not recover to healthy")
            return 1
        print("PASS: exact answers through SIGKILL chaos")
        return 0


if __name__ == "__main__":
    sys.exit(main())
