"""Table 2 bench: dataset stand-in generation and statistics.

The paper's Table 2 is a statistics table; the operations behind it are
graph generation, SCC condensation, and the shortest-path sweep.  This
bench times each stage per dataset family.
"""

import numpy as np
import pytest

from repro.datasets import spec
from repro.graph.scc import condensation
from repro.graph.stats import shortest_path_stats

from conftest import SCALE, graph_for


def test_generate_dataset(benchmark, dataset_name):
    """Synthetic stand-in generation (one full dataset build)."""
    s = spec(dataset_name)
    result = benchmark(lambda: s.build(scale=SCALE))
    assert result.n > 0
    benchmark.extra_info["n"] = result.n
    benchmark.extra_info["m"] = result.m


def test_condensation(benchmark, dataset_name):
    """SCC condensation (the |V_DAG| / |E_DAG| columns)."""
    g = graph_for(dataset_name)
    cond = benchmark(lambda: condensation(g))
    benchmark.extra_info["n_dag"] = cond.dag.n
    benchmark.extra_info["m_dag"] = cond.dag.m


def test_distance_stats(benchmark, dataset_name):
    """Sampled diameter and µ (the d / µ columns)."""
    g = graph_for(dataset_name)
    rng = np.random.default_rng(5)
    d, mu = benchmark(
        lambda: shortest_path_stats(g, sample_size=min(g.n, 200), rng=rng)
    )
    benchmark.extra_info["d"] = d
    benchmark.extra_info["mu"] = mu
