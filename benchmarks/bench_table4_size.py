"""Table 4 bench: index storage sizes.

Sizes are not timings, so each benchmark times the storage-model
computation (CSR + packed-weight accounting) and records the resulting
bytes in ``extra_info`` — the Table 4 numbers land in the benchmark JSON.
Paper shape: GRAIL smallest, n-reach within a small factor of PTree/PWAH.
"""

import pytest

from repro.baselines import GrailIndex, PathTreeIndex, PwahIndex
from repro.bitsets.packed import PackedIntArray
from repro.core import KReachIndex

from conftest import cached_index, graph_for, kreach_for


def test_nreach_storage_model(benchmark, dataset_name):
    """n-reach storage accounting (id table + CSR + bitmap)."""
    index = kreach_for(dataset_name, None)
    size = benchmark(index.storage_bytes)
    benchmark.extra_info["bytes"] = size


def test_kreach_packed_weights(benchmark, dataset_name):
    """Physically packing the 2-bit weights of a 6-reach index (§4.3)."""
    index = kreach_for(dataset_name, 6)
    packed = benchmark(index.packed_weights)
    assert isinstance(packed, PackedIntArray)
    benchmark.extra_info["weight_bytes"] = packed.storage_bytes()
    benchmark.extra_info["edges"] = index.edge_count


@pytest.mark.parametrize(
    "index_name,factory",
    [
        ("GRAIL", lambda g: GrailIndex(g, num_labels=3, seed=11)),
        ("PWAH", PwahIndex),
        ("PTree", PathTreeIndex),
    ],
)
def test_comparator_storage(benchmark, dataset_name, index_name, factory):
    """Comparator storage accounting, recorded for the Table 4 comparison."""
    index = cached_index((index_name, dataset_name), lambda: factory(graph_for(dataset_name)))
    size = benchmark(index.storage_bytes)
    benchmark.extra_info["bytes"] = size
